"""Setuptools shim.

All real metadata lives in ``pyproject.toml``.  This file exists only so
that ``pip install -e . --no-use-pep517`` works on machines without the
``wheel`` package (PEP-517 editable installs need ``bdist_wheel``).
"""

from setuptools import setup

setup()
