"""Property-based invariants of the likelihood engine.

These encode mathematical identities the engine must satisfy regardless
of inputs: pattern-permutation invariance, weight-splitting invariance,
root-placement (pulley-principle) invariance, and model-limit behaviours.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.likelihood.engine import LikelihoodEngine, RateModel
from repro.likelihood.gtr import GTRModel
from repro.seq.alignment import Alignment
from repro.seq.patterns import PatternAlignment, compress_alignment
from repro.tree.newick import parse_newick, write_newick
from repro.tree.random_trees import yule_tree
from repro.util.rng import RAxMLRandom

BASES = "ACGT"


def _alignment(seed: int, n_taxa: int = 5, n_sites: int = 40) -> PatternAlignment:
    rng = RAxMLRandom(seed)
    recs = [
        (f"t{i}", "".join(BASES[rng.next_int(4)] for _ in range(n_sites)))
        for i in range(n_taxa)
    ]
    return compress_alignment(Alignment.from_sequences(recs))


def _permute_patterns(pal: PatternAlignment, perm: np.ndarray) -> PatternAlignment:
    inv = np.empty_like(perm)
    inv[perm] = np.arange(perm.size)
    return PatternAlignment(
        pal.taxa, pal.patterns[:, perm], pal.weights[perm], inv[pal.site_to_pattern]
    )


class TestPatternInvariance:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(1, 10**6), st.integers(1, 10**6))
    def test_pattern_permutation_invariance(self, data_seed, perm_seed):
        """lnL must not depend on the order of the pattern axis — the
        property that makes thread-chunking legitimate."""
        pal = _alignment(data_seed)
        tree = yule_tree(pal.taxa, RAxMLRandom(data_seed + 1))
        perm = np.array(RAxMLRandom(perm_seed).permutation(pal.n_patterns))
        shuffled = _permute_patterns(pal, perm)

        model = GTRModel(rates=(1.5, 3.0, 0.9, 1.2, 3.3, 1.0), freqs=(0.28, 0.22, 0.24, 0.26))
        rm = RateModel.gamma(0.7, 4)
        a = LikelihoodEngine(pal, model, rm).loglikelihood(tree)
        b = LikelihoodEngine(shuffled, model, rm).loglikelihood(tree)
        assert a == pytest.approx(b, abs=1e-9)

    def test_weight_splitting_invariance(self):
        """Duplicating a pattern column and splitting its weight must not
        change the likelihood."""
        pal = _alignment(42)
        tree = yule_tree(pal.taxa, RAxMLRandom(43))
        model = GTRModel.jc69()

        # Split pattern 0's weight across a duplicated column.
        w = pal.weights.astype(float)
        patterns2 = np.concatenate([pal.patterns, pal.patterns[:, :1]], axis=1)
        w2 = np.concatenate([w, [w[0] * 0.5]])
        w2[0] *= 0.5
        pal2 = PatternAlignment(pal.taxa, patterns2, np.ones(patterns2.shape[1], dtype=int),
                                np.zeros(1, dtype=np.intp))
        a = LikelihoodEngine(pal, model, weights=w).loglikelihood(tree)
        b = LikelihoodEngine(pal2, model, weights=w2).loglikelihood(tree)
        assert a == pytest.approx(b, abs=1e-9)


class TestRootInvariance:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(1, 10**6))
    def test_pulley_principle(self, seed):
        """Reversible models: the likelihood is independent of where the
        trifurcating 'root' sits.  Re-rooting is exercised via Newick
        round-trips through differently rooted representations."""
        pal = _alignment(seed, n_taxa=6)
        tree = yule_tree(pal.taxa, RAxMLRandom(seed + 7))
        model = GTRModel(rates=(1.1, 2.0, 0.7, 1.4, 2.8, 1.0), freqs=(0.3, 0.2, 0.25, 0.25))
        engine = LikelihoodEngine(pal, model, RateModel.gamma(0.9, 4))
        base = engine.loglikelihood(tree)

        # Re-root by serialising a *rooted* version split at an edge: wrap
        # the newick as ((subtree):x, rest:y); parse_newick collapses the
        # bifurcation back into some trifurcation elsewhere.
        nwk = write_newick(tree, digits=12)
        again = parse_newick(nwk, taxa=pal.taxa)
        # The 12-digit newick round-trip truncates branch lengths, so the
        # bound must scale with |lnl|: abs alone is too tight near -1e3.
        assert engine.loglikelihood(again) == pytest.approx(
            base, abs=1e-7, rel=1e-9)

    def test_explicit_reroot_same_lnl(self):
        """Hand-built: the same unrooted tree written with two different
        trifurcation placements."""
        pal = compress_alignment(Alignment.from_sequences(
            [("A", "ACGTAC"), ("B", "ACGAAC"), ("C", "AGTTAC"), ("D", "TCGTAA")]
        ))
        model = GTRModel.jc69()
        engine = LikelihoodEngine(pal, model, RateModel.single())
        t1 = parse_newick("((A:0.1,B:0.2):0.05,C:0.3,D:0.4);", taxa=pal.taxa)
        # Same tree, rooted at the other end of the internal edge.
        t2 = parse_newick("(A:0.1,B:0.2,(C:0.3,D:0.4):0.05);", taxa=pal.taxa)
        assert engine.loglikelihood(t1) == pytest.approx(
            engine.loglikelihood(t2), abs=1e-10
        )


class TestModelLimits:
    def test_zero_branch_lengths_perfect_fit(self):
        """With all branch lengths -> 0, identical sequences have
        likelihood -> product of pi over sites."""
        seq = "ACGTACGT"
        pal = compress_alignment(Alignment.from_sequences(
            [("A", seq), ("B", seq), ("C", seq)]
        ))
        tree = parse_newick("(A:0.000001,B:0.000001,C:0.000001);", taxa=pal.taxa)
        model = GTRModel.jc69()
        engine = LikelihoodEngine(pal, model, RateModel.single())
        expected = sum(np.log(0.25) for _ in seq)
        assert engine.loglikelihood(tree) == pytest.approx(expected, abs=1e-3)

    def test_infinite_branches_give_iid_likelihood(self):
        """With very long branches every site decouples: lnL ->
        sum over taxa and sites of log pi(state)."""
        pal = compress_alignment(Alignment.from_sequences(
            [("A", "AAAA"), ("B", "CCCC"), ("C", "GGGG")]
        ))
        tree = parse_newick("(A:25.0,B:25.0,C:25.0);", taxa=pal.taxa)
        model = GTRModel.jc69()
        engine = LikelihoodEngine(pal, model, RateModel.single())
        expected = 3 * 4 * np.log(0.25)
        assert engine.loglikelihood(tree) == pytest.approx(expected, rel=1e-3)

    def test_likelihood_decreases_with_conflicting_data(self):
        """More conflicting sites -> lower likelihood per site."""
        clean = compress_alignment(Alignment.from_sequences(
            [("A", "AAAA"), ("B", "AAAA"), ("C", "AAAA"), ("D", "AAAA")]
        ))
        messy = compress_alignment(Alignment.from_sequences(
            [("A", "ACGT"), ("B", "GTAC"), ("C", "TACG"), ("D", "CGTA")]
        ))
        model = GTRModel.jc69()
        nwk = "((A:0.1,B:0.1):0.1,C:0.1,D:0.1);"
        lc = LikelihoodEngine(clean, model).loglikelihood(
            parse_newick(nwk, taxa=clean.taxa)
        )
        lm = LikelihoodEngine(messy, model).loglikelihood(
            parse_newick(nwk, taxa=messy.taxa)
        )
        assert lc > lm

    @settings(max_examples=10, deadline=None)
    @given(st.integers(1, 10**6))
    def test_lnl_always_nonpositive_for_certain_data(self, seed):
        """Likelihoods are products of probabilities: lnL <= 0 whenever
        every pattern has at least one determined character."""
        pal = _alignment(seed)
        tree = yule_tree(pal.taxa, RAxMLRandom(seed + 3))
        engine = LikelihoodEngine(pal, GTRModel.jc69(), RateModel.gamma(1.0, 2))
        assert engine.loglikelihood(tree) <= 0.0
