"""Robustness of the search stack on degenerate and minimal inputs."""

import numpy as np
import pytest

from repro.likelihood.engine import LikelihoodEngine, RateModel
from repro.likelihood.gtr import GTRModel
from repro.search.comprehensive import ComprehensiveConfig, run_comprehensive
from repro.search.hillclimb import hill_climb
from repro.search.searches import StageParams
from repro.search.starting_tree import parsimony_starting_tree
from repro.seq.alignment import Alignment
from repro.seq.patterns import compress_alignment
from repro.util.rng import RAxMLRandom

QUICK = StageParams(
    bootstrap_rounds=1, fast_rounds=1, slow_max_rounds=1,
    thorough_max_rounds=1, brlen_passes=1,
)


class TestDegenerateData:
    def test_identical_sequences(self):
        """Zero phylogenetic signal: everything should still run and
        produce a valid (arbitrary) tree."""
        pal = compress_alignment(Alignment.from_sequences(
            [(f"t{i}", "ACGTACGTACGT") for i in range(5)]
        ))
        cfg = ComprehensiveConfig(n_bootstraps=2, cat_categories=2, stage_params=QUICK)
        res = run_comprehensive(pal, cfg)
        res.best_tree.validate()
        assert np.isfinite(res.best_lnl)

    def test_alignment_with_gap_columns(self):
        recs = [
            ("a", "AC--GT-A"), ("b", "AC--GTTA"), ("c", "GC--GTTA"),
            ("d", "GG--GT-A"), ("e", "GGA-GT-A"),
        ]
        pal = compress_alignment(Alignment.from_sequences(recs))
        cfg = ComprehensiveConfig(n_bootstraps=2, cat_categories=2, stage_params=QUICK)
        res = run_comprehensive(pal, cfg)
        res.best_tree.validate()

    def test_minimal_four_taxa(self):
        """Four taxa: exactly three topologies; SPR must handle the tiny
        move space without violating the >= 3 remaining-leaves rule."""
        pal = compress_alignment(Alignment.from_sequences(
            [("a", "AAAACCCC"), ("b", "AAAACCCC"),
             ("c", "CCCCAAAA"), ("d", "CCCCAAAA")]
        ))
        engine = LikelihoodEngine(pal, GTRModel.jc69(), RateModel.single())
        start = parsimony_starting_tree(pal, RAxMLRandom(1))
        res = hill_climb(engine, start, max_rounds=3)
        res.tree.validate()
        # a+b vs c+d must be recovered (the only signal in the data).
        from repro.tree.bipartitions import Bipartition, tree_bipartitions

        ab = Bipartition.from_leafset(
            [pal.taxon_index("a"), pal.taxon_index("b")], 4
        )
        assert ab in tree_bipartitions(res.tree)

    def test_highly_gapped_taxon(self):
        """A taxon that is mostly gaps must not destabilise anything."""
        recs = [
            ("a", "ACGTACGTAC"), ("b", "ACGAACGTAC"), ("c", "TCGTACGAAC"),
            ("d", "----AC----"), ("e", "TCGAACGAAT"),
        ]
        pal = compress_alignment(Alignment.from_sequences(recs))
        engine = LikelihoodEngine(pal, GTRModel.jc69(), RateModel.gamma(1.0, 2))
        start = parsimony_starting_tree(pal, RAxMLRandom(2))
        res = hill_climb(engine, start, max_rounds=2)
        assert np.isfinite(res.lnl)

    def test_three_taxa_comprehensive(self):
        """Three taxa: a single unrooted topology — the pipeline must not
        attempt invalid rearrangements."""
        pal = compress_alignment(Alignment.from_sequences(
            [("a", "ACGTACGT"), ("b", "ACGAACGA"), ("c", "AGGTAGGT")]
        ))
        cfg = ComprehensiveConfig(n_bootstraps=2, cat_categories=2, stage_params=QUICK)
        res = run_comprehensive(pal, cfg)
        res.best_tree.validate()
        assert res.best_tree.n_leaves == 3


class TestSeedStability:
    @pytest.mark.parametrize("seed", [1, 7, 12345, 999999])
    def test_many_seeds_complete(self, seed):
        from repro.datasets import test_dataset

        pal, _ = test_dataset(n_taxa=5, n_sites=60, seed=seed)
        cfg = ComprehensiveConfig(
            n_bootstraps=2, cat_categories=2, seed_p=seed, seed_x=seed,
            stage_params=QUICK,
        )
        res = run_comprehensive(pal, cfg)
        res.best_tree.validate()
