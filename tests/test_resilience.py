"""Tests for fault injection, failure recovery, and checkpoint/restart.

The two hard guarantees of the resilience layer:

1. a run killed at *any* stage boundary and resumed from its checkpoints
   produces a bit-identical :class:`HybridResult` (trees, likelihoods,
   support values, virtual stage times);
2. a run that loses a rank mid-flight completes with the *identical*
   global bootstrap replicate set (dead ranks' replicates are replayed
   from their ``seed + 10000·r`` streams) and reports the recovery cost.
"""

import json
import time

import pytest

from repro.datasets import test_dataset as make_test_dataset
from repro.hybrid.checkpoint import (
    STAGE_ORDER,
    CheckpointError,
    CheckpointStore,
    config_fingerprint,
)
from repro.hybrid.driver import HybridConfig, run_hybrid_analysis
from repro.mpi.comm import (
    AllRanksDeadError,
    RankFailure,
    RetryExhaustedError,
    RETRY_BACKOFF,
    SPMDError,
)
from repro.mpi.faults import CollectiveGlitch, FaultPlan, KillSpec, RankKilledError
from repro.mpi.launcher import run_spmd
from repro.search.comprehensive import ComprehensiveConfig
from repro.search.searches import StageParams
from repro.tree.newick import write_newick


@pytest.fixture(scope="module")
def pal():
    pal, _ = make_test_dataset(n_taxa=6, n_sites=90, seed=301)
    return pal


@pytest.fixture(scope="module")
def quick_cc():
    return ComprehensiveConfig(
        n_bootstraps=4,
        cat_categories=3,
        stage_params=StageParams(
            bootstrap_rounds=1, fast_rounds=1, slow_max_rounds=1,
            thorough_max_rounds=2, brlen_passes=1,
        ),
    )


def hybrid_config(quick_cc, **kw):
    kw.setdefault("n_processes", 2)
    kw.setdefault("n_threads", 2)
    return HybridConfig(comprehensive=quick_cc, **kw)


@pytest.fixture(scope="module")
def baseline(pal, quick_cc):
    """An uninterrupted p=2 run every resilience scenario is compared to."""
    return run_hybrid_analysis(pal, hybrid_config(quick_cc))


def bootstrap_newick_multiset(result):
    return sorted(write_newick(t) for t in result.bootstrap_trees)


# ---------------------------------------------------------------------------
# Fault-plan construction
# ---------------------------------------------------------------------------


class TestFaultPlanValidation:
    def test_killspec_needs_exactly_one_point(self):
        with pytest.raises(ValueError, match="exactly one"):
            KillSpec(rank=0)
        with pytest.raises(ValueError, match="exactly one"):
            KillSpec(rank=0, stage="fast", replicate=1)

    def test_killspec_rejects_unknown_stage(self):
        with pytest.raises(ValueError, match="unknown stage"):
            KillSpec(rank=0, stage="warmup")

    def test_killspec_rejects_negative_indices(self):
        with pytest.raises(ValueError):
            KillSpec(rank=0, replicate=-1)
        with pytest.raises(ValueError):
            KillSpec(rank=0, collective=-2)

    def test_glitch_validation(self):
        with pytest.raises(ValueError, match="unknown glitch kind"):
            CollectiveGlitch(rank=0, call_index=0, kind="flaky")
        with pytest.raises(ValueError, match="failures"):
            CollectiveGlitch(rank=0, call_index=0, kind="fail", failures=0)
        with pytest.raises(ValueError, match="delay_seconds"):
            CollectiveGlitch(rank=0, call_index=0, kind="delay")

    def test_plan_rejects_duplicate_glitches(self):
        g = CollectiveGlitch(rank=0, call_index=3, kind="delay", delay_seconds=1.0)
        with pytest.raises(ValueError, match="multiple glitches"):
            FaultPlan(glitches=(g, g))

    def test_kill_wildcard_targets_every_rank(self):
        spec = KillSpec(rank=None, stage="fast")
        assert spec.targets(0) and spec.targets(7)
        with pytest.raises(RankKilledError):
            FaultPlan(kills=(spec,)).kill_at_stage(3, "fast")


# ---------------------------------------------------------------------------
# Collective-level faults in the communicator
# ---------------------------------------------------------------------------


class TestCollectiveFaults:
    def test_transient_failure_retried_with_backoff(self):
        plan = FaultPlan(glitches=(
            CollectiveGlitch(rank=0, call_index=0, kind="fail", failures=3),
        ))

        def body(comm):
            comm.barrier()
            return comm.n_retries, comm.clock.now

        out = run_spmd(body, 2, fault_plan=plan, timeout=10.0)
        (r0, t0), (r1, t1) = out
        assert r0 == 3 and r1 == 0
        # Backoff doubles per attempt: 1 + 2 + 4 units of RETRY_BACKOFF,
        # and the barrier synchronises rank 1 up to rank 0's delayed entry.
        assert t0 >= RETRY_BACKOFF * 7
        assert t1 == t0

    def test_retry_budget_exhaustion_is_fatal(self):
        plan = FaultPlan(glitches=(
            CollectiveGlitch(rank=0, call_index=0, kind="fail", failures=99),
        ))
        with pytest.raises(RetryExhaustedError, match="still failing"):
            run_spmd(lambda comm: comm.barrier(), 2, fault_plan=plan, timeout=5.0)

    def test_delay_glitch_charges_virtual_time(self):
        plan = FaultPlan(glitches=(
            CollectiveGlitch(rank=1, call_index=0, kind="delay", delay_seconds=2.5),
        ))

        def body(comm):
            comm.barrier()
            return comm.clock.now

        times = run_spmd(body, 2, fault_plan=plan, timeout=10.0)
        assert min(times) >= 2.5  # everyone waits for the delayed rank

    def test_kill_inside_collective_raises_rankfailure_on_survivors(self):
        plan = FaultPlan(kills=(KillSpec(rank=1, collective=0),))

        def body(comm):
            try:
                comm.barrier()
            except RankFailure as rf:
                # Survivors keep communicating; the dead rank shows as None.
                gathered = comm.allgather(comm.rank)
                return rf.dead, gathered
            return "no failure seen"

        out = run_spmd(body, 3, fault_plan=plan, timeout=10.0)
        assert out[1] is None  # the killed rank produced no result
        for res in (out[0], out[2]):
            dead, gathered = res
            assert dead == (1,)
            assert gathered == [0, None, 2]

    def test_death_sets_are_consistent_across_survivors(self):
        plan = FaultPlan(kills=(KillSpec(rank=2, collective=1),))

        def body(comm):
            seen = []
            for _ in range(3):
                try:
                    comm.barrier()
                except RankFailure as rf:
                    seen.append(rf.dead)
            return seen

        out = run_spmd(body, 4, fault_plan=plan, timeout=10.0)
        survivors = [out[r] for r in (0, 1, 3)]
        assert survivors[0] == survivors[1] == survivors[2] == [(2,)]

    def test_hung_rank_suspected_via_deadline(self):
        plan = FaultPlan(glitches=(
            CollectiveGlitch(rank=1, call_index=0, kind="hang"),
        ))

        def body(comm):
            try:
                comm.barrier()
            except RankFailure as rf:
                return rf.dead
            return "no failure seen"

        started = time.monotonic()
        out = run_spmd(body, 2, fault_plan=plan, timeout=1.0)
        elapsed = time.monotonic() - started
        assert out == [(1,), None]
        assert elapsed < 10.0  # deadline-bounded, not wedged forever

    def test_all_ranks_dead_is_reported(self):
        plan = FaultPlan(kills=(KillSpec(rank=None, collective=0),))
        with pytest.raises(AllRanksDeadError):
            run_spmd(lambda comm: comm.barrier(), 2, fault_plan=plan, timeout=5.0)

    def test_non_resilient_worlds_still_abort_on_kill(self):
        """Without a fault plan a RankKilledError is a bug and surfaces."""

        def body(comm):
            if comm.rank == 0:
                raise RankKilledError("stray kill")
            return "ok"

        with pytest.raises((RankKilledError, SPMDError)):
            run_spmd(body, 2, timeout=2.0)


# ---------------------------------------------------------------------------
# Launcher semantics (satellites: shared deadline, error aggregation)
# ---------------------------------------------------------------------------


class TestLauncher:
    def test_join_uses_one_shared_deadline(self):
        """n hung ranks must cost ~timeout total, not n x timeout."""

        def body(comm):
            time.sleep(30.0)

        started = time.monotonic()
        with pytest.raises(SPMDError, match="shared"):
            run_spmd(body, 4, timeout=1.0)
        assert time.monotonic() - started < 10.0

    def test_secondary_rank_errors_attached_as_notes(self):
        def body(comm):
            raise ValueError(f"boom on rank {comm.rank}")

        with pytest.raises(ValueError, match="boom on rank 0") as info:
            run_spmd(body, 3, timeout=5.0)
        notes = "\n".join(getattr(info.value, "__notes__", []))
        assert "rank 1" in notes and "rank 2" in notes

    def test_non_spmd_error_wins_over_collateral_spmd_errors(self):
        def body(comm):
            if comm.rank == 1:
                raise KeyError("the real bug")
            comm.barrier()  # rank 1 never joins: collateral SPMDError

        with pytest.raises(KeyError, match="the real bug"):
            run_spmd(body, 2, timeout=5.0)


# ---------------------------------------------------------------------------
# Checkpoint store
# ---------------------------------------------------------------------------


class TestCheckpointStore:
    def test_roundtrip_and_atomicity(self, tmp_path):
        store = CheckpointStore(tmp_path, rank=3, fingerprint="fp")
        payload = {"results": [["(a,b,c);", -1.25, 2]], "clock": 0.5}
        store.save("bootstrap", payload)
        assert store.load("bootstrap") == payload
        assert not list(tmp_path.glob("*.tmp"))  # temp file was renamed away

    def test_missing_checkpoint_is_none(self, tmp_path):
        store = CheckpointStore(tmp_path, rank=0, fingerprint="fp")
        assert store.load("setup") is None

    def test_fingerprint_mismatch_refused(self, tmp_path):
        CheckpointStore(tmp_path, 0, "run-A").save("setup", {})
        with pytest.raises(CheckpointError, match="different run"):
            CheckpointStore(tmp_path, 0, "run-B").load("setup")

    def test_corrupt_json_refused(self, tmp_path):
        store = CheckpointStore(tmp_path, 0, "fp")
        store.save("setup", {})
        store.path("setup").write_text("{half a doc", encoding="ascii")
        with pytest.raises(CheckpointError, match="corrupt"):
            store.load("setup")

    def test_available_stages_is_contiguous_prefix(self, tmp_path):
        store = CheckpointStore(tmp_path, 0, "fp")
        for stage in ("setup", "bootstrap", "slow"):  # note the gap: no fast
            store.save(stage, {})
        assert store.available_stages() == ("setup", "bootstrap")

    def test_fingerprint_tracks_config_and_alignment(self, pal, quick_cc):
        cfg_a = hybrid_config(quick_cc)
        cfg_b = hybrid_config(quick_cc, n_threads=4)
        assert config_fingerprint(pal, cfg_a) != config_fingerprint(pal, cfg_b)
        # Resilience knobs must NOT change the fingerprint (a resumed run
        # and its killed predecessor share one by construction).
        cfg_c = hybrid_config(quick_cc, checkpoint_dir="/tmp/x", resume=True)
        assert config_fingerprint(pal, cfg_a) == config_fingerprint(pal, cfg_c)


# ---------------------------------------------------------------------------
# Checkpoint/restart: bit-identical resume at every stage boundary
# ---------------------------------------------------------------------------


class TestResumeDeterminism:
    @pytest.mark.parametrize("stage", STAGE_ORDER + ("finalize",))
    def test_kill_and_resume_is_bit_identical(self, stage, pal, quick_cc,
                                              baseline, tmp_path):
        plan = FaultPlan(kills=(KillSpec(rank=None, stage=stage),))
        with pytest.raises(SPMDError):
            run_hybrid_analysis(pal, hybrid_config(
                quick_cc, checkpoint_dir=str(tmp_path),
                fault_plan=plan, spmd_timeout=60.0,
            ))
        resumed = run_hybrid_analysis(pal, hybrid_config(
            quick_cc, checkpoint_dir=str(tmp_path), resume=True,
        ))
        assert write_newick(resumed.best_tree) == write_newick(baseline.best_tree)
        assert resumed.best_lnl == baseline.best_lnl
        assert resumed.winner_rank == baseline.winner_rank
        assert write_newick(resumed.support_tree, support=True) == \
            write_newick(baseline.support_tree, support=True)
        assert bootstrap_newick_multiset(resumed) == \
            bootstrap_newick_multiset(baseline)
        # Virtual timings restore exactly, not approximately.
        assert resumed.stage_seconds == baseline.stage_seconds
        assert resumed.total_seconds == baseline.total_seconds
        for res_rank, base_rank in zip(resumed.ranks, baseline.ranks):
            assert res_rank.finish_time == base_rank.finish_time
            assert res_rank.stage_ops == base_rank.stage_ops

    def test_resume_without_checkpoint_dir_rejected(self, quick_cc):
        with pytest.raises(ValueError, match="checkpoint_dir"):
            hybrid_config(quick_cc, resume=True)

    def test_resume_under_changed_config_refused(self, pal, quick_cc, tmp_path):
        plan = FaultPlan(kills=(KillSpec(rank=None, stage="fast"),))
        with pytest.raises(SPMDError):
            run_hybrid_analysis(pal, hybrid_config(
                quick_cc, checkpoint_dir=str(tmp_path),
                fault_plan=plan, spmd_timeout=60.0,
            ))
        other_cc = ComprehensiveConfig(
            n_bootstraps=4, cat_categories=3, seed_p=999,
            stage_params=quick_cc.stage_params,
        )
        with pytest.raises(CheckpointError, match="different run"):
            run_hybrid_analysis(pal, hybrid_config(
                other_cc, checkpoint_dir=str(tmp_path), resume=True,
            ))


# ---------------------------------------------------------------------------
# Rank-death recovery: degraded completion with the same replicate set
# ---------------------------------------------------------------------------


class TestRankDeathRecovery:
    def test_death_during_bootstrap_preserves_replicate_set(self, pal, quick_cc,
                                                            baseline):
        plan = FaultPlan(kills=(KillSpec(rank=1, replicate=1),))
        result = run_hybrid_analysis(pal, hybrid_config(
            quick_cc, fault_plan=plan, spmd_timeout=60.0,
        ))
        assert result.failed_ranks == [1]
        assert len(result.ranks) == 1  # only the survivor reports
        assert result.ranks[0].recovered_for == (1,)
        # The global replicate set is *identical*: the survivor re-derived
        # rank 1's seed stream and replayed its replicates.
        assert bootstrap_newick_multiset(result) == \
            bootstrap_newick_multiset(baseline)
        # Recovery is charged to virtual time and reported.
        assert result.stage_seconds["recovery"] > 0.0
        assert result.ranks[0].stage_seconds["recovery"] > 0.0

    def test_death_after_bootstrap_reproduces_baseline_answer(self, pal,
                                                              quick_cc,
                                                              baseline):
        """A rank dying late is fully replayed (its original Table 2
        shares), so the final selection sees the same candidate set."""
        plan = FaultPlan(kills=(KillSpec(rank=1, stage="slow"),))
        result = run_hybrid_analysis(pal, hybrid_config(
            quick_cc, fault_plan=plan, spmd_timeout=60.0,
        ))
        assert result.failed_ranks == [1]
        assert write_newick(result.best_tree) == write_newick(baseline.best_tree)
        assert result.best_lnl == baseline.best_lnl
        assert bootstrap_newick_multiset(result) == \
            bootstrap_newick_multiset(baseline)

    def test_recovery_reuses_dead_ranks_checkpoints(self, pal, quick_cc,
                                                    baseline, tmp_path):
        plan = FaultPlan(kills=(KillSpec(rank=1, stage="thorough"),))
        result = run_hybrid_analysis(pal, hybrid_config(
            quick_cc, checkpoint_dir=str(tmp_path),
            fault_plan=plan, spmd_timeout=60.0,
        ))
        assert result.failed_ranks == [1]
        # Rank 1 checkpointed setup..slow before dying; the survivor's
        # replay loads those instead of recomputing.
        dead_store = CheckpointStore(
            tmp_path, 1, config_fingerprint(pal, hybrid_config(quick_cc))
        )
        assert dead_store.available_stages() == ("setup", "bootstrap", "fast",
                                                 "slow")
        assert write_newick(result.best_tree) == write_newick(baseline.best_tree)
        assert result.best_lnl == baseline.best_lnl

    def test_transient_glitch_reported_in_rank_report(self, pal, quick_cc,
                                                      baseline):
        # Collective call 0 of rank 0 is the post-bootstrap barrier.
        plan = FaultPlan(glitches=(
            CollectiveGlitch(rank=0, call_index=0, kind="fail", failures=2),
        ))
        result = run_hybrid_analysis(pal, hybrid_config(
            quick_cc, fault_plan=plan, spmd_timeout=60.0,
        ))
        assert result.ranks[0].n_retries == 2
        assert result.ranks[1].n_retries == 0
        assert result.failed_ranks == []
        # Retries delay the run but never change the answer.
        assert result.best_lnl == baseline.best_lnl
        assert write_newick(result.best_tree) == write_newick(baseline.best_tree)

    def test_bootstopping_run_survives_rank_death(self, pal, quick_cc):
        plan = FaultPlan(kills=(KillSpec(rank=1, stage="fast"),))
        result = run_hybrid_analysis(pal, hybrid_config(
            quick_cc, bootstopping=True, bootstop_max=8,
            fault_plan=plan, spmd_timeout=60.0,
        ))
        assert result.failed_ranks == [1]
        assert result.best_lnl < 0.0
        assert result.support_tree is not None


# ---------------------------------------------------------------------------
# CLI integration
# ---------------------------------------------------------------------------


class TestCheckpointCLI:
    def test_checkpoint_then_resume(self, tmp_path):
        from repro.cli import main

        ckpt = tmp_path / "ckpt"
        argv = ["--simulate", "6", "60", "-N", "2", "-np", "2", "-T", "1",
                "--quick", "-n", "ck", "-w", str(tmp_path),
                "--checkpoint-dir", str(ckpt)]
        assert main(argv) == 0
        assert list(ckpt.glob("ckpt-rank0000-*.json"))  # checkpoints on disk
        report_a = json.loads(
            (tmp_path / "RAxML_info.ck.json").read_text(encoding="ascii")
        )
        assert main(argv + ["--resume"]) == 0
        report_b = json.loads(
            (tmp_path / "RAxML_info.ck.json").read_text(encoding="ascii")
        )
        assert report_b == report_a  # resumed run is bit-identical

    def test_resume_requires_checkpoint_dir(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="checkpoint-dir"):
            main(["--simulate", "6", "60", "-N", "2", "--resume"])
