"""Tests for the CAT approximation (repro.likelihood.cat)."""

import numpy as np
import pytest

from repro.likelihood.cat import cluster_rates, estimate_cat_rates, per_pattern_rates
from repro.likelihood.engine import LikelihoodEngine, RateModel


@pytest.fixture()
def setup(tiny_pal, gtr_model, tiny_tree):
    engine = LikelihoodEngine(tiny_pal, gtr_model, RateModel.gamma(1.0, 4))
    return engine, tiny_tree


class TestPerPatternRates:
    def test_shape_and_positivity(self, setup):
        engine, tree = setup
        rates = per_pattern_rates(engine, tree)
        assert rates.shape == (engine.n_patterns,)
        assert np.all(rates > 0)

    def test_rates_on_grid(self, setup):
        engine, tree = setup
        from repro.likelihood.cat import _RATE_GRID

        rates = per_pattern_rates(engine, tree)
        assert set(np.round(rates, 10)) <= set(np.round(_RATE_GRID, 10))


class TestClusterRates:
    def test_basic_clustering(self):
        pattern_rates = np.array([0.1, 0.1, 1.0, 1.0, 4.0, 4.0])
        weights = np.ones(6)
        rates, p2c = cluster_rates(pattern_rates, weights, n_categories=3)
        assert rates.shape[0] <= 3
        assert p2c.shape == (6,)
        # Equal rates cluster together.
        assert p2c[0] == p2c[1]
        assert p2c[4] == p2c[5]

    def test_weighted_mean_rate_is_one(self):
        pattern_rates = np.array([0.2, 0.5, 1.0, 3.0, 6.0])
        weights = np.array([3.0, 1.0, 5.0, 2.0, 1.0])
        rates, p2c = cluster_rates(pattern_rates, weights, n_categories=3)
        mean = float((rates[p2c] * weights).sum() / weights.sum())
        assert mean == pytest.approx(1.0)

    def test_zero_weight_patterns_get_valid_category(self):
        pattern_rates = np.array([0.1, 0.5, 1.0, 2.0])
        weights = np.array([1.0, 0.0, 0.0, 1.0])
        rates, p2c = cluster_rates(pattern_rates, weights, n_categories=4)
        assert np.all(p2c < rates.shape[0])

    def test_single_category(self):
        rates, p2c = cluster_rates(np.array([0.5, 2.0]), np.ones(2), n_categories=1)
        assert rates.shape == (1,)
        assert rates[0] == pytest.approx(1.0)  # normalised mean

    def test_validation(self):
        with pytest.raises(ValueError):
            cluster_rates(np.ones(3), np.ones(3), n_categories=0)
        with pytest.raises(ValueError):
            cluster_rates(np.ones(3), np.ones(4))
        with pytest.raises(ValueError):
            cluster_rates(np.ones(2), np.zeros(2))


class TestEstimateCatRates:
    def test_rate_model_valid(self, setup):
        engine, tree = setup
        cat = estimate_cat_rates(engine, tree, n_categories=5)
        rm = cat.rate_model()
        assert rm.kind == "cat"
        assert rm.pattern_to_cat.shape == (engine.n_patterns,)

    def test_cat_likelihood_close_to_gamma(self, setup):
        """CAT is an approximation of rate heterogeneity; on data simulated
        with gamma rates its fitted lnL should be in the same ballpark."""
        engine, tree = setup
        cat = estimate_cat_rates(engine, tree, n_categories=8)
        cat_engine = engine.with_rate_model(cat.rate_model())
        g = engine.loglikelihood(tree)
        c = cat_engine.loglikelihood(tree)
        assert abs(c - g) / abs(g) < 0.15

    def test_deterministic(self, setup):
        engine, tree = setup
        a = estimate_cat_rates(engine, tree, n_categories=4)
        b = estimate_cat_rates(engine, tree, n_categories=4)
        assert np.array_equal(a.category_rates, b.category_rates)
        assert np.array_equal(a.pattern_to_cat, b.pattern_to_cat)
