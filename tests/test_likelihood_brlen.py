"""Tests for branch-length optimisation (repro.likelihood.brlen)."""

import numpy as np
import pytest

from repro.likelihood.brlen import (
    newton_branch_length,
    optimize_branch_lengths,
    optimize_edge,
)
from repro.likelihood.engine import LikelihoodEngine, RateModel
from repro.tree.topology import MAX_BRANCH_LENGTH, MIN_BRANCH_LENGTH


@pytest.fixture()
def engine_and_tree(tiny_pal, gtr_model, tiny_tree):
    engine = LikelihoodEngine(tiny_pal, gtr_model, RateModel.gamma(0.8, 4))
    return engine, tiny_tree.copy()


class TestNewton:
    def test_finds_scalar_optimum(self, engine_and_tree):
        engine, tree = engine_and_tree
        down = engine.compute_down_partials(tree)
        up = engine.compute_up_partials(tree, down)
        e = tree.edges()[0]
        coef, exps, ls = engine.edge_coefficients(down[id(e)], up[id(e)])
        t_opt, lnl_opt = newton_branch_length(engine, coef, exps, ls, 0.5)
        # Grid search confirms optimality.
        grid = np.linspace(max(t_opt - 0.05, MIN_BRANCH_LENGTH), t_opt + 0.05, 21)
        grid_lnls = [
            engine.edge_lnl_and_derivatives(coef, exps, ls, t)[0] for t in grid
        ]
        assert lnl_opt >= max(grid_lnls) - 1e-6

    def test_result_within_bounds(self, engine_and_tree):
        engine, tree = engine_and_tree
        down = engine.compute_down_partials(tree)
        up = engine.compute_up_partials(tree, down)
        for e in tree.edges():
            coef, exps, ls = engine.edge_coefficients(down[id(e)], up[id(e)])
            t_opt, _ = newton_branch_length(engine, coef, exps, ls, e.length)
            assert MIN_BRANCH_LENGTH <= t_opt <= MAX_BRANCH_LENGTH

    def test_start_point_insensitive(self, engine_and_tree):
        engine, tree = engine_and_tree
        down = engine.compute_down_partials(tree)
        up = engine.compute_up_partials(tree, down)
        e = tree.edges()[1]
        coef, exps, ls = engine.edge_coefficients(down[id(e)], up[id(e)])
        t_a, _ = newton_branch_length(engine, coef, exps, ls, 0.001)
        t_b, _ = newton_branch_length(engine, coef, exps, ls, 2.0)
        assert t_a == pytest.approx(t_b, abs=1e-3)


class TestOptimizeEdge:
    def test_improves_or_keeps_lnl(self, engine_and_tree):
        engine, tree = engine_and_tree
        before = engine.loglikelihood(tree)
        e = tree.edges()[0]
        e.length = 1.5  # deliberately bad
        optimize_edge(engine, tree, e)
        after = engine.loglikelihood(tree)
        assert after >= before - 1e-9

    def test_updates_length_in_place(self, engine_and_tree):
        engine, tree = engine_and_tree
        e = tree.edges()[0]
        e.length = 2.5
        new_len = optimize_edge(engine, tree, e)
        assert e.length == new_len
        assert new_len != 2.5

    def test_root_rejected(self, engine_and_tree):
        engine, tree = engine_and_tree
        with pytest.raises(ValueError):
            optimize_edge(engine, tree, tree.root)


class TestOptimizeBranchLengths:
    def test_monotone_improvement(self, engine_and_tree):
        engine, tree = engine_and_tree
        before = engine.loglikelihood(tree)
        after = optimize_branch_lengths(engine, tree, passes=4)
        assert after >= before
        assert after == pytest.approx(engine.loglikelihood(tree), abs=1e-9)

    def test_never_worse_than_input(self, engine_and_tree):
        """The rollback guard guarantees monotonicity even on one pass."""
        engine, tree = engine_and_tree
        tree.map_branch_lengths(lambda t: 3.0)  # awful start
        before = engine.loglikelihood(tree)
        after = optimize_branch_lengths(engine, tree, passes=1)
        assert after >= before

    def test_idempotent_at_optimum(self, engine_and_tree):
        engine, tree = engine_and_tree
        l1 = optimize_branch_lengths(engine, tree, passes=6)
        l2 = optimize_branch_lengths(engine, tree, passes=2)
        assert l2 == pytest.approx(l1, abs=0.05)

    def test_bad_passes_rejected(self, engine_and_tree):
        engine, tree = engine_and_tree
        with pytest.raises(ValueError):
            optimize_branch_lengths(engine, tree, passes=0)

    def test_cat_mode_supported(self, tiny_pal, gtr_model, tiny_tree):
        p2c = np.arange(tiny_pal.n_patterns) % 4
        engine = LikelihoodEngine(
            tiny_pal, gtr_model, RateModel.cat(np.array([0.2, 0.7, 1.3, 2.5]), p2c)
        )
        tree = tiny_tree.copy()
        before = engine.loglikelihood(tree)
        after = optimize_branch_lengths(engine, tree, passes=3)
        assert after >= before
