"""Tests for re-rooting (repro.tree.topology.Tree.reroot_at)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tree.bipartitions import tree_bipartitions
from repro.tree.newick import parse_newick
from repro.tree.random_trees import yule_tree
from repro.util.rng import RAxMLRandom


@pytest.fixture()
def tree():
    return parse_newick(
        "((A:0.1,B:0.2):0.3,(C:0.4,D:0.5):0.6,(E:0.7,F:0.8):0.9);"
    )


class TestRerootAt:
    def test_noop_on_current_root(self, tree):
        before = tree_bipartitions(tree, with_lengths=True)
        tree.reroot_at(tree.root)
        assert tree_bipartitions(tree, with_lengths=True) == before

    def test_preserves_topology_and_lengths(self, tree):
        before = tree_bipartitions(tree, with_lengths=True)
        total = tree.total_branch_length()
        target = tree.internal_edges()[0]
        tree.reroot_at(target)
        tree.validate()
        assert tree.root is target
        assert tree_bipartitions(tree, with_lengths=True) == before
        assert tree.total_branch_length() == pytest.approx(total)

    def test_leaf_rejected(self, tree):
        with pytest.raises(ValueError, match="internal"):
            tree.reroot_at(tree.find_leaf("A"))

    def test_foreign_node_rejected(self, tree):
        other = parse_newick("((A,B),C,D);")
        with pytest.raises(ValueError, match="belong"):
            tree.reroot_at(other.root.children[0])

    def test_round_trip(self, tree):
        original_root = tree.root
        before = tree_bipartitions(tree, with_lengths=True)
        target = tree.internal_edges()[0]
        tree.reroot_at(target)
        tree.reroot_at(original_root)
        tree.validate()
        assert tree.root is original_root
        assert tree_bipartitions(tree, with_lengths=True) == before

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 10**6), st.integers(0, 10**6))
    def test_random_reroots_keep_invariants(self, tree_seed, pick_seed):
        taxa = tuple(f"t{i}" for i in range(9))
        t = yule_tree(taxa, RAxMLRandom(tree_seed))
        before = tree_bipartitions(t, with_lengths=True)
        rng = RAxMLRandom(pick_seed + 1)
        for _ in range(4):
            internals = t.internal_nodes()
            t.reroot_at(internals[rng.next_int(len(internals))])
            t.validate()
            assert tree_bipartitions(t, with_lengths=True) == before
