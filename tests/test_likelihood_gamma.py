"""Tests for discrete-Γ rates (repro.likelihood.gamma)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.likelihood.gamma import MAX_ALPHA, MIN_ALPHA, discrete_gamma_rates


class TestDiscreteGamma:
    def test_mean_is_one(self):
        for alpha in (0.1, 0.5, 1.0, 2.0, 10.0):
            rates = discrete_gamma_rates(alpha, 4)
            assert rates.mean() == pytest.approx(1.0, abs=1e-12)

    def test_rates_increasing(self):
        rates = discrete_gamma_rates(0.7, 4)
        assert np.all(np.diff(rates) > 0)

    def test_rates_positive(self):
        rates = discrete_gamma_rates(0.05, 8)
        assert np.all(rates > 0)

    def test_single_category_is_one(self):
        assert discrete_gamma_rates(0.5, 1).tolist() == [1.0]

    def test_more_heterogeneity_for_small_alpha(self):
        """Small alpha => wide rate spread; large alpha => rates near 1."""
        spread_small = np.ptp(discrete_gamma_rates(0.2, 4))
        spread_big = np.ptp(discrete_gamma_rates(20.0, 4))
        assert spread_small > 2.0
        assert spread_big < 0.6
        assert spread_big < spread_small / 4

    def test_large_alpha_approaches_uniform(self):
        rates = discrete_gamma_rates(99.0, 4)
        assert np.allclose(rates, 1.0, atol=0.15)

    def test_known_yang_values(self):
        """Spot-check against Yang (1994) Table: alpha=0.5, k=4 mean rates."""
        rates = discrete_gamma_rates(0.5, 4)
        # Published mean-category rates: ~0.0334, 0.2519, 0.8203, 2.8944
        assert rates == pytest.approx([0.0334, 0.2519, 0.8203, 2.8944], abs=2e-3)

    def test_alpha_bounds_enforced(self):
        with pytest.raises(ValueError):
            discrete_gamma_rates(MIN_ALPHA / 2, 4)
        with pytest.raises(ValueError):
            discrete_gamma_rates(MAX_ALPHA * 2, 4)

    def test_bad_category_count(self):
        with pytest.raises(ValueError):
            discrete_gamma_rates(1.0, 0)

    @settings(max_examples=30)
    @given(st.floats(0.05, 50.0), st.integers(2, 12))
    def test_mean_one_property(self, alpha, k):
        rates = discrete_gamma_rates(alpha, k)
        assert rates.shape == (k,)
        assert rates.mean() == pytest.approx(1.0, abs=1e-9)
        assert np.all(np.diff(rates) >= 0)
