"""Tests for the work-steal scheduler core (repro.sched.queue /
repro.sched.stealing / repro.sched.placement): the DES simulator, the
threaded board, and their bit-for-bit agreement."""

import threading

import pytest

from repro.sched.placement import initial_assignment
from repro.sched.queue import SchedulerError, StealBoard
from repro.sched.stealing import run_rank_pool, simulate
from repro.sched.tasks import Task, task_id
from repro.util.rng import RAxMLRandom
from repro.util.timing import VirtualClock


def skewed_pool(n_ranks=4, per_rank=6, seed=4242, chain=False):
    """Independent (or per-origin chained) tasks with skewed costs."""
    tasks, costs = [], {}
    rng = RAxMLRandom(seed)
    for o in range(n_ranks):
        scale = 1.0 + 2.0 * (o == n_ranks - 1)  # last origin is a straggler
        for i in range(per_rank):
            deps = (task_id("bootstrap", o, i - 1),) if chain and i > 0 else ()
            t = Task("bootstrap", o, i, deps)
            tasks.append(t)
            costs[t.id] = scale * rng.lognormal(1.0, 0.6)
    members = tuple(range(n_ranks))
    return tasks, initial_assignment(tasks, members), costs, members


class TestSimulate:
    def test_deterministic(self):
        pool = skewed_pool()
        a = simulate(*pool)
        b = simulate(*pool)
        assert a == b

    def test_worksteal_beats_static_on_skew(self):
        tasks, asn, costs, members = skewed_pool()
        st = simulate(tasks, asn, costs, members, mode="static")
        ws = simulate(tasks, asn, costs, members, mode="work-steal")
        assert ws["steal_grants"] > 0
        assert ws["makespan"] < st["makespan"]
        assert ws["idle_fraction"] < st["idle_fraction"]
        # Both modes complete exactly the same task multiset, exactly once.
        assert sorted(st["completed"]) == sorted(t.id for t in tasks)
        assert sorted(ws["completed"]) == sorted(t.id for t in tasks)

    def test_static_mode_never_steals(self):
        tasks, asn, costs, members = skewed_pool()
        st = simulate(tasks, asn, costs, members, mode="static")
        assert st["steal_attempts"] == 0 and st["steal_grants"] == 0

    def test_chains_serialise_per_origin(self):
        """A fully chained origin cannot be stolen mid-chain: the chain's
        critical path lower-bounds the makespan in both modes."""
        tasks, asn, costs, members = skewed_pool(chain=True)
        chain_time = max(
            sum(costs[t.id] for t in tasks if t.origin == o)
            for o in range(len(members))
        )
        for mode in ("static", "work-steal"):
            res = simulate(tasks, asn, costs, members, mode=mode)
            assert res["makespan"] >= chain_time - 1e-9

    def test_kill_mid_queue_completes_everything_exactly_once(self):
        tasks, asn, costs, members = skewed_pool()
        res = simulate(
            tasks, asn, costs, members, mode="work-steal",
            kill_after={members[-1]: 2},
        )
        assert not res["incomplete"]
        assert sorted(res["completed"]) == sorted(t.id for t in tasks)
        assert len(res["completed"]) == len(set(res["completed"]))
        assert res["stats"][members[-1]]["tasks_lost"] >= 1

    def test_kill_under_static_strands_work(self):
        """Without stealing, a dead rank's queue has no taker — the gap
        work stealing closes for recovery."""
        tasks, asn, costs, members = skewed_pool()
        res = simulate(
            tasks, asn, costs, members, mode="static",
            kill_after={members[0]: 1},
        )
        assert res["incomplete"]

    def test_rejects_bad_input(self):
        tasks, asn, costs, members = skewed_pool()
        with pytest.raises(ValueError):
            simulate(tasks, asn, costs, members, mode="round-robin")
        bad = dict(costs)
        bad[tasks[0].id] = 0.0
        with pytest.raises(ValueError):
            simulate(tasks, asn, bad, members)

    def test_unsatisfiable_deps_raise(self):
        t = Task("fast", 0, 0, ("bootstrap:0:0",))
        with pytest.raises(SchedulerError):
            simulate([t], {0: [t.id]}, {t.id: 1.0}, (0,))


def run_board(tasks, assignment, costs, members, steal_seed=4242,
              steal_seconds=1.05e-5, stagger=None):
    """Drain one pool on the threaded board; returns per-rank outcomes."""
    board = StealBoard(len(members), steal_seed, steal_seconds, timeout=60)
    outcomes = {}
    errors = []

    def body(rank):
        try:
            clock = VirtualClock()
            board.begin_stage("bootstrap", tasks, assignment, members)
            if stagger:
                # Wall-clock jitter: interleavings must not change results.
                threading.Event().wait(stagger * (rank + 1) / 1000.0)
            outcomes[rank] = run_rank_pool(
                board, rank, clock,
                lambda task: clock.advance(costs[task.id]) and None,
            )
        except BaseException as exc:  # pragma: no cover - failure reporting
            errors.append((rank, exc))

    threads = [threading.Thread(target=body, args=(r,)) for r in members]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors
    return outcomes


class TestBoardMatchesSimulator:
    @pytest.mark.parametrize("trial", range(4))
    def test_parity_across_interleavings(self, trial):
        """The threaded board commits the exact event order the sequential
        DES produces: finish times, steal counters and executed sets are
        bit-identical regardless of wall-clock interleaving."""
        tasks, asn, costs, members = skewed_pool(seed=100 + trial)
        ref = simulate(tasks, asn, costs, members, mode="work-steal",
                       steal_seed=4242)
        outcomes = run_board(tasks, asn, costs, members, stagger=trial)
        for r in members:
            assert outcomes[r].finish_time == pytest.approx(
                ref["makespan"], abs=1e-12
            )
        executed = sorted(tid for o in outcomes.values() for tid in o.executed)
        assert executed == sorted(ref["completed"])
        board_stolen = {r: len(outcomes[r].stolen) for r in members}
        des_stolen = {
            r: ref["stats"][r]["executed_stolen"] for r in members
        }
        assert board_stolen == des_stolen
