"""Tests for the simulated MPI runtime (repro.mpi)."""

import pytest

from repro.mpi.comm import CommTiming, SPMDError
from repro.mpi.launcher import run_spmd
from repro.mpi.mp_backend import run_coarse_multiprocessing
from repro.util.timing import VirtualClock


class TestPointToPoint:
    def test_send_recv(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send({"x": 41}, dest=1, tag=3)
                return None
            return comm.recv(source=0, tag=3)

        results = run_spmd(fn, 2)
        assert results[1] == {"x": 41}

    def test_recv_synchronises_clock(self):
        def fn(comm):
            if comm.rank == 0:
                comm.clock.advance(5.0)
                comm.send("late", dest=1)
                return comm.clock.now
            comm.recv(source=0)
            return comm.clock.now

        t0, t1 = run_spmd(fn, 2)
        assert t1 >= 5.0  # receiver cannot finish before the sender sent

    def test_send_to_self_rejected(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send("x", dest=0)
            return None

        with pytest.raises(ValueError):
            run_spmd(fn, 2)

    def test_invalid_ranks_rejected(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send("x", dest=99)
            return None

        with pytest.raises(ValueError):
            run_spmd(fn, 2)

    def test_recv_timeout_is_spmd_error(self):
        def fn(comm):
            if comm.rank == 1:
                return comm.recv(source=0)  # never sent
            return None

        with pytest.raises(SPMDError):
            run_spmd(fn, 2, timeout=0.5)


class TestCollectives:
    def test_barrier_equalises_clocks(self):
        def fn(comm):
            comm.clock.advance(1.0 + comm.rank)
            comm.barrier()
            return comm.clock.now

        times = run_spmd(fn, 4)
        assert len(set(times)) == 1
        assert times[0] >= 4.0  # slowest rank advanced 4.0

    def test_bcast(self):
        def fn(comm):
            value = f"from-{comm.rank}" if comm.rank == 2 else None
            return comm.bcast(value, root=2)

        assert run_spmd(fn, 4) == ["from-2"] * 4

    def test_gather_root_only(self):
        def fn(comm):
            return comm.gather(comm.rank * 10, root=1)

        res = run_spmd(fn, 3)
        assert res[1] == [0, 10, 20]
        assert res[0] is None and res[2] is None

    def test_allgather(self):
        def fn(comm):
            return comm.allgather(comm.rank**2)

        assert run_spmd(fn, 4) == [[0, 1, 4, 9]] * 4

    def test_allreduce_default_sum(self):
        def fn(comm):
            return comm.allreduce(comm.rank + 1)

        assert run_spmd(fn, 4) == [10] * 4

    def test_allreduce_custom_op(self):
        def fn(comm):
            return comm.allreduce(comm.rank, op=max)

        assert run_spmd(fn, 5) == [4] * 5

    def test_sequence_of_collectives(self):
        """Generation tagging must keep repeated collectives separate."""

        def fn(comm):
            a = comm.allgather(comm.rank)
            b = comm.allgather(comm.rank * 2)
            comm.barrier()
            c = comm.bcast("done" if comm.rank == 0 else None)
            return (a, b, c)

        res = run_spmd(fn, 3)
        for a, b, c in res:
            assert a == [0, 1, 2]
            assert b == [0, 2, 4]
            assert c == "done"

    def test_single_rank_collectives(self):
        def fn(comm):
            comm.barrier()
            assert comm.allgather(7) == [7]
            return comm.bcast(42)

        assert run_spmd(fn, 1) == [42]

    def test_collective_costs_advance_clock(self):
        def fn(comm):
            before = comm.clock.now
            comm.barrier()
            return comm.clock.now - before

        costs = run_spmd(fn, 8)
        assert all(c > 0 for c in costs)


class TestCommTrace:
    def test_every_operation_recorded(self):
        def fn(comm):
            comm.barrier()
            comm.allgather(comm.rank)
            comm.bcast("x" if comm.rank == 0 else None)
            if comm.rank == 0:
                comm.send("hello", dest=1)
            elif comm.rank == 1:
                comm.recv(source=0)
            return [e.op for e in comm.trace], comm.comm_seconds()

        results = run_spmd(fn, 2)
        ops0, secs0 = results[0]
        ops1, secs1 = results[1]
        assert ops0 == ["barrier", "allgather", "bcast", "send"]
        assert ops1 == ["barrier", "allgather", "bcast", "recv"]
        assert secs0 > 0 and secs1 >= 0

    def test_trace_includes_barrier_wait(self):
        """A fast rank's barrier time includes waiting for stragglers."""

        def fn(comm):
            if comm.rank == 1:
                comm.clock.advance(10.0)  # straggler
            comm.barrier()
            return comm.comm_seconds()

        fast, straggler = run_spmd(fn, 2)
        assert fast >= 10.0  # waited for the straggler
        assert straggler < 1.0  # arrived last, no wait

    def test_payload_bytes_recorded(self):
        def fn(comm):
            comm.allgather(b"z" * 1000)
            return comm.trace[-1].payload_bytes

        sizes = run_spmd(fn, 2)
        assert all(s >= 1000 for s in sizes)


class TestCommTiming:
    def test_barrier_scales_with_log_p(self):
        t = CommTiming()
        assert t.barrier_seconds(1) == 0.0
        assert t.barrier_seconds(16) == pytest.approx(4 * t.barrier_base)

    def test_message_cost_includes_bytes(self):
        t = CommTiming()
        assert t.message_seconds(10**6) > t.message_seconds(10)

    def test_collective_single_rank_free(self):
        assert CommTiming().collective_seconds(1, 100) == 0.0


class TestLauncher:
    def test_results_in_rank_order(self):
        assert run_spmd(lambda c: c.rank, 5) == [0, 1, 2, 3, 4]

    def test_exception_propagates(self):
        def fn(comm):
            if comm.rank == 1:
                raise RuntimeError("boom")
            comm.barrier()

        with pytest.raises(RuntimeError, match="boom"):
            run_spmd(fn, 3, timeout=5.0)

    def test_custom_clocks_used(self):
        clocks = [VirtualClock(100.0 * r) for r in range(3)]

        def fn(comm):
            comm.barrier()
            return comm.clock.now

        times = run_spmd(fn, 3, clocks=clocks)
        assert min(times) >= 200.0  # barrier pulls everyone to the latest

    def test_bad_args(self):
        with pytest.raises(ValueError):
            run_spmd(lambda c: None, 0)
        with pytest.raises(ValueError):
            run_spmd(lambda c: None, 2, clocks=[VirtualClock()])


def _square(rank: int, size: int) -> int:
    return rank * rank


class TestMultiprocessingBackend:
    def test_results_in_rank_order(self):
        assert run_coarse_multiprocessing(_square, 4) == [0, 1, 4, 9]

    def test_single_rank_inline(self):
        assert run_coarse_multiprocessing(_square, 1) == [0]

    def test_bad_ranks(self):
        with pytest.raises(ValueError):
            run_coarse_multiprocessing(_square, 0)
