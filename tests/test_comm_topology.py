"""Tests for the topology-aware communication substrate.

Three layers are covered here:

* the :class:`~repro.mpi.topology.Topology` model and the two-tier
  :class:`~repro.mpi.topology.HierarchicalCommTiming` cost split,
  including the regression pins that keep the *flat* model's costs
  byte-for-byte what they always were;
* :class:`~repro.mpi.comm.SimComm` running hierarchical collectives:
  identical payload semantics, intra/inter attribution, deterministic
  node-leader re-election when a leader dies mid-collective;
* the per-lane virtual channels (:mod:`repro.mpi.vci`) and their wiring
  through :class:`~repro.hybrid.driver.HybridConfig`.
"""

import math

import pytest

from repro.mpi.comm import CommTiming, RankFailure
from repro.mpi.faults import FaultPlan, KillSpec
from repro.mpi.launcher import run_spmd
from repro.mpi.membership import MembershipView
from repro.mpi.policy import TimeoutPolicy
from repro.mpi.topology import (
    CommPhases,
    HierarchicalCommTiming,
    Topology,
)
from repro.mpi.vci import ChannelSet, channel_rounds
from repro.perfmodel.machines import MACHINES, machine_by_name


class TestTopology:
    def test_consecutive_packing(self):
        topo = Topology(8, ranks_per_node=4)
        assert topo.n_nodes == 2
        assert [topo.node_of(r) for r in range(8)] == [0, 0, 0, 0, 1, 1, 1, 1]
        assert topo.same_node(0, 3)
        assert not topo.same_node(3, 4)

    def test_ragged_last_node(self):
        topo = Topology(10, ranks_per_node=4)
        assert topo.n_nodes == 3
        assert topo.node_members(2) == [8, 9]

    def test_joiner_ranks_map_beyond_size(self):
        # Elastic joiners get ranks above the initial size; the same
        # rank // ranks_per_node rule places them without reshuffling.
        topo = Topology(4, ranks_per_node=2)
        assert topo.node_of(5) == 2
        assert topo.leaders([0, 1, 2, 3, 4, 5]) == {0: 0, 1: 2, 2: 4}

    def test_trivial(self):
        assert Topology(4).is_trivial
        assert not Topology(4, ranks_per_node=2).is_trivial

    def test_leaders_are_min_alive(self):
        topo = Topology(6, ranks_per_node=3)
        assert topo.leaders(range(6)) == {0: 0, 1: 3}
        # Leader 0 dies: node 0's leader is re-derived as the next rank.
        assert topo.leaders([1, 2, 3, 4, 5]) == {0: 1, 1: 3}
        # An entire node dies: it simply has no leader.
        assert topo.leaders([3, 4, 5]) == {1: 3}
        assert topo.leader_of(2, [1, 2, 3]) == 1

    def test_leader_of_empty_node_raises(self):
        topo = Topology(4, ranks_per_node=2)
        with pytest.raises(ValueError):
            topo.leader_of(0, [2, 3])

    def test_validation(self):
        with pytest.raises(ValueError):
            Topology(0)
        with pytest.raises(ValueError):
            Topology(4, ranks_per_node=0)
        with pytest.raises(ValueError):
            Topology(4, ranks_per_node=2).node_of(-1)


class TestFlatCostRegression:
    """Pin the flat model byte-for-byte (the docstring's hand-trace)."""

    def test_message_seconds(self):
        t = CommTiming()
        assert t.message_seconds(1000) == 5e-6 + 1000 * 1e-9
        assert t.message_seconds(0) == 5e-6

    def test_collective_is_log_tree_not_linear(self):
        t = CommTiming()
        m = t.message_seconds(1000)
        assert t.collective_seconds(8, 1000) == 3 * m  # ceil(log2 8) = 3
        assert t.collective_seconds(9, 1000) == 4 * m  # ceil(log2 9) = 4
        assert t.collective_seconds(64, 1000) == 6 * m
        # Linear would be 63 * m at p=64 — an order of magnitude off.
        assert t.collective_seconds(64, 1000) < 63 * m / 5

    def test_barrier_seconds(self):
        t = CommTiming()
        assert t.barrier_seconds(8) == 3 * 1e-5
        assert t.barrier_seconds(2) == 1e-5

    def test_size_one_is_free(self):
        t = CommTiming()
        assert t.barrier_seconds(1) == 0.0
        assert t.collective_seconds(1, 10_000) == 0.0


class TestMachineCommTiers:
    def test_every_machine_has_valid_tiers(self):
        for machine in MACHINES.values():
            assert 0 < machine.intra_node_latency <= machine.inter_node_latency
            assert 0 < machine.intra_node_byte_time <= machine.inter_node_byte_time

    def test_default_inter_constants_reproduce_flat(self):
        # The historical flat constants are the inter-node defaults, so a
        # trivial topology on any default machine *is* CommTiming().
        for machine in MACHINES.values():
            timing = HierarchicalCommTiming.for_machine(machine, Topology(8))
            assert isinstance(timing, CommTiming)
            assert timing == CommTiming()

    def test_invalid_tier_ordering_rejected(self):
        import dataclasses

        dash = machine_by_name("dash")
        with pytest.raises(ValueError):
            dataclasses.replace(dash, intra_node_latency=1e-5)
        with pytest.raises(ValueError):
            dataclasses.replace(dash, intra_node_byte_time=1e-8)
        with pytest.raises(ValueError):
            dataclasses.replace(dash, intra_node_latency=0.0)


class TestHierarchicalCommTiming:
    def setup_method(self):
        self.machine = machine_by_name("dash")
        self.topo = Topology(8, ranks_per_node=4)
        self.timing = HierarchicalCommTiming.for_machine(self.machine, self.topo)

    def test_intra_must_not_exceed_inter(self):
        with pytest.raises(ValueError):
            HierarchicalCommTiming(
                topology=self.topo,
                intra=CommTiming(latency=1e-5),
                inter=CommTiming(latency=5e-6),
            )

    def test_message_seconds_is_hop_aware(self):
        on_node = self.timing.message_seconds(1000, src=0, dst=3)
        cross = self.timing.message_seconds(1000, src=0, dst=4)
        assert on_node == self.timing.intra.message_seconds(1000)
        assert cross == self.timing.inter.message_seconds(1000)
        assert on_node < cross
        # Without endpoints the conservative inter price is used.
        assert self.timing.message_seconds(1000) == cross

    def test_bcast_phases_hand_trace(self):
        # 8 ranks on 2 nodes of 4: intra tree = ceil(log2 4) = 2 rounds,
        # inter leader tree = ceil(log2 2) = 1 round.
        phases = self.timing.collective_phases("bcast", range(8), 1000)
        assert phases.intra == 2 * self.timing.intra.message_seconds(1000)
        assert phases.inter == 1 * self.timing.inter.message_seconds(1000)
        assert phases.total == phases.intra + phases.inter

    def test_allreduce_inter_phase_is_rabenseifner(self):
        n_bytes = 1 << 20
        topo = Topology(64, ranks_per_node=8)
        timing = HierarchicalCommTiming.for_machine(self.machine, topo)
        phases = timing.collective_phases("allreduce", range(64), n_bytes)
        k = 8  # nodes
        want_inter = (
            2 * math.ceil(math.log2(k)) * timing.inter.latency
            + 2.0 * (k - 1) / k * n_bytes * timing.inter.byte_time
        )
        assert phases.inter == pytest.approx(want_inter, rel=0, abs=0)
        assert phases.intra == (
            2 * math.ceil(math.log2(8)) * timing.intra.message_seconds(n_bytes)
        )

    def test_barrier_phases(self):
        phases = self.timing.collective_phases("barrier", range(8), 0)
        assert phases.intra == 2 * 2 * self.timing.intra.barrier_base
        assert phases.inter == 1 * self.timing.inter.barrier_base

    def test_members_not_sizes_drive_the_split(self):
        # The same op over only node 0's ranks has no inter phase at all.
        phases = self.timing.collective_phases("allreduce", range(4), 64)
        assert phases.inter == 0.0
        assert phases.intra > 0.0

    def test_single_member_is_free(self):
        assert self.timing.collective_phases("allreduce", [3], 64) == CommPhases()

    def test_modeled_allreduce_beats_flat_tree_at_scale(self):
        # The acceptance claim: >= 2x at 64 ranks (8 per node), 1 MiB.
        n_bytes = 1 << 20
        flat = CommTiming().collective_seconds(64, n_bytes)
        topo = Topology(64, ranks_per_node=8)
        hier = HierarchicalCommTiming.for_machine(self.machine, topo)
        assert flat / hier.allreduce_seconds(64, n_bytes) >= 2.0


class TestSimCommHierarchical:
    def _timing(self, size, rpn):
        return HierarchicalCommTiming.for_machine(
            machine_by_name("dash"), Topology(size, ranks_per_node=rpn)
        )

    def test_payloads_identical_to_flat(self):
        def body(comm):
            s = comm.allreduce(comm.rank + 1)
            g = comm.allgather(comm.rank * 2)
            b = comm.bcast("root" if comm.rank == 0 else None, root=0)
            return s, g, b

        flat = run_spmd(body, 4)
        hier = run_spmd(body, 4, comm_timing=self._timing(4, 2))
        assert flat == hier  # bit-identical payload semantics

    def test_comm_split_recorded(self):
        timing = self._timing(4, 2)

        def body(comm):
            comm.allreduce(1.0)
            comm.barrier()
            return (comm.comm_seconds(), comm.comm_intra_seconds(),
                    comm.comm_inter_seconds())

        from repro.mpi.comm import _payload_bytes

        payload = _payload_bytes(1.0)
        for total, intra, inter in run_spmd(body, 4, comm_timing=timing):
            want = timing.collective_phases("allreduce", range(4), payload)
            want_b = timing.collective_phases("barrier", range(4), 0)
            assert intra == want.intra + want_b.intra
            assert inter == want.inter + want_b.inter
            # The split covers the transfer cost exactly; any extra
            # comm_seconds is synchronisation wait (totals and splits
            # accumulate separately, hence the fp tolerance).
            assert total >= intra + inter or math.isclose(
                total, intra + inter, rel_tol=1e-12
            )

    def test_flat_world_records_no_split(self):
        def body(comm):
            comm.allreduce(1.0)
            return comm.comm_intra_seconds(), comm.comm_inter_seconds()

        assert run_spmd(body, 4) == [(0.0, 0.0)] * 4

    def test_node_leaders_view(self):
        timing = self._timing(4, 2)

        def body(comm):
            return comm.node_leaders()

        assert run_spmd(body, 4, comm_timing=timing) == [{0: 0, 1: 2}] * 4

    def test_flat_world_has_no_leaders(self):
        def body(comm):
            return comm.node_leaders()

        assert run_spmd(body, 4) == [{}] * 4

    def test_leader_death_reelects_deterministically(self):
        # Rank 0 leads node 0; killing it mid-collective must re-elect
        # rank 1 identically on every survivor, and charge the optional
        # re-election cost exactly once per dead leader.
        timing = self._timing(4, 2)
        plan = FaultPlan(kills=(KillSpec(rank=0, collective=0),))
        policy = TimeoutPolicy(
            collective_seconds=2.0, world_seconds=60.0,
            reelection_charge_seconds=0.25,
        )

        def body(comm):
            t0 = comm.clock.now
            try:
                comm.barrier()
            except RankFailure as rf:
                leaders = comm.node_leaders()
                # Survivors still collectively agree after re-election.
                alive = comm.allgather(comm.rank)
                return rf.dead, leaders, alive, comm.clock.now - t0
            return "unreachable"

        out = run_spmd(body, 4, fault_plan=plan, timeout_policy=policy,
                       comm_timing=timing)
        assert out[0] is None
        for dead, leaders, alive, elapsed in (out[1], out[2], out[3]):
            assert dead == (0,)
            assert leaders == {0: 1, 1: 2}
            assert alive == [None, 1, 2, 3]
            assert elapsed >= 0.25  # the re-election charge was taken

    def test_non_leader_death_charges_no_reelection(self):
        timing = self._timing(4, 2)
        plan = FaultPlan(kills=(KillSpec(rank=1, collective=0),))
        policy = TimeoutPolicy(
            collective_seconds=2.0, world_seconds=60.0,
            reelection_charge_seconds=100.0,
        )

        def body(comm):
            try:
                comm.barrier()
            except RankFailure:
                return comm.node_leaders(), comm.clock.now
            return "unreachable"

        out = run_spmd(body, 4, fault_plan=plan, timeout_policy=policy,
                       comm_timing=timing)
        for leaders, now in (out[0], out[2], out[3]):
            assert leaders == {0: 0, 1: 2}  # unchanged
            assert now < 100.0  # the charge never fired


class TestVirtualChannels:
    def test_channel_rounds(self):
        assert channel_rounds(8, 1) == 8
        assert channel_rounds(8, 4) == 2
        assert channel_rounds(8, 8) == 1
        assert channel_rounds(8, 16) == 1
        assert channel_rounds(0, 4) == 0
        with pytest.raises(ValueError):
            channel_rounds(8, 0)

    def test_makespan_scales_with_channels(self):
        per_post = 1e-6
        one = ChannelSet(1, post_seconds=lambda b: per_post)
        four = ChannelSet(4, post_seconds=lambda b: per_post)
        assert one.lane_post_makespan(8, 64) == 8 * per_post
        assert four.lane_post_makespan(8, 64) == 2 * per_post

    def test_round_robin_accounting(self):
        cs = ChannelSet(3, post_seconds=lambda b: 1e-6)
        cs.lane_post_makespan(4, 8, repeats=2)
        doc = cs.as_doc()
        # Posts 0..3 land on channels 0,1,2,0 — channel 0 carries two
        # posts per repeat.
        assert [lane["posts"] for lane in doc["lanes"]] == [4, 2, 2]
        assert doc["steal"]["posts"] == 0

    def test_steal_channel_is_dedicated(self):
        cs = ChannelSet(2, post_seconds=lambda b: 1e-6)
        cs.note_steal(256, 2.1e-5)
        by = cs.seconds_by_channel()
        assert by["steal"] == 2.1e-5
        assert by["lane0"] == by["lane1"] == 0.0

    def test_zero_posts_free(self):
        cs = ChannelSet(2, post_seconds=lambda b: 1e-6)
        assert cs.lane_post_makespan(0, 8) == 0.0
        assert cs.lane_post_makespan(4, 8, repeats=0) == 0.0


class TestHybridConfigTopology:
    def _config(self, **kw):
        from repro.hybrid.driver import HybridConfig

        return HybridConfig(n_processes=4, n_threads=2, **kw)

    def test_topology_and_timing_selection(self):
        flat = self._config()
        assert flat.topology() is None
        assert flat.comm_timing() == CommTiming()
        hier = self._config(ranks_per_node=2)
        topo = hier.topology()
        assert topo == Topology(4, ranks_per_node=2)
        assert hasattr(hier.comm_timing(), "collective_phases")

    def test_node_overpacking_rejected(self):
        # dash has 8 cores/node: 4 ranks x 2 threads fits, 8 x 2 does not.
        self._config(ranks_per_node=4)
        with pytest.raises(ValueError):
            self._config(ranks_per_node=8)
        with pytest.raises(ValueError):
            self._config(comm_channels=0)

    def test_fingerprint_backward_compatible(self):
        from repro.hybrid.checkpoint import fingerprint_doc

        legacy = fingerprint_doc(self._config())
        assert "ranks_per_node" not in legacy
        assert "comm_channels" not in legacy
        rich = fingerprint_doc(self._config(ranks_per_node=2, comm_channels=2))
        assert rich["ranks_per_node"] == 2
        assert rich["comm_channels"] == 2
        assert {k: v for k, v in rich.items()
                if k not in ("ranks_per_node", "comm_channels")} == legacy


class TestMembershipLeaders:
    def test_view_node_leaders(self):
        view = MembershipView(epoch=1, live=(1, 2, 3))
        topo = Topology(4, ranks_per_node=2)
        assert view.node_leaders(topo) == {0: 1, 1: 2}
        assert view.node_leaders(None) == {}
        assert view.node_leaders(Topology(4)) == {}


class TestPerfmodelTopology:
    def test_lane_post_seconds(self):
        from repro.perfmodel.finegrain import lane_post_seconds

        machine = machine_by_name("dash")
        per_post = machine.intra_node_latency + 8 * machine.intra_node_byte_time
        assert lane_post_seconds(machine, 8, 1) == 8 * per_post
        assert lane_post_seconds(machine, 8, 4) == 2 * per_post
        assert lane_post_seconds(machine, 1, 4) == 0.0
        with pytest.raises(ValueError):
            lane_post_seconds(machine, 8, 0)

    def test_analysis_time_topology_changes_only_comm(self):
        from repro.perfmodel.coarse import analysis_time
        from repro.perfmodel.profiles import PROFILES

        profile = next(iter(PROFILES.values()))
        machine = machine_by_name("dash")
        flat = analysis_time(profile, machine, 100, 16, 2)
        hier = analysis_time(profile, machine, 100, 16, 2,
                             topology=Topology(16, ranks_per_node=4))
        assert hier.bootstrap == flat.bootstrap
        assert hier.thorough == flat.thorough
        assert hier.comm != flat.comm

    def test_compare_layouts(self):
        from repro.perfmodel.advisor import compare_layouts
        from repro.perfmodel.profiles import PROFILES

        profile = next(iter(PROFILES.values()))
        machine = machine_by_name("dash")
        verdict = compare_layouts(profile, machine, 100,
                                  [(8, 4), (4, 8), (16, 2)])
        assert len(verdict["layouts"]) == 3
        by_layout = {(e["n_processes"], e["n_threads"]): e
                     for e in verdict["layouts"]}
        # dash has 8 cores/node: T=8 implies 1 rank/node (more nodes),
        # T=2 packs 4 ranks/node onto fewer nodes.
        assert by_layout[(4, 8)]["ranks_per_node"] == 1
        assert by_layout[(16, 2)]["ranks_per_node"] == 4
        assert by_layout[(16, 2)]["n_nodes"] == 4
        assert verdict["best"] in verdict["layouts"]
        for entry in verdict["layouts"]:
            assert entry["schedule_modes"] is not None
            assert entry["predicted_seconds"] > 0
