"""Tests for sweeps and metrics (repro.perfmodel.sweep, .metrics, .history)."""

import pytest

from repro.perfmodel.history import RAXML_HISTORY
from repro.perfmodel.machines import MACHINES
from repro.perfmodel.metrics import parallel_efficiency, speed_per_core, speedup
from repro.perfmodel.profiles import profile_for
from repro.perfmodel.sweep import best_per_core_count, sweep_cores, thread_curves

DASH = MACHINES["dash"]


class TestMetrics:
    def test_speedup(self):
        assert speedup(100.0, 25.0) == 4.0
        with pytest.raises(ValueError):
            speedup(0.0, 1.0)

    def test_parallel_efficiency(self):
        assert parallel_efficiency(100.0, 25.0, 8) == 0.5

    def test_node_referenced_efficiency(self):
        """The Discussion's node-reference: 40 cores of an 8-core node
        machine count as 5 allocation units."""
        assert parallel_efficiency(100.0, 25.0, 40, reference_cores=8) == pytest.approx(
            4.0 / 5.0
        )

    def test_node_reference_divisibility(self):
        with pytest.raises(ValueError):
            parallel_efficiency(100.0, 25.0, 12, reference_cores=8)

    def test_speed_per_core(self):
        assert speed_per_core(100.0, 25.0, 4) == 1.0


class TestSweep:
    @pytest.fixture(scope="class")
    def points(self):
        return sweep_cores(profile_for(1846), DASH, 100)

    def test_feasibility(self, points):
        for p in points:
            assert p.cores == p.n_processes * p.n_threads
            assert p.n_threads <= DASH.cores_per_node

    def test_serial_point_present(self, points):
        serial = [p for p in points if p.cores == 1]
        assert len(serial) == 1
        assert serial[0].speedup == pytest.approx(1.0)

    def test_thread_curves_grouped_sorted(self, points):
        curves = thread_curves(points)
        assert set(curves) <= {1, 2, 4, 8}
        for series in curves.values():
            cores = [q.cores for q in series]
            assert cores == sorted(cores)

    def test_best_per_core_count_is_minimum(self, points):
        best = best_per_core_count(points)
        for c, b in best.items():
            assert all(b.seconds <= p.seconds for p in points if p.cores == c)

    def test_fig2_crossover_threads(self, points):
        """Fig 2: 4 threads fastest at 8 and 16 cores; 8 threads at 80."""
        best = best_per_core_count(points)
        assert best[8].n_threads == 4
        assert best[16].n_threads == 4
        assert best[80].n_threads == 8

    def test_fig2_efficiency_bump_80_over_64(self, points):
        """Fig 2: 80 cores (10 procs) more efficient than 64 (8 procs)."""
        best = best_per_core_count(points)
        assert best[80].efficiency > best[64].efficiency

    def test_speedup_monotone_in_cores_for_best(self, points):
        best = best_per_core_count(points)
        cores = sorted(best)
        speeds = [best[c].speedup for c in cores]
        assert speeds == sorted(speeds)


class TestHistory:
    def test_table1_rows(self):
        assert len(RAXML_HISTORY) == 9

    def test_hybrid_only_in_cell_and_724(self):
        hybrid = [r.version for r in RAXML_HISTORY if r.hybrid]
        assert hybrid == ["Cell", "7.2.4"]

    def test_724_is_mpi_pthreads_multigrained(self):
        row = [r for r in RAXML_HISTORY if r.version == "7.2.4"][0]
        assert row.coarse_grained == "MPI"
        assert row.fine_grained == "Pthreads"
        assert row.multi_grained and row.hybrid
        assert row.year == 2009

    def test_chronological(self):
        years = [r.year for r in RAXML_HISTORY]
        assert years == sorted(years)
