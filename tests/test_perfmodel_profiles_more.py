"""Additional profile and calibration-machinery tests."""

import numpy as np
import pytest

from repro.datasets.registry import BENCHMARK_DATASETS, DatasetSpec
from repro.perfmodel.calibrate import (
    Anchor,
    _fractions_from_logits,
    anchors_for,
)
from repro.perfmodel.profiles import (
    DEFAULT_JITTER_CV,
    PROFILES,
    default_profile,
    profile_for,
)


class TestProfileCosts:
    def test_per_search_cost_ordering(self):
        """Per-search effort must grade bootstrap < fast < slow < thorough
        (the comprehensive analysis's design) for every benchmark set."""
        for prof in PROFILES.values():
            assert prof.bootstrap_search_seconds < prof.fast_search_seconds
            assert prof.fast_search_seconds < prof.slow_search_seconds
            assert prof.slow_search_seconds < prof.thorough_search_seconds

    def test_serial_seconds_match_table5(self):
        expected = {348: 1980, 1130: 2325, 1846: 9630, 7429: 72866, 19436: 22970}
        for patterns, seconds in expected.items():
            assert profile_for(patterns).serial_seconds_100 == seconds

    def test_jitter_cv_default(self):
        for prof in PROFILES.values():
            assert prof.jitter_cv == DEFAULT_JITTER_CV


class TestDefaultProfile:
    def _spec(self, taxa, patterns):
        return DatasetSpec("x", taxa=taxa, characters=patterns * 2,
                           patterns=patterns, recommended_bootstraps=100)

    def test_serial_estimate_scales_with_size(self):
        small = default_profile(self._spec(50, 1000))
        big = default_profile(self._spec(500, 10000))
        assert big.serial_seconds_100 > 10 * small.serial_seconds_100

    def test_explicit_serial_respected(self):
        prof = default_profile(self._spec(50, 1000), serial_seconds_100=1234.0)
        assert prof.serial_seconds_100 == 1234.0

    def test_thorough_fraction_grows_with_patterns_per_taxon(self):
        low = default_profile(self._spec(500, 1000))
        high = default_profile(self._spec(50, 50000))
        assert high.frac_thorough > low.frac_thorough

    def test_fractions_bounded(self):
        for taxa, patterns in ((10, 100), (100, 10000), (20, 200000)):
            prof = default_profile(self._spec(taxa, patterns))
            assert 0 < prof.frac_thorough <= 0.35
            assert prof.frac_bootstrap > prof.frac_fast


class TestCalibrationMachinery:
    def test_logits_to_fractions_simplex(self):
        for logits in (np.zeros(3), np.array([2.0, -1.0, 0.5])):
            f = _fractions_from_logits(logits)
            assert len(f) == 4
            assert sum(f) == pytest.approx(1.0)
            assert all(x > 0 for x in f)

    def test_anchor_consistency(self):
        a = Anchor(1846, "dash", 100, 80, 8, 271)
        assert a.processes == 10

    def test_anchors_cover_all_benchmarks_on_dash(self):
        for d in BENCHMARK_DATASETS:
            assert len(anchors_for(d.patterns, "dash")) >= 5

    def test_fit_profile_smoke(self):
        """The fitter runs and produces a valid profile (frozen constants
        were generated exactly this way)."""
        from repro.perfmodel.calibrate import fit_profile

        prof = fit_profile(1846)
        total = (prof.frac_bootstrap + prof.frac_fast + prof.frac_slow
                 + prof.frac_thorough)
        assert total == pytest.approx(1.0)
        # And it should land close to the committed constants.
        frozen = profile_for(1846)
        assert prof.frac_thorough == pytest.approx(frozen.frac_thorough, abs=0.02)
