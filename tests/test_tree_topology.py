"""Tests for tree topology and rearrangement (repro.tree.topology)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tree.newick import parse_newick
from repro.tree.random_trees import random_topology
from repro.tree.topology import Node, Tree
from repro.util.rng import RAxMLRandom


def leaf_names(tree):
    return sorted(l.name for l in tree.leaves())


@pytest.fixture()
def six_tree():
    return parse_newick("((A:0.1,B:0.2):0.1,(C:0.1,D:0.1):0.2,(E:0.1,F:0.1):0.3);")


class TestConstruction:
    def test_star(self):
        t = Tree.star(("a", "b", "c"))
        t.validate()
        assert t.n_leaves == 3
        assert len(t.root.children) == 3

    def test_star_needs_three_taxa(self):
        with pytest.raises(ValueError):
            Tree.star(("a", "b"))

    def test_copy_is_deep(self, six_tree):
        c = six_tree.copy()
        c.validate()
        assert leaf_names(c) == leaf_names(six_tree)
        # Mutating the copy leaves the original untouched.
        next(iter(c.postorder())).length = 9.9
        assert all(n.length != 9.9 for n in six_tree.postorder())

    def test_copy_preserves_postorder_structure(self, six_tree):
        orig = [(n.name, round(n.length, 6)) for n in six_tree.postorder()]
        copy = [(n.name, round(n.length, 6)) for n in six_tree.copy().postorder()]
        assert orig == copy


class TestTraversal:
    def test_postorder_children_first(self, six_tree):
        seen = set()
        for node in six_tree.postorder():
            for ch in node.children:
                assert id(ch) in seen
            seen.add(id(node))

    def test_preorder_parents_first(self, six_tree):
        seen = set()
        for node in six_tree.preorder():
            if node.parent is not None:
                assert id(node.parent) in seen
            seen.add(id(node))

    def test_node_counts(self, six_tree):
        nodes = list(six_tree.postorder())
        # Unrooted binary: 2n-2 nodes for n leaves.
        assert len(nodes) == 2 * 6 - 2
        assert six_tree.n_leaves == 6
        assert len(six_tree.edges()) == 2 * 6 - 3
        assert len(six_tree.internal_edges()) == 6 - 3

    def test_find_leaf(self, six_tree):
        assert six_tree.find_leaf("C").name == "C"
        with pytest.raises(KeyError):
            six_tree.find_leaf("nope")

    def test_subtree_leaves(self, six_tree):
        ab = six_tree.root.children[0]
        assert sorted(l.name for l in six_tree.subtree_leaves(ab)) == ["A", "B"]


class TestValidate:
    def test_valid_tree_passes(self, six_tree):
        six_tree.validate()

    def test_detects_nonpositive_length(self, six_tree):
        six_tree.find_leaf("A").length = 0.0
        with pytest.raises(ValueError, match="branch length"):
            six_tree.validate()

    def test_detects_bad_root_degree(self, six_tree):
        six_tree.root.children.pop()
        with pytest.raises(ValueError, match="root"):
            six_tree.validate()

    def test_detects_duplicate_leaf_index(self, six_tree):
        six_tree.find_leaf("A").leaf_index = six_tree.find_leaf("B").leaf_index
        with pytest.raises(ValueError):
            six_tree.validate()


class TestPruneRegraft:
    def test_prune_leaf_restores_invariants(self, six_tree):
        leaf = six_tree.find_leaf("A")
        pruned, length = six_tree.prune(leaf)
        six_tree.validate()
        assert pruned is leaf
        assert length > 0
        assert six_tree.n_leaves == 5
        assert "A" not in leaf_names(six_tree)

    def test_prune_internal_subtree(self, six_tree):
        cd = [
            e for e in six_tree.internal_edges()
            if sorted(l.name for l in six_tree.subtree_leaves(e)) == ["C", "D"]
        ][0]
        six_tree.prune(cd)
        six_tree.validate()
        assert leaf_names(six_tree) == ["A", "B", "E", "F"]

    def test_prune_root_rejected(self, six_tree):
        with pytest.raises(ValueError):
            six_tree.prune(six_tree.root)

    def test_prune_too_much_rejected(self):
        t = parse_newick("((A:0.1,B:0.1):0.1,C:0.1,D:0.1);")
        ab = t.root.children[0]
        with pytest.raises(ValueError, match="fewer than 3"):
            t.prune(ab)

    def test_prune_root_child_promotes_root(self, six_tree):
        # Pruning a child of the root forces root re-forming.
        victim = six_tree.root.children[0]
        six_tree.prune(victim)
        six_tree.validate()
        assert six_tree.n_leaves == 4

    def test_regraft_roundtrip_preserves_leafset(self, six_tree):
        names_before = leaf_names(six_tree)
        leaf = six_tree.find_leaf("A")
        pruned, length = six_tree.prune(leaf)
        target = six_tree.edges()[0]
        six_tree.regraft(pruned, leaf_or_length_check := target, length=length)
        six_tree.validate()
        assert leaf_names(six_tree) == names_before

    def test_regraft_attached_node_rejected(self, six_tree):
        leaf = six_tree.find_leaf("A")
        with pytest.raises(ValueError, match="detached"):
            six_tree.regraft(leaf, six_tree.edges()[0])

    def test_spr_move(self, six_tree):
        leaf = six_tree.find_leaf("A")
        targets = [
            e for e in six_tree.edges()
            if all(l.name != "A" for l in six_tree.subtree_leaves(e))
        ]
        six_tree.spr(leaf, targets[-1])
        six_tree.validate()
        assert six_tree.n_leaves == 6

    def test_spr_into_own_subtree_rejected(self, six_tree):
        ab = six_tree.root.children[0]
        inside = ab.children[0]
        with pytest.raises(ValueError, match="inside"):
            six_tree.spr(ab, inside)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 10**6), st.integers(6, 12))
    def test_random_spr_sequence_keeps_invariants(self, seed, n):
        rng = RAxMLRandom(seed)
        taxa = tuple(f"t{i}" for i in range(n))
        tree = random_topology(taxa, rng)
        for _ in range(5):
            nodes = [x for x in tree.postorder() if x.parent is not None]
            node = nodes[rng.next_int(len(nodes))]
            if tree.n_leaves - len(tree.subtree_leaves(node)) < 3:
                continue
            in_sub = {id(x) for x in tree._nodes_under(node)}
            targets = [e for e in tree.edges() if id(e) not in in_sub]
            # The pruned node's own edge and parent edge are degenerate targets.
            targets = [e for e in targets if e is not node and e is not node.parent]
            if not targets:
                continue
            tree.spr(node, targets[rng.next_int(len(targets))])
            tree.validate()
            assert sorted(l.name for l in tree.leaves()) == sorted(taxa)


class TestNNI:
    def test_nni_changes_topology(self, six_tree):
        from repro.tree.bipartitions import tree_bipartitions

        before = tree_bipartitions(six_tree)
        edge = six_tree.internal_edges()[0]
        six_tree.nni(edge, 0)
        six_tree.validate()
        after = tree_bipartitions(six_tree)
        assert before != after

    def test_nni_variants_differ(self, six_tree):
        from repro.tree.bipartitions import tree_bipartitions

        t0 = six_tree.copy()
        t1 = six_tree.copy()
        t0.nni(t0.internal_edges()[0], 0)
        t1.nni(t1.internal_edges()[0], 1)
        assert tree_bipartitions(t0) != tree_bipartitions(t1)

    def test_nni_on_leaf_rejected(self, six_tree):
        with pytest.raises(ValueError):
            six_tree.nni(six_tree.find_leaf("A"), 0)

    def test_nni_bad_variant_rejected(self, six_tree):
        with pytest.raises(ValueError):
            six_tree.nni(six_tree.internal_edges()[0], 2)


class TestMisc:
    def test_total_branch_length(self, six_tree):
        assert six_tree.total_branch_length() == pytest.approx(1.3)

    def test_map_branch_lengths(self, six_tree):
        before = six_tree.total_branch_length()
        six_tree.map_branch_lengths(lambda t: t * 2)
        assert six_tree.total_branch_length() == pytest.approx(2 * before)

    def test_map_branch_lengths_clamps(self, six_tree):
        six_tree.map_branch_lengths(lambda t: -1.0)
        six_tree.validate()  # clamped to MIN_BRANCH_LENGTH

    def test_insert_leaf_on_edge(self, six_tree):
        leaf = Node(name="G", leaf_index=None)
        # Use a taxa tuple including G so validation passes.
        six_tree.taxa = six_tree.taxa + ("G",)
        leaf.leaf_index = 6
        six_tree.insert_leaf_on_edge(leaf, six_tree.find_leaf("A"))
        six_tree.validate()
        assert six_tree.n_leaves == 7

    def test_insert_on_root_rejected(self, six_tree):
        with pytest.raises(ValueError):
            six_tree.insert_leaf_on_edge(Node(name="X"), six_tree.root)
