"""Failure-injection tests: the runtime must fail loudly, not wrongly.

Covers SPMD contract violations, degenerate inputs, and boundary
conditions across the parallel substrates.
"""

import numpy as np
import pytest

from repro.likelihood.engine import LikelihoodEngine, RateModel
from repro.likelihood.gtr import GTRModel
from repro.mpi.comm import SPMDError
from repro.mpi.launcher import run_spmd
from repro.threads.pool import VirtualThreadPool
from repro.threads.threaded_engine import ThreadedLikelihoodEngine


class TestSPMDViolations:
    def test_mismatched_collectives_detected(self):
        """Rank 0 calls barrier while rank 1 calls allgather: a classic
        SPMD bug that must raise, not deadlock or corrupt."""

        def fn(comm):
            if comm.rank == 0:
                comm.barrier()
            else:
                comm.allgather(1)

        with pytest.raises(SPMDError, match="mismatch|broken"):
            run_spmd(fn, 2, timeout=5.0)

    def test_missing_collective_detected(self):
        """One rank skips a collective entirely -> broken barrier."""

        def fn(comm):
            if comm.rank == 0:
                comm.barrier()
                comm.barrier()
            else:
                comm.barrier()

        with pytest.raises(SPMDError):
            run_spmd(fn, 2, timeout=2.0)

    def test_one_rank_crashes_others_released(self):
        """A crash on one rank must not hang peers blocked in collectives."""

        def fn(comm):
            if comm.rank == 0:
                raise ValueError("injected failure")
            comm.barrier()

        with pytest.raises(ValueError, match="injected failure"):
            run_spmd(fn, 3, timeout=10.0)

    def test_extra_collective_call_detected(self):
        def fn(comm):
            comm.barrier()
            if comm.rank == 0:
                comm.allgather(1)  # peers already finished

        with pytest.raises(SPMDError):
            run_spmd(fn, 2, timeout=2.0)


class TestDegenerateEngineInputs:
    @pytest.fixture()
    def engine(self, handmade_pal, gtr_model):
        return LikelihoodEngine(handmade_pal, gtr_model, RateModel.gamma(1.0, 2))

    def test_all_zero_weights(self, handmade_pal, gtr_model, five_taxon_tree, tiny_tree):
        from repro.tree.random_trees import yule_tree
        from repro.util.rng import RAxMLRandom

        tree = yule_tree(handmade_pal.taxa, RAxMLRandom(3))
        engine = LikelihoodEngine(
            handmade_pal, gtr_model, weights=np.zeros(handmade_pal.n_patterns)
        )
        assert engine.loglikelihood(tree) == 0.0

    def test_single_pattern_alignment(self, gtr_model):
        from repro.seq.alignment import Alignment
        from repro.seq.patterns import compress_alignment
        from repro.tree.newick import parse_newick

        pal = compress_alignment(
            Alignment.from_sequences([("a", "A"), ("b", "A"), ("c", "A")])
        )
        tree = parse_newick("(a:0.1,b:0.1,c:0.1);", taxa=pal.taxa)
        engine = LikelihoodEngine(pal, gtr_model)
        assert np.isfinite(engine.loglikelihood(tree))

    def test_threaded_engine_more_threads_than_patterns(self, handmade_pal, gtr_model):
        from repro.tree.random_trees import yule_tree
        from repro.util.rng import RAxMLRandom

        tree = yule_tree(handmade_pal.taxa, RAxMLRandom(3))
        serial = LikelihoodEngine(handmade_pal, gtr_model)
        threaded = ThreadedLikelihoodEngine(
            handmade_pal, gtr_model, VirtualThreadPool(64)
        )
        assert threaded.loglikelihood(tree) == pytest.approx(
            serial.loglikelihood(tree), abs=1e-9
        )

    def test_extreme_branch_lengths_finite(self, handmade_pal, gtr_model):
        from repro.tree.random_trees import yule_tree
        from repro.util.rng import RAxMLRandom

        tree = yule_tree(handmade_pal.taxa, RAxMLRandom(3))
        engine = LikelihoodEngine(handmade_pal, gtr_model)
        tree.map_branch_lengths(lambda t: 30.0)  # MAX_BRANCH_LENGTH
        assert np.isfinite(engine.loglikelihood(tree))
        tree.map_branch_lengths(lambda t: 1e-6)  # MIN_BRANCH_LENGTH
        assert np.isfinite(engine.loglikelihood(tree))


class TestNewtonBoundaries:
    def test_optimum_at_lower_bound(self, handmade_pal, gtr_model):
        """Identical sequences push every branch to the minimum length."""
        from repro.likelihood.brlen import optimize_branch_lengths
        from repro.seq.alignment import Alignment
        from repro.seq.patterns import compress_alignment
        from repro.tree.newick import parse_newick
        from repro.tree.topology import MIN_BRANCH_LENGTH

        pal = compress_alignment(
            Alignment.from_sequences(
                [("a", "ACGTACGT"), ("b", "ACGTACGT"), ("c", "ACGTACGT")]
            )
        )
        tree = parse_newick("(a:0.5,b:0.5,c:0.5);", taxa=pal.taxa)
        engine = LikelihoodEngine(pal, gtr_model)
        optimize_branch_lengths(engine, tree, passes=4)
        for e in tree.edges():
            assert e.length <= MIN_BRANCH_LENGTH * 100

    def test_saturated_data_hits_upper_region(self, gtr_model):
        """Maximally conflicting tips drive the centre branch long."""
        from repro.likelihood.brlen import optimize_edge
        from repro.seq.alignment import Alignment
        from repro.seq.patterns import compress_alignment
        from repro.tree.newick import parse_newick

        pal = compress_alignment(
            Alignment.from_sequences(
                [("a", "ACGT" * 4), ("b", "GTAC" * 4), ("c", "CAGT" * 4),
                 ("d", "TGCA" * 4)]
            )
        )
        tree = parse_newick("((a:0.1,b:0.1):0.1,c:0.1,d:0.1);", taxa=pal.taxa)
        engine = LikelihoodEngine(pal, gtr_model)
        internal = tree.internal_edges()[0]
        new_len = optimize_edge(engine, tree, internal)
        assert new_len > 0.1  # pulled away from the short start


class TestPoolBoundaries:
    def test_zero_patterns_region(self):
        pool = VirtualThreadPool(4)
        results = pool.run_region(lambda sl: 1, 0)
        assert results == [None] * 4

    def test_charge_zero_regions(self):
        pool = VirtualThreadPool(2)
        assert pool.charge_regions(0, 100, 1) == 0.0
