"""Tests for random tree generation (repro.tree.random_trees)."""

import pytest

from repro.tree.bipartitions import tree_bipartitions
from repro.tree.random_trees import random_topology, yule_tree
from repro.util.rng import RAxMLRandom


class TestRandomTopology:
    def test_valid_and_complete(self):
        taxa = tuple(f"t{i}" for i in range(9))
        t = random_topology(taxa, RAxMLRandom(1))
        t.validate()
        assert sorted(l.name for l in t.leaves()) == sorted(taxa)
        assert t.taxa == taxa

    def test_leaf_indices_global(self):
        taxa = ("x", "y", "z", "w")
        t = random_topology(taxa, RAxMLRandom(2))
        for leaf in t.leaves():
            assert taxa[leaf.leaf_index] == leaf.name

    def test_deterministic(self):
        taxa = tuple(f"t{i}" for i in range(7))
        t1 = random_topology(taxa, RAxMLRandom(5))
        t2 = random_topology(taxa, RAxMLRandom(5))
        assert tree_bipartitions(t1) == tree_bipartitions(t2)

    def test_seeds_give_different_topologies(self):
        taxa = tuple(f"t{i}" for i in range(10))
        t1 = random_topology(taxa, RAxMLRandom(5))
        t2 = random_topology(taxa, RAxMLRandom(6))
        assert tree_bipartitions(t1) != tree_bipartitions(t2)

    def test_uniform_branch_lengths(self):
        taxa = tuple(f"t{i}" for i in range(5))
        t = random_topology(taxa, RAxMLRandom(1), branch_length=0.42)
        for e in t.edges():
            assert 0 < e.length <= 0.84  # insertion splits edges

    def test_too_few_taxa_rejected(self):
        with pytest.raises(ValueError):
            random_topology(("a", "b"), RAxMLRandom(1))


class TestYuleTree:
    def test_valid_and_complete(self):
        taxa = tuple(f"t{i}" for i in range(12))
        t = yule_tree(taxa, RAxMLRandom(3))
        t.validate()
        assert sorted(l.name for l in t.leaves()) == sorted(taxa)

    def test_three_taxa(self):
        t = yule_tree(("a", "b", "c"), RAxMLRandom(3))
        t.validate()
        assert t.n_leaves == 3

    def test_deterministic(self):
        taxa = tuple(f"t{i}" for i in range(8))
        t1 = yule_tree(taxa, RAxMLRandom(11))
        t2 = yule_tree(taxa, RAxMLRandom(11))
        assert tree_bipartitions(t1) == tree_bipartitions(t2)
        assert t1.total_branch_length() == pytest.approx(t2.total_branch_length())

    def test_scale_scales_lengths(self):
        taxa = tuple(f"t{i}" for i in range(8))
        t1 = yule_tree(taxa, RAxMLRandom(11), scale=0.1)
        t2 = yule_tree(taxa, RAxMLRandom(11), scale=0.2)
        assert t2.total_branch_length() == pytest.approx(
            2 * t1.total_branch_length(), rel=1e-6
        )

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            yule_tree(("a", "b"), RAxMLRandom(1))
        with pytest.raises(ValueError):
            yule_tree(("a", "b", "c"), RAxMLRandom(1), birth_rate=0)
        with pytest.raises(ValueError):
            yule_tree(("a", "b", "c"), RAxMLRandom(1), scale=-1)
