"""Tests for DNA encoding (repro.seq.encoding)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.seq.encoding import (
    GAP_CODE,
    UNDETERMINED,
    decode_sequence,
    encode_sequence,
    state_likelihood_rows,
)


class TestEncode:
    def test_plain_bases(self):
        assert encode_sequence("ACGT").tolist() == [1, 2, 4, 8]

    def test_lowercase(self):
        assert encode_sequence("acgt").tolist() == [1, 2, 4, 8]

    def test_rna_u_maps_to_t(self):
        assert encode_sequence("U").tolist() == encode_sequence("T").tolist()

    def test_gap_and_n_fully_ambiguous(self):
        codes = encode_sequence("-N?.")
        assert all(c == UNDETERMINED for c in codes)
        assert GAP_CODE == 0b1111

    def test_iupac_two_state_codes(self):
        assert encode_sequence("R")[0] == (1 | 4)  # A|G
        assert encode_sequence("Y")[0] == (2 | 8)  # C|T
        assert encode_sequence("S")[0] == (2 | 4)
        assert encode_sequence("W")[0] == (1 | 8)
        assert encode_sequence("K")[0] == (4 | 8)
        assert encode_sequence("M")[0] == (1 | 2)

    def test_iupac_three_state_codes(self):
        assert encode_sequence("B")[0] == (2 | 4 | 8)
        assert encode_sequence("D")[0] == (1 | 4 | 8)
        assert encode_sequence("H")[0] == (1 | 2 | 8)
        assert encode_sequence("V")[0] == (1 | 2 | 4)

    def test_invalid_character_rejected(self):
        with pytest.raises(ValueError, match="invalid"):
            encode_sequence("ACGZ")

    def test_empty_sequence(self):
        assert encode_sequence("").shape == (0,)


class TestDecode:
    def test_roundtrip_plain(self):
        assert decode_sequence(encode_sequence("ACGTACGT")) == "ACGTACGT"

    def test_roundtrip_ambiguity(self):
        # Note: N/?/. all decode to '-' (the canonical undetermined char).
        assert decode_sequence(encode_sequence("RYSWKM-")) == "RYSWKM-"

    def test_invalid_mask_rejected(self):
        with pytest.raises(ValueError):
            decode_sequence(np.array([0], dtype=np.uint8))

    @given(st.text(alphabet="ACGTRYSWKMBDHV-", min_size=0, max_size=50))
    def test_roundtrip_property(self, seq):
        assert decode_sequence(encode_sequence(seq)) == seq


class TestTipRows:
    def test_shape(self):
        assert state_likelihood_rows().shape == (16, 4)

    def test_pure_states_are_unit_vectors(self):
        rows = state_likelihood_rows()
        assert rows[1].tolist() == [1, 0, 0, 0]  # A
        assert rows[2].tolist() == [0, 1, 0, 0]  # C
        assert rows[4].tolist() == [0, 0, 1, 0]  # G
        assert rows[8].tolist() == [0, 0, 0, 1]  # T

    def test_undetermined_is_all_ones(self):
        assert state_likelihood_rows()[15].tolist() == [1, 1, 1, 1]

    def test_row_sums_equal_popcount(self):
        rows = state_likelihood_rows()
        for mask in range(1, 16):
            assert rows[mask].sum() == bin(mask).count("1")

    def test_returns_copy(self):
        a = state_likelihood_rows()
        a[1, 0] = 99.0
        assert state_likelihood_rows()[1, 0] == 1.0
