"""Tests for the hybrid comprehensive-analysis driver (repro.hybrid).

These exercise the paper's four algorithmic deltas end to end on small
simulated data: per-rank work shares, local sorting, p thorough searches
with bcast selection, and rank-offset seeding.
"""

import pytest

from repro.hybrid.driver import HybridConfig, run_hybrid_analysis
from repro.search.comprehensive import ComprehensiveConfig, run_comprehensive
from repro.search.searches import StageParams
from repro.tree.newick import write_newick


@pytest.fixture(scope="module")
def pal():
    from repro.datasets import test_dataset

    pal, _ = test_dataset(n_taxa=6, n_sites=90, seed=301)
    return pal


@pytest.fixture(scope="module")
def quick_cc():
    return ComprehensiveConfig(
        n_bootstraps=4,
        cat_categories=3,
        stage_params=StageParams(
            bootstrap_rounds=1, fast_rounds=1, slow_max_rounds=1,
            thorough_max_rounds=2, brlen_passes=1,
        ),
    )


@pytest.fixture(scope="module")
def result_p2(pal, quick_cc):
    return run_hybrid_analysis(
        pal, HybridConfig(n_processes=2, n_threads=2, comprehensive=quick_cc)
    )


class TestSchedule:
    def test_ranks_follow_table2_counts(self, result_p2):
        sched = result_p2.schedule
        for rank in result_p2.ranks:
            assert rank.n_bootstraps == sched.bootstraps_per_process
            assert rank.n_fast == sched.fast_per_process
            assert rank.n_slow == sched.slow_per_process

    def test_total_bootstraps_match_schedule(self, result_p2):
        assert result_p2.n_bootstraps_done == result_p2.schedule.total_bootstraps

    def test_every_rank_ran_thorough(self, result_p2):
        """Section 2.1: each rank runs its own thorough search."""
        assert len(result_p2.rank_lnls()) == 2
        for r in result_p2.ranks:
            assert r.stage_seconds["thorough"] > 0


class TestWinnerSelection:
    def test_winner_is_best_rank(self, result_p2):
        lnls = result_p2.rank_lnls()
        assert result_p2.best_lnl == max(lnls)
        assert result_p2.winner_rank == lnls.index(max(lnls))

    def test_best_tree_is_winners_tree(self, result_p2):
        winner = result_p2.ranks[result_p2.winner_rank]
        assert write_newick(result_p2.best_tree) == winner.local_best_newick

    def test_best_tree_valid(self, result_p2, pal):
        result_p2.best_tree.validate()
        assert result_p2.best_tree.taxa == pal.taxa


class TestReproducibility:
    def test_identical_reruns(self, pal, quick_cc, result_p2):
        again = run_hybrid_analysis(
            pal, HybridConfig(n_processes=2, n_threads=2, comprehensive=quick_cc)
        )
        assert write_newick(again.best_tree) == write_newick(result_p2.best_tree)
        assert again.best_lnl == result_p2.best_lnl
        assert again.total_seconds == result_p2.total_seconds
        assert again.stage_seconds == result_p2.stage_seconds

    def test_process_count_changes_results(self, pal, quick_cc, result_p2):
        """Section 2.4: results are reproducible *for a given number of MPI
        processes* — other process counts legitimately differ."""
        p3 = run_hybrid_analysis(
            pal, HybridConfig(n_processes=3, n_threads=2, comprehensive=quick_cc)
        )
        assert p3.n_bootstraps_done != result_p2.n_bootstraps_done or (
            write_newick(p3.best_tree) != write_newick(result_p2.best_tree)
            or p3.best_lnl != result_p2.best_lnl
        )

    def test_thread_count_does_not_change_results(self, pal, quick_cc, result_p2):
        """Fine-grained parallelism is numerically transparent: T only
        changes timing, never the inference."""
        t1 = run_hybrid_analysis(
            pal, HybridConfig(n_processes=2, n_threads=1, comprehensive=quick_cc)
        )
        assert write_newick(t1.best_tree) == write_newick(result_p2.best_tree)
        assert t1.best_lnl == pytest.approx(result_p2.best_lnl, abs=1e-9)


class TestQuality:
    def test_multiprocess_at_least_serial_quality(self, pal, quick_cc, result_p2):
        """Table 6: 'the multi-process solutions are as good as or better
        than the serial solutions'."""
        serial = run_comprehensive(pal, quick_cc)
        assert result_p2.best_lnl >= serial.best_lnl - 1e-6

    def test_hybrid_p1_matches_serial_pipeline(self, pal, quick_cc):
        """With one process the hybrid driver must reduce exactly to the
        serial algorithm (same seeds, same stage structure)."""
        serial = run_comprehensive(pal, quick_cc)
        hybrid = run_hybrid_analysis(
            pal, HybridConfig(n_processes=1, n_threads=2, comprehensive=quick_cc)
        )
        assert write_newick(hybrid.best_tree) == write_newick(serial.best_tree)
        assert hybrid.best_lnl == pytest.approx(serial.best_lnl, abs=1e-9)


class TestTiming:
    def test_stage_seconds_are_max_over_ranks(self, result_p2):
        for stage, value in result_p2.stage_seconds.items():
            per_rank = [r.stage_seconds.get(stage, 0.0) for r in result_p2.ranks]
            assert value == pytest.approx(max(per_rank))

    def test_total_is_latest_finish(self, result_p2):
        assert result_p2.total_seconds == max(r.finish_time for r in result_p2.ranks)

    def test_more_threads_reduce_virtual_time(self, pal, quick_cc):
        t1 = run_hybrid_analysis(
            pal, HybridConfig(n_processes=1, n_threads=1, comprehensive=quick_cc)
        )
        t4 = run_hybrid_analysis(
            pal, HybridConfig(n_processes=1, n_threads=4, comprehensive=quick_cc)
        )
        assert t4.total_seconds < t1.total_seconds

    def test_communication_negligible_in_real_run(self, result_p2):
        """Section 4: interconnect speed has 'a negligible effect' — the
        *pure* communication overhead (the slowest rank barely waits at
        barriers) is a tiny fraction of the run."""
        min_comm = min(r.comm_seconds for r in result_p2.ranks)
        assert min_comm < 0.01 * result_p2.total_seconds

    def test_comm_trace_recorded(self, result_p2):
        """Every rank communicates: one barrier + allgather + bcast."""
        for r in result_p2.ranks:
            assert r.comm_seconds >= 0.0

    def test_more_processes_reduce_bootstrap_stage(self, pal, quick_cc, result_p2):
        p1 = run_hybrid_analysis(
            pal, HybridConfig(n_processes=1, n_threads=2, comprehensive=quick_cc)
        )
        assert result_p2.stage_seconds["bootstrap"] < p1.stage_seconds["bootstrap"]


class TestSupport:
    def test_support_tree_annotated(self, result_p2):
        sup = result_p2.support_tree
        assert sup is not None
        values = [e.support for e in sup.internal_edges()]
        assert values and all(0.0 <= v <= 1.0 for v in values)

    def test_bootstrap_trees_collected(self, result_p2):
        assert len(result_p2.bootstrap_trees) == result_p2.n_bootstraps_done
        for t in result_p2.bootstrap_trees:
            t.validate()


class TestConfigValidation:
    def test_thread_limit_enforced(self, quick_cc):
        """Threads are limited to the machine's cores per node."""
        with pytest.raises(ValueError, match="cores per node"):
            HybridConfig(n_processes=1, n_threads=16, machine="dash",
                         comprehensive=quick_cc)
        # 16 threads are fine on Ranger.
        HybridConfig(n_processes=1, n_threads=16, machine="ranger",
                     comprehensive=quick_cc)

    def test_positive_counts(self, quick_cc):
        with pytest.raises(ValueError):
            HybridConfig(n_processes=0, n_threads=1, comprehensive=quick_cc)
        with pytest.raises(ValueError):
            HybridConfig(n_processes=1, n_threads=0, comprehensive=quick_cc)

    def test_bootstop_step_validated(self, quick_cc):
        with pytest.raises(ValueError):
            HybridConfig(n_processes=1, n_threads=1, comprehensive=quick_cc,
                         bootstop_step=3)
