"""Tests for the serial comprehensive analysis (repro.search.comprehensive)."""

import pytest

from repro.search.comprehensive import (
    ComprehensiveConfig,
    fast_count,
    run_comprehensive,
    select_best,
    select_fast_starts,
    slow_count,
)
from repro.search.hillclimb import SearchResult
from repro.tree.newick import write_newick


class TestCounts:
    def test_fast_count_paper_values(self):
        assert fast_count(100) == 20
        assert fast_count(500) == 100
        assert fast_count(104) == 21
        assert fast_count(1) == 1

    def test_slow_count_paper_values(self):
        assert slow_count(20) == 10
        assert slow_count(100) == 10  # capped
        assert slow_count(3) == 2
        assert slow_count(1) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            fast_count(0)
        with pytest.raises(ValueError):
            slow_count(0)


class TestSelection:
    def test_select_best_orders_by_lnl(self):
        results = [SearchResult(None, lnl) for lnl in (-5.0, -1.0, -3.0)]
        best = select_best(results, 2)
        assert [r.lnl for r in best] == [-1.0, -3.0]

    def test_select_best_validates(self):
        with pytest.raises(ValueError):
            select_best([SearchResult(None, -1.0)], 2)

    def test_select_fast_starts_every_fifth(self):
        trees = list(range(100))
        starts = select_fast_starts(trees, 20)
        assert starts == list(range(0, 100, 5))

    def test_select_fast_starts_validates(self):
        with pytest.raises(ValueError):
            select_fast_starts([1, 2], 3)


class TestConfig:
    def test_defaults_match_paper_command_line(self):
        cfg = ComprehensiveConfig()
        # -m GTRCAT -N 100 -p 12345 -x 12345 -f a
        assert cfg.n_bootstraps == 100
        assert cfg.seed_p == 12345
        assert cfg.seed_x == 12345
        assert cfg.use_cat is True

    def test_validation(self):
        with pytest.raises(ValueError):
            ComprehensiveConfig(n_bootstraps=0)
        with pytest.raises(ValueError):
            ComprehensiveConfig(seed_p=0)
        with pytest.raises(ValueError):
            ComprehensiveConfig(parsimony_refresh_every=0)


class TestRunComprehensive:
    @pytest.fixture(scope="class")
    def result(self, request):
        tiny_pal = request.getfixturevalue("tiny_pal")
        from repro.search.searches import StageParams

        cfg = ComprehensiveConfig(
            n_bootstraps=5,
            cat_categories=3,
            stage_params=StageParams(
                slow_max_rounds=1, thorough_max_rounds=2, brlen_passes=1
            ),
        )
        return run_comprehensive(tiny_pal, cfg), cfg, tiny_pal

    def test_counts_follow_schedule(self, result):
        res, cfg, _ = result
        assert len(res.bootstrap_trees) == 5
        assert len(res.fast_results) == fast_count(5)
        assert len(res.slow_results) == slow_count(fast_count(5))

    def test_stage_ops_recorded(self, result):
        res, _, _ = result
        for stage in ("setup", "bootstrap", "fast", "slow", "thorough"):
            assert res.stage_ops[stage] > 0
        # Bootstraps dominate the CAT stages.
        assert res.stage_ops["bootstrap"] > res.stage_ops["fast"]

    def test_best_is_thorough_result(self, result):
        res, _, _ = result
        assert res.best_lnl == res.thorough_result.lnl
        assert res.best_tree is res.thorough_result.tree
        res.best_tree.validate()

    def test_best_beats_all_slow_results(self, result):
        """The thorough search must not be worse than its starting point.
        (CAT and GAMMA likelihoods differ; compare progression loosely.)"""
        res, _, pal = result
        assert res.best_lnl >= max(r.lnl for r in res.slow_results) - 50.0

    def test_deterministic(self, result, tiny_pal):
        res, cfg, _ = result
        res2 = run_comprehensive(tiny_pal, cfg)
        assert write_newick(res2.best_tree) == write_newick(res.best_tree)
        assert res2.best_lnl == pytest.approx(res.best_lnl, abs=1e-12)

    def test_pattern_compression_is_exact(self, tiny_pal):
        """Dropping zero-weight patterns from bootstrap engines must not
        change any result (zero weight = zero contribution)."""
        import dataclasses

        from repro.search.searches import StageParams

        cfg = ComprehensiveConfig(
            n_bootstraps=3, cat_categories=3,
            stage_params=StageParams(slow_max_rounds=1, thorough_max_rounds=1,
                                     brlen_passes=1),
        )
        a = run_comprehensive(tiny_pal, cfg)
        b = run_comprehensive(
            tiny_pal, dataclasses.replace(cfg, compress_bootstrap_patterns=False)
        )
        assert [write_newick(t) for t in a.bootstrap_trees] == [
            write_newick(t) for t in b.bootstrap_trees
        ]
        assert a.best_lnl == pytest.approx(b.best_lnl, abs=1e-8)
        # Compression does strictly less kernel work in the bootstrap stage.
        assert a.stage_ops["bootstrap"] < b.stage_ops["bootstrap"]

    def test_seed_changes_result_path(self, tiny_pal):
        from repro.search.searches import StageParams

        params = StageParams(slow_max_rounds=1, thorough_max_rounds=1, brlen_passes=1)
        a = run_comprehensive(
            tiny_pal,
            ComprehensiveConfig(n_bootstraps=3, seed_x=1111, cat_categories=3, stage_params=params),
        )
        b = run_comprehensive(
            tiny_pal,
            ComprehensiveConfig(n_bootstraps=3, seed_x=2222, cat_categories=3, stage_params=params),
        )
        # Different bootstrap streams -> different bootstrap trees (almost surely).
        assert [write_newick(t) for t in a.bootstrap_trees] != [
            write_newick(t) for t in b.bootstrap_trees
        ]
