"""Tests for the level-batched kernel backend and its planner support.

Three concerns, matching the three pieces the backend adds:

* the plan's *level decomposition* is a valid topological schedule
  (children strictly before parents, union of levels == plan ops);
* ``BatchedKernel`` is bit-identical to ``ReferenceKernel`` across the
  full execution matrix — serial, virtual-threaded, CLV-cached, every
  rate-model family, both the stacked-contraction and fused-block
  regimes — including derivatives and exact ``OpCounter`` parity;
* the degenerate-input hardening of :class:`CLVCache` and the planner.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import test_dataset as _make_dataset
from repro.likelihood.engine import LikelihoodEngine, RateModel
from repro.likelihood.gtr import GTRModel
from repro.likelihood.kernels import (
    BatchedKernel,
    available_kernels,
    get_kernel,
)
from repro.likelihood.plan import CLVCache, plan_traversal
from repro.likelihood.brlen import optimize_branch_lengths
from repro.search.spr import SPRParams, spr_round
from repro.threads.pool import VirtualThreadPool
from repro.threads.threaded_engine import ThreadedLikelihoodEngine
from repro.tree.random_trees import yule_tree
from repro.util.rng import RAxMLRandom

_PAL, _ = _make_dataset(n_taxa=9, n_sites=180, seed=404)
_MODEL = GTRModel(rates=(1.2, 2.5, 0.8, 1.1, 3.0, 1.0), freqs=(0.3, 0.2, 0.2, 0.3))


def _rate_models(m: int) -> dict[str, RateModel]:
    return {
        "gamma": RateModel.gamma(0.8, 4),
        "gamma+I": RateModel.gamma(0.8, 4, p_invariant=0.2),
        "cat": RateModel.cat(np.array([0.4, 1.0, 2.1]), np.arange(m) % 3),
    }


class TestLevelSchedule:
    """plan.levels() must be a valid topological batching of plan.ops."""

    def _check_schedule(self, plan) -> None:
        levels = plan.levels()
        # Union of levels is exactly the plan's op list (same objects).
        flat = [op for level in levels for op in level]
        assert len(flat) == len(plan.ops)
        assert {id(op) for op in flat} == {id(op) for op in plan.ops}
        assert all(level for level in levels), "no level may be empty"
        # Level 0 is exactly the tips; children sit strictly below parents.
        level_of = {
            id(op.node): d for d, level in enumerate(levels) for op in level
        }
        for d, level in enumerate(levels):
            for op in level:
                if op.node.is_leaf:
                    assert d == 0
                else:
                    assert d > 0
                    for child in op.node.children:
                        assert level_of[id(child)] < d

    @given(seed=st.integers(1, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_levels_are_topological(self, seed):
        tree = yule_tree(_PAL.taxa, RAxMLRandom(seed))
        self._check_schedule(plan_traversal(tree))

    def test_cached_ops_keep_structural_depth(self):
        tree = yule_tree(_PAL.taxa, RAxMLRandom(5))
        cache = CLVCache()
        engine = LikelihoodEngine(_PAL, _MODEL, clv_cache=cache)
        engine.loglikelihood(tree)  # warm the cache
        plan = plan_traversal(tree, cache)
        assert plan.n_cached > 0
        self._check_schedule(plan)

    def test_single_leaf_subtree_plan(self):
        tree = yule_tree(_PAL.taxa, RAxMLRandom(5))
        leaf = next(n for n in tree.postorder() if n.is_leaf)
        plan = plan_traversal(tree, subtree=leaf)
        assert [[op.kind for op in lvl] for lvl in plan.levels()] == [["tip"]]

    def test_levels_cached_on_plan(self):
        tree = yule_tree(_PAL.taxa, RAxMLRandom(5))
        plan = plan_traversal(tree)
        assert plan.levels() is plan.levels()


class TestBatchedParity:
    """batched × {serial, threaded, clv-cache} against the reference."""

    def _trace(self, engine, tree):
        """A full workout: likelihood, both partial sweeps, edge math,
        Newton optimisation, and an SPR round.  Returns every number a
        caller could observe, for bitwise comparison."""
        tree = tree.copy()
        out = [engine.loglikelihood(tree)]
        down = engine.compute_down_partials(tree)
        up = engine.compute_up_partials(tree, down)
        edge = tree.internal_edges()[0]
        d, u = engine.partial_for(down, edge), engine.partial_for(up, edge)
        coef, exps, logscale = engine.edge_coefficients(d, u)
        out.extend(engine.edge_lnl_and_derivatives(coef, exps, logscale, 0.17))
        coef2, exps2, ls2, first = engine.edge_coefficients_and_derivatives(
            d, u, 0.23
        )
        out.extend(first)
        out.append(np.asarray(coef2).copy())
        out.append(engine.site_loglikelihoods(tree))
        out.append(optimize_branch_lengths(engine, tree, passes=2))
        tree, spr_lnl, _ = spr_round(
            tree=tree, engine=engine,
            params=SPRParams(radius=2, min_improvement=0.01),
        )
        out.append(spr_lnl)
        out.append(engine.ops.snapshot())
        return out

    def _assert_equal_traces(self, a, b):
        assert len(a) == len(b)
        for x, y in zip(a, b):
            if isinstance(x, np.ndarray):
                assert np.array_equal(x, y)
            else:
                assert x == y

    @pytest.mark.parametrize("rm_name", ["gamma", "gamma+I", "cat"])
    def test_serial_threaded_cached_bit_identical(self, rm_name):
        rm = _rate_models(_PAL.n_patterns)[rm_name]
        tree = yule_tree(_PAL.taxa, RAxMLRandom(31))
        ref = self._trace(LikelihoodEngine(_PAL, _MODEL, rm), tree)
        variants = {
            "serial": self._trace(
                LikelihoodEngine(_PAL, _MODEL, rm, kernel="batched"), tree
            ),
            "threaded": self._trace(
                ThreadedLikelihoodEngine(
                    _PAL, _MODEL, VirtualThreadPool(3), rm, kernel="batched"
                ),
                tree,
            ),
        }
        for name, trace in variants.items():
            self._assert_equal_traces(ref, trace)
        # With the CLV cache, compare against an equally-cached reference
        # (the engine-level cache legitimately skips charges on both).
        ref_cached = self._trace(
            LikelihoodEngine(_PAL, _MODEL, rm, clv_cache=True), tree
        )
        bat_cached = self._trace(
            LikelihoodEngine(
                _PAL, _MODEL, rm, kernel="batched", clv_cache=True
            ),
            tree,
        )
        self._assert_equal_traces(ref_cached, bat_cached)

    @pytest.mark.parametrize("rm_name", ["gamma", "gamma+I"])
    def test_fused_block_regime_bit_identical(self, rm_name, monkeypatch):
        """Force the fused block pipeline onto the small alignment (odd
        block length, so partial blocks are exercised too)."""
        monkeypatch.setattr(BatchedKernel, "fuse_min_patterns", 1)
        monkeypatch.setattr(BatchedKernel, "fuse_block", 13)
        rm = _rate_models(_PAL.n_patterns)[rm_name]
        tree = yule_tree(_PAL.taxa, RAxMLRandom(37))
        ref = self._trace(LikelihoodEngine(_PAL, _MODEL, rm), tree)
        fused = self._trace(
            LikelihoodEngine(_PAL, _MODEL, rm, kernel="batched"), tree
        )
        self._assert_equal_traces(ref, fused)
        fused_threaded = self._trace(
            ThreadedLikelihoodEngine(
                _PAL, _MODEL, VirtualThreadPool(4), rm, kernel="batched"
            ),
            tree,
        )
        self._assert_equal_traces(ref, fused_threaded)

    def test_more_threads_than_patterns(self):
        pal, _ = _make_dataset(n_taxa=4, n_sites=3, seed=77)
        tree = yule_tree(pal.taxa, RAxMLRandom(3))
        expected = LikelihoodEngine(pal, _MODEL).loglikelihood(tree)
        threaded = ThreadedLikelihoodEngine(
            pal, _MODEL, VirtualThreadPool(8), kernel="batched"
        )
        assert threaded.loglikelihood(tree) == expected

    def test_stacked_contraction_matches_per_node_einsum(self):
        """The (nodes, patterns, rates, states) contraction and the
        block-wise matmul both dispatch to the per-matrix BLAS products
        of the reference einsum — bit-for-bit."""
        rng = np.random.default_rng(11)
        q, m, k = 3, 257, 4
        pstack = rng.random((q, k, 4, 4))
        cstack = rng.random((q, m, k, 4))
        stacked = np.einsum("qkab,qmkb->qmka", pstack, cstack, optimize=True)
        for j in range(q):
            per_node = np.einsum(
                "kab,mkb->mka", pstack[j], cstack[j], optimize=True
            )
            assert np.array_equal(stacked[j], per_node)
            via_matmul = np.matmul(
                cstack[j].transpose(1, 0, 2), pstack[j].transpose(0, 2, 1)
            ).transpose(1, 0, 2)
            assert np.array_equal(via_matmul, per_node)

    def test_registry_lists_batched(self):
        assert set(available_kernels()) >= {"reference", "blocked", "batched"}
        assert get_kernel("batched") is BatchedKernel
        assert BatchedKernel.uses_clv_cache  # --clv-cache stays valid


class TestCLVCacheHardening:
    def test_zero_entries_disables_without_error(self):
        cache = CLVCache(max_entries=0)
        assert len(cache) == 0
        assert not cache.probe(123)
        cache.put(123, object())
        assert len(cache) == 0
        assert cache.get(123) is None
        stats = cache.stats()
        assert stats["entries"] == 0 and stats["evictions"] == 0
        assert stats["hits"] == 0

    def test_negative_entries_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            CLVCache(max_entries=-1)

    def test_zero_entry_cache_engine_runs(self):
        """An engine over a disabled cache behaves like no cache at all."""
        tree = yule_tree(_PAL.taxa, RAxMLRandom(9))
        plain = LikelihoodEngine(_PAL, _MODEL).loglikelihood(tree)
        disabled = LikelihoodEngine(
            _PAL, _MODEL, clv_cache=CLVCache(max_entries=0)
        )
        assert disabled.loglikelihood(tree) == plain
        assert disabled.clv_cache.stats()["entries"] == 0

    def test_planned_get_reclassifies_probe_hit(self):
        """A planner probe-hit that is gone by execution time must end up
        counted as one miss, not one hit plus one miss."""
        cache = CLVCache(max_entries=4)
        cache.put(1, object())
        assert cache.probe(1)  # planner counts a hit
        del cache._store[1]  # evicted between planning and execution
        assert cache.get(1, planned=True) is None
        stats = cache.stats()
        assert (stats["hits"], stats["misses"]) == (0, 1)

    def test_stats_probes_balance(self):
        cache = CLVCache(max_entries=2)
        cache.put(1, object())
        probes = 0
        for sig in (1, 2, 1, 3):
            cache.probe(sig)
            probes += 1
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == probes


class TestBlockedHeuristic:
    def test_below_break_even_runs_whole_shards(self):
        """Small shards must tile exactly like the reference (no cuts) —
        the fix for the fixed-256 tiling regression."""
        engine = LikelihoodEngine(_PAL, _MODEL, kernel="blocked")
        spans = [sl for sl, _ in engine.kernel._spans()]
        assert spans == engine.kernel.shards

    def test_above_break_even_bounds_tile_count(self):
        engine = LikelihoodEngine(_PAL, _MODEL, kernel="blocked")
        kern = engine.kernel
        kern.min_blocked_patterns = 32
        kern.block_size = 8
        kern.max_blocks = 4
        spans = [sl for sl, _ in kern._spans()]
        assert len(spans) <= kern.max_blocks
        # Tiles partition the shard exactly.
        assert spans[0].start == 0 and spans[-1].stop == _PAL.n_patterns
        for a, b in zip(spans, spans[1:]):
            assert a.stop == b.start
