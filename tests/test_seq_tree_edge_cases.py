"""Extra edge-case coverage for the sequence and tree substrates."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.seq.alignment import Alignment
from repro.seq.patterns import compress_alignment
from repro.tree.bipartitions import Bipartition, tree_bipartitions
from repro.tree.newick import parse_newick, write_newick
from repro.tree.topology import MAX_BRANCH_LENGTH, MIN_BRANCH_LENGTH


class TestAlignmentColumns:
    def test_all_ambiguous_column_is_one_pattern(self):
        aln = Alignment.from_sequences([("a", "-A"), ("b", "-C"), ("c", "-G")])
        pal = compress_alignment(aln)
        assert pal.n_patterns == 2

    def test_case_insensitive_columns_collapse(self):
        aln = Alignment.from_sequences([("a", "Aa"), ("b", "cC"), ("c", "gG")])
        pal = compress_alignment(aln)
        assert pal.n_patterns == 1
        assert pal.weights.tolist() == [2]

    def test_column_order_of_patterns_is_stable(self):
        """Compressing twice gives identical pattern matrices."""
        aln = Alignment.from_sequences(
            [("a", "ACGTAC"), ("b", "CCGTAC"), ("c", "ACGTCC")]
        )
        p1 = compress_alignment(aln)
        p2 = compress_alignment(aln)
        assert np.array_equal(p1.patterns, p2.patterns)
        assert np.array_equal(p1.site_to_pattern, p2.site_to_pattern)

    @settings(max_examples=25)
    @given(st.integers(3, 8), st.integers(1, 40), st.integers(1, 10**6))
    def test_pattern_count_bounds(self, n_taxa, n_sites, seed):
        from repro.util.rng import RAxMLRandom

        rng = RAxMLRandom(seed)
        recs = [
            (f"t{i}", "".join("ACGT"[rng.next_int(4)] for _ in range(n_sites)))
            for i in range(n_taxa)
        ]
        pal = compress_alignment(Alignment.from_sequences(recs))
        assert 1 <= pal.n_patterns <= min(n_sites, 4**n_taxa)


class TestBranchLengthBounds:
    def test_constants_sane(self):
        assert 0 < MIN_BRANCH_LENGTH < 1e-3
        assert MAX_BRANCH_LENGTH >= 10

    def test_prune_clamps_merged_lengths(self):
        """Splicing a degree-two node sums lengths but stays within the
        clamp."""
        t = parse_newick(
            f"((A:{MAX_BRANCH_LENGTH},B:1):{MAX_BRANCH_LENGTH},C:1,(D:1,E:1):1);"
        )
        leaf_b = t.find_leaf("B")
        t.prune(leaf_b)
        t.validate()
        for e in t.edges():
            assert e.length <= MAX_BRANCH_LENGTH


class TestBipartitionScaling:
    def test_many_taxa_bitmask(self):
        """Python big-int masks handle hundreds of taxa."""
        n = 200
        b = Bipartition.from_leafset(range(50, 150), n)
        assert b.side_size == 100
        assert b.n_taxa == 200

    def test_large_tree_split_count(self):
        from repro.tree.random_trees import random_topology
        from repro.util.rng import RAxMLRandom

        taxa = tuple(f"t{i}" for i in range(80))
        t = random_topology(taxa, RAxMLRandom(3))
        assert len(tree_bipartitions(t)) == 80 - 3

    def test_newick_roundtrip_large(self):
        from repro.tree.random_trees import yule_tree
        from repro.util.rng import RAxMLRandom

        taxa = tuple(f"t{i}" for i in range(120))
        t = yule_tree(taxa, RAxMLRandom(4))
        t2 = parse_newick(write_newick(t, digits=10), taxa=taxa)
        assert tree_bipartitions(t) == tree_bipartitions(t2)


class TestSupportRoundTrip:
    def test_support_survives_newick(self):
        t = parse_newick("((A:1,B:1):1,C:1,(D:1,E:1):1);")
        for e in t.internal_edges():
            e.support = 0.73
        out = write_newick(t, support=True)
        back = parse_newick(out, taxa=t.taxa)
        sups = [e.support for e in back.internal_edges()]
        assert all(s == pytest.approx(0.73) for s in sups)
