"""Tests for shared validation helpers (repro.util.validation)."""

import numpy as np
import pytest

from repro.util.validation import check_positive, check_probability_vector


class TestCheckPositive:
    def test_accepts_positive(self):
        check_positive("x", 1)
        check_positive("x", 0.001)

    def test_rejects_zero_and_negative(self):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0)
        with pytest.raises(ValueError):
            check_positive("x", -3)


class TestCheckProbabilityVector:
    def test_accepts_valid(self):
        v = check_probability_vector("p", [0.25, 0.25, 0.5])
        assert isinstance(v, np.ndarray)
        assert v.dtype == np.float64

    def test_rejects_wrong_sum(self):
        with pytest.raises(ValueError, match="sum"):
            check_probability_vector("p", [0.5, 0.6])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_probability_vector("p", [1.5, -0.5])

    def test_rejects_matrix(self):
        with pytest.raises(ValueError, match="1-D"):
            check_probability_vector("p", [[0.5, 0.5]])

    def test_tolerance(self):
        check_probability_vector("p", [0.5, 0.5 + 1e-10])
        with pytest.raises(ValueError):
            check_probability_vector("p", [0.5, 0.51], atol=1e-8)
