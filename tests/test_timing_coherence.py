"""Coherence between the two timing paths.

The analytic model (`repro.perfmodel.finegrain`) and the real-mode
accounting (`MachineRegionTiming` driving the virtual thread pool) must
agree: running the same likelihood workload through the pool at different
thread counts must produce exactly the speedups the analytic S_f(T)
formula predicts, because the figures' model results and the driver's
real-mode results claim to describe the same machine.
"""

import pytest

from repro.likelihood.engine import RateModel
from repro.likelihood.gtr import GTRModel
from repro.perfmodel.finegrain import MachineRegionTiming, finegrain_speedup
from repro.perfmodel.machines import MACHINES
from repro.threads.pool import VirtualThreadPool
from repro.threads.threaded_engine import ThreadedLikelihoodEngine
from repro.tree.random_trees import yule_tree
from repro.util.rng import RAxMLRandom


@pytest.mark.parametrize("machine_key", ["dash", "triton", "abe"])
@pytest.mark.parametrize("n_threads", [2, 4, 8])
def test_pool_speedup_matches_analytic_model(small_pal, gtr_model, machine_key, n_threads):
    machine = MACHINES[machine_key]
    tree = yule_tree(small_pal.taxa, RAxMLRandom(17))
    times = {}
    for t in (1, n_threads):
        pool = VirtualThreadPool(t, MachineRegionTiming(machine))
        engine = ThreadedLikelihoodEngine(
            small_pal, gtr_model, pool, RateModel.single()
        )
        engine.loglikelihood(tree)
        times[t] = pool.virtual_time
    measured = times[1] / times[n_threads]
    predicted = finegrain_speedup(machine, small_pal.n_patterns, n_threads)
    assert measured == pytest.approx(predicted, rel=1e-9)


def test_gamma_workload_also_coheres(small_pal, gtr_model):
    """With 4 rate categories the region costs change, but both paths must
    change identically."""
    from repro.perfmodel.finegrain import region_pattern_units

    machine = MACHINES["dash"]
    tree = yule_tree(small_pal.taxa, RAxMLRandom(17))
    times = {}
    for t in (1, 8):
        pool = VirtualThreadPool(t, MachineRegionTiming(machine))
        engine = ThreadedLikelihoodEngine(
            small_pal, gtr_model, pool, RateModel.gamma(0.8, 4)
        )
        engine.loglikelihood(tree)
        times[t] = pool.virtual_time
    measured = times[1] / times[8]
    m = small_pal.n_patterns
    predicted = region_pattern_units(machine, m, 1, 4) / region_pattern_units(
        machine, m, 8, 4
    )
    assert measured == pytest.approx(predicted, rel=1e-9)
