"""End-to-end tests of --schedule work-steal through the hybrid driver:
bit-identical results vs. static, rank-death transparency (satellite:
recovery + scheduling interplay), resume from per-rank journals, and the
scheduling metrics surfaced in results and reports."""

import pytest

from repro.datasets import test_dataset as make_test_dataset
from repro.hybrid.driver import HybridConfig, run_hybrid_analysis
from repro.mpi.faults import FaultPlan, KillSpec
from repro.search.comprehensive import ComprehensiveConfig
from repro.search.searches import StageParams
from repro.tree.newick import write_newick

QUICK = StageParams(
    bootstrap_rounds=1, fast_rounds=1, slow_max_rounds=1,
    thorough_max_rounds=2, brlen_passes=1,
)


@pytest.fixture(scope="module")
def pal():
    pal, _ = make_test_dataset(n_taxa=6, n_sites=90, seed=301)
    return pal


@pytest.fixture(scope="module")
def quick_cc():
    return ComprehensiveConfig(n_bootstraps=4, cat_categories=3, stage_params=QUICK)


def run(pal, cc, **kw):
    kw.setdefault("n_processes", 2)
    kw.setdefault("n_threads", 2)
    return run_hybrid_analysis(
        pal, HybridConfig(comprehensive=cc, **kw)
    )


@pytest.fixture(scope="module")
def static_result(pal, quick_cc):
    return run(pal, quick_cc, schedule="static")


@pytest.fixture(scope="module")
def ws_result(pal, quick_cc):
    return run(pal, quick_cc, schedule="work-steal")


def assert_bit_identical(a, b, support=True, ranks=True):
    assert a.best_lnl == b.best_lnl
    assert a.winner_rank == b.winner_rank
    assert write_newick(a.best_tree, digits=None) == write_newick(
        b.best_tree, digits=None
    )
    assert sorted(write_newick(t, digits=None) for t in a.bootstrap_trees) == sorted(
        write_newick(t, digits=None) for t in b.bootstrap_trees
    )
    if support:
        assert write_newick(a.support_tree, support=True) == write_newick(
            b.support_tree, support=True
        )
    if ranks:
        assert a.rank_lnls() == b.rank_lnls()


class TestModeParity:
    def test_bit_identical_results(self, static_result, ws_result):
        """The acceptance criterion: best tree, likelihood and bootstrap
        support identical across schedule modes for the same seed."""
        assert_bit_identical(static_result, ws_result)

    def test_rng_fingerprints_identical(self, static_result, ws_result):
        assert static_result.rng_fingerprint is not None
        assert static_result.rng_fingerprint == ws_result.rng_fingerprint

    def test_mode_recorded(self, static_result, ws_result):
        assert static_result.schedule_mode == "static"
        assert static_result.sched is None
        assert ws_result.schedule_mode == "work-steal"
        assert ws_result.sched is not None and ws_result.sched["mode"] == "work-steal"

    def test_single_process_worksteal(self, pal, quick_cc):
        serial = run(pal, quick_cc, n_processes=1, n_threads=1, schedule="static")
        ws = run(pal, quick_cc, n_processes=1, n_threads=1, schedule="work-steal")
        assert_bit_identical(serial, ws)

    def test_sched_doc_in_report(self, ws_result):
        rep = ws_result.to_report()
        assert rep["schedule_mode"] == "work-steal"
        assert rep["rng_fingerprint"] == ws_result.rng_fingerprint
        sched = rep["sched"]
        assert set(sched) >= {
            "mode", "stage_stats", "steal_log", "idle_tail",
            "steal_attempts", "steal_grants",
        }
        boot = sched["stage_stats"]["bootstrap"]
        assert sum(d["executed"] for d in boot.values()) == 4
        for tails in sched["idle_tail"].values():
            assert set(tails) == {"setup", "bootstrap", "fast", "slow", "thorough"}

    def test_validation(self, quick_cc):
        with pytest.raises(ValueError):
            HybridConfig(2, 2, comprehensive=quick_cc, schedule="round-robin")
        with pytest.raises(ValueError):
            HybridConfig(
                2, 2, comprehensive=quick_cc, schedule="work-steal",
                bootstopping=True,
            )


class TestDeathTransparency:
    """Satellite: kill a rank mid-queue via repro.mpi.faults; the global
    replicate set completes exactly once with unchanged final results."""

    def test_mid_queue_kill_bit_identical(self, pal, quick_cc, ws_result):
        plan = FaultPlan(kills=(KillSpec(rank=1, replicate=1),))
        killed = run(pal, quick_cc, schedule="work-steal", fault_plan=plan)
        assert killed.failed_ranks == [1]
        # The dead rank files no report, so compare everything but the
        # per-rank list; the survivor's thorough lnL must still match.
        assert_bit_identical(killed, ws_result, ranks=False)
        assert killed.rank_lnls() == [ws_result.rank_lnls()[0]]

    def test_replicates_completed_exactly_once(self, pal, quick_cc, ws_result):
        plan = FaultPlan(kills=(KillSpec(rank=1, replicate=1),))
        killed = run(pal, quick_cc, schedule="work-steal", fault_plan=plan)
        newicks = [write_newick(t, digits=None) for t in killed.bootstrap_trees]
        assert len(newicks) == 4  # the full global replicate set...
        assert sorted(newicks) == sorted(
            write_newick(t, digits=None) for t in ws_result.bootstrap_trees
        )  # ...each exactly once, bit-equal to the no-fault run
        boot = killed.sched["stage_stats"]["bootstrap"]
        assert sum(d["executed"] for d in boot.values()) >= 4
        assert sum(d["tasks_lost"] for d in boot.values()) >= 1

    def test_stage_boundary_kill(self, pal, quick_cc, ws_result):
        plan = FaultPlan(kills=(KillSpec(rank=1, stage="fast"),))
        killed = run(pal, quick_cc, schedule="work-steal", fault_plan=plan)
        assert killed.failed_ranks == [1]
        assert killed.best_lnl == ws_result.best_lnl
        assert write_newick(killed.support_tree, support=True) == write_newick(
            ws_result.support_tree, support=True
        )


class TestResume:
    def test_full_resume_skips_all_work(self, pal, quick_cc, tmp_path):
        base = dict(schedule="work-steal", checkpoint_dir=str(tmp_path))
        first = run(pal, quick_cc, **base)
        resumed = run(pal, quick_cc, resume=True, **base)
        assert_bit_identical(first, resumed)
        assert resumed.rng_fingerprint == first.rng_fingerprint
        executed = sum(
            d["executed"]
            for stage in ("bootstrap", "fast", "slow", "thorough")
            for d in resumed.sched["stage_stats"].get(stage, {}).values()
        )
        assert executed == 0
        # Journalled stage accounting survives the instant drain, and the
        # per-stage clock re-anchoring keeps the whole timeline exact.
        assert resumed.stage_seconds == first.stage_seconds

    def test_resume_after_kill(self, pal, quick_cc, ws_result, tmp_path):
        base = dict(schedule="work-steal", checkpoint_dir=str(tmp_path))
        plan = FaultPlan(kills=(KillSpec(rank=1, replicate=1),))
        run(pal, quick_cc, fault_plan=plan, **base)
        resumed = run(pal, quick_cc, resume=True, **base)
        assert_bit_identical(resumed, ws_result)

    def test_fingerprint_separates_modes(self, pal, quick_cc, tmp_path):
        """Static checkpoints and work-steal journals describe different
        progress units; resuming across modes must refuse, not mix."""
        from repro.hybrid.checkpoint import config_fingerprint

        a = HybridConfig(2, 2, comprehensive=quick_cc, schedule="static")
        b = HybridConfig(2, 2, comprehensive=quick_cc, schedule="work-steal")
        assert config_fingerprint(pal, a) != config_fingerprint(pal, b)
