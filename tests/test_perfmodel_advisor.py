"""Tests for the layout advisor (repro.perfmodel.advisor) and the hybrid
run-report serialisation."""

import json

import pytest

from repro.perfmodel.advisor import recommend_layout
from repro.perfmodel.machines import MACHINES
from repro.perfmodel.profiles import default_profile, profile_for


class TestRecommendLayout:
    def test_matches_table5_1846_80c(self):
        """On 80 Dash cores with 100 bootstraps, the advisor must pick the
        paper's 10 x 8 layout for the 1,846-pattern set."""
        rec = recommend_layout(profile_for(1846), MACHINES["dash"], 100, 80)
        assert (rec.n_processes, rec.n_threads) == (10, 8)
        assert 28 <= rec.predicted_speedup <= 43

    def test_matches_table5_triton_64c(self):
        rec = recommend_layout(profile_for(19436), MACHINES["triton"], 100, 64)
        assert (rec.n_processes, rec.n_threads) == (2, 32)

    def test_more_bootstraps_more_processes(self):
        """Summary: 'The useful number of MPI processes increases with the
        number of bootstraps performed'."""
        dash = MACHINES["dash"]
        few = recommend_layout(profile_for(348), dash, 100, 80)
        many = recommend_layout(profile_for(348), dash, 1200, 80)
        assert many.n_processes >= few.n_processes

    def test_more_patterns_more_threads(self):
        """Summary: 'The optimal number of Pthreads increases with the
        number of patterns'."""
        dash = MACHINES["dash"]
        small = recommend_layout(profile_for(348), dash, 100, 16)
        large = recommend_layout(profile_for(19436), dash, 100, 16)
        assert large.n_threads >= small.n_threads

    def test_alternatives_sorted(self):
        rec = recommend_layout(profile_for(1846), MACHINES["dash"], 100, 40)
        times = [s for _, _, s in rec.alternatives]
        assert times == sorted(times)
        assert all(s >= rec.predicted_seconds for s in times)

    def test_memory_constraint_applies(self):
        """A pattern-rich future profile on memory-poor Abe must not pick
        one process per core."""
        from repro.datasets.registry import DatasetSpec

        spec = DatasetSpec("future", taxa=2048, characters=250_000,
                           patterns=200_000, recommended_bootstraps=100)
        prof = default_profile(spec)
        abe = MACHINES["abe"]
        try:
            rec = recommend_layout(prof, abe, 100, 8)
        except ValueError:
            return  # does not fit at all: also an acceptable outcome
        assert rec.n_threads > 1

    def test_validation(self):
        with pytest.raises(ValueError):
            recommend_layout(profile_for(1846), MACHINES["dash"], 100, 0)


class TestScheduleModeAdvice:
    def test_recommendation_carries_schedule_fields(self):
        rec = recommend_layout(profile_for(1846), MACHINES["dash"], 100, 80)
        assert rec.schedule_mode in ("static", "work-steal")
        assert rec.predicted_static_seconds > 0
        assert rec.predicted_worksteal_seconds > 0
        assert rec.predicted_idle_tail_static >= 0
        assert rec.predicted_idle_tail_worksteal >= 0

    def test_predictions_deterministic(self):
        from repro.perfmodel.advisor import predict_schedule_modes

        a = predict_schedule_modes(profile_for(348), MACHINES["dash"], 100, 8, 4)
        b = predict_schedule_modes(profile_for(348), MACHINES["dash"], 100, 8, 4)
        assert a == b

    def test_balanced_load_stays_static(self):
        """With the calibrated mild jitter and one short chain per rank,
        stealing has nothing to take — the advisor must not recommend it."""
        rec = recommend_layout(profile_for(348), MACHINES["dash"], 100, 16)
        assert rec.schedule_mode == "static"

    def test_skewed_load_recommends_worksteal(self):
        """Many chain-break points (large N) plus heavy per-search jitter:
        the DES predicts a real makespan cut, so the advisor switches."""
        import dataclasses

        from repro.perfmodel.advisor import predict_schedule_modes

        prof = dataclasses.replace(profile_for(348), jitter_cv=0.6)
        modes = predict_schedule_modes(prof, MACHINES["dash"], 1000, 16, 4)
        s, w = modes["static"], modes["work-steal"]
        assert w["steal_grants"] > 0
        assert w["makespan"] < s["makespan"]
        assert w["idle_tail"] < s["idle_tail"]
        rec = recommend_layout(prof, MACHINES["dash"], 1000, 64)
        if rec.n_processes > 1:
            assert rec.predicted_worksteal_seconds <= rec.predicted_static_seconds


class TestRunReport:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.datasets import test_dataset
        from repro.hybrid.driver import HybridConfig, run_hybrid_analysis
        from repro.search.comprehensive import ComprehensiveConfig
        from repro.search.searches import StageParams

        pal, _ = test_dataset(n_taxa=6, n_sites=80, seed=71)
        cfg = ComprehensiveConfig(
            n_bootstraps=2, cat_categories=3,
            stage_params=StageParams(slow_max_rounds=1, thorough_max_rounds=1,
                                     brlen_passes=1),
        )
        return run_hybrid_analysis(
            pal, HybridConfig(n_processes=2, n_threads=1, comprehensive=cfg)
        )

    def test_report_is_json_serialisable(self, result):
        text = json.dumps(result.to_report())
        back = json.loads(text)
        assert back["best_lnl"] == result.best_lnl
        assert back["winner_rank"] == result.winner_rank

    def test_report_contents(self, result):
        rep = result.to_report()
        assert rep["schedule"]["n_processes"] == 2
        assert len(rep["ranks"]) == 2
        assert rep["best_tree"].endswith(";")
        assert rep["support_tree"] is not None
        for rank in rep["ranks"]:
            assert rank["stage_seconds"]["thorough"] > 0

    def test_report_times_consistent(self, result):
        rep = result.to_report()
        assert rep["total_seconds"] == max(
            r["finish_time"] for r in rep["ranks"]
        )
