"""Tests for the dataset registry and simulator (repro.datasets)."""

import numpy as np
import pytest

from repro.datasets.generator import (
    SimulationParams,
    simulate_alignment,
)
from repro.datasets.generator import test_dataset as make_test_dataset
from repro.datasets.registry import (
    BENCHMARK_DATASETS,
    DatasetSpec,
    dataset_by_name,
    dataset_by_patterns,
)


class TestRegistry:
    def test_table3_values(self):
        """The five Table 3 rows, exactly as published."""
        rows = [
            (354, 460, 348, 1200),
            (150, 1269, 1130, 650),
            (218, 2294, 1846, 550),
            (404, 13158, 7429, 700),
            (125, 29149, 19436, 50),
        ]
        assert len(BENCHMARK_DATASETS) == 5
        for spec, (taxa, chars, pats, bs) in zip(BENCHMARK_DATASETS, rows):
            assert (spec.taxa, spec.characters, spec.patterns,
                    spec.recommended_bootstraps) == (taxa, chars, pats, bs)

    def test_ordered_by_patterns(self):
        pats = [d.patterns for d in BENCHMARK_DATASETS]
        assert pats == sorted(pats)

    def test_lookup(self):
        assert dataset_by_patterns(1846).taxa == 218
        assert dataset_by_name("dna_218").patterns == 1846
        with pytest.raises(KeyError):
            dataset_by_patterns(999)
        with pytest.raises(KeyError):
            dataset_by_name("none")

    def test_redundancy(self):
        assert dataset_by_patterns(19436).redundancy == pytest.approx(29149 / 19436)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            DatasetSpec("x", taxa=2, characters=10, patterns=5, recommended_bootstraps=10)
        with pytest.raises(ValueError):
            DatasetSpec("x", taxa=10, characters=10, patterns=20, recommended_bootstraps=10)


class TestSimulator:
    def test_shapes(self):
        aln, tree = simulate_alignment(SimulationParams(n_taxa=10, n_sites=200, seed=1))
        assert aln.n_taxa == 10
        assert aln.n_sites == 200
        tree.validate()
        assert sorted(l.name for l in tree.leaves()) == sorted(aln.taxa)

    def test_deterministic(self):
        p = SimulationParams(n_taxa=6, n_sites=100, seed=9)
        a1, _ = simulate_alignment(p)
        a2, _ = simulate_alignment(p)
        assert a1 == a2

    def test_seed_changes_data(self):
        a1, _ = simulate_alignment(SimulationParams(n_taxa=6, n_sites=100, seed=9))
        a2, _ = simulate_alignment(SimulationParams(n_taxa=6, n_sites=100, seed=10))
        assert a1 != a2

    def test_invariant_fraction_increases_redundancy(self):
        lo, _ = simulate_alignment(
            SimulationParams(n_taxa=8, n_sites=400, seed=3, proportion_invariant=0.0)
        )
        hi, _ = simulate_alignment(
            SimulationParams(n_taxa=8, n_sites=400, seed=3, proportion_invariant=0.6)
        )
        from repro.seq.patterns import compress_alignment

        assert compress_alignment(hi).n_patterns < compress_alignment(lo).n_patterns

    def test_phylogenetic_signal_present(self):
        """Closely related taxa must be more similar than distant ones —
        the property that makes ML search meaningful."""
        aln, tree = simulate_alignment(
            SimulationParams(n_taxa=10, n_sites=500, seed=7, branch_scale=0.15)
        )
        # Find a cherry (two taxa joined by one internal node).
        cherry = None
        for node in tree.postorder():
            if not node.is_leaf and all(c.is_leaf for c in node.children) and node.parent:
                cherry = [c.name for c in node.children]
                break
        assert cherry is not None
        a, b = cherry
        others = [t for t in aln.taxa if t not in cherry]

        def diff(x, y):
            return np.mean(
                np.array(list(aln.sequence(x))) != np.array(list(aln.sequence(y)))
            )

        mean_other = np.mean([diff(a, t) for t in others])
        assert diff(a, b) < mean_other

    def test_validation(self):
        with pytest.raises(ValueError):
            SimulationParams(n_taxa=3, n_sites=10)
        with pytest.raises(ValueError):
            SimulationParams(n_taxa=5, n_sites=0)
        with pytest.raises(ValueError):
            SimulationParams(n_taxa=5, n_sites=10, proportion_invariant=1.5)

    def test_test_dataset_helper(self):
        pal, tree = make_test_dataset(n_taxa=5, n_sites=60, seed=2)
        assert pal.n_taxa == 5
        assert pal.n_sites == 60
        tree.validate()
