"""Tests for starting-tree construction (repro.search.starting_tree)."""

import pytest

from repro.likelihood.parsimony import fitch_score
from repro.search.starting_tree import parsimony_starting_tree, random_starting_tree
from repro.tree.bipartitions import tree_bipartitions
from repro.util.rng import RAxMLRandom


class TestParsimonyStartingTree:
    def test_valid_complete_tree(self, tiny_pal):
        t = parsimony_starting_tree(tiny_pal, RAxMLRandom(1))
        t.validate()
        assert sorted(l.name for l in t.leaves()) == sorted(tiny_pal.taxa)

    def test_deterministic(self, tiny_pal):
        t1 = parsimony_starting_tree(tiny_pal, RAxMLRandom(5))
        t2 = parsimony_starting_tree(tiny_pal, RAxMLRandom(5))
        assert tree_bipartitions(t1) == tree_bipartitions(t2)

    def test_seeds_diversify(self, small_pal):
        """Different addition orders should usually give different trees."""
        trees = [
            parsimony_starting_tree(small_pal, RAxMLRandom(s)) for s in range(1, 6)
        ]
        splits = {frozenset(tree_bipartitions(t)) for t in trees}
        assert len(splits) >= 2

    def test_beats_random_on_parsimony(self, small_pal):
        """The guided tree must score no worse than a random topology."""
        pars = parsimony_starting_tree(small_pal, RAxMLRandom(3))
        rand = random_starting_tree(small_pal, RAxMLRandom(3))
        assert fitch_score(small_pal, pars) <= fitch_score(small_pal, rand)

    def test_bootstrap_weights_respected(self, tiny_pal):
        """Different replicate weights can change the chosen topology, and
        at minimum must not break construction."""
        import numpy as np

        w = np.zeros(tiny_pal.n_patterns)
        w[: max(1, tiny_pal.n_patterns // 4)] = 4.0
        t = parsimony_starting_tree(tiny_pal, RAxMLRandom(2), weights=w)
        t.validate()


class TestRandomStartingTree:
    def test_valid(self, tiny_pal):
        t = random_starting_tree(tiny_pal, RAxMLRandom(1))
        t.validate()
        assert t.taxa == tiny_pal.taxa
