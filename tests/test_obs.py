"""Tests for the observability layer (repro.obs)."""

import json

import pytest

from repro.datasets.generator import SimulationParams, simulate_alignment
from repro.hybrid.checkpoint import config_fingerprint
from repro.hybrid.driver import HybridConfig, run_hybrid_analysis
from repro.obs.metrics import Histogram, MetricsRegistry, aggregate
from repro.obs.recorder import MAIN_TRACK, Recorder, current, recording
from repro.obs.report import (
    fig34_decomposition,
    format_stage_report,
    run_report,
    stage_decomposition,
)
from repro.obs.trace import (
    TraceValidationError,
    chrome_trace,
    validate_chrome_trace,
    validate_trace_file,
    write_chrome_trace,
)
from repro.search.comprehensive import ComprehensiveConfig
from repro.search.searches import StageParams
from repro.seq.patterns import compress_alignment
from repro.util.timing import VirtualClock


class TestRecorder:
    def test_span_timestamps_come_from_the_clock(self):
        clock = VirtualClock()
        rec = Recorder(rank=3, clock=clock)
        clock.advance(1.5)
        rec.span("stage-a", "stage", 0.5)
        (e,) = rec.export_events()
        assert e == {
            "type": "span", "name": "stage-a", "cat": "stage",
            "rank": 3, "track": MAIN_TRACK, "t0": 0.5, "t1": 1.5, "args": None,
        }

    def test_measure_context_manager(self):
        clock = VirtualClock()
        rec = Recorder(clock=clock)
        with rec.measure("work", "stage"):
            clock.advance(2.0)
        (e,) = rec.export_events()
        assert (e["t0"], e["t1"]) == (0.0, 2.0)

    def test_instant_defaults_to_now(self):
        clock = VirtualClock(7.0)
        rec = Recorder(clock=clock)
        rec.instant("retry", "comm", args={"attempt": 1})
        (e,) = rec.export_events()
        assert e["type"] == "instant" and e["t"] == 7.0

    def test_metrics_only_mode_drops_events_keeps_counters(self):
        rec = Recorder(record_events=False)
        rec.span("x", "stage", 0.0, 1.0)
        rec.instant("y", "comm")
        rec.thread_regions(0.0, 1.0, [1.0], count=5)
        rec.count("calls", 3)
        assert rec.export_events() == []
        assert rec.metrics.counters["calls"] == 3

    def test_max_events_overflow_counts_dropped(self):
        rec = Recorder(max_events=2)
        for i in range(5):
            rec.instant(f"e{i}", "comm", t=float(i))
        assert len(rec.export_events()) == 2
        assert rec.dropped == 3

    def test_export_is_sorted_by_start_time(self):
        rec = Recorder()
        rec.instant("late", "comm", t=5.0)
        rec.span("early", "stage", 1.0, 2.0)
        names = [e["name"] for e in rec.export_events()]
        assert names == ["early", "late"]

    def test_thread_local_current(self):
        assert current() is None
        rec = Recorder()
        with recording(rec):
            assert current() is rec
            with recording(None):  # masking nests
                assert current() is None
            assert current() is rec
        assert current() is None


class TestRegionCoalescing:
    def test_abutting_regions_merge_into_one_span_per_thread(self):
        rec = Recorder(n_threads=2)
        rec.thread_regions(0.0, 1.0, [1.0, 0.5])
        rec.thread_regions(1.0, 2.0, [1.0, 0.25])
        events = rec.export_events()
        assert len(events) == 2  # one per thread lane, not per region
        by_track = {e["track"]: e for e in events}
        assert by_track[1]["args"] == {"regions": 2, "busy_s": 2.0, "util": 1.0}
        assert by_track[2]["args"]["busy_s"] == 0.75
        assert by_track[2]["t0"] == 0.0 and by_track[2]["t1"] == 2.0

    def test_gap_in_virtual_time_flushes_the_batch(self):
        rec = Recorder(n_threads=1)
        rec.thread_regions(0.0, 1.0, [1.0])
        rec.thread_regions(1.5, 2.0, [0.5])  # comm advanced the clock
        events = rec.export_events()
        assert len(events) == 2
        assert [e["args"]["regions"] for e in events] == [1, 1]

    def test_main_track_span_flushes_pending_regions(self):
        rec = Recorder(n_threads=1)
        rec.thread_regions(0.0, 1.0, [1.0])
        rec.span("bootstrap", "stage", 0.0, 1.0)
        rec.thread_regions(1.0, 2.0, [1.0])  # would abut without the span
        events = rec.export_events()
        kernel = [e for e in events if e["cat"] == "kernel"]
        assert len(kernel) == 2  # segmented at the stage boundary

    def test_batch_limit_forces_flush(self):
        rec = Recorder(n_threads=1, region_batch_limit=3)
        for i in range(7):
            rec.thread_regions(float(i), float(i + 1), [1.0])
        counts = [e["args"]["regions"] for e in rec.export_events()]
        assert counts == [3, 3, 1]


class TestMetrics:
    def test_histogram_power_of_two_buckets(self):
        h = Histogram()
        for v in (0.0, 1.0, 3.0, 4.0, 1000.0):
            h.observe(v)
        d = h.to_dict()
        assert d["count"] == 5 and d["min"] == 0.0 and d["max"] == 1000.0
        assert d["buckets"] == {"0": 1, "2^0": 1, "2^2": 2, "2^10": 1}

    def test_histogram_rejects_negative(self):
        with pytest.raises(ValueError):
            Histogram().observe(-1.0)

    def test_registry_roundtrip(self):
        m = MetricsRegistry()
        m.inc("calls")
        m.inc("calls", 2)
        m.set_gauge("depth", 4.0)
        m.observe("bytes", 100.0)
        d = m.to_dict()
        assert d["counters"] == {"calls": 3.0}
        assert d["gauges"] == {"depth": 4.0}
        assert d["histograms"]["bytes"]["count"] == 1

    def test_aggregate_sums_counters_extremes_gauges(self):
        a = MetricsRegistry()
        a.inc("calls", 2)
        a.set_gauge("t", 1.0)
        a.observe("b", 8.0)
        b = MetricsRegistry()
        b.inc("calls", 3)
        b.set_gauge("t", 5.0)
        b.observe("b", 2.0)
        agg = aggregate([a.to_dict(), b.to_dict()])
        assert agg["counters"]["calls"] == 5.0
        assert agg["gauges"]["t"] == {"min": 1.0, "max": 5.0}
        assert agg["histograms"]["b"]["count"] == 2
        assert agg["histograms"]["b"]["mean"] == 5.0


class TestChromeTrace:
    def _events(self):
        rec = Recorder(rank=0, n_threads=1)
        rec.span("bootstrap", "stage", 0.0, 2.0)
        rec.instant("retry", "comm", t=1.0)
        return rec.export_events()

    def test_document_structure_and_validation(self):
        doc = chrome_trace(self._events(), n_threads=1, meta={"machine": "dash"})
        stats = validate_chrome_trace(doc)
        assert stats["spans"] == 1 and stats["instants"] == 1
        assert stats["processes"] == 1
        assert doc["otherData"] == {"machine": "dash"}

    def test_metadata_names_every_rank_and_track(self):
        doc = chrome_trace(self._events(), n_threads=2)
        names = {
            (e["pid"], e["tid"], e["args"]["name"])
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert names == {
            (0, 0, "rank main"), (0, 1, "vthread 1"), (0, 2, "vthread 2"),
        }

    def test_timestamps_scaled_to_microseconds(self):
        doc = chrome_trace(self._events())
        span = next(e for e in doc["traceEvents"] if e["ph"] == "X")
        assert span["ts"] == 0.0 and span["dur"] == 2.0e6

    def test_validator_rejects_bad_documents(self):
        with pytest.raises(TraceValidationError):
            validate_chrome_trace({"traceEvents": "nope"})
        with pytest.raises(TraceValidationError):
            validate_chrome_trace({"traceEvents": [{"ph": "Z", "name": "x",
                                                   "pid": 0, "tid": 0}]})
        with pytest.raises(TraceValidationError):
            validate_chrome_trace({"traceEvents": [
                {"ph": "X", "name": "x", "pid": 0, "tid": 0,
                 "ts": -1.0, "dur": 1.0},
            ]})

    def test_write_and_validate_file(self, tmp_path):
        doc = chrome_trace(self._events(), n_threads=1)
        path = write_chrome_trace(tmp_path / "t.json", doc)
        stats = validate_trace_file(path)
        assert stats["events"] == len(doc["traceEvents"])

    def test_file_validator_rejects_non_json(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text("{not json", encoding="ascii")
        with pytest.raises(TraceValidationError):
            validate_trace_file(p)


class TestStageReport:
    PER_RANK = [
        {"bootstrap": 4.0, "fast": 2.0, "slow": 1.0, "thorough": 3.0},
        {"bootstrap": 2.0, "fast": 4.0, "slow": 1.0, "thorough": 5.0},
    ]

    def test_fig34_takes_last_process_to_finish(self):
        assert fig34_decomposition(self.PER_RANK) == {
            "bootstrap": 4.0, "fast": 4.0, "slow": 1.0, "thorough": 5.0,
        }

    def test_stage_decomposition_hand_computed(self):
        rows = {r["stage"]: r for r in stage_decomposition(self.PER_RANK)}
        boot = rows["bootstrap"]
        assert boot["max"] == 4.0 and boot["mean"] == 3.0 and boot["min"] == 2.0
        assert boot["imbalance"] == pytest.approx(4.0 / 3.0)
        assert boot["efficiency"] == pytest.approx(0.75)
        slow = rows["slow"]  # perfectly balanced stage
        assert slow["imbalance"] == 1.0 and slow["efficiency"] == 1.0
        assert "setup" not in rows  # zero stages omitted

    def test_run_report_totals_and_comm_fraction(self):
        doc = run_report(self.PER_RANK, comm_seconds=[1.0, 3.0],
                         n_processes=2, n_threads=4)
        assert doc["total_seconds"] == 12.0  # slowest rank: 2+4+1+5
        assert doc["total_imbalance"] == pytest.approx(12.0 * 2 / 22.0)
        assert doc["comm_fraction"] == [pytest.approx(0.1), pytest.approx(0.25)]
        assert doc["layout"] == {"n_processes": 2, "n_threads": 4}

    def test_format_stage_report_renders_all_rows(self):
        text = format_stage_report(stage_decomposition(self.PER_RANK))
        for stage in ("bootstrap", "fast", "slow", "thorough"):
            assert stage in text

    def test_empty_per_rank_rejected(self):
        with pytest.raises(ValueError):
            stage_decomposition([])
        with pytest.raises(ValueError):
            fig34_decomposition([])


# -- hybrid-run integration ---------------------------------------------------


def _tiny_pal():
    aln, _ = simulate_alignment(SimulationParams(n_taxa=6, n_sites=80, seed=5))
    return compress_alignment(aln)


def _tiny_config(**kwargs) -> HybridConfig:
    return HybridConfig(
        n_processes=2,
        n_threads=2,
        comprehensive=ComprehensiveConfig(
            n_bootstraps=2,
            stage_params=StageParams(slow_max_rounds=1, thorough_max_rounds=1),
        ),
        **kwargs,
    )


class TestHybridObservability:
    def test_trace_covers_every_rank_and_thread_lane(self):
        result = run_hybrid_analysis(_tiny_pal(), _tiny_config(collect_trace=True))
        stats = validate_chrome_trace(result.trace)
        assert stats["processes"] == 2
        assert stats["tracks"] >= 2 * 3  # main + 2 vthread lanes per rank
        cats = {
            e.get("cat") for e in result.trace["traceEvents"] if e["ph"] == "X"
        }
        assert {"stage", "comm", "kernel", "search"} <= cats
        stage_names = {
            e["name"] for e in result.trace["traceEvents"]
            if e["ph"] == "X" and e.get("cat") == "stage"
        }
        assert {"setup", "bootstrap", "fast", "slow", "thorough",
                "finalize"} <= stage_names

    def test_metrics_report_matches_result_stage_seconds(self):
        result = run_hybrid_analysis(
            _tiny_pal(), _tiny_config(collect_metrics=True)
        )
        assert result.trace is None  # metrics-only mode records no events
        fig34 = result.metrics["report"]["fig34_stage_seconds"]
        for stage, seconds in fig34.items():
            assert seconds == pytest.approx(result.stage_seconds[stage])
        agg = result.metrics["aggregate"]["counters"]
        assert agg["comm.calls.barrier"] == 2.0  # one per rank
        assert agg["threads.regions"] > 0
        assert json.dumps(result.metrics)  # JSON-serialisable throughout

    def test_observability_does_not_change_results(self):
        pal = _tiny_pal()
        plain = run_hybrid_analysis(pal, _tiny_config())
        traced = run_hybrid_analysis(pal, _tiny_config(collect_trace=True,
                                                       collect_metrics=True))
        assert traced.best_lnl == plain.best_lnl
        assert traced.total_seconds == plain.total_seconds
        assert traced.stage_seconds == plain.stage_seconds
        assert plain.trace is None and plain.metrics is None

    def test_fingerprint_ignores_observability_flags(self):
        pal = _tiny_pal()
        assert config_fingerprint(pal, _tiny_config()) == config_fingerprint(
            pal, _tiny_config(collect_trace=True, collect_metrics=True)
        )

    def test_resumed_run_splices_trace_and_stays_identical(self, tmp_path):
        pal = _tiny_pal()
        ckpt = str(tmp_path / "ckpt")
        full = run_hybrid_analysis(
            pal, _tiny_config(checkpoint_dir=ckpt, collect_trace=True)
        )
        resumed = run_hybrid_analysis(
            pal, _tiny_config(checkpoint_dir=ckpt, resume=True,
                              collect_trace=True)
        )
        assert resumed.best_lnl == full.best_lnl
        assert resumed.total_seconds == full.total_seconds
        spans = [e for e in resumed.trace["traceEvents"] if e["ph"] == "X"]
        resumed_stages = {
            e["name"] for e in spans if e["args"].get("resumed")
        }
        # Every checkpointed stage splices in as one flagged span; the
        # trace still validates as a whole.
        assert {"bootstrap", "fast", "slow", "thorough"} <= resumed_stages
        validate_chrome_trace(resumed.trace)
