"""Regression tests for collective edge cases (dead peers vs None payloads)."""

import pytest

from repro.mpi.comm import (
    DEAD_RANK,
    AllRanksDeadError,
    CommTiming,
    RankFailure,
    SimComm,
    SPMDError,
    _World,
)
from repro.mpi.faults import FaultPlan, KillSpec
from repro.mpi.launcher import run_spmd


class TestAllreduceNonePayloads:
    """A rank legitimately contributing None must participate in the
    reduction — only the DEAD_RANK sentinel marks absent peers."""

    def test_all_none_payloads_reduce_cleanly(self):
        def fn(comm):
            return comm.allreduce(None, op=lambda a, b: None)

        assert run_spmd(fn, 3) == [None] * 3

    def test_mixed_none_and_values(self):
        def fn(comm):
            value = None if comm.rank == 1 else comm.rank + 1
            return comm.allreduce(value, op=lambda a, b: (a or 0) + (b or 0))

        # ranks contribute 1, None, 3 -> 4 everywhere (None treated as 0
        # by the op, not silently dropped by the runtime).
        assert run_spmd(fn, 3) == [4] * 3

    def test_sentinel_is_not_none_and_reprs(self):
        assert DEAD_RANK is not None
        assert repr(DEAD_RANK) == "<dead rank>"


class TestAllreduceAllDead:
    def _lone_comm(self, monkeypatch, resilient: bool) -> SimComm:
        plan = FaultPlan(kills=[KillSpec(rank=99, collective=0)]) if resilient else None
        world = _World(2, CommTiming(), timeout=1.0, fault_plan=plan)
        comm = SimComm(world, 0)
        # Simulate every participant dead: the exchange yields an empty
        # board (nobody contributed, not even this rank's own entry).
        monkeypatch.setattr(comm, "_exchange", lambda value, op=None: {})
        return comm

    def test_empty_board_raises_all_ranks_dead(self, monkeypatch):
        comm = self._lone_comm(monkeypatch, resilient=True)
        with pytest.raises(AllRanksDeadError, match="nothing to reduce"):
            comm.allreduce(1)

    def test_error_is_not_a_bare_index_error(self, monkeypatch):
        comm = self._lone_comm(monkeypatch, resilient=True)
        try:
            comm.allreduce(1)
        except AllRanksDeadError as exc:
            assert "rank 0" in str(exc)
        else:  # pragma: no cover - the raise is the point
            pytest.fail("expected AllRanksDeadError")


class TestBcastDeadRoot:
    def test_resilient_bcast_from_dead_root_raises_rank_failure(self):
        plan = FaultPlan(kills=[KillSpec(rank=0, collective=0)])

        def fn(comm):
            try:
                comm.barrier()  # kills rank 0 on entry
            except RankFailure as exc:
                assert exc.dead == (0,)
            if comm.rank == 0:  # pragma: no cover - rank 0 is dead
                return None
            with pytest.raises(RankFailure) as info:
                comm.bcast("payload" if comm.rank == 0 else None, root=0)
            # The frozen death set rides on the error so survivors can
            # recover in lockstep.
            return (info.value.op, info.value.dead)

        results = run_spmd(fn, 3, fault_plan=plan)
        assert results[0] is None  # killed rank contributes nothing
        assert results[1] == ("bcast", (0,))
        assert results[2] == ("bcast", (0,))

    def test_non_resilient_dead_root_is_spmd_error(self, monkeypatch):
        world = _World(2, CommTiming(), timeout=1.0)
        comm = SimComm(world, 1)
        monkeypatch.setattr(
            comm, "_exchange", lambda value, op=None: {1: (None, 0.0)}
        )
        with pytest.raises(SPMDError, match="root 0 is dead") as info:
            comm.bcast(None, root=0)
        assert not isinstance(info.value, RankFailure)

    def test_known_dead_accumulates_across_collectives(self):
        plan = FaultPlan(kills=[KillSpec(rank=1, collective=0)])

        def fn(comm):
            if comm.rank == 1:
                comm.barrier()  # dies here
                return None  # pragma: no cover
            with pytest.raises(RankFailure):
                comm.barrier()
            value = comm.bcast(comm.rank if comm.rank == 0 else None, root=0)
            return (value, comm.known_dead)

        results = run_spmd(fn, 3, fault_plan=plan)
        assert results[0] == (0, [1])
        assert results[2] == (0, [1])
