"""Run the package's docstring examples as tests."""

import doctest

import pytest

import repro.likelihood.gamma
import repro.seq.encoding
import repro.util.rng

MODULES = [
    repro.util.rng,
    repro.seq.encoding,
    repro.likelihood.gamma,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    result = doctest.testmod(module)
    assert result.attempted > 0, f"{module.__name__} has no doctests"
    assert result.failed == 0
