"""Tests for the virtual Pthreads layer (repro.threads)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.likelihood.brlen import optimize_branch_lengths
from repro.likelihood.engine import LikelihoodEngine, RateModel
from repro.threads.partition import (
    chunk_sizes,
    contiguous_chunks,
    cyclic_assignment,
    imbalance,
    weighted_chunks,
)
from repro.threads.pool import VirtualThreadPool
from repro.threads.threaded_engine import ThreadedLikelihoodEngine
from repro.threads.timing import LinearRegionTiming, ZeroTiming


class TestPartition:
    def test_chunk_sizes_sum(self):
        assert sum(chunk_sizes(17, 4)) == 17

    def test_chunk_sizes_balance(self):
        sizes = chunk_sizes(17, 4)
        assert max(sizes) - min(sizes) <= 1

    def test_more_threads_than_items(self):
        sizes = chunk_sizes(3, 8)
        assert sum(sizes) == 3
        assert sizes.count(0) == 5

    def test_contiguous_chunks_cover(self):
        chunks = contiguous_chunks(10, 3)
        covered = []
        for c in chunks:
            covered.extend(range(c.start, c.stop))
        assert covered == list(range(10))

    def test_cyclic_assignment_partition(self):
        idx = cyclic_assignment(11, 3)
        merged = np.sort(np.concatenate(idx))
        assert merged.tolist() == list(range(11))
        assert idx[0].tolist() == [0, 3, 6, 9]

    def test_validation(self):
        with pytest.raises(ValueError):
            chunk_sizes(5, 0)
        with pytest.raises(ValueError):
            chunk_sizes(-1, 2)
        with pytest.raises(ValueError):
            cyclic_assignment(5, 0)

    @settings(max_examples=30)
    @given(st.integers(0, 500), st.integers(1, 64))
    def test_partition_properties(self, n, t):
        sizes = chunk_sizes(n, t)
        assert len(sizes) == t
        assert sum(sizes) == n
        assert max(sizes) - min(sizes) <= 1


class TestWeightedChunks:
    def test_uniform_costs_match_contiguous(self):
        costs = np.ones(12)
        assert weighted_chunks(costs, 4) == contiguous_chunks(12, 4)

    def test_skewed_costs_rebalanced(self):
        # First half is 10x as expensive.
        costs = np.concatenate([np.full(50, 10.0), np.full(50, 1.0)])
        chunks = weighted_chunks(costs, 4)
        assert imbalance(costs, chunks) < 1.15
        # A plain equal-count split is far worse.
        assert imbalance(costs, contiguous_chunks(100, 4)) > 1.5

    def test_covers_everything_in_order(self):
        costs = np.arange(1, 30, dtype=float)
        chunks = weighted_chunks(costs, 5)
        assert chunks[0].start == 0
        assert chunks[-1].stop == 29
        for a, b in zip(chunks, chunks[1:]):
            assert a.stop == b.start

    def test_zero_total_falls_back(self):
        chunks = weighted_chunks(np.zeros(10), 3)
        assert sum(c.stop - c.start for c in chunks) == 10

    def test_empty(self):
        assert weighted_chunks(np.array([]), 3) == [slice(0, 0)] * 3

    def test_validation(self):
        with pytest.raises(ValueError):
            weighted_chunks(np.ones(5), 0)
        with pytest.raises(ValueError):
            weighted_chunks(-np.ones(5), 2)
        with pytest.raises(ValueError):
            weighted_chunks(np.ones((2, 2)), 2)

    @settings(max_examples=30)
    @given(st.lists(st.floats(0.0, 100.0), min_size=1, max_size=80),
           st.integers(1, 16))
    def test_cover_property(self, costs, t):
        c = np.array(costs)
        chunks = weighted_chunks(c, t)
        assert len(chunks) == t
        covered = []
        for sl in chunks:
            covered.extend(range(sl.start, sl.stop))
        assert covered == list(range(len(costs)))

    def test_imbalance_of_perfect_split(self):
        assert imbalance(np.ones(8), contiguous_chunks(8, 4)) == 1.0


class TestTiming:
    def test_zero_timing(self):
        assert ZeroTiming().region_seconds([10, 10], 4) == 0.0

    def test_linear_timing_computes(self):
        t = LinearRegionTiming(per_pattern_second=1e-3, sync_quadratic=1e-3)
        # max chunk 10, 2 cats -> 0.02 compute; 2 threads -> 0.004 sync.
        assert t.region_seconds([10, 8], 2) == pytest.approx(0.024)

    def test_single_thread_no_sync(self):
        t = LinearRegionTiming(per_pattern_second=1e-3, sync_quadratic=1.0)
        assert t.region_seconds([10], 1) == pytest.approx(0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinearRegionTiming(per_pattern_second=-1)
        with pytest.raises(ValueError):
            LinearRegionTiming().region_seconds([10], 0)


class TestPool:
    def test_run_region_executes_chunks(self):
        pool = VirtualThreadPool(3)
        results = pool.run_region(lambda sl: sl.stop - sl.start, 10)
        assert sum(r for r in results if r) == 10

    def test_empty_chunks_give_none(self):
        pool = VirtualThreadPool(8)
        results = pool.run_region(lambda sl: 1, 3)
        assert results.count(None) == 5

    def test_virtual_time_accumulates(self):
        pool = VirtualThreadPool(2, LinearRegionTiming(1e-3, 0.0))
        pool.run_region(lambda sl: None, 10)
        pool.run_region(lambda sl: None, 10)
        assert pool.virtual_time == pytest.approx(2 * 5 * 1e-3)
        assert pool.regions_executed == 2

    def test_charge_regions_bulk(self):
        pool = VirtualThreadPool(2, LinearRegionTiming(1e-3, 0.0))
        pool.charge_regions(10, 10, 1)
        assert pool.virtual_time == pytest.approx(10 * 5e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            VirtualThreadPool(0)
        with pytest.raises(ValueError):
            VirtualThreadPool(2).charge_regions(-1, 10, 1)


class TestThreadedEngineEquivalence:
    @pytest.fixture()
    def serial(self, small_pal, gtr_model):
        return LikelihoodEngine(small_pal, gtr_model, RateModel.gamma(0.8, 4))

    @pytest.mark.parametrize("n_threads", [1, 2, 3, 7, 16])
    def test_loglikelihood_matches_serial(self, small_pal, gtr_model, serial, tiny_tree, n_threads):
        from repro.tree.random_trees import yule_tree
        from repro.util.rng import RAxMLRandom

        tree = yule_tree(small_pal.taxa, RAxMLRandom(12))
        pool = VirtualThreadPool(n_threads)
        threaded = ThreadedLikelihoodEngine(
            small_pal, gtr_model, pool, RateModel.gamma(0.8, 4)
        )
        assert threaded.loglikelihood(tree) == pytest.approx(
            serial.loglikelihood(tree), abs=1e-9
        )

    def test_site_loglikelihoods_match(self, small_pal, gtr_model, serial):
        from repro.tree.random_trees import yule_tree
        from repro.util.rng import RAxMLRandom

        tree = yule_tree(small_pal.taxa, RAxMLRandom(12))
        pool = VirtualThreadPool(4)
        threaded = ThreadedLikelihoodEngine(
            small_pal, gtr_model, pool, RateModel.gamma(0.8, 4)
        )
        assert np.allclose(
            threaded.site_loglikelihoods(tree), serial.site_loglikelihoods(tree)
        )

    def test_branch_optimisation_matches_serial(self, small_pal, gtr_model, serial):
        from repro.tree.random_trees import yule_tree
        from repro.util.rng import RAxMLRandom

        t1 = yule_tree(small_pal.taxa, RAxMLRandom(12))
        t2 = t1.copy()
        pool = VirtualThreadPool(4)
        threaded = ThreadedLikelihoodEngine(
            small_pal, gtr_model, pool, RateModel.gamma(0.8, 4)
        )
        l_serial = optimize_branch_lengths(serial, t1, passes=2)
        l_threaded = optimize_branch_lengths(threaded, t2, passes=2)
        assert l_threaded == pytest.approx(l_serial, abs=1e-6)

    def test_cat_mode_matches_serial(self, small_pal, gtr_model):
        from repro.tree.random_trees import yule_tree
        from repro.util.rng import RAxMLRandom

        tree = yule_tree(small_pal.taxa, RAxMLRandom(12))
        p2c = np.arange(small_pal.n_patterns) % 3
        rm = RateModel.cat(np.array([0.3, 1.0, 2.0]), p2c)
        serial = LikelihoodEngine(small_pal, gtr_model, rm)
        threaded = ThreadedLikelihoodEngine(
            small_pal, gtr_model, VirtualThreadPool(5), rm
        )
        assert threaded.loglikelihood(tree) == pytest.approx(
            serial.loglikelihood(tree), abs=1e-9
        )

    def test_insertion_loglikelihood_matches(self, small_pal, gtr_model, serial):
        from repro.tree.random_trees import yule_tree
        from repro.util.rng import RAxMLRandom

        tree = yule_tree(small_pal.taxa, RAxMLRandom(12))
        pool = VirtualThreadPool(3)
        threaded = ThreadedLikelihoodEngine(
            small_pal, gtr_model, pool, RateModel.gamma(0.8, 4)
        )
        leaf = tree.find_leaf(small_pal.taxa[0])
        other = tree.find_leaf(small_pal.taxa[3])

        sd = serial.compute_down_partials(tree)
        su = serial.compute_up_partials(tree, sd)
        expected = serial.insertion_loglikelihood(
            sd[id(other)], su[id(other)], sd[id(leaf)], other.length, leaf.length
        )
        td = threaded.compute_down_partials(tree)
        tu = threaded.compute_up_partials(tree, td)
        got = threaded.insertion_loglikelihood(
            threaded.partial_for(td, other),
            threaded.partial_for(tu, other),
            threaded.partial_for(td, leaf),
            other.length,
            leaf.length,
        )
        assert got == pytest.approx(expected, abs=1e-9)

    def test_region_accounting_scales_with_tree(self, small_pal, gtr_model):
        from repro.tree.random_trees import yule_tree
        from repro.util.rng import RAxMLRandom

        tree = yule_tree(small_pal.taxa, RAxMLRandom(12))
        pool = VirtualThreadPool(2, LinearRegionTiming())
        threaded = ThreadedLikelihoodEngine(
            small_pal, gtr_model, pool, RateModel.gamma(0.8, 4)
        )
        threaded.loglikelihood(tree)
        n_internal = sum(1 for n in tree.postorder() if not n.is_leaf)
        assert pool.regions_executed == n_internal + 1

    def test_timing_shape_optimal_threads(self, small_pal, gtr_model):
        """With quadratic sync costs, moderate thread counts beat both
        extremes for small pattern counts (the paper's core tradeoff)."""
        from repro.tree.random_trees import yule_tree
        from repro.util.rng import RAxMLRandom

        tree = yule_tree(small_pal.taxa, RAxMLRandom(12))
        times = {}
        for t in (1, 2, 16):
            pool = VirtualThreadPool(t, LinearRegionTiming(1e-6, 2e-6))
            engine = ThreadedLikelihoodEngine(
                small_pal, gtr_model, pool, RateModel.gamma(0.8, 4)
            )
            engine.loglikelihood(tree)
            times[t] = pool.virtual_time
        assert times[2] < times[1]
        assert times[2] < times[16]
