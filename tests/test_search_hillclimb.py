"""Tests for hill climbing and the stage searches (repro.search.hillclimb,
repro.search.searches)."""

import pytest

from repro.likelihood.engine import LikelihoodEngine, OpCounter, RateModel
from repro.search.hillclimb import SearchResult, hill_climb
from repro.search.searches import (
    StageParams,
    bootstrap_replicate_search,
    fast_search,
    slow_search,
    thorough_search,
)
from repro.search.starting_tree import random_starting_tree
from repro.seq.bootstrap import bootstrap_pattern_weights
from repro.util.rng import RAxMLRandom


@pytest.fixture()
def engine(tiny_pal, gtr_model):
    return LikelihoodEngine(tiny_pal, gtr_model, RateModel.gamma(0.8, 4))


@pytest.fixture()
def start(tiny_pal):
    return random_starting_tree(tiny_pal, RAxMLRandom(555))


class TestHillClimb:
    def test_improves_and_validates(self, engine, start):
        before = engine.loglikelihood(start)
        res = hill_climb(engine, start, max_rounds=4, max_radius=8)
        assert res.lnl > before
        res.tree.validate()

    def test_input_not_mutated(self, engine, start):
        lengths = [e.length for e in start.edges()]
        hill_climb(engine, start, max_rounds=2)
        assert [e.length for e in start.edges()] == lengths

    def test_result_iterable(self, engine, start):
        res = hill_climb(engine, start, max_rounds=1)
        tree, lnl = res
        assert tree is res.tree and lnl == res.lnl

    def test_bad_radius_schedule(self, engine, start):
        with pytest.raises(ValueError):
            hill_climb(engine, start, initial_radius=0)
        with pytest.raises(ValueError):
            hill_climb(engine, start, initial_radius=5, max_radius=3)


class TestStageSearches:
    def test_bootstrap_replicate_search(self, tiny_pal, gtr_model, start):
        w = bootstrap_pattern_weights(tiny_pal, RAxMLRandom(4))
        engine = LikelihoodEngine(tiny_pal, gtr_model, RateModel.gamma(0.8, 4), weights=w)
        res = bootstrap_replicate_search(engine, start, RAxMLRandom(5))
        res.tree.validate()
        assert isinstance(res, SearchResult)

    def test_fast_search_improves(self, engine, start):
        before = engine.loglikelihood(start)
        res = fast_search(engine, start, RAxMLRandom(5))
        assert res.lnl > before

    def test_slow_beats_or_matches_fast(self, engine, start):
        params = StageParams(slow_max_rounds=3)
        f = fast_search(engine, start, RAxMLRandom(5), params)
        s = slow_search(engine, f.tree, RAxMLRandom(6), params)
        assert s.lnl >= f.lnl - 0.05

    def test_thorough_search_returns_engine(self, tiny_pal, start):
        from repro.likelihood.gtr import GTRModel

        engine = LikelihoodEngine(tiny_pal, GTRModel.jc69(), RateModel.gamma(1.0, 4))
        params = StageParams(thorough_max_rounds=2, model_opt_rounds=1)
        res, final_engine = thorough_search(engine, start, RAxMLRandom(7), params)
        res.tree.validate()
        # Model optimisation should have moved frequencies off JC.
        assert final_engine.model.freqs != (0.25, 0.25, 0.25, 0.25)
        assert res.lnl == pytest.approx(
            final_engine.loglikelihood(res.tree), abs=0.5
        )

    def test_searches_share_op_counter(self, tiny_pal, gtr_model, start):
        ops = OpCounter()
        engine = LikelihoodEngine(tiny_pal, gtr_model, RateModel.gamma(0.8, 4), ops=ops)
        fast_search(engine, start, RAxMLRandom(5))
        assert ops.pattern_ops > 0
