"""Durability tests for atomic checkpoint writes (fsync discipline)."""

import json
import os

from repro.hybrid.checkpoint import FORMAT_VERSION, CheckpointStore


def _store(tmp_path) -> CheckpointStore:
    return CheckpointStore(tmp_path / "ckpt", rank=2, fingerprint="fp")


class TestCheckpointDurability:
    def test_temp_file_is_fsynced_before_rename(self, tmp_path, monkeypatch):
        synced: list[int] = []
        replaced: list[tuple[str, str]] = []
        real_fsync, real_replace = os.fsync, os.replace

        def spy_fsync(fd):
            synced.append(fd)
            real_fsync(fd)

        def spy_replace(src, dst):
            # The rename must happen strictly after the data fsync.
            assert len(synced) >= 1, "os.replace before fsync of the temp file"
            replaced.append((str(src), str(dst)))
            real_replace(src, dst)

        monkeypatch.setattr(os, "fsync", spy_fsync)
        monkeypatch.setattr(os, "replace", spy_replace)
        store = _store(tmp_path)
        store.save("fast", {"results": [1, 2, 3]})
        assert len(replaced) == 1
        # Two syncs: the temp file's data, then the directory entry.
        assert len(synced) == 2

    def test_fsync_replace_fsync_order(self, tmp_path, monkeypatch):
        order: list[str] = []
        real_fsync, real_replace = os.fsync, os.replace

        monkeypatch.setattr(
            os, "fsync", lambda fd: (order.append("fsync"), real_fsync(fd))[1]
        )
        monkeypatch.setattr(
            os, "replace",
            lambda s, d: (order.append("replace"), real_replace(s, d))[1],
        )
        _store(tmp_path).save("slow", {"x": 1})
        # Data sync, atomic rename, then directory-entry sync.
        assert order == ["fsync", "replace", "fsync"]

    def test_written_checkpoint_is_complete_json(self, tmp_path):
        store = _store(tmp_path)
        payload = {"results": [[1.5, "((a,b),c);"]], "clock": 12.25}
        store.save("bootstrap", payload)
        path = store.path("bootstrap")
        doc = json.loads(path.read_bytes().decode("ascii"))
        assert doc["format"] == FORMAT_VERSION
        assert doc["rank"] == 2 and doc["stage"] == "bootstrap"
        assert doc["payload"] == payload

    def test_no_temp_file_left_behind(self, tmp_path):
        store = _store(tmp_path)
        store.save("fast", {"a": 1})
        leftovers = list((tmp_path / "ckpt").glob("*.tmp"))
        assert leftovers == []

    def test_save_then_load_roundtrip(self, tmp_path):
        store = _store(tmp_path)
        store.save("thorough", {"lnl": -1234.5})
        assert store.load("thorough")["lnl"] == -1234.5

    def test_missing_directory_fsync_is_tolerated(self, tmp_path, monkeypatch):
        """Platforms that refuse directory fds must not break saves."""
        real_open = os.open

        def failing_open(path, flags, *a, **kw):
            if os.path.isdir(path):
                raise OSError("no directory fds here")
            return real_open(path, flags, *a, **kw)

        monkeypatch.setattr(os, "open", failing_open)
        store = _store(tmp_path)
        store.save("fast", {"ok": True})
        assert store.load("fast") == {"ok": True}
