"""Tests for bipartitions and tree distances (repro.tree.bipartitions,
repro.tree.distances)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tree.bipartitions import Bipartition, bipartition_of_edge, tree_bipartitions
from repro.tree.distances import branch_score_distance, robinson_foulds
from repro.tree.newick import parse_newick
from repro.tree.random_trees import random_topology
from repro.util.rng import RAxMLRandom


class TestBipartition:
    def test_canonical_excludes_taxon_zero(self):
        b = Bipartition.from_leafset([1, 2], 5)
        assert b.mask == 0b00110

    def test_complement_canonicalised(self):
        b1 = Bipartition.from_leafset([0, 3, 4], 5)
        b2 = Bipartition.from_leafset([1, 2], 5)
        assert b1 == b2

    def test_hashable_equality(self):
        a = Bipartition.from_leafset([2, 3], 6)
        b = Bipartition.from_leafset([0, 1, 4, 5], 6)
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_side_size(self):
        assert Bipartition.from_leafset([1, 2, 3], 6).side_size == 3

    def test_trivial_detection(self):
        assert Bipartition.from_leafset([1], 5).is_trivial()
        assert not Bipartition.from_leafset([1, 2], 5).is_trivial()

    def test_rejects_small_taxon_sets(self):
        with pytest.raises(ValueError):
            Bipartition.from_leafset([1], 3)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Bipartition.from_leafset([9], 5)

    def test_rejects_full_or_empty(self):
        with pytest.raises(ValueError):
            Bipartition(0, 5)


class TestTreeBipartitions:
    def test_count_for_binary_tree(self):
        t = parse_newick("((A,B),(C,D),(E,F));")
        assert len(tree_bipartitions(t)) == 6 - 3

    def test_known_splits(self):
        t = parse_newick("((A,B),C,(D,E));")
        splits = tree_bipartitions(t)
        ab = Bipartition.from_leafset([0, 1], 5)  # A,B
        de = Bipartition.from_leafset([3, 4], 5)
        assert splits == {ab, de}

    def test_with_lengths(self):
        t = parse_newick("((A:0.1,B:0.1):0.7,C:0.1,(D:0.1,E:0.1):0.9);")
        lengths = tree_bipartitions(t, with_lengths=True)
        assert set(lengths.values()) == {0.7, 0.9}

    def test_edge_bipartition_matches_set(self):
        t = parse_newick("((A,B),C,(D,E));")
        for e in t.internal_edges():
            assert bipartition_of_edge(t, e) in tree_bipartitions(t)

    def test_three_leaf_tree_has_no_splits(self):
        t = parse_newick("(A,B,C);")
        assert tree_bipartitions(t) == set()


class TestRobinsonFoulds:
    def test_identity_is_zero(self):
        t = parse_newick("((A,B),(C,D),(E,F));")
        assert robinson_foulds(t, t.copy()) == 0.0

    def test_symmetry(self):
        rng = RAxMLRandom(4)
        taxa = tuple("ABCDEFG")
        t1 = random_topology(taxa, rng)
        t2 = random_topology(taxa, rng)
        assert robinson_foulds(t1, t2) == robinson_foulds(t2, t1)

    def test_known_distance(self):
        taxa = ("A", "B", "C", "D", "E")
        a = parse_newick("((A,B),C,(D,E));", taxa=taxa)
        b = parse_newick("((A,C),B,(D,E));", taxa=taxa)
        # AB split vs AC split differ; DE shared -> symmetric difference 2.
        assert robinson_foulds(a, b) == 2.0

    def test_normalized_in_unit_interval(self):
        rng = RAxMLRandom(9)
        taxa = tuple(f"t{i}" for i in range(10))
        t1 = random_topology(taxa, rng)
        t2 = random_topology(taxa, rng)
        d = robinson_foulds(t1, t2, normalized=True)
        assert 0.0 <= d <= 1.0

    def test_different_taxa_rejected(self):
        t1 = parse_newick("((A,B),C,(D,E));")
        t2 = parse_newick("((A,B),C,(D,F));")
        with pytest.raises(ValueError):
            robinson_foulds(t1, t2)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 10**5))
    def test_rf_nonnegative_and_bounded(self, seed):
        rng = RAxMLRandom(seed)
        taxa = tuple(f"t{i}" for i in range(8))
        t1 = random_topology(taxa, rng)
        t2 = random_topology(taxa, rng)
        d = robinson_foulds(t1, t2)
        assert 0 <= d <= 2 * (8 - 3)


class TestBranchScore:
    def test_identity_zero(self):
        t = parse_newick("((A:0.1,B:0.1):0.2,C:0.1,(D:0.1,E:0.1):0.3);")
        assert branch_score_distance(t, t.copy()) == pytest.approx(0.0)

    def test_length_difference_measured(self):
        a = parse_newick("((A:0.1,B:0.1):0.2,C:0.1,(D:0.1,E:0.1):0.3);")
        b = parse_newick("((A:0.1,B:0.1):0.5,C:0.1,(D:0.1,E:0.1):0.3);")
        assert branch_score_distance(a, b) == pytest.approx(0.3)

    def test_disjoint_splits_accumulate(self):
        taxa = ("A", "B", "C", "D", "E")
        a = parse_newick("((A:1,B:1):0.4,C:1,(D:1,E:1):0.3);", taxa=taxa)
        b = parse_newick("((A:1,C:1):0.4,B:1,(D:1,E:1):0.3);", taxa=taxa)
        # AB (0.4) only in a; AC (0.4) only in b; DE shared equal.
        assert branch_score_distance(a, b) == pytest.approx((0.4**2 + 0.4**2) ** 0.5)
