"""Tests for the scheduler task model (repro.sched.tasks): the LCG
jump-ahead, closed-form stream derivation, DAG shape, and the RNG-stream
fingerprint."""

import numpy as np
import pytest

from repro.search.comprehensive import ComprehensiveConfig
from repro.search.schedule import make_schedule
from repro.sched.tasks import (
    LABEL_FAST,
    LABEL_REPLICATE,
    LABEL_SLOW,
    LABEL_THOROUGH,
    TASK_KINDS,
    Task,
    build_dag,
    lcg_jump,
    replicate_x_state,
    rng_stream_fingerprint,
    task_id,
    task_streams,
)
from repro.util.rng import RAxMLRandom, rank_seed


class TestLcgJump:
    @pytest.mark.parametrize("k", [0, 1, 2, 7, 48, 1000, 123457])
    def test_matches_scalar_stepping(self, k):
        state = RAxMLRandom(987654).seed & RAxMLRandom._MASK
        s = state
        for _ in range(min(k, 2000)):
            s = (s * RAxMLRandom._MULT + 1) & RAxMLRandom._MASK
        if k <= 2000:
            assert lcg_jump(state, k) == s
        else:
            # Compose two jumps instead of stepping a hundred thousand times.
            assert lcg_jump(state, k) == lcg_jump(lcg_jump(state, 2000), k - 2000)

    def test_identity_at_zero(self):
        assert lcg_jump(12345, 0) == 12345

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            lcg_jump(1, -1)


class TestReplicateXState:
    def test_matches_sequential_consumption(self):
        """Jumping b·n_draws steps lands exactly where the static pipeline's
        sequential x-stream would be before replicate b."""
        cfg = ComprehensiveConfig(n_bootstraps=4, seed_x=991)
        n_draws = 37
        weights = np.ones(11) * np.array([1, 2, 3, 4, 5, 6, 2, 3, 4, 3, 4])
        x = RAxMLRandom(rank_seed(cfg.seed_x, 2))
        for b in range(4):
            assert x._state == replicate_x_state(cfg, 2, b, n_draws)
            x.weighted_multinomial_counts(n_draws, weights)

    def test_origin_zero_replicate_zero_is_base_seed(self):
        cfg = ComprehensiveConfig(seed_x=4711)
        assert replicate_x_state(cfg, 0, 0, 100) == 4711 & RAxMLRandom._MASK


class TestDagShape:
    def test_counts_match_schedule(self):
        sched = make_schedule(100, 8)  # b=13, f=3, s=2
        cfg = ComprehensiveConfig(n_bootstraps=100)
        dag = build_dag(sched, cfg, 8)
        assert sorted(dag) == sorted(TASK_KINDS)
        assert len(dag["setup"]) == 8
        assert len(dag["bootstrap"]) == 8 * 13
        assert len(dag["fast"]) == 8 * 3
        assert len(dag["slow"]) == 8 * 2
        assert len(dag["thorough"]) == 8

    def test_bootstrap_chain_breaks_at_refresh(self):
        sched = make_schedule(100, 8)
        cfg = ComprehensiveConfig(n_bootstraps=100, parsimony_refresh_every=5)
        dag = build_dag(sched, cfg, 8)
        by_id = {t.id: t for t in dag["bootstrap"]}
        for o in (0, 3):
            for b in range(13):
                deps = by_id[task_id("bootstrap", o, b)].deps
                chained = [d for d in deps if d.startswith("bootstrap:")]
                if b == 0 or b % 5 == 0:
                    assert chained == []
                else:
                    assert chained == [task_id("bootstrap", o, b - 1)]

    def test_fast_starts_follow_static_selection(self):
        """fast i starts from bootstrap (i·5) % nb, the static
        select_fast_starts rule."""
        sched = make_schedule(100, 8)
        dag = build_dag(sched, ComprehensiveConfig(n_bootstraps=100), 8)
        for t in dag["fast"]:
            assert t.deps[1] == task_id("bootstrap", t.origin, (t.index * 5) % 13)

    def test_validation(self):
        with pytest.raises(ValueError):
            build_dag(make_schedule(10, 2), ComprehensiveConfig(), 0)
        with pytest.raises(ValueError):
            Task("bootstrap", -1, 0)


class TestStreamsAndFingerprint:
    def test_labels_match_static_scheme(self):
        cfg = ComprehensiveConfig(seed_p=777)
        assert task_streams(Task("fast", 3, 2), cfg, 10)["label"] == LABEL_FAST + 2
        assert task_streams(Task("slow", 3, 1), cfg, 10)["label"] == LABEL_SLOW + 1
        assert (
            task_streams(Task("thorough", 3, 0), cfg, 10)["label"] == LABEL_THOROUGH
        )
        b = task_streams(Task("bootstrap", 3, 4), cfg, 10)
        assert b["label"] == LABEL_REPLICATE + 4
        assert b["p_seed"] == rank_seed(777, 3)

    def test_fingerprint_deterministic_and_seed_sensitive(self):
        sched = make_schedule(8, 2)
        cfg = ComprehensiveConfig(n_bootstraps=8)
        fp = rng_stream_fingerprint(sched, cfg, 90, 2)
        assert fp == rng_stream_fingerprint(sched, cfg, 90, 2)
        other = ComprehensiveConfig(n_bootstraps=8, seed_x=999)
        assert fp != rng_stream_fingerprint(sched, other, 90, 2)
        assert fp != rng_stream_fingerprint(sched, cfg, 91, 2)
        assert fp != rng_stream_fingerprint(sched, cfg, 90, 4)
