"""Tests for the traversal-plan likelihood core.

Covers the three layers of the refactor: the planner (signatures, dirty
tracking, CLV cache), the pluggable kernel backends (reference/blocked
bit-identity, registration), and the unified engine (serial == threaded
bit-identity, op-count parity, degenerate chunks).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import test_dataset as _make_dataset
from repro.likelihood.engine import (
    LikelihoodEngine,
    OpCounter,
    RateModel,
    subset_rate_model,
)
from repro.likelihood.gtr import GTRModel
from repro.likelihood.kernels import (
    BatchedKernel,
    BlockedKernel,
    ReferenceKernel,
    available_kernels,
    get_kernel,
    register_kernel,
)
from repro.likelihood.plan import (
    CLVCache,
    plan_traversal,
    subtree_signatures,
)
from repro.threads.partition import active_chunks, contiguous_chunks
from repro.threads.pool import VirtualThreadPool
from repro.threads.threaded_engine import ThreadedLikelihoodEngine
from repro.tree.random_trees import yule_tree
from repro.util.rng import RAxMLRandom

# Module-level data so hypothesis tests avoid function-scoped fixtures.
_PAL, _ = _make_dataset(n_taxa=8, n_sites=150, seed=202)
_MODEL = GTRModel(rates=(1.2, 2.5, 0.8, 1.1, 3.0, 1.0), freqs=(0.3, 0.2, 0.2, 0.3))


def _rate_models(m: int) -> dict[str, RateModel]:
    """One representative of each rate-heterogeneity family."""
    return {
        "gamma": RateModel.gamma(0.8, 4),
        "gamma+I": RateModel.gamma(0.8, 4, p_invariant=0.2),
        "cat": RateModel.cat(
            np.array([0.4, 1.0, 2.1]), np.arange(m) % 3
        ),
    }


def _random_moves(tree, rng: RAxMLRandom, n_moves: int) -> None:
    """Mutate ``tree`` in place with a random SPR/NNI/brlen sequence."""
    for _ in range(n_moves):
        kind = rng.next_int(3)
        edges = [n for n in tree.postorder() if n.parent is not None]
        if kind == 0:  # branch-length perturbation
            node = edges[rng.next_int(len(edges))]
            node.length = min(max(node.length * (0.5 + rng.next_double()), 1e-6), 10.0)
        elif kind == 1:  # NNI
            internal = tree.internal_edges()
            if internal:
                tree.nni(internal[rng.next_int(len(internal))], rng.next_int(2))
        else:  # SPR (skip invalid prune/regraft combinations)
            prune = edges[rng.next_int(len(edges))]
            target = edges[rng.next_int(len(edges))]
            try:
                tree.spr(prune, target)
            except ValueError:
                pass


class TestSignatures:
    def test_copy_preserves_signatures(self):
        tree = yule_tree(_PAL.taxa, RAxMLRandom(7))
        sig_a = subtree_signatures(tree.postorder())
        copy = tree.copy()
        sig_b = subtree_signatures(copy.postorder())
        a = {sig_a[id(n)] for n in tree.postorder()}
        b = {sig_b[id(n)] for n in copy.postorder()}
        assert a == b  # structural hashing survives node-identity changes

    def test_branch_change_dirties_only_root_path(self):
        tree = yule_tree(_PAL.taxa, RAxMLRandom(7))
        before = subtree_signatures(tree.postorder())
        edge = tree.internal_edges()[0]
        edge.length *= 1.5
        after = subtree_signatures(tree.postorder())
        # Dirty set = ancestors of the changed edge (its child subtree is
        # untouched: the parent branch is not part of a node's signature).
        dirty = {id(n) for n in tree.postorder() if before[id(n)] != after[id(n)]}
        path = set()
        node = edge.parent
        while node is not None:
            path.add(id(node))
            node = node.parent
        assert dirty == path
        assert id(tree.root) in dirty

    def test_child_order_matters(self):
        # CLV products are float-order-sensitive, so child order must be
        # part of the signature.
        tree = yule_tree(_PAL.taxa, RAxMLRandom(7))
        inner = tree.internal_edges()[0]
        before = subtree_signatures(tree.postorder())[id(inner)]
        inner.children.reverse()
        after = subtree_signatures(tree.postorder())[id(inner)]
        assert before != after


class TestPlanner:
    def test_plan_covers_all_nodes_postorder(self):
        tree = yule_tree(_PAL.taxa, RAxMLRandom(3))
        plan = plan_traversal(tree)
        nodes = list(tree.postorder())
        assert [op.node for op in plan.ops] == nodes
        assert plan.n_tip == sum(1 for n in nodes if n.is_leaf)
        assert plan.n_inner == sum(1 for n in nodes if not n.is_leaf)
        assert plan.n_cached == 0
        assert plan.root is tree.root

    def test_warm_cache_plans_all_cached(self):
        tree = yule_tree(_PAL.taxa, RAxMLRandom(3))
        engine = LikelihoodEngine(
            _PAL, _MODEL, RateModel.gamma(0.8, 4), clv_cache=True
        )
        engine.loglikelihood(tree)
        plan = plan_traversal(tree, engine.clv_cache)
        assert plan.n_inner == 0
        assert plan.n_cached == plan.n_internal

    def test_move_invalidates_only_root_path(self):
        tree = yule_tree(_PAL.taxa, RAxMLRandom(3))
        engine = LikelihoodEngine(
            _PAL, _MODEL, RateModel.gamma(0.8, 4), clv_cache=True
        )
        engine.loglikelihood(tree)
        work = tree.copy()
        edge = work.internal_edges()[0]
        edge.length *= 2.0
        plan = plan_traversal(work, engine.clv_cache)
        depth = 0
        node = edge.parent
        while node is not None:
            depth += 1
            node = node.parent
        assert plan.n_inner == depth  # only the dirtied root path recomputes
        assert plan.n_cached == plan.n_internal - depth


class TestCLVCache:
    def test_incremental_fewer_clv_updates_and_identical_lnl(self):
        tree = yule_tree(_PAL.taxa, RAxMLRandom(11))
        scratch = LikelihoodEngine(_PAL, _MODEL, RateModel.gamma(0.8, 4))
        cached = LikelihoodEngine(
            _PAL, _MODEL, RateModel.gamma(0.8, 4), clv_cache=True
        )
        assert cached.loglikelihood(tree) == scratch.loglikelihood(tree)
        work = tree.copy()
        work.internal_edges()[0].length *= 1.7
        before = cached.ops.clv_updates
        lnl_cached = cached.loglikelihood(work)
        incremental = cached.ops.clv_updates - before
        before = scratch.ops.clv_updates
        lnl_scratch = scratch.loglikelihood(work)
        full = scratch.ops.clv_updates - before
        assert lnl_cached == lnl_scratch  # bitwise
        assert incremental < full

    def test_eviction_falls_back_to_compute(self):
        tree = yule_tree(_PAL.taxa, RAxMLRandom(11))
        cache = CLVCache(max_entries=2)
        engine = LikelihoodEngine(
            _PAL, _MODEL, RateModel.gamma(0.8, 4), clv_cache=cache
        )
        scratch = LikelihoodEngine(_PAL, _MODEL, RateModel.gamma(0.8, 4))
        for _ in range(3):  # thrashes the 2-entry cache, results unharmed
            assert engine.loglikelihood(tree) == scratch.loglikelihood(tree)
        assert len(cache) <= 2
        assert cache.evictions > 0

    def test_with_weights_shares_cache_with_model_does_not(self):
        engine = LikelihoodEngine(
            _PAL, _MODEL, RateModel.gamma(0.8, 4), clv_cache=True
        )
        reweighted = engine.with_weights(np.ones(_PAL.n_patterns))
        assert reweighted.clv_cache is engine.clv_cache
        remodelled = engine.with_model(GTRModel.default())
        assert remodelled.clv_cache is not None
        assert remodelled.clv_cache is not engine.clv_cache

    def test_stats_shape(self):
        cache = CLVCache()
        assert cache.stats() == {
            "entries": 0, "hits": 0, "misses": 0, "evictions": 0,
        }


class TestKernelBackends:
    def test_registry(self):
        assert set(available_kernels()) >= {"reference", "blocked", "batched"}
        assert get_kernel("reference") is ReferenceKernel
        assert get_kernel("blocked") is BlockedKernel
        assert get_kernel("batched") is BatchedKernel
        with pytest.raises(ValueError):
            get_kernel("no-such-backend")

    def test_register_custom_backend(self):
        class TinyBlocked(BlockedKernel):
            name = "tiny-blocked-test"
            block_size = 7

        register_kernel(TinyBlocked)
        try:
            tree = yule_tree(_PAL.taxa, RAxMLRandom(5))
            ref = LikelihoodEngine(_PAL, _MODEL, RateModel.gamma(0.8, 4))
            tiny = LikelihoodEngine(
                _PAL, _MODEL, RateModel.gamma(0.8, 4), kernel="tiny-blocked-test"
            )
            assert tiny.loglikelihood(tree) == ref.loglikelihood(tree)
        finally:
            from repro.likelihood.kernels import _REGISTRY

            _REGISTRY.pop("tiny-blocked-test", None)

    @pytest.mark.parametrize("rm_name", ["gamma", "gamma+I", "cat"])
    def test_blocked_bit_identical(self, rm_name):
        rm = _rate_models(_PAL.n_patterns)[rm_name]
        tree = yule_tree(_PAL.taxa, RAxMLRandom(5))
        ref = LikelihoodEngine(_PAL, _MODEL, rm)
        blk = LikelihoodEngine(_PAL, _MODEL, rm, kernel="blocked")
        assert blk.loglikelihood(tree) == ref.loglikelihood(tree)
        assert np.array_equal(
            blk.site_loglikelihoods(tree), ref.site_loglikelihoods(tree)
        )
        # Edge machinery too: Newton derivative triples must match bitwise.
        down_r = ref.compute_down_partials(tree)
        up_r = ref.compute_up_partials(tree, down_r)
        down_b = blk.compute_down_partials(tree)
        up_b = blk.compute_up_partials(tree, down_b)
        edge = tree.internal_edges()[0]
        cr = ref.edge_coefficients(down_r[id(edge)], up_r[id(edge)])
        cb = blk.edge_coefficients(down_b[id(edge)], up_b[id(edge)])
        assert ref.edge_lnl_and_derivatives(*cr, 0.31) == \
            blk.edge_lnl_and_derivatives(*cb, 0.31)


class TestOpCountParity:
    """Satellite: op totals must match between serial, threaded, and
    (cold-)cached runs, with every charge issued from the kernel layer."""

    def _exercise(self, engine, tree) -> dict[str, int]:
        engine.loglikelihood(tree)
        down = engine.compute_down_partials(tree)
        up = engine.compute_up_partials(tree, down)
        edge = tree.internal_edges()[0]
        d, u = engine.partial_for(down, edge), engine.partial_for(up, edge)
        engine.edge_loglikelihood(edge, edge.length, d, u)
        coef, exps, logscale = engine.edge_coefficients(d, u)
        engine.edge_lnl_and_derivatives(coef, exps, logscale, 0.17)
        leaf_edge = [n for n in tree.postorder() if n.parent is not None][0]
        sub = engine.compute_down_partials(tree, subtree=leaf_edge)
        engine.insertion_loglikelihood(
            d, u, engine.partial_for(sub, leaf_edge), edge.length, 0.1
        )
        return engine.ops.snapshot()

    @pytest.mark.parametrize("rm_name", ["gamma", "cat"])
    def test_serial_threaded_cached_identical_totals(self, rm_name):
        rm = _rate_models(_PAL.n_patterns)[rm_name]
        tree = yule_tree(_PAL.taxa, RAxMLRandom(29))
        serial = self._exercise(LikelihoodEngine(_PAL, _MODEL, rm), tree)
        threaded = self._exercise(
            ThreadedLikelihoodEngine(_PAL, _MODEL, VirtualThreadPool(4), rm), tree
        )
        cached_cold = self._exercise(
            LikelihoodEngine(_PAL, _MODEL, rm, clv_cache=True), tree
        )
        blocked = self._exercise(
            LikelihoodEngine(_PAL, _MODEL, rm, kernel="blocked"), tree
        )
        assert serial == threaded
        assert serial == blocked
        # A cold cache charges full work on first touch; the later calls
        # in the exercise reuse partials the cache already holds.
        assert cached_cold["pattern_ops"] <= serial["pattern_ops"]
        assert cached_cold["edge_evals"] == serial["edge_evals"]
        assert cached_cold["sumtables"] == serial["sumtables"]
        assert cached_cold["deriv_evals"] == serial["deriv_evals"]

    def test_derivatives_are_charged(self):
        tree = yule_tree(_PAL.taxa, RAxMLRandom(29))
        engine = LikelihoodEngine(_PAL, _MODEL, RateModel.gamma(0.8, 4))
        down = engine.compute_down_partials(tree)
        up = engine.compute_up_partials(tree, down)
        edge = tree.internal_edges()[0]
        coef, exps, logscale = engine.edge_coefficients(
            down[id(edge)], up[id(edge)]
        )
        assert engine.ops.sumtables == 1
        before = engine.ops.snapshot()
        engine.edge_lnl_and_derivatives(coef, exps, logscale, 0.4)
        after = engine.ops.snapshot()
        assert after["deriv_evals"] == before["deriv_evals"] + 1
        assert after["pattern_ops"] == (
            before["pattern_ops"] + _PAL.n_patterns * engine.n_categories
        )


class TestBitIdentityProperty:
    """Satellite: cached/incremental evaluation after random SPR/NNI/brlen
    move sequences is bit-identical to from-scratch, across GAMMA, CAT,
    and +I — and across thread counts and kernel backends."""

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 10**6), n_moves=st.integers(1, 5))
    def test_incremental_matches_scratch(self, seed, n_moves):
        tree = yule_tree(_PAL.taxa, RAxMLRandom(seed % 2**31 + 1))
        rng = RAxMLRandom(seed + 17)
        for rm in _rate_models(_PAL.n_patterns).values():
            cached = LikelihoodEngine(_PAL, _MODEL, rm, clv_cache=True)
            work = tree.copy()
            cached.loglikelihood(work)  # warm the cache on the start tree
            _random_moves(work, rng, n_moves)
            scratch = LikelihoodEngine(_PAL, _MODEL, rm)
            assert cached.loglikelihood(work) == scratch.loglikelihood(work)
            assert np.array_equal(
                cached.site_loglikelihoods(work),
                scratch.site_loglikelihoods(work),
            )

    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(0, 10**6),
        n_threads=st.integers(2, 8),
    )
    def test_threaded_and_blocked_match_serial(self, seed, n_threads):
        tree = yule_tree(_PAL.taxa, RAxMLRandom(seed % 2**31 + 1))
        rng = RAxMLRandom(seed + 3)
        _random_moves(tree, rng, 3)
        for rm in _rate_models(_PAL.n_patterns).values():
            serial = LikelihoodEngine(_PAL, _MODEL, rm)
            expected = serial.loglikelihood(tree)
            threaded = ThreadedLikelihoodEngine(
                _PAL, _MODEL, VirtualThreadPool(n_threads), rm
            )
            blocked = ThreadedLikelihoodEngine(
                _PAL, _MODEL, VirtualThreadPool(n_threads), rm,
                kernel="blocked", clv_cache=True,
            )
            assert threaded.loglikelihood(tree) == expected
            assert blocked.loglikelihood(tree) == expected


class TestDegenerateChunks:
    """Satellite: more threads than patterns must not produce zero-length
    kernel calls anywhere."""

    def test_active_chunks_drops_empties(self):
        chunks = active_chunks(3, 8)
        assert len(chunks) == 3
        assert all(c.stop > c.start for c in chunks)
        # Coverage is unchanged: active ∪ dropped == contiguous.
        full = contiguous_chunks(3, 8)
        assert [c for c in full if c.stop > c.start] == chunks
        assert active_chunks(0, 4) == []

    def test_subset_rate_model_empty_subset(self):
        rm = RateModel.cat(np.array([0.5, 1.5]), np.array([0, 1, 1, 0]))
        empty = subset_rate_model(rm, np.array([], dtype=np.intp))
        assert empty.pattern_to_cat.size == 0
        sliced = subset_rate_model(rm, slice(4, 4))
        assert sliced.pattern_to_cat.size == 0
        gamma = RateModel.gamma(0.8, 4)
        assert subset_rate_model(gamma, slice(0, 0)) is gamma

    @pytest.mark.parametrize("rm_name", ["gamma", "cat", "gamma+I"])
    def test_more_threads_than_patterns(self, rm_name):
        # A 4-taxon hand alignment with very few patterns.
        from repro.seq.alignment import Alignment
        from repro.seq.patterns import compress_alignment

        pal = compress_alignment(Alignment.from_sequences(
            [("a", "ACGTAC"), ("b", "ACGTAA"), ("c", "AGGTAG"), ("d", "ACTTAC")]
        ))
        rms = _rate_models(pal.n_patterns)
        rm = rms[rm_name]
        tree = yule_tree(pal.taxa, RAxMLRandom(9))
        serial = LikelihoodEngine(pal, _MODEL, rm)
        threaded = ThreadedLikelihoodEngine(
            pal, _MODEL, VirtualThreadPool(pal.n_patterns + 5), rm
        )
        assert all(s.stop > s.start for s in threaded.kernel.shards)
        assert len(threaded.kernel.shards) == pal.n_patterns
        assert threaded.loglikelihood(tree) == serial.loglikelihood(tree)
        down = threaded.compute_down_partials(tree)
        up = threaded.compute_up_partials(tree, down)
        edge = tree.internal_edges()[0]
        coef, exps, logscale = threaded.edge_coefficients(
            down[id(edge)], up[id(edge)]
        )
        lnl, g, h = threaded.edge_lnl_and_derivatives(coef, exps, logscale, 0.2)
        assert np.isfinite([lnl, g, h]).all()

    def test_surplus_threads_still_charge_region_time(self):
        from repro.seq.alignment import Alignment
        from repro.seq.patterns import compress_alignment

        pal = compress_alignment(Alignment.from_sequences(
            [("a", "ACGT"), ("b", "ACGA"), ("c", "AGGT"), ("d", "ACTT")]
        ))
        tree = yule_tree(pal.taxa, RAxMLRandom(9))
        pool = VirtualThreadPool(pal.n_patterns + 3)
        engine = ThreadedLikelihoodEngine(pal, _MODEL, pool, RateModel.gamma(0.8, 4))
        engine.loglikelihood(tree)
        n_internal = sum(1 for n in tree.postorder() if not n.is_leaf)
        assert pool.regions_executed == n_internal + 1
