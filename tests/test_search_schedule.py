"""Tests for the Table 2 work schedule (repro.search.schedule)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.search.schedule import (
    TABLE2_CONFIGS,
    TABLE2_EXPECTED,
    WorkSchedule,
    make_schedule,
)


class TestTable2Exact:
    @pytest.mark.parametrize("config,expected", zip(TABLE2_CONFIGS, TABLE2_EXPECTED))
    def test_row(self, config, expected):
        """Every row of the paper's Table 2 must be reproduced exactly."""
        n, p = config
        s = make_schedule(n, p)
        assert (
            s.n_processes,
            s.total_bootstraps,
            s.total_fast,
            s.total_slow,
            s.total_thorough,
        ) == expected

    def test_serial_matches_non_mpi_counts(self):
        """p=1 must match the non-MPI code: 100 -> 20 fast, 10 slow, 1 thorough."""
        s = make_schedule(100, 1)
        assert s.fast_per_process == 20
        assert s.slow_per_process == 10
        assert s.thorough_per_process == 1


class TestScheduleProperties:
    def test_every_process_one_thorough(self):
        """Section 2.1: each process runs its own thorough search."""
        for p in range(1, 30):
            assert make_schedule(100, p).thorough_per_process == 1

    def test_total_bootstraps_at_least_requested(self):
        """Section 2.3: totals can exceed N but never undershoot."""
        for p in range(1, 40):
            s = make_schedule(100, p)
            assert s.total_bootstraps >= 100
            assert s.total_bootstraps < 100 + p  # ceil rounding bound

    def test_bootstraps_equal_per_process(self):
        s = make_schedule(100, 8)
        assert s.total_bootstraps == 8 * s.bootstraps_per_process

    def test_slow_capped_at_ten_per_run_for_large_n(self):
        """With N=500 and p=10, each rank does 1 slow search (Table 2)."""
        s = make_schedule(500, 10)
        assert s.slow_per_process == 1

    def test_as_table_row(self):
        row = make_schedule(100, 8).as_table_row()
        assert row == (8, 104, 24, 16, 8, 13, 3, 2, 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_schedule(0, 1)
        with pytest.raises(ValueError):
            make_schedule(100, 0)

    @settings(max_examples=60)
    @given(st.integers(1, 2000), st.integers(1, 64))
    def test_invariants_property(self, n, p):
        s = make_schedule(n, p)
        assert s.total_bootstraps >= n
        assert s.fast_per_process >= 1
        assert s.slow_per_process >= 1
        assert s.slow_per_process <= s.fast_per_process or s.fast_per_process == 1
        assert s.fast_per_process <= s.bootstraps_per_process
        # At most one extra bootstrap batch per process from rounding.
        assert s.bootstraps_per_process * (p - 1) < n + p

    @settings(max_examples=30)
    @given(st.integers(1, 1000))
    def test_p1_is_serial_counts(self, n):
        import math

        s = make_schedule(n, 1)
        assert s.total_bootstraps == n
        assert s.fast_per_process == math.ceil(n / 5)
        assert s.slow_per_process == min(math.ceil(s.fast_per_process / 2), 10)


class TestDegenerateAndShrink:
    """The n_processes > n_bootstraps corner and degraded-mode shrink."""

    @settings(max_examples=60)
    @given(st.integers(1, 8), st.integers(1, 64))
    def test_more_processes_than_bootstraps(self, n, p):
        """b=1 ranks still provision full fast/slow/thorough shares."""
        s = make_schedule(n, max(p, n + 1))
        assert s.bootstraps_per_process == 1
        assert s.fast_per_process == 1
        assert s.slow_per_process == 1
        assert s.thorough_per_process == 1
        assert s.total_bootstraps >= n

    def test_post_init_rejects_zero_shares(self):
        with pytest.raises(ValueError):
            WorkSchedule(
                n_bootstraps_requested=10, n_processes=2,
                bootstraps_per_process=5, fast_per_process=0,
                slow_per_process=1, thorough_per_process=1,
            )
        with pytest.raises(ValueError):
            WorkSchedule(
                n_bootstraps_requested=10, n_processes=2,
                bootstraps_per_process=4, fast_per_process=1,
                slow_per_process=1, thorough_per_process=1,
            )  # 8 total < 10 requested

    @settings(max_examples=80)
    @given(st.integers(1, 2000), st.integers(1, 64))
    def test_per_rank_shares_within_one_of_ideal(self, n, p):
        """Every rank's share is within 1 replicate of the ideal N/p."""
        s = make_schedule(n, p)
        assert 0 <= s.bootstraps_per_process - n / p < 1

    @settings(max_examples=80)
    @given(st.integers(1, 2000), st.integers(1, 32), st.data())
    def test_shrink_monotone_in_survivors(self, n, p, data):
        """Fewer survivors never means less work per survivor, and the
        requested total stays covered at every survivor count."""
        s = make_schedule(n, p)
        k1 = data.draw(st.integers(1, p), label="survivors_small")
        k2 = data.draw(st.integers(k1, p), label="survivors_large")
        small, large = s.shrink(k1), s.shrink(k2)
        assert small.total_bootstraps >= n
        assert large.total_bootstraps >= n
        assert small.bootstraps_per_process >= large.bootstraps_per_process
        assert small.fast_per_process >= large.fast_per_process
        assert small.n_processes == k1 and large.n_processes == k2

    def test_shrink_validation(self):
        s = make_schedule(100, 4)
        with pytest.raises(ValueError):
            s.shrink(0)
        with pytest.raises(ValueError):
            s.shrink(5)
