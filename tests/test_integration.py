"""Cross-module integration tests: full workflows end to end."""

import numpy as np
import pytest

from repro.hybrid.driver import HybridConfig, run_hybrid_analysis
from repro.search.comprehensive import ComprehensiveConfig, run_comprehensive
from repro.search.searches import StageParams
from repro.tree.newick import parse_newick, write_newick

QUICK = StageParams(
    bootstrap_rounds=1, fast_rounds=1, slow_max_rounds=1,
    thorough_max_rounds=2, brlen_passes=1,
)


@pytest.fixture(scope="module")
def pal():
    from repro.datasets import test_dataset

    pal, _ = test_dataset(n_taxa=6, n_sites=100, seed=909)
    return pal


class TestGammaOnlyPipeline:
    def test_comprehensive_without_cat(self, pal):
        """-m GTRGAMMA path: every stage under the gamma model."""
        cfg = ComprehensiveConfig(n_bootstraps=3, use_cat=False, stage_params=QUICK)
        res = run_comprehensive(pal, cfg)
        assert res.best_lnl < 0
        res.best_tree.validate()

    def test_cat_and_gamma_agree_on_topology_ranking(self, pal):
        """CAT is an approximation: both modes should find trees of
        comparable final (GAMMA) quality on easy data."""
        cat = run_comprehensive(
            pal, ComprehensiveConfig(n_bootstraps=3, use_cat=True,
                                     cat_categories=4, stage_params=QUICK)
        )
        gamma = run_comprehensive(
            pal, ComprehensiveConfig(n_bootstraps=3, use_cat=False,
                                     stage_params=QUICK)
        )
        assert abs(cat.best_lnl - gamma.best_lnl) < 15.0


class TestFileRoundtripWorkflow:
    def test_phylip_to_analysis_to_newick(self, pal, tmp_path):
        """Write PHYLIP, re-read, analyse, write Newick, re-parse."""
        from repro.seq.io_phylip import read_phylip, write_phylip
        from repro.seq.patterns import compress_alignment

        path = tmp_path / "data.phy"
        write_phylip(pal.expand(), path)
        pal2 = compress_alignment(read_phylip(path))
        assert pal2.n_patterns == pal.n_patterns

        cfg = ComprehensiveConfig(n_bootstraps=3, cat_categories=3, stage_params=QUICK)
        res = run_comprehensive(pal2, cfg)
        nwk = write_newick(res.best_tree, digits=10)
        back = parse_newick(nwk, taxa=pal2.taxa)
        back.validate()
        from repro.tree.bipartitions import tree_bipartitions

        assert tree_bipartitions(back) == tree_bipartitions(res.best_tree)


class TestMachineVariants:
    @pytest.mark.parametrize("machine,threads", [("ranger", 16), ("triton", 32), ("abe", 8)])
    def test_hybrid_runs_on_every_machine(self, pal, machine, threads):
        cfg = ComprehensiveConfig(n_bootstraps=2, cat_categories=3, stage_params=QUICK)
        res = run_hybrid_analysis(
            pal, HybridConfig(n_processes=1, n_threads=threads,
                              machine=machine, comprehensive=cfg)
        )
        assert res.total_seconds > 0
        res.best_tree.validate()

    def test_machine_changes_time_not_result(self, pal):
        cfg = ComprehensiveConfig(n_bootstraps=2, cat_categories=3, stage_params=QUICK)
        dash = run_hybrid_analysis(
            pal, HybridConfig(n_processes=2, n_threads=2, machine="dash",
                              comprehensive=cfg)
        )
        abe = run_hybrid_analysis(
            pal, HybridConfig(n_processes=2, n_threads=2, machine="abe",
                              comprehensive=cfg)
        )
        assert write_newick(dash.best_tree) == write_newick(abe.best_tree)
        assert dash.best_lnl == abe.best_lnl
        assert dash.total_seconds != abe.total_seconds  # different machine model


class TestSupportWorkflow:
    def test_support_values_consistent_with_tables(self, pal):
        """Driver-produced support equals independently recomputed support."""
        from repro.bootstop.support import map_support
        from repro.bootstop.table import BipartitionTable

        cfg = ComprehensiveConfig(n_bootstraps=4, cat_categories=3, stage_params=QUICK)
        res = run_hybrid_analysis(
            pal, HybridConfig(n_processes=2, n_threads=1, comprehensive=cfg)
        )
        table = BipartitionTable(len(pal.taxa))
        table.add_trees(res.bootstrap_trees)
        redo = map_support(res.best_tree, table)
        got = sorted(e.support for e in res.support_tree.internal_edges())
        expected = sorted(e.support for e in redo.internal_edges())
        assert got == pytest.approx(expected)


class TestEvaluateAgainstSearch:
    def test_search_result_scores_at_least_evaluated_random(self, pal):
        """A searched tree must beat a random topology evaluated with the
        same machinery."""
        from repro.search.evaluate import evaluate_tree
        from repro.search.starting_tree import random_starting_tree
        from repro.util.rng import RAxMLRandom

        cfg = ComprehensiveConfig(n_bootstraps=3, cat_categories=3, stage_params=QUICK)
        searched = run_comprehensive(pal, cfg)
        random_eval = evaluate_tree(
            pal, random_starting_tree(pal, RAxMLRandom(12321)),
            model_rounds=1, brlen_passes=3,
        )
        assert searched.best_lnl >= random_eval.lnl - 1.0
