"""Tests for the multiple-search analyses (repro.hybrid.analyses).

These are the paper Introduction's analysis types 1 (multiple ML
searches) and 2 (standard bootstrapping), with "essentially constant
parallelism throughout".
"""

import pytest

from repro.hybrid.analyses import (
    MultiSearchConfig,
    run_multiple_ml_searches,
    run_standard_bootstrap,
    searches_per_rank,
)
from repro.search.searches import StageParams


@pytest.fixture(scope="module")
def pal():
    from repro.datasets import test_dataset

    pal, _ = test_dataset(n_taxa=6, n_sites=90, seed=606)
    return pal


@pytest.fixture(scope="module")
def cfg():
    return MultiSearchConfig(
        n_searches=4,
        stage_params=StageParams(slow_max_rounds=1, brlen_passes=1),
    )


class TestSearchesPerRank:
    def test_even_division(self):
        assert searches_per_rank(10, 5) == 2

    def test_ceiling(self):
        assert searches_per_rank(10, 4) == 3

    def test_serial(self):
        assert searches_per_rank(10, 1) == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            searches_per_rank(10, 0)

    def test_constant_parallelism_property(self):
        """Introduction: these analyses have 'essentially constant
        parallelism': per-rank work stays within one unit of N/p."""
        for n in (10, 100, 137):
            for p in (1, 3, 7, 16):
                k = searches_per_rank(n, p)
                assert n / p <= k < n / p + 1


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            MultiSearchConfig(n_searches=0)
        with pytest.raises(ValueError):
            MultiSearchConfig(seed_p=0)


class TestMultipleMLSearches:
    @pytest.fixture(scope="class")
    def result(self, request):
        pal = request.getfixturevalue("pal")
        cfg = request.getfixturevalue("cfg")
        return run_multiple_ml_searches(pal, cfg, n_processes=2, n_threads=2)

    def test_counts(self, result):
        assert result.per_rank_counts == [2, 2]
        assert len(result.trees) == 4
        assert len(result.lnls) == 4

    def test_best_is_max(self, result):
        assert result.best_lnl == max(result.lnls)

    def test_trees_valid(self, result, pal):
        for t in result.trees:
            t.validate()
            assert t.taxa == pal.taxa

    def test_start_diversity(self, result):
        """Different starting trees explore: the searches should not all
        return identical likelihoods."""
        assert len({round(l, 6) for l in result.lnls}) >= 2

    def test_reproducible(self, result, pal, cfg):
        again = run_multiple_ml_searches(pal, cfg, n_processes=2, n_threads=2)
        assert again.lnls == result.lnls
        assert again.total_seconds == result.total_seconds

    def test_process_count_changes_streams(self, result, pal, cfg):
        """Rank-offset seeding: p=4 runs different searches than p=2."""
        p4 = run_multiple_ml_searches(pal, cfg, n_processes=4, n_threads=1)
        assert p4.lnls != result.lnls

    def test_virtual_time_positive(self, result):
        assert result.total_seconds > 0
        assert all(t > 0 for t in result.stage_seconds_per_rank)

    def test_thread_limit(self, pal, cfg):
        with pytest.raises(ValueError):
            run_multiple_ml_searches(pal, cfg, n_processes=1, n_threads=64)

    def test_random_starts_mode(self, pal):
        cfg = MultiSearchConfig(
            n_searches=2, random_starts=True,
            stage_params=StageParams(slow_max_rounds=1, brlen_passes=1),
        )
        res = run_multiple_ml_searches(pal, cfg, n_processes=1, n_threads=1)
        assert len(res.trees) == 2


class TestStandardBootstrap:
    @pytest.fixture(scope="class")
    def result(self, request):
        pal = request.getfixturevalue("pal")
        cfg = request.getfixturevalue("cfg")
        return run_standard_bootstrap(pal, cfg, n_processes=2, n_threads=1)

    def test_support_table_built(self, result):
        assert result.support_table is not None
        assert result.support_table.n_trees == len(result.trees)
        assert len(result.support_table) > 0

    def test_counts(self, result):
        assert sum(result.per_rank_counts) == len(result.trees)

    def test_replicates_differ(self, result):
        """Different resampled weights should usually give different trees
        or likelihoods."""
        assert len({round(l, 4) for l in result.lnls}) >= 2

    def test_seed_b_controls_replicates(self, pal):
        params = StageParams(slow_max_rounds=1, brlen_passes=1)
        a = run_standard_bootstrap(
            pal, MultiSearchConfig(n_searches=2, seed_b=111, stage_params=params)
        )
        b = run_standard_bootstrap(
            pal, MultiSearchConfig(n_searches=2, seed_b=222, stage_params=params)
        )
        assert a.lnls != b.lnls
