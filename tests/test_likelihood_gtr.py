"""Tests for the GTR model (repro.likelihood.gtr)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.likelihood.gtr import GTRModel

rate_st = st.floats(0.05, 20.0)
freq_part = st.floats(0.05, 1.0)


def random_model(rates, raw_freqs):
    freqs = np.asarray(raw_freqs)
    freqs = freqs / freqs.sum()
    return GTRModel(tuple(rates), tuple(freqs))


class TestConstruction:
    def test_gt_rate_normalised_to_one(self):
        m = GTRModel(rates=(2, 4, 2, 2, 6, 2), freqs=(0.25,) * 4)
        assert m.rates[5] == 1.0
        assert m.rates[1] == 2.0

    def test_jc69(self):
        m = GTRModel.jc69()
        assert m.rates == (1.0,) * 6
        assert m.freqs == (0.25,) * 4

    def test_rejects_nonpositive_rates(self):
        with pytest.raises(ValueError):
            GTRModel(rates=(1, 1, 0, 1, 1, 1), freqs=(0.25,) * 4)

    def test_rejects_wrong_rate_count(self):
        with pytest.raises(ValueError):
            GTRModel(rates=(1, 1, 1), freqs=(0.25,) * 4)

    def test_rejects_bad_freqs(self):
        with pytest.raises(ValueError):
            GTRModel(rates=(1,) * 6, freqs=(0.5, 0.5, 0.2, -0.2))
        with pytest.raises(ValueError):
            GTRModel(rates=(1,) * 6, freqs=(0.3, 0.3, 0.3, 0.3))


class TestQMatrix:
    def test_rows_sum_to_zero(self, gtr_model):
        assert np.allclose(gtr_model.q_matrix.sum(axis=1), 0.0, atol=1e-12)

    def test_normalised_mean_rate_one(self, gtr_model):
        q = gtr_model.q_matrix
        assert -float(np.dot(gtr_model.pi, np.diag(q))) == pytest.approx(1.0)

    def test_detailed_balance(self, gtr_model):
        """Reversibility: pi_i q_ij == pi_j q_ji."""
        q = gtr_model.q_matrix
        pi = gtr_model.pi
        flux = pi[:, None] * q
        assert np.allclose(flux, flux.T, atol=1e-12)

    def test_one_zero_eigenvalue(self, gtr_model):
        lam = gtr_model.eigenvalues
        assert np.sum(np.isclose(lam, 0.0, atol=1e-10)) == 1
        assert np.all(lam <= 1e-10)


class TestTransitionMatrices:
    def test_identity_at_zero(self, gtr_model):
        p = gtr_model.transition_matrices(0.0)
        assert np.allclose(p[0], np.eye(4), atol=1e-12)

    def test_rows_are_distributions(self, gtr_model):
        p = gtr_model.transition_matrices(0.37, [0.5, 1.0, 3.0])
        assert p.shape == (3, 4, 4)
        assert np.allclose(p.sum(axis=2), 1.0, atol=1e-10)
        assert np.all(p >= 0)

    def test_chapman_kolmogorov(self, gtr_model):
        pa = gtr_model.transition_matrices(0.1)[0]
        pb = gtr_model.transition_matrices(0.23)[0]
        pc = gtr_model.transition_matrices(0.33)[0]
        assert np.allclose(pa @ pb, pc, atol=1e-12)

    def test_stationarity(self, gtr_model):
        p = gtr_model.transition_matrices(0.8)[0]
        assert np.allclose(gtr_model.pi @ p, gtr_model.pi, atol=1e-12)

    def test_long_time_converges_to_pi(self, gtr_model):
        p = gtr_model.transition_matrices(500.0)[0]
        for row in p:
            assert np.allclose(row, gtr_model.pi, atol=1e-8)

    def test_rate_multiplier_equivalent_to_scaled_time(self, gtr_model):
        p1 = gtr_model.transition_matrices(0.2, 2.0)[0]
        p2 = gtr_model.transition_matrices(0.4, 1.0)[0]
        assert np.allclose(p1, p2, atol=1e-12)

    def test_negative_time_rejected(self, gtr_model):
        with pytest.raises(ValueError):
            gtr_model.transition_matrices(-0.1)

    def test_derivative_matches_finite_difference(self, gtr_model):
        t, eps = 0.3, 1e-6
        d = gtr_model.transition_matrix_derivatives(t, [1.0, 2.5])
        fd = (
            gtr_model.transition_matrices(t + eps, [1.0, 2.5])
            - gtr_model.transition_matrices(t - eps, [1.0, 2.5])
        ) / (2 * eps)
        assert np.allclose(d, fd, atol=1e-6)

    @settings(max_examples=20)
    @given(
        st.tuples(rate_st, rate_st, rate_st, rate_st, rate_st, rate_st),
        st.tuples(freq_part, freq_part, freq_part, freq_part),
        st.floats(0.001, 5.0),
    )
    def test_rows_distributions_property(self, rates, freqs, t):
        m = random_model(rates, freqs)
        p = m.transition_matrices(t)[0]
        assert np.allclose(p.sum(axis=1), 1.0, atol=1e-8)
        assert np.all(p >= -1e-12)


class TestWithers:
    def test_with_rates(self, gtr_model):
        m2 = gtr_model.with_rates((1, 1, 1, 1, 1, 1))
        assert m2.rates == (1.0,) * 6
        assert m2.freqs == gtr_model.freqs

    def test_with_freqs(self, gtr_model):
        m2 = gtr_model.with_freqs((0.25, 0.25, 0.25, 0.25))
        assert m2.freqs == (0.25,) * 4
        assert m2.rates == gtr_model.rates
