"""Tests for Fitch parsimony (repro.likelihood.parsimony)."""

import numpy as np
import pytest

from repro.likelihood.parsimony import ParsimonyEngine, fitch_score
from repro.seq.alignment import Alignment
from repro.seq.patterns import compress_alignment
from repro.tree.newick import parse_newick


def quartet(seqs, newick="((A:0.1,B:0.1):0.1,C:0.1,D:0.1);"):
    aln = Alignment.from_sequences(list(zip("ABCD", seqs)))
    pal = compress_alignment(aln)
    return pal, parse_newick(newick, taxa=pal.taxa)


class TestFitchScore:
    def test_constant_column_zero(self):
        pal, tree = quartet(["A", "A", "A", "A"])
        assert fitch_score(pal, tree) == 0.0

    def test_single_difference_one(self):
        pal, tree = quartet(["A", "A", "A", "C"])
        assert fitch_score(pal, tree) == 1.0

    def test_grouping_matters(self):
        """AABB pattern costs 1 on ((A,B),(C,D)) but ACAC columns cost 2."""
        pal1, tree1 = quartet(["A", "A", "C", "C"])
        assert fitch_score(pal1, tree1) == 1.0
        pal2, tree2 = quartet(["A", "C", "A", "C"])
        assert fitch_score(pal2, tree2) == 2.0

    def test_ambiguity_is_free_when_compatible(self):
        pal, tree = quartet(["A", "A", "A", "N"])
        assert fitch_score(pal, tree) == 0.0

    def test_weights_multiply(self):
        pal, tree = quartet(["AC", "AC", "AA", "CA"])
        base = fitch_score(pal, tree)
        doubled = fitch_score(pal, tree, weights=pal.weights * 2)
        assert doubled == pytest.approx(2 * base)

    def test_score_nonnegative_and_bounded(self, tiny_pal, tiny_tree):
        score = fitch_score(tiny_pal, tiny_tree)
        assert 0 <= score <= tiny_pal.n_sites * 3  # <= (taxa-1) per column


class TestInsertionCosts:
    def test_costs_bounded(self, tiny_pal, tiny_tree):
        pe = ParsimonyEngine(tiny_pal)
        costs = pe.insertion_costs(tiny_tree, 0)
        assert len(costs) == len(tiny_tree.edges())
        # Delta per column is in [-1, 2].
        n = tiny_pal.n_sites
        assert all(-n <= c <= 2 * n for _, c in costs)

    def test_identical_taxon_cheapest_near_twin(self):
        """Inserting a copy of A is cheapest on the edge next to A."""
        sub = compress_alignment(
            Alignment.from_sequences(
                [("A", "AACCGGTT"), ("B", "TTTTTTTT"),
                 ("C", "TTTTTTTT"), ("D", "TTTTTTTT"), ("E", "AACCGGTT")]
            )
        )
        t = parse_newick("((A:0.1,B:0.1):0.1,C:0.1,D:0.1);", taxa=sub.taxa)
        pe = ParsimonyEngine(sub)
        costs = {
            (edge.name if edge.is_leaf else "internal"): c
            for edge, c in pe.insertion_costs(t, sub.taxon_index("E"))
        }
        assert costs["A"] == min(costs.values())
        assert costs["A"] < costs["C"]
        assert costs["A"] < costs["B"]

    def test_validation(self, tiny_pal):
        with pytest.raises(ValueError):
            ParsimonyEngine(tiny_pal, weights=np.ones(tiny_pal.n_patterns + 1))
        with pytest.raises(ValueError):
            ParsimonyEngine(tiny_pal, weights=-np.ones(tiny_pal.n_patterns))


class TestUpDownSets:
    def test_down_sets_cover_all_nodes(self, tiny_pal, tiny_tree):
        pe = ParsimonyEngine(tiny_pal)
        down, score = pe.down_sets(tiny_tree)
        assert len(down) == len(list(tiny_tree.postorder()))
        assert score >= 0

    def test_up_sets_cover_non_root(self, tiny_pal, tiny_tree):
        pe = ParsimonyEngine(tiny_pal)
        down, _ = pe.down_sets(tiny_tree)
        up = pe.up_sets(tiny_tree, down)
        non_root = [n for n in tiny_tree.postorder() if n.parent is not None]
        assert set(up) == {id(n) for n in non_root}

    def test_state_sets_are_valid_masks(self, tiny_pal, tiny_tree):
        pe = ParsimonyEngine(tiny_pal)
        down, _ = pe.down_sets(tiny_tree)
        for sets in down.values():
            assert np.all(sets >= 1)
            assert np.all(sets <= 15)
