"""Tests for the bootstopping-enabled hybrid driver (extension feature)."""

import pytest

from repro.hybrid.driver import HybridConfig, run_hybrid_analysis
from repro.search.comprehensive import ComprehensiveConfig
from repro.search.searches import StageParams


@pytest.fixture(scope="module")
def pal():
    from repro.datasets import test_dataset

    pal, _ = test_dataset(n_taxa=6, n_sites=90, seed=404)
    return pal


@pytest.fixture(scope="module")
def quick_cc():
    return ComprehensiveConfig(
        n_bootstraps=4,
        cat_categories=3,
        stage_params=StageParams(
            bootstrap_rounds=1, fast_rounds=1, slow_max_rounds=1,
            thorough_max_rounds=1, brlen_passes=1,
        ),
    )


@pytest.fixture(scope="module")
def result(pal, quick_cc):
    return run_hybrid_analysis(
        pal,
        HybridConfig(
            n_processes=2, n_threads=1, comprehensive=quick_cc,
            bootstopping=True, bootstop_step=4, bootstop_max=12,
        ),
    )


class TestBootstopping:
    def test_trace_recorded(self, result):
        assert result.wc_trace
        counts = [n for n, _ in result.wc_trace]
        assert counts == sorted(counts)

    def test_replicates_within_cap(self, result):
        assert 4 <= result.n_bootstraps_done <= 12

    def test_stops_at_convergence_or_cap(self, result):
        last_n, last_stat = result.wc_trace[-1]
        from repro.bootstop.wc_test import DEFAULT_THRESHOLD

        assert last_stat <= DEFAULT_THRESHOLD or last_n >= 12

    def test_result_still_valid(self, result, pal):
        result.best_tree.validate()
        assert result.best_lnl < 0

    def test_sharded_support_matches_global(self, result, pal):
        """The support tree assembled from rank-sharded tables must equal
        a support tree recomputed from a single global table."""
        from repro.bootstop.support import map_support
        from repro.bootstop.table import BipartitionTable

        table = BipartitionTable(len(pal.taxa))
        table.add_trees(result.bootstrap_trees)
        redo = map_support(result.best_tree, table)
        got = sorted(e.support for e in result.support_tree.internal_edges())
        expected = sorted(e.support for e in redo.internal_edges())
        assert got == expected

    def test_reproducible(self, result, pal, quick_cc):
        again = run_hybrid_analysis(
            pal,
            HybridConfig(
                n_processes=2, n_threads=1, comprehensive=quick_cc,
                bootstopping=True, bootstop_step=4, bootstop_max=12,
            ),
        )
        assert again.wc_trace == result.wc_trace
        assert again.best_lnl == result.best_lnl
