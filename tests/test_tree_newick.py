"""Tests for Newick parsing and writing (repro.tree.newick)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tree.newick import NewickError, parse_newick, write_newick
from repro.tree.random_trees import random_topology
from repro.tree.bipartitions import tree_bipartitions
from repro.util.rng import RAxMLRandom


class TestParse:
    def test_basic_unrooted(self):
        t = parse_newick("(A:0.1,B:0.2,(C:0.3,D:0.4):0.5);")
        t.validate()
        assert t.n_leaves == 4
        assert t.taxa == ("A", "B", "C", "D")

    def test_branch_lengths(self):
        t = parse_newick("(A:0.125,B:0.25,C:0.5);")
        lengths = {l.name: l.length for l in t.leaves()}
        assert lengths == {"A": 0.125, "B": 0.25, "C": 0.5}

    def test_missing_lengths_get_default(self):
        t = parse_newick("(A,B,C);")
        assert all(l.length > 0 for l in t.leaves())

    def test_rooted_input_collapsed(self):
        t = parse_newick("((A:0.1,B:0.2):0.3,(C:0.1,D:0.2):0.4);")
        t.validate()  # root must be trifurcating after collapse
        assert len(t.root.children) == 3

    def test_support_values_parsed(self):
        t = parse_newick("((A:0.1,B:0.2)95:0.3,C:0.1,D:0.2);")
        internal = [e for e in t.internal_edges()]
        assert internal[0].support == pytest.approx(0.95)

    def test_explicit_taxa_order(self):
        t = parse_newick("(B:0.1,A:0.1,C:0.1);", taxa=("A", "B", "C"))
        assert t.find_leaf("A").leaf_index == 0
        assert t.find_leaf("B").leaf_index == 1

    def test_unknown_leaf_rejected_with_taxa(self):
        with pytest.raises(NewickError, match="not in"):
            parse_newick("(X:0.1,A:0.1,B:0.1);", taxa=("A", "B", "C"))

    def test_duplicate_names_rejected(self):
        with pytest.raises(NewickError, match="duplicate"):
            parse_newick("(A:0.1,A:0.1,B:0.1);")

    def test_missing_semicolon_rejected(self):
        with pytest.raises(NewickError):
            parse_newick("(A:0.1,B:0.1,C:0.1)")

    def test_bad_length_rejected(self):
        with pytest.raises(NewickError, match="length"):
            parse_newick("(A:x,B:0.1,C:0.1);")

    def test_empty_leaf_rejected(self):
        with pytest.raises(NewickError):
            parse_newick("(,B:0.1,C:0.1);")

    def test_two_leaf_tree_rejected(self):
        with pytest.raises(NewickError):
            parse_newick("(A:0.1,B:0.1);")


class TestWrite:
    def test_roundtrip_topology_and_lengths(self):
        src = "((A:0.100000,B:0.200000):0.050000,C:0.300000,D:0.400000);"
        t = parse_newick(src)
        assert write_newick(t) == src

    def test_write_without_lengths(self):
        t = parse_newick("(A:0.1,B:0.2,C:0.3);")
        assert write_newick(t, lengths=False) == "(A,B,C);"

    def test_write_support(self):
        t = parse_newick("((A:0.1,B:0.1)80:0.1,C:0.1,D:0.1);")
        out = write_newick(t, support=True)
        assert ")80:" in out

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 10**6), st.integers(4, 15))
    def test_roundtrip_random_trees(self, seed, n):
        taxa = tuple(f"t{i}" for i in range(n))
        t = random_topology(taxa, RAxMLRandom(seed))
        t2 = parse_newick(write_newick(t), taxa=taxa)
        t2.validate()
        assert tree_bipartitions(t) == tree_bipartitions(t2)
