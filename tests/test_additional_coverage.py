"""Additional edge-case coverage across modules."""

import numpy as np
import pytest

from repro.likelihood.engine import LikelihoodEngine, RateModel
from repro.likelihood.gtr import GTRModel
from repro.tree.newick import NewickError, parse_newick, write_newick


class TestNewickEdgeCases:
    def test_whitespace_tolerated(self):
        t = parse_newick(" ( A : 0.1 , B : 0.2 , C : 0.3 ) ; ")
        assert t.n_leaves == 3
        assert t.find_leaf("A").length == pytest.approx(0.1)

    def test_internal_textual_label_ignored(self):
        t = parse_newick("((A:1,B:1)inner:1,C:1,D:1);")
        t.validate()
        assert all(
            e.support is None for e in t.internal_edges()
        )  # 'inner' is not a support value

    def test_numeric_internal_label_is_support(self):
        t = parse_newick("((A:1,B:1)87:1,C:1,D:1);")
        assert t.internal_edges()[0].support == pytest.approx(0.87)

    def test_deep_nesting(self):
        """A caterpillar of 60 taxa parses without recursion issues."""
        names = [f"x{i}" for i in range(60)]
        nwk = names[0]
        for nm in names[1:-2]:
            nwk = f"({nwk},{nm})"
        nwk = f"({nwk},{names[-2]},{names[-1]});"
        t = parse_newick(nwk)
        t.validate()
        assert t.n_leaves == 60

    def test_write_digits_control(self):
        t = parse_newick("(A:0.123456789,B:1,C:1);")
        assert ":0.12" in write_newick(t, digits=2)
        assert ":0.123456789" in write_newick(t, digits=9)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(NewickError):
            parse_newick("(A:1,B:1,C:1)")  # missing semicolon

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(NewickError):
            parse_newick("((A:1,B:1,C:1);")


class TestEngineWithers:
    @pytest.fixture()
    def engine(self, tiny_pal, gtr_model):
        return LikelihoodEngine(tiny_pal, gtr_model, RateModel.gamma(0.8, 4))

    def test_with_model_shares_ops(self, engine):
        e2 = engine.with_model(GTRModel.jc69())
        assert e2.ops is engine.ops
        assert e2.model.freqs == (0.25,) * 4
        assert engine.model.freqs != (0.25,) * 4

    def test_with_rate_model_keeps_weights(self, engine, tiny_pal):
        e2 = engine.with_rate_model(RateModel.single())
        assert np.array_equal(e2.weights, engine.weights)
        assert e2.n_categories == 1

    def test_edge_evals_counted(self, engine, tiny_tree):
        down = engine.compute_down_partials(tiny_tree)
        up = engine.compute_up_partials(tiny_tree, down)
        before = engine.ops.edge_evals
        e = tiny_tree.edges()[0]
        engine.edge_loglikelihood(e, e.length, down[id(e)], up[id(e)])
        assert engine.ops.edge_evals == before + 1

    def test_tip_clv_slicing(self, engine, tiny_pal):
        full = engine.tip_clv(0)
        part = engine.tip_clv(0, patterns=slice(2, 5))
        assert np.array_equal(part, full[2:5])


class TestSPRTargeted:
    def test_spr_repairs_known_misplacement(self, small_pal, small_true_tree, gtr_model):
        """Move one leaf to a wrong place; one SPR round must repair it
        (or find something at least as good)."""
        from repro.search.spr import SPRParams, spr_round

        engine = LikelihoodEngine(small_pal, gtr_model, RateModel.gamma(0.8, 4))
        broken = small_true_tree.copy()
        leaf = broken.find_leaf(small_pal.taxa[0])
        targets = [
            e for e in broken.edges()
            if e is not leaf and leaf not in broken.subtree_leaves(e)
        ]
        broken.spr(leaf, targets[-1])
        broken.validate()
        true_lnl = engine.loglikelihood(small_true_tree)
        broken_lnl = engine.loglikelihood(broken)
        if broken_lnl >= true_lnl:  # the move happened to be neutral
            pytest.skip("random misplacement was not harmful")
        repaired, lnl, improved = spr_round(engine, broken, SPRParams(radius=10))
        assert improved
        assert lnl > broken_lnl

    def test_radius_one_restricts_candidates(self, tiny_pal, gtr_model, tiny_tree):
        from repro.search.spr import edges_within_radius

        origin = tiny_tree.internal_edges()[0]
        r1 = edges_within_radius(tiny_tree, origin, 1)
        r3 = edges_within_radius(tiny_tree, origin, 3)
        assert set(map(id, r1)) < set(map(id, r3))


class TestRegionTimingEdge:
    def test_machine_timing_empty_chunks(self):
        from repro.perfmodel.finegrain import MachineRegionTiming
        from repro.perfmodel.machines import MACHINES

        timing = MachineRegionTiming(MACHINES["dash"])
        assert timing.region_seconds([], 1) == 0.0

    def test_core_speed_scales_seconds(self):
        import dataclasses

        from repro.perfmodel.finegrain import MachineRegionTiming
        from repro.perfmodel.machines import MACHINES

        dash = MACHINES["dash"]
        slow = dataclasses.replace(dash, core_speed=0.5)
        t_fast = MachineRegionTiming(dash).region_seconds([100], 1)
        t_slow = MachineRegionTiming(slow).region_seconds([100], 1)
        assert t_slow == pytest.approx(2 * t_fast)
