"""Tests for the pruning engine (repro.likelihood.engine).

The key guarantees: exact agreement with brute-force state enumeration,
consistency of the edge-likelihood machinery with the plain evaluation,
correct scaling behaviour on long chains, and CAT/gamma mode coherence.
"""

import numpy as np
import pytest

from repro.likelihood.engine import LikelihoodEngine, OpCounter, RateModel
from repro.likelihood.gtr import GTRModel
from repro.seq.alignment import Alignment
from repro.seq.encoding import state_likelihood_rows
from repro.seq.patterns import compress_alignment
from repro.tree.newick import parse_newick


@pytest.fixture()
def quartet():
    aln = Alignment.from_sequences(
        [("A", "ACGTT"), ("B", "ACGTA"), ("C", "AGGAT"), ("D", "ATGTT")]
    )
    pal = compress_alignment(aln)
    tree = parse_newick("((A:0.12,B:0.3):0.08,C:0.25,D:0.4);", taxa=pal.taxa)
    return pal, tree


def brute_force_lnl(pal, tree_lengths, model, rates):
    """Enumerate internal states of the quartet topology ((A,B),C,D)."""
    rows = state_likelihood_rows()
    pi = model.pi
    ta, tb, ti, tc, td = tree_lengths
    total = 0.0
    for p in range(pal.n_patterns):
        tips = {
            name: rows[pal.patterns[pal.taxon_index(name), p]]
            for name in "ABCD"
        }
        site = 0.0
        for r in rates:
            P = lambda t: model.transition_matrices(t, r)[0]
            Pa, Pb, Pi, Pc, Pd = P(ta), P(tb), P(ti), P(tc), P(td)
            s = 0.0
            for x in range(4):
                for y in range(4):
                    s += (
                        pi[x]
                        * Pi[x, y]
                        * (Pa[y] @ tips["A"])
                        * (Pb[y] @ tips["B"])
                        * (Pc[x] @ tips["C"])
                        * (Pd[x] @ tips["D"])
                    )
            site += s / len(rates)
        total += np.log(site) * pal.weights[p]
    return total


class TestExactness:
    def test_matches_brute_force_gamma(self, quartet, gtr_model):
        pal, tree = quartet
        engine = LikelihoodEngine(pal, gtr_model, RateModel.gamma(0.7, 4))
        expected = brute_force_lnl(
            pal, (0.12, 0.3, 0.08, 0.25, 0.4), gtr_model, engine.rate_model.rates
        )
        assert engine.loglikelihood(tree) == pytest.approx(expected, abs=1e-9)

    def test_matches_brute_force_single_rate(self, quartet, gtr_model):
        pal, tree = quartet
        engine = LikelihoodEngine(pal, gtr_model, RateModel.single())
        expected = brute_force_lnl(pal, (0.12, 0.3, 0.08, 0.25, 0.4), gtr_model, [1.0])
        assert engine.loglikelihood(tree) == pytest.approx(expected, abs=1e-9)

    def test_jc_uniform_site(self):
        """A fully undetermined column has likelihood 1 (lnL 0)."""
        aln = Alignment.from_sequences([("A", "-"), ("B", "-"), ("C", "-")])
        pal = compress_alignment(aln)
        tree = parse_newick("(A:0.1,B:0.1,C:0.1);", taxa=pal.taxa)
        engine = LikelihoodEngine(pal, GTRModel.jc69(), RateModel.single())
        assert engine.loglikelihood(tree) == pytest.approx(0.0, abs=1e-12)

    def test_single_site_identical_bases(self):
        """All-A column under JC: likelihood = sum_x pi_x prod P(x->A)."""
        aln = Alignment.from_sequences([("A", "A"), ("B", "A"), ("C", "A")])
        pal = compress_alignment(aln)
        tree = parse_newick("(A:0.2,B:0.2,C:0.2);", taxa=pal.taxa)
        m = GTRModel.jc69()
        engine = LikelihoodEngine(pal, m, RateModel.single())
        P = m.transition_matrices(0.2)[0]
        expected = np.log(sum(0.25 * P[x, 0] ** 3 for x in range(4)))
        assert engine.loglikelihood(tree) == pytest.approx(expected, abs=1e-12)


class TestEdgeMachinery:
    def test_edge_loglikelihood_consistent_all_edges(self, quartet, gtr_model):
        pal, tree = quartet
        engine = LikelihoodEngine(pal, gtr_model, RateModel.gamma(0.7, 4))
        lnl = engine.loglikelihood(tree)
        down = engine.compute_down_partials(tree)
        up = engine.compute_up_partials(tree, down)
        for e in tree.edges():
            el = engine.edge_loglikelihood(e, e.length, down[id(e)], up[id(e)])
            assert el == pytest.approx(lnl, abs=1e-8)

    def test_sumtable_matches_edge_loglikelihood(self, quartet, gtr_model):
        pal, tree = quartet
        engine = LikelihoodEngine(pal, gtr_model, RateModel.gamma(0.7, 4))
        down = engine.compute_down_partials(tree)
        up = engine.compute_up_partials(tree, down)
        e = tree.edges()[0]
        coef, exps, ls = engine.edge_coefficients(down[id(e)], up[id(e)])
        for t in (0.01, 0.1, 0.5, 2.0):
            l1, _, _ = engine.edge_lnl_and_derivatives(coef, exps, ls, t)
            l2 = engine.edge_loglikelihood(e, t, down[id(e)], up[id(e)])
            assert l1 == pytest.approx(l2, abs=1e-8)

    def test_derivatives_match_finite_differences(self, quartet, gtr_model):
        pal, tree = quartet
        engine = LikelihoodEngine(pal, gtr_model, RateModel.gamma(0.7, 4))
        down = engine.compute_down_partials(tree)
        up = engine.compute_up_partials(tree, down)
        e = tree.edges()[2]
        coef, exps, ls = engine.edge_coefficients(down[id(e)], up[id(e)])
        t, eps = 0.3, 1e-5
        l0, g, h = engine.edge_lnl_and_derivatives(coef, exps, ls, t)
        lp, _, _ = engine.edge_lnl_and_derivatives(coef, exps, ls, t + eps)
        lm, _, _ = engine.edge_lnl_and_derivatives(coef, exps, ls, t - eps)
        assert g == pytest.approx((lp - lm) / (2 * eps), rel=1e-4)
        assert h == pytest.approx((lp - 2 * l0 + lm) / eps**2, rel=1e-3)

    def test_insertion_loglikelihood_finite(self, quartet, gtr_model):
        pal, tree = quartet
        engine = LikelihoodEngine(pal, gtr_model, RateModel.gamma(0.7, 4))
        down = engine.compute_down_partials(tree)
        up = engine.compute_up_partials(tree, down)
        leaf = tree.find_leaf("A")
        other = tree.find_leaf("C")
        score = engine.insertion_loglikelihood(
            down[id(other)], up[id(other)], down[id(leaf)], other.length, leaf.length
        )
        assert np.isfinite(score)
        assert score < 0


class TestScaling:
    def test_long_chain_no_underflow(self, gtr_model):
        """A caterpillar of 40 taxa with long branches must not underflow."""
        n = 40
        names = [f"t{i}" for i in range(n)]
        aln = Alignment.from_sequences([(nm, "ACGT" * 5) for nm in names])
        pal = compress_alignment(aln)
        newick = names[0] + ":1.0"
        for nm in names[1:-2]:
            newick = f"({newick},{nm}:1.0):1.0"
        newick = f"({newick},{names[-2]}:1.0,{names[-1]}:1.0);"
        tree = parse_newick(newick, taxa=pal.taxa)
        engine = LikelihoodEngine(pal, gtr_model, RateModel.gamma(0.5, 4))
        lnl = engine.loglikelihood(tree)
        assert np.isfinite(lnl)
        assert lnl < 0

    def test_site_loglikelihoods_shape(self, quartet, gtr_model):
        pal, tree = quartet
        engine = LikelihoodEngine(pal, gtr_model)
        site = engine.site_loglikelihoods(tree)
        assert site.shape == (pal.n_patterns,)
        assert engine.loglikelihood(tree) == pytest.approx(
            float(pal.weights @ site)
        )


class TestRateModes:
    def test_cat_with_unit_rates_equals_single(self, quartet, gtr_model):
        pal, tree = quartet
        single = LikelihoodEngine(pal, gtr_model, RateModel.single())
        cat = LikelihoodEngine(
            pal,
            gtr_model,
            RateModel.cat(np.ones(3), np.zeros(pal.n_patterns, dtype=int)),
        )
        assert cat.loglikelihood(tree) == pytest.approx(
            single.loglikelihood(tree), abs=1e-10
        )

    def test_cat_edge_consistency(self, quartet, gtr_model):
        pal, tree = quartet
        p2c = np.arange(pal.n_patterns) % 3
        engine = LikelihoodEngine(
            pal, gtr_model, RateModel.cat(np.array([0.3, 1.0, 2.2]), p2c)
        )
        lnl = engine.loglikelihood(tree)
        down = engine.compute_down_partials(tree)
        up = engine.compute_up_partials(tree, down)
        for e in tree.edges():
            el = engine.edge_loglikelihood(e, e.length, down[id(e)], up[id(e)])
            assert el == pytest.approx(lnl, abs=1e-8)

    def test_gamma_one_category_equals_single(self, quartet, gtr_model):
        pal, tree = quartet
        g1 = LikelihoodEngine(pal, gtr_model, RateModel.gamma(1.0, 1))
        s = LikelihoodEngine(pal, gtr_model, RateModel.single())
        assert g1.loglikelihood(tree) == pytest.approx(s.loglikelihood(tree))

    def test_rate_model_validation(self, quartet, gtr_model):
        pal, _ = quartet
        with pytest.raises(ValueError):
            RateModel("nonsense", np.ones(4))
        with pytest.raises(ValueError):
            RateModel("cat", np.ones(4))  # missing pattern_to_cat
        with pytest.raises(ValueError):
            RateModel.cat(np.ones(2), np.array([0, 5]))  # cat out of range
        with pytest.raises(ValueError):
            LikelihoodEngine(
                pal, gtr_model, RateModel.cat(np.ones(2), np.zeros(3, dtype=int))
            )


class TestWeightsAndOps:
    def test_zero_weights_drop_contributions(self, quartet, gtr_model):
        pal, tree = quartet
        engine = LikelihoodEngine(pal, gtr_model)
        w = pal.weights.copy().astype(float)
        w[0] = 0.0
        reduced = engine.with_weights(w)
        site = engine.site_loglikelihoods(tree)
        assert reduced.loglikelihood(tree) == pytest.approx(float(w @ site))

    def test_weight_scaling_linear(self, quartet, gtr_model):
        pal, tree = quartet
        engine = LikelihoodEngine(pal, gtr_model)
        doubled = engine.with_weights(pal.weights * 2.0)
        assert doubled.loglikelihood(tree) == pytest.approx(
            2 * engine.loglikelihood(tree)
        )

    def test_op_counter_accumulates(self, quartet, gtr_model):
        pal, tree = quartet
        ops = OpCounter()
        engine = LikelihoodEngine(pal, gtr_model, ops=ops)
        engine.loglikelihood(tree)
        assert ops.pattern_ops > 0
        assert ops.clv_updates > 0
        before = ops.pattern_ops
        engine.loglikelihood(tree)
        assert ops.pattern_ops == 2 * before

    def test_bad_weights_rejected(self, quartet, gtr_model):
        pal, _ = quartet
        with pytest.raises(ValueError):
            LikelihoodEngine(pal, gtr_model, weights=np.ones(pal.n_patterns + 1))
        with pytest.raises(ValueError):
            LikelihoodEngine(pal, gtr_model, weights=-np.ones(pal.n_patterns))
