"""Tests for the fine-grained timing model (repro.perfmodel.finegrain,
repro.perfmodel.machines)."""

import pytest

from repro.perfmodel.finegrain import (
    MachineRegionTiming,
    finegrain_speedup,
    pattern_cost,
    region_pattern_units,
    serial_pattern_cost,
)
from repro.perfmodel.machines import MACHINES, MachineSpec, machine_by_name


class TestMachines:
    def test_table4_roster(self):
        """Table 4: four machines with the right cores per node."""
        assert MACHINES["abe"].cores_per_node == 8
        assert MACHINES["dash"].cores_per_node == 8
        assert MACHINES["ranger"].cores_per_node == 16
        assert MACHINES["triton"].cores_per_node == 32

    def test_table4_processors(self):
        assert "Clovertown" in MACHINES["abe"].processor
        assert "Nehalem" in MACHINES["dash"].processor
        assert "Barcelona" in MACHINES["ranger"].processor
        assert "Shanghai" in MACHINES["triton"].processor

    def test_lookup_case_insensitive(self):
        assert machine_by_name("Dash").name == "Dash"
        assert machine_by_name("Triton PDAF").name == "Triton PDAF"
        with pytest.raises(KeyError):
            machine_by_name("cray")

    def test_max_threads_is_node_width(self):
        for m in MACHINES.values():
            assert m.max_threads() == m.cores_per_node

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            MachineSpec("x", "y", "z", 0, 2.0, 1.0, 1.0, 100, 4, 0.0, 1.0)
        with pytest.raises(ValueError):
            MachineSpec("x", "y", "z", 8, 2.0, 1.0, 0.5, 100, 4, 0.0, 1.0)


class TestPatternCost:
    def test_dash_is_flat(self):
        """Dash has no cache penalty: cost independent of chunk size."""
        dash = MACHINES["dash"]
        assert pattern_cost(dash, 100, 1) == pytest.approx(pattern_cost(dash, 20000, 1))

    def test_abe_cost_grows_with_chunk(self):
        abe = MACHINES["abe"]
        assert pattern_cost(abe, 20000, 1) > pattern_cost(abe, 500, 1)

    def test_bandwidth_contention_above_limit(self):
        abe = MACHINES["abe"]  # bandwidth_cores=4
        assert pattern_cost(abe, 5000, 8) > pattern_cost(abe, 5000, 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            pattern_cost(MACHINES["dash"], -1, 1)
        with pytest.raises(ValueError):
            pattern_cost(MACHINES["dash"], 100, 0)


class TestFinegrainSpeedup:
    def test_one_thread_is_one(self):
        for m in MACHINES.values():
            assert finegrain_speedup(m, 1846, 1) == 1.0

    def test_bounded_reasonably(self):
        """Sub-linear except for cache superlinearity (bounded by ~1.3x T)."""
        for m in MACHINES.values():
            for t in (2, 4, 8):
                s = finegrain_speedup(m, 19436, t)
                assert 0.5 < s <= 1.3 * t

    def test_threads_beyond_node_rejected(self):
        with pytest.raises(ValueError):
            finegrain_speedup(MACHINES["dash"], 1846, 16)

    def test_optimal_threads_grow_with_patterns(self):
        """Paper: 'the optimal number of Pthreads increases with the number
        of distinct patterns'."""
        dash = MACHINES["dash"]

        def best_threads(m):
            return max((1, 2, 4, 8), key=lambda t: finegrain_speedup(dash, m, t))

        assert best_threads(348) <= best_threads(1846) <= best_threads(19436)
        assert best_threads(19436) == 8

    def test_dash_linear_to_eight_for_large_patterns(self):
        """Fig 8: Dash exhibits near-ideal speedup up to 8 cores."""
        s8 = finegrain_speedup(MACHINES["dash"], 19436, 8)
        assert s8 > 7.4

    def test_dash_1846_matches_paper_implied_efficiency(self):
        """Paper Section 5.1 implies S_f(8) ~= 5.5 for the 1,846-pattern set
        (35.5 overall / 6.5 node-level)."""
        s8 = finegrain_speedup(MACHINES["dash"], 1846, 8)
        assert 4.8 <= s8 <= 6.2

    def test_abe_superlinear_at_four_threads(self):
        """Fig 8: Abe's speed per core *rises* from 1 to 4 cores."""
        abe = MACHINES["abe"]
        assert finegrain_speedup(abe, 19436, 4) > 4.0

    def test_triton_superlinear_at_eight(self):
        """Paper Table 5: Triton 8c speedup 8.49 (efficiency > 1)."""
        s = finegrain_speedup(MACHINES["triton"], 19436, 8)
        assert s > 8.0

    def test_small_patterns_punish_many_threads(self):
        dash = MACHINES["dash"]
        assert finegrain_speedup(dash, 348, 8) < finegrain_speedup(dash, 348, 4)

    def test_gamma_categories_improve_thread_scaling(self):
        """4 rate categories amortise the barrier: S_f rises with k."""
        dash = MACHINES["dash"]
        s1 = region_pattern_units(dash, 1846, 1, 1) / region_pattern_units(dash, 1846, 8, 1)
        s4 = region_pattern_units(dash, 1846, 1, 4) / region_pattern_units(dash, 1846, 8, 4)
        assert s4 > s1


class TestSerialCost:
    def test_dash_fastest_core(self):
        costs = {k: serial_pattern_cost(m, 19436) for k, m in MACHINES.items()}
        assert costs["dash"] == min(costs.values())

    def test_ratio_dash_triton_near_paper(self):
        """Table 5 serial times: 22,970 s (Dash) vs 32,627 s (Triton)."""
        ratio = serial_pattern_cost(MACHINES["triton"], 19436) / serial_pattern_cost(
            MACHINES["dash"], 19436
        )
        assert ratio == pytest.approx(32627 / 22970, rel=0.10)


class TestMachineRegionTiming:
    def test_protocol_compatible(self):
        from repro.threads.timing import RegionTiming

        timing = MachineRegionTiming(MACHINES["dash"])
        assert isinstance(timing, RegionTiming)

    def test_seconds_positive_and_scale(self):
        timing = MachineRegionTiming(MACHINES["dash"], seconds_per_pattern_unit=1e-6)
        t1 = timing.region_seconds([100], 1)
        t4 = timing.region_seconds([25, 25, 25, 25], 1)
        assert t1 > 0
        assert t4 < t1  # four threads split the work
