"""Tests for the epoch-based membership layer and the unified policies.

Covers the membership data model (:mod:`repro.mpi.membership`), the
consolidated :class:`RetryPolicy`/:class:`TimeoutPolicy` pair
(:mod:`repro.mpi.policy`), the membership stamps checkpoints carry (a
resume under different membership must fail loudly), quorum-based
graceful degradation on both backends, the world-shared adoption claim
(a dead rank's share is replayed exactly once even when later deaths or
joins reshuffle the survivor list), and the audit guarantee that
``RankKilledError`` — a ``BaseException`` — is never swallowed by a
broad ``except Exception`` on the way out of a dying rank.
"""

import json

import pytest

from repro.datasets import test_dataset as make_test_dataset
from repro.hybrid.driver import HybridConfig, run_hybrid_analysis
from repro.mpi.comm import DistributedStateError
from repro.mpi.faults import FaultPlan, JoinSpec, KillSpec, RankKilledError
from repro.mpi.launcher import run_spmd
from repro.mpi.membership import MembershipLedger, MembershipView
from repro.mpi.policy import RetryPolicy, TimeoutPolicy
from repro.search.comprehensive import ComprehensiveConfig
from repro.search.searches import StageParams
from repro.tree.newick import write_newick


@pytest.fixture(scope="module")
def pal():
    pal, _ = make_test_dataset(n_taxa=6, n_sites=60, seed=301)
    return pal


@pytest.fixture(scope="module")
def quick_cc():
    return ComprehensiveConfig(
        n_bootstraps=4,
        cat_categories=3,
        stage_params=StageParams(
            bootstrap_rounds=1, fast_rounds=1, slow_max_rounds=1,
            thorough_max_rounds=2, brlen_passes=1,
        ),
    )


def hybrid_config(quick_cc, **kw):
    kw.setdefault("n_processes", 2)
    kw.setdefault("n_threads", 1)
    kw.setdefault("comprehensive", quick_cc)
    kw.setdefault("timeout_policy",
                  TimeoutPolicy(collective_seconds=2.0, world_seconds=600.0))
    return HybridConfig(**kw)


def capture(result):
    return {
        "best_lnl": result.best_lnl,
        "best_newick": write_newick(result.best_tree, digits=None),
        "bootstraps": sorted(
            write_newick(t, digits=None) for t in result.bootstrap_trees
        ),
    }


# ---------------------------------------------------------------------------
# MembershipView / MembershipLedger data model
# ---------------------------------------------------------------------------


class TestMembershipView:
    def test_fingerprint_depends_only_on_epoch_and_live(self):
        a = MembershipView(epoch=3, live=(0, 2), joined=(), dead=(1,))
        b = MembershipView(epoch=3, live=(0, 2), joined=(2,), dead=())
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_changes_with_epoch_or_live(self):
        base = MembershipView(epoch=1, live=(0, 1))
        assert base.fingerprint() != MembershipView(epoch=2, live=(0, 1)).fingerprint()
        assert base.fingerprint() != MembershipView(epoch=1, live=(0,)).fingerprint()

    def test_validation(self):
        with pytest.raises(ValueError, match="epoch"):
            MembershipView(epoch=-1, live=(0,))
        with pytest.raises(ValueError, match="sorted"):
            MembershipView(epoch=0, live=(1, 0))

    def test_as_doc_roundtrips_to_json(self):
        view = MembershipView(epoch=2, live=(0, 1, 3), joined=(3,), dead=(2,))
        doc = json.loads(json.dumps(view.as_doc()))
        assert doc["epoch"] == 2
        assert doc["live"] == [0, 1, 3]
        assert doc["joined"] == [3]
        assert doc["dead"] == [2]
        assert doc["fingerprint"] == view.fingerprint()


class TestMembershipLedger:
    def test_deduplicates_repeated_observations(self):
        ledger = MembershipLedger(initial_live=(0, 1, 2))
        for _ in range(3):  # every survivor reports the same batch
            ledger.record_deaths((2,), time=1.0)
            ledger.record_join("bootstrap", (3,), epoch=2, time=2.0)
        doc = ledger.as_doc()
        assert doc["initial_live"] == [0, 1, 2]
        assert len(doc["events"]) == 2
        kinds = [e["kind"] for e in doc["events"]]
        assert kinds == ["death", "join"]
        assert all("_key" not in e for e in doc["events"])


# ---------------------------------------------------------------------------
# RetryPolicy / TimeoutPolicy
# ---------------------------------------------------------------------------


class TestPolicies:
    def test_backoff_is_exponential(self):
        p = RetryPolicy(max_retries=4, base_backoff=0.001, multiplier=2.0)
        assert p.backoff_seconds(0) == pytest.approx(0.001)
        assert p.backoff_seconds(3) == pytest.approx(0.008)

    def test_retry_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)

    def test_timeout_validation_and_backcompat(self):
        with pytest.raises(ValueError):
            TimeoutPolicy(collective_seconds=0.0)
        with pytest.raises(ValueError):
            TimeoutPolicy(world_seconds=-1.0)
        legacy = TimeoutPolicy.from_timeout(42.0)
        assert legacy.collective_seconds == 42.0
        assert legacy.world_seconds == 42.0

    def test_policies_not_in_checkpoint_fingerprint(self, pal, quick_cc):
        from repro.hybrid.checkpoint import config_fingerprint

        a = hybrid_config(quick_cc)
        b = hybrid_config(
            quick_cc,
            retry_policy=RetryPolicy(max_retries=2, base_backoff=0.5),
            timeout_policy=TimeoutPolicy(collective_seconds=1.0),
        )
        assert config_fingerprint(pal, a) == config_fingerprint(pal, b)


# ---------------------------------------------------------------------------
# Epoch advancement end to end
# ---------------------------------------------------------------------------


class TestEpochs:
    def test_fault_free_run_stays_at_epoch_zero(self, pal, quick_cc):
        result = run_hybrid_analysis(pal, hybrid_config(quick_cc))
        assert result.membership["epoch"] == 0
        assert result.membership["live"] == [0, 1]
        assert result.joiners == []

    @pytest.mark.parametrize("schedule", ["static", "work-steal"])
    def test_join_bumps_epoch_and_preserves_results(
        self, pal, quick_cc, schedule
    ):
        baseline = run_hybrid_analysis(
            pal, hybrid_config(quick_cc, schedule=schedule)
        )
        plan = FaultPlan(joins=(JoinSpec(rank=2, stage="bootstrap"),))
        joined = run_hybrid_analysis(
            pal, hybrid_config(quick_cc, schedule=schedule, fault_plan=plan)
        )
        # The elastic-join acceptance scenario: same final trees/lnl.
        assert capture(joined) == capture(baseline)
        assert joined.membership["epoch"] >= 1
        assert 2 in joined.membership["live"]
        assert [j["rank"] for j in joined.joiners] == [2]
        assert joined.joiners[0]["join_stage"] == "bootstrap"

    def test_death_bumps_epoch(self, pal, quick_cc):
        plan = FaultPlan(kills=(KillSpec(rank=1, stage="fast"),))
        result = run_hybrid_analysis(pal, hybrid_config(quick_cc, fault_plan=plan))
        assert result.failed_ranks == [1]
        assert result.membership["epoch"] >= 1
        assert result.membership["live"] == [0]


# ---------------------------------------------------------------------------
# Checkpoint membership stamps (--resume guard)
# ---------------------------------------------------------------------------


class TestCheckpointMembershipGuard:
    def test_resume_under_different_membership_is_rejected(
        self, pal, quick_cc, tmp_path
    ):
        ck = tmp_path / "ck"
        config = hybrid_config(quick_cc, checkpoint_dir=str(ck))
        run_hybrid_analysis(pal, config)

        # Tamper: pretend the checkpoints were written in a world that
        # had already advanced to a different epoch/live set.
        stamped = 0
        for path in ck.rglob("*.json"):
            doc = json.loads(path.read_text())
            stamp = (doc.get("payload") or {}).get("membership")
            if stamp is None:
                continue
            stamp["epoch"] += 7
            stamp["fingerprint"] = "0" * 16
            path.write_text(json.dumps(doc))
            stamped += 1
        assert stamped > 0, "no membership stamps found to tamper with"

        resume = hybrid_config(quick_cc, checkpoint_dir=str(ck), resume=True)
        with pytest.raises(DistributedStateError, match="membership"):
            run_hybrid_analysis(pal, resume)

    def test_resume_with_same_membership_succeeds(self, pal, quick_cc, tmp_path):
        ck = tmp_path / "ck"
        config = hybrid_config(quick_cc, checkpoint_dir=str(ck))
        baseline = run_hybrid_analysis(pal, config)
        resumed = run_hybrid_analysis(
            pal, hybrid_config(quick_cc, checkpoint_dir=str(ck), resume=True)
        )
        assert capture(resumed) == capture(baseline)


# ---------------------------------------------------------------------------
# Quorum-based graceful degradation
# ---------------------------------------------------------------------------


class TestQuorumDegradation:
    @pytest.mark.parametrize("schedule", ["static", "work-steal"])
    def test_below_quorum_completes_partial_and_tagged(
        self, pal, quick_cc, schedule
    ):
        plan = FaultPlan(kills=(KillSpec(rank=1, stage="fast"),
                                KillSpec(rank=2, stage="slow")))
        config = hybrid_config(
            quick_cc, n_processes=3, schedule=schedule,
            fault_plan=plan, quorum=0.9,
        )
        result = run_hybrid_analysis(pal, config)
        assert result.degraded
        assert any("quorum lost" in n for n in result.notes)
        assert sorted(result.failed_ranks) == [1, 2]
        # The run still selected a tree from the surviving candidates.
        assert result.best_tree is not None

    def test_quorum_zero_recovers_fully(self, pal, quick_cc):
        baseline = run_hybrid_analysis(
            pal, hybrid_config(quick_cc, n_processes=3)
        )
        plan = FaultPlan(kills=(KillSpec(rank=1, stage="fast"),
                                KillSpec(rank=2, stage="slow")))
        result = run_hybrid_analysis(
            pal, hybrid_config(quick_cc, n_processes=3, fault_plan=plan)
        )
        assert not result.degraded and not result.notes
        assert capture(result) == capture(baseline)

    def test_quorum_validation(self, quick_cc):
        with pytest.raises(ValueError, match="quorum"):
            hybrid_config(quick_cc, quorum=1.5)


# ---------------------------------------------------------------------------
# Adoption is a world-shared claim (no double replay)
# ---------------------------------------------------------------------------


class TestAdoptionClaim:
    def test_later_membership_changes_never_double_replay(self, pal, quick_cc):
        """Two staggered deaths plus joins reshuffle the survivor list
        between recoveries; the claimed adopter must stick, keeping the
        global replicate multiset (and everything else) bit-identical."""
        baseline = run_hybrid_analysis(
            pal, hybrid_config(quick_cc, n_processes=3)
        )
        plan = FaultPlan(
            kills=(KillSpec(rank=2, replicate=1),
                   KillSpec(rank=1, stage="fast")),
            joins=(JoinSpec(rank=3, stage="setup"),
                   JoinSpec(rank=4, stage="bootstrap")),
        )
        result = run_hybrid_analysis(
            pal, hybrid_config(quick_cc, n_processes=3, fault_plan=plan)
        )
        assert sorted(result.failed_ranks) == [1, 2]
        assert capture(result) == capture(baseline)
        # Each dead rank was adopted exactly once across ranks + joiners.
        adopters = [r.recovered_for for r in result.ranks] + [
            tuple(j["recovered_for"]) for j in result.joiners
        ]
        flat = [d for recovered in adopters for d in recovered]
        assert sorted(flat) == [1, 2]

    def test_claim_elected_joiner_services_it(self, pal, quick_cc):
        """A death surfacing at the very boundary that activates a joiner
        can elect that joiner as adopter; the joiner must notice the
        claim from its activation record (it was not part of the failed
        exchange) and replay the share."""
        baseline = run_hybrid_analysis(
            pal, hybrid_config(quick_cc, n_processes=3)
        )
        # Rank 2 dies at 'fast'; the death surfaces at the 'slow'
        # boundary where rank 3 joins, so the survivor list is [0, 1, 3]
        # and the deterministic candidate for dead rank 2 is rank 3.
        plan = FaultPlan(
            kills=(KillSpec(rank=2, stage="fast"),),
            joins=(JoinSpec(rank=3, stage="slow"),),
        )
        result = run_hybrid_analysis(
            pal, hybrid_config(quick_cc, n_processes=3, fault_plan=plan)
        )
        assert sorted(result.failed_ranks) == [2]
        assert capture(result) == capture(baseline)
        adopters = [list(r.recovered_for) for r in result.ranks] + [
            list(j["recovered_for"]) for j in result.joiners
        ]
        flat = [d for recovered in adopters for d in recovered]
        assert flat == [2]

    def test_claim_moves_when_the_adopter_itself_dies(self, pal, quick_cc):
        """An adopter's local replay dies with it: the versioned claim
        must advance past the dead owner so a survivor replays again."""
        baseline = run_hybrid_analysis(
            pal, hybrid_config(quick_cc, n_processes=3)
        )
        # Rank 1 dies at 'bootstrap'; survivors [0, 2] elect rank 2
        # ((1 + 0) % 2) as adopter.  Rank 2 then dies at 'slow', taking
        # its replay of rank 1's share with it — the claim's version 1
        # must hand both shares to rank 0.
        plan = FaultPlan(
            kills=(KillSpec(rank=1, stage="bootstrap"),
                   KillSpec(rank=2, stage="slow")),
        )
        result = run_hybrid_analysis(
            pal, hybrid_config(quick_cc, n_processes=3, fault_plan=plan)
        )
        assert sorted(result.failed_ranks) == [1, 2]
        assert capture(result) == capture(baseline)
        assert sorted(result.ranks[0].recovered_for) == [1, 2]


# ---------------------------------------------------------------------------
# RankKilledError audit: a dying rank is never swallowed
# ---------------------------------------------------------------------------


class TestRankKilledErrorAudit:
    def test_rank_killed_error_is_base_exception(self):
        assert issubclass(RankKilledError, BaseException)
        assert not issubclass(RankKilledError, Exception)

    def test_except_exception_cannot_swallow_a_kill(self):
        """The exact leak the audit guards against: user-level code with
        a broad ``except Exception`` must not convert a kill into a
        survivable condition."""
        witnessed = []

        def body(comm):
            try:
                if comm.rank == 1:
                    raise RankKilledError("rank 1 killed at 'fast'")
            except Exception:  # the classic overbroad handler
                witnessed.append("swallowed")
            return comm.rank

        results = run_spmd(body, 2, fault_plan=FaultPlan())
        assert witnessed == []
        assert results[0] == 0
        assert results[1] is None  # rank 1 died, not recovered here

    def test_pool_releases_board_state_when_rank_dies(self, pal, quick_cc):
        """A kill inside a work-steal pool must abandon the rank's board
        state (releasing its queue to survivors), not wedge the drain."""
        baseline = run_hybrid_analysis(
            pal, hybrid_config(quick_cc, schedule="work-steal")
        )
        plan = FaultPlan(kills=(KillSpec(rank=1, replicate=0),))
        result = run_hybrid_analysis(
            pal, hybrid_config(quick_cc, schedule="work-steal", fault_plan=plan)
        )
        assert result.failed_ranks == [1]
        assert capture(result) == capture(baseline)


# ---------------------------------------------------------------------------
# Recovery overhead reaches the obs report (Fig. 3-4 wiring)
# ---------------------------------------------------------------------------


class TestRecoveryObservability:
    def test_recovery_overhead_block_in_report(self, pal, quick_cc):
        plan = FaultPlan(kills=(KillSpec(rank=1, stage="fast"),))
        config = hybrid_config(
            quick_cc, fault_plan=plan, collect_metrics=True,
        )
        result = run_hybrid_analysis(pal, config)
        report = result.metrics["report"]
        overhead = report.get("recovery_overhead")
        assert overhead, "recovery_overhead block missing from the report"
        assert overhead["total_seconds"] > 0.0
        assert any(v > 0.0 for v in overhead["per_stage"].values())

    def test_fault_free_run_reports_zero_recovery(self, pal, quick_cc):
        result = run_hybrid_analysis(
            pal, hybrid_config(quick_cc, collect_metrics=True)
        )
        overhead = result.metrics["report"].get("recovery_overhead")
        if overhead is not None:
            assert overhead["total_seconds"] == 0.0

    def test_retry_and_backoff_counters_surface(self, pal, quick_cc):
        from repro.mpi.faults import CollectiveGlitch

        plan = FaultPlan(glitches=(
            CollectiveGlitch(rank=0, call_index=0, kind="fail", failures=2),
        ))
        result = run_hybrid_analysis(pal, hybrid_config(quick_cc, fault_plan=plan))
        assert sum(r.n_retries for r in result.ranks) >= 2
        assert sum(r.backoff_seconds for r in result.ranks) > 0.0
