"""Tests for the memory-footprint model (repro.perfmodel.memory).

Reproduces the paper's Discussion claim: for pattern-rich future data
sets, "not enough memory per core will be available to analyze a single
tree using one MPI process per core" — hybrid layouts with several
threads per process become mandatory, not just faster.
"""

import pytest

from repro.perfmodel.machines import MACHINES
from repro.perfmodel.memory import (
    feasible_node_layouts,
    max_processes_per_node,
    min_threads_per_process,
    process_memory,
)


class TestProcessMemory:
    def test_scales_with_shape(self):
        small = process_memory(100, 1000)
        big_patterns = process_memory(100, 100_000)
        big_taxa = process_memory(1000, 1000)
        assert big_patterns.total_bytes > small.total_bytes
        assert big_taxa.total_bytes > small.total_bytes

    def test_gamma_costs_four_times_cat(self):
        cat = process_memory(100, 10_000, n_categories=1, overhead_mb=0)
        gamma = process_memory(100, 10_000, n_categories=4, overhead_mb=0)
        assert gamma.clv_bytes == pytest.approx(4 * cat.clv_bytes)

    def test_benchmark_sets_are_modest(self):
        """The paper's data sets fit comfortably on every machine."""
        est = process_memory(404, 7429)  # the largest of Table 3
        for m in MACHINES.values():
            assert max_processes_per_node(m, est) >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            process_memory(2, 100)
        with pytest.raises(ValueError):
            process_memory(10, 0)


class TestNodeLayouts:
    def test_small_dataset_allows_process_per_core(self):
        est = process_memory(218, 1846)
        dash = MACHINES["dash"]
        assert max_processes_per_node(dash, est) == dash.cores_per_node
        assert min_threads_per_process(dash, est) == 1

    def test_future_dataset_forces_threads(self):
        """Discussion scenario: a pattern-rich alignment where one process
        per core does not fit, but thread-rich layouts do."""
        est = process_memory(2000, 500_000)  # ~ tomorrow's data set
        abe = MACHINES["abe"]  # 8 GB/node
        assert est.total_gb > abe.memory_per_node_gb / abe.cores_per_node
        # Either it doesn't fit at all, or it needs multiple cores' memory.
        if max_processes_per_node(abe, est) >= 1:
            assert min_threads_per_process(abe, est) > 1

    def test_layouts_sorted_and_feasible(self):
        est = process_memory(500, 50_000)
        dash = MACHINES["dash"]
        layouts = feasible_node_layouts(dash, est)
        assert layouts  # something fits on 48 GB
        for procs, threads in layouts:
            assert procs * threads == dash.cores_per_node
            assert procs * est.total_gb <= dash.memory_per_node_gb
        procs_list = [p for p, _ in layouts]
        assert procs_list == sorted(procs_list, reverse=True)

    def test_infeasible_dataset_raises(self):
        est = process_memory(5000, 2_000_000)  # ~ 1.9 TB under GAMMA
        with pytest.raises(ValueError, match="GB"):
            min_threads_per_process(MACHINES["abe"], est)

    def test_more_node_memory_admits_more_processes(self):
        est = process_memory(1000, 100_000)
        assert max_processes_per_node(MACHINES["triton"], est) >= \
            max_processes_per_node(MACHINES["abe"], est)
