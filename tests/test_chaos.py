"""Tests for the deterministic chaos-campaign harness (:mod:`repro.chaos`).

The generator must be a pure function of ``(seed, schedule, index)`` and
only ever emit *legal, recoverable* plans; the campaign runner must
catch violations, and a miniature campaign must come out clean.
"""

import json

import pytest

from repro.chaos.campaign import (
    _make_inputs,
    replay_scenario,
    run_campaign,
    run_scenario,
)
from repro.chaos.plans import (
    MAX_GLITCH_FAILURES,
    generate_scenario,
    strip_for_resume,
)
from repro.mpi.faults import STAGE_POINTS, FaultPlan, JoinSpec, KillSpec

SEED = 20260808


class TestGenerator:
    def test_pure_function_of_inputs(self):
        a = generate_scenario(17, SEED, "static", 3)
        b = generate_scenario(17, SEED, "static", 3)
        assert a == b
        assert generate_scenario(18, SEED, "static", 3) != a
        assert generate_scenario(17, SEED + 1, "static", 3) != a

    @pytest.mark.parametrize("schedule", ["static", "work-steal"])
    @pytest.mark.parametrize("p", [2, 3])
    def test_all_generated_plans_are_legal(self, schedule, p):
        """Sweep many indices: every plan must construct (FaultPlan
        validates itself) and respect the recoverability bounds."""
        for index in range(300):
            spec = generate_scenario(index, SEED, schedule, p)
            assert spec.equality == "full"
            # At least one original rank survives every doomed set.
            assert len(spec.deaths) <= p - 1
            for k in spec.plan.kills:
                assert 0 <= k.rank < p
            for g in spec.plan.glitches:
                assert 0 <= g.rank < p
                if g.kind == "fail":
                    assert 1 <= g.failures <= MAX_GLITCH_FAILURES
            # Joiners are numbered contiguously above the initial world.
            join_ranks = [j.rank for j in spec.plan.joins]
            assert join_ranks == list(range(p, p + len(join_ranks)))
            for j in spec.plan.joins:
                assert j.stage in STAGE_POINTS
            # Glitch injection points are unique per (rank, call).
            points = [(g.rank, g.call_index) for g in spec.plan.glitches]
            assert len(points) == len(set(points))

    def test_deaths_cover_hangs(self):
        """A hang glitch dooms its rank; the spec's death set must say so."""
        for index in range(300):
            spec = generate_scenario(index, SEED, "static", 3)
            doomed = {k.rank for k in spec.plan.kills}
            doomed |= {g.rank for g in spec.plan.glitches if g.kind == "hang"}
            assert set(spec.deaths) == doomed


class TestStripForResume:
    def test_kills_and_glitches_dropped_joins_kept(self):
        plan = FaultPlan(
            kills=(KillSpec(rank=1, stage="fast"),),
            glitches=(),
            joins=(JoinSpec(rank=2, stage="bootstrap"),),
        )
        resumed = strip_for_resume(plan)
        assert resumed.kills == ()
        assert resumed.joins == plan.joins

    def test_none_when_nothing_remains(self):
        plan = FaultPlan(kills=(KillSpec(rank=1, stage="fast"),))
        assert strip_for_resume(plan) is None


class TestScenarioDocs:
    def test_as_doc_roundtrips_to_json(self):
        spec = generate_scenario(6, SEED, "static", 3)
        doc = json.loads(json.dumps(spec.as_doc()))
        assert doc["index"] == 6
        assert doc["schedule"] == "static"
        assert doc["n_processes"] == 3
        assert len(doc["kills"]) == len(spec.plan.kills)
        assert len(doc["joins"]) == len(spec.plan.joins)


class TestCampaign:
    @pytest.fixture(scope="class")
    def inputs(self):
        return _make_inputs()

    def test_mini_campaign_is_clean(self, tmp_path):
        report = run_campaign(n_scenarios=4, seed=SEED,
                              out=tmp_path / "BENCH_chaos.json",
                              workdir=tmp_path / "work")
        assert report["n_violations"] == 0, report["violations"]
        # 4 scenarios + 2 degradation probes + 6 leader-death probes.
        assert report["n_records"] == 12
        assert (tmp_path / "BENCH_chaos.json").exists()
        on_disk = json.loads((tmp_path / "BENCH_chaos.json").read_text())
        assert on_disk["n_records"] == report["n_records"]
        assert set(report["counts"]["by_schedule"]) == {"static", "work-steal"}

    def test_scenario_detects_a_planted_violation(self, inputs, tmp_path):
        """Feed a wrong baseline: the equality check must fire."""
        pal, cc = inputs
        spec = generate_scenario(1, SEED, "static", 2)
        bogus = {"best_lnl": 0.0, "best_newick": "(a,b);",
                 "bootstrap_newicks": [], "n_bootstraps_done": -1}
        record = run_scenario(pal, cc, spec, bogus, None)
        assert record["violations"]

    def test_replay_scenario_matches_campaign(self, tmp_path):
        record = replay_scenario(2, SEED, "static", 2)
        assert record["violations"] == []
        assert record["index"] == 2
