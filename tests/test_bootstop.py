"""Tests for the bootstopping substrate (repro.bootstop)."""

import pytest

from repro.bootstop.consensus import majority_consensus
from repro.bootstop.support import map_support
from repro.bootstop.table import BipartitionTable, merge_tables
from repro.bootstop.wc_test import (
    wc_converged,
    wc_recommended_bootstraps,
    wc_statistic,
)
from repro.tree.bipartitions import tree_bipartitions
from repro.tree.newick import parse_newick, write_newick
from repro.tree.random_trees import random_topology
from repro.util.rng import RAxMLRandom

TAXA6 = ("A", "B", "C", "D", "E", "F")


@pytest.fixture()
def ref_tree():
    return parse_newick("((A,B),(C,D),(E,F));", taxa=TAXA6)


@pytest.fixture()
def mixed_trees(ref_tree):
    """14 copies of the reference plus 6 random topologies."""
    rng = RAxMLRandom(31)
    return [ref_tree.copy() for _ in range(14)] + [
        random_topology(TAXA6, rng) for _ in range(6)
    ]


class TestBipartitionTable:
    def test_counts_accumulate(self, ref_tree):
        t = BipartitionTable(6)
        t.add_tree(ref_tree)
        t.add_tree(ref_tree.copy())
        assert t.n_trees == 2
        for bip in tree_bipartitions(ref_tree):
            assert t.counts[bip] == 2
            assert t.frequency(bip) == 1.0

    def test_unknown_split_frequency_zero(self, ref_tree):
        t = BipartitionTable(6)
        t.add_tree(ref_tree)
        other = parse_newick("((A,C),(B,D),(E,F));", taxa=TAXA6)
        for bip in tree_bipartitions(other) - tree_bipartitions(ref_tree):
            assert t.frequency(bip) == 0.0

    def test_wrong_taxon_count_rejected(self, ref_tree):
        t = BipartitionTable(7)
        with pytest.raises(ValueError):
            t.add_tree(ref_tree)

    def test_frequency_requires_trees(self):
        with pytest.raises(ValueError):
            BipartitionTable(6).frequencies()

    def test_shard_partition_is_disjoint_and_complete(self, mixed_trees):
        full = BipartitionTable(6)
        full.add_trees(mixed_trees)
        shards = [BipartitionTable(6, shard=s, n_shards=3) for s in range(3)]
        for s in shards:
            s.add_trees(mixed_trees)
        # Disjoint ownership:
        seen = set()
        for s in shards:
            assert not (set(s.counts) & seen)
            seen |= set(s.counts)
        assert seen == set(full.counts)
        # Merge reproduces the global table.
        merged = merge_tables(shards)
        assert merged.frequencies() == full.frequencies()

    def test_merge_per_rank_tables_sums_trees(self, mixed_trees):
        half = len(mixed_trees) // 2
        t1 = BipartitionTable(6)
        t1.add_trees(mixed_trees[:half])
        t2 = BipartitionTable(6)
        t2.add_trees(mixed_trees[half:])
        merged = merge_tables([t1, t2])
        assert merged.n_trees == len(mixed_trees)

    def test_merge_validation(self, mixed_trees):
        with pytest.raises(ValueError):
            merge_tables([])
        s0 = BipartitionTable(6, shard=0, n_shards=3)
        with pytest.raises(ValueError):
            merge_tables([s0])  # missing shards
        with pytest.raises(ValueError):
            merge_tables([BipartitionTable(6), BipartitionTable(7)])


class TestConsensus:
    def test_unanimous_trees_reproduce_topology(self, ref_tree):
        t = BipartitionTable(6)
        for _ in range(10):
            t.add_tree(ref_tree.copy())
        cons = majority_consensus(t, TAXA6)
        assert tree_bipartitions(ref_tree) == {
            b for b in tree_bipartitions(cons)
        }

    def test_mixed_trees_give_partial_resolution(self, mixed_trees):
        t = BipartitionTable(6)
        t.add_trees(mixed_trees)
        cons = majority_consensus(t, TAXA6)
        # Majority splits of the 70% reference component survive.
        assert len(tree_bipartitions(cons)) >= 1
        # Consensus supports recorded on internal nodes.
        internal = [n for n in cons.postorder() if not n.is_leaf and n.parent]
        assert all(n.support is not None and n.support > 0.5 for n in internal)

    def test_extended_resolves_more(self, mixed_trees):
        """MRE adds compatible minority splits on top of the MR set."""
        t = BipartitionTable(6)
        t.add_trees(mixed_trees)
        mr = majority_consensus(t, TAXA6)
        mre = majority_consensus(t, TAXA6, extended=True)
        assert tree_bipartitions(mr) <= tree_bipartitions(mre)
        assert len(tree_bipartitions(mre)) >= len(tree_bipartitions(mr))

    def test_extended_fully_resolves_unanimous(self, ref_tree):
        t = BipartitionTable(6)
        for _ in range(4):
            t.add_tree(ref_tree.copy())
        mre = majority_consensus(t, TAXA6, extended=True)
        assert tree_bipartitions(mre) == tree_bipartitions(ref_tree)

    def test_low_threshold_rejected(self, mixed_trees):
        t = BipartitionTable(6)
        t.add_trees(mixed_trees)
        with pytest.raises(ValueError):
            majority_consensus(t, TAXA6, threshold=0.3)

    def test_taxa_mismatch_rejected(self, ref_tree):
        t = BipartitionTable(6)
        t.add_tree(ref_tree)
        with pytest.raises(ValueError):
            majority_consensus(t, TAXA6 + ("G",))


class TestMapSupport:
    def test_supports_in_unit_interval(self, ref_tree, mixed_trees):
        table = BipartitionTable(6)
        table.add_trees(mixed_trees)
        annotated = map_support(ref_tree, table)
        sups = [e.support for e in annotated.internal_edges()]
        assert all(0.0 <= s <= 1.0 for s in sups)
        assert any(s >= 0.7 for s in sups)  # the 14/20 majority component

    def test_original_not_mutated(self, ref_tree, mixed_trees):
        table = BipartitionTable(6)
        table.add_trees(mixed_trees)
        map_support(ref_tree, table)
        assert all(e.support is None for e in ref_tree.internal_edges())

    def test_support_serialises(self, ref_tree, mixed_trees):
        table = BipartitionTable(6)
        table.add_trees(mixed_trees)
        out = write_newick(map_support(ref_tree, table), support=True)
        assert any(ch.isdigit() for ch in out.split(")")[1])

    def test_empty_table_rejected(self, ref_tree):
        with pytest.raises(ValueError):
            map_support(ref_tree, BipartitionTable(6))


class TestWCTest:
    def test_identical_trees_converge(self, ref_tree):
        trees = [ref_tree.copy() for _ in range(20)]
        ok, stat = wc_converged(trees, RAxMLRandom(1))
        assert ok
        assert stat == pytest.approx(0.0)

    def test_random_trees_do_not_converge(self):
        rng = RAxMLRandom(5)
        trees = [random_topology(tuple("ABCDEFGH"), rng) for _ in range(20)]
        ok, stat = wc_converged(trees, RAxMLRandom(1))
        assert not ok
        assert stat > 0.05

    def test_statistic_requires_even_count(self, ref_tree):
        with pytest.raises(ValueError):
            wc_statistic([ref_tree.copy() for _ in range(5)], RAxMLRandom(1))

    def test_statistic_deterministic(self, mixed_trees):
        a = wc_statistic(mixed_trees, RAxMLRandom(9))
        b = wc_statistic(mixed_trees, RAxMLRandom(9))
        assert a == b

    def test_recommended_bootstraps_stops_on_convergence(self, ref_tree):
        source = lambda i: ref_tree.copy()
        n, trace = wc_recommended_bootstraps(
            source, RAxMLRandom(2), step=4, max_replicates=40
        )
        assert n == 4  # converges at the first checkpoint
        assert trace[0][0] == 4

    def test_recommended_bootstraps_hits_cap(self):
        rng = RAxMLRandom(5)
        source = lambda i: random_topology(tuple("ABCDEFGH"), rng)
        n, trace = wc_recommended_bootstraps(
            source, RAxMLRandom(2), step=4, max_replicates=12
        )
        assert n == 12
        assert len(trace) == 3

    def test_step_validation(self, ref_tree):
        with pytest.raises(ValueError):
            wc_recommended_bootstraps(lambda i: ref_tree, RAxMLRandom(1), step=3)
