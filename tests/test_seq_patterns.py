"""Tests for pattern compression (repro.seq.patterns)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.seq.alignment import Alignment
from repro.seq.patterns import PatternAlignment, compress_alignment

BASES = "ACGT-"


def random_alignment(draw_rows):
    return Alignment.from_sequences(
        [(f"t{i}", row) for i, row in enumerate(draw_rows)]
    )


class TestCompress:
    def test_collapses_identical_columns(self):
        aln = Alignment.from_sequences(
            [("a", "AAC"), ("b", "CCG"), ("c", "GGT")]
        )  # cols 0 and 1 identical
        pal = compress_alignment(aln)
        assert pal.n_patterns == 2
        assert pal.weights.tolist() == [2, 1]

    def test_weights_sum_to_sites(self):
        aln = Alignment.from_sequences([("a", "ACGTAC"), ("b", "AAAAAA"), ("c", "ACACAC")])
        pal = compress_alignment(aln)
        assert pal.weights.sum() == aln.n_sites

    def test_patterns_ordered_by_first_occurrence(self):
        aln = Alignment.from_sequences([("a", "TA"), ("b", "TA"), ("c", "TA")])
        pal = compress_alignment(aln)
        # First column (all T) must be pattern 0.
        assert pal.patterns[0, 0] == 8  # T mask
        assert pal.patterns[0, 1] == 1  # A mask

    def test_site_to_pattern_maps_back(self):
        aln = Alignment.from_sequences([("a", "ACA"), ("b", "GTG"), ("c", "CAC")])
        pal = compress_alignment(aln)
        assert pal.site_to_pattern.tolist() == [0, 1, 0]

    def test_expand_roundtrip(self):
        aln = Alignment.from_sequences(
            [("a", "ACGTACGT"), ("b", "ACGAACGA"), ("c", "AGGTAGGT")]
        )
        assert compress_alignment(aln).expand() == aln

    def test_all_distinct_columns(self):
        aln = Alignment.from_sequences([("a", "ACGT"), ("b", "CGTA"), ("c", "GTAC")])
        pal = compress_alignment(aln)
        assert pal.n_patterns == 4
        assert pal.weights.tolist() == [1, 1, 1, 1]

    @settings(max_examples=30)
    @given(
        st.lists(
            st.text(alphabet=BASES, min_size=12, max_size=12),
            min_size=3,
            max_size=6,
        )
    )
    def test_expand_roundtrip_property(self, rows):
        aln = random_alignment(rows)
        pal = compress_alignment(aln)
        assert pal.expand() == aln
        assert pal.weights.sum() == aln.n_sites
        assert pal.n_patterns <= aln.n_sites


class TestPatternAlignment:
    def test_with_weights(self, handmade_pal):
        new_w = np.arange(handmade_pal.n_patterns)
        pal2 = handmade_pal.with_weights(new_w)
        assert pal2.weights.tolist() == new_w.tolist()
        assert pal2.patterns is handmade_pal.patterns

    def test_negative_weights_rejected(self, handmade_pal):
        with pytest.raises(ValueError):
            handmade_pal.with_weights(np.full(handmade_pal.n_patterns, -1))

    def test_wrong_weight_length_rejected(self, handmade_pal):
        with pytest.raises(ValueError):
            handmade_pal.with_weights(np.ones(handmade_pal.n_patterns + 1))

    def test_taxon_index(self, handmade_pal):
        assert handmade_pal.taxon_index("A") == 0
        with pytest.raises(KeyError):
            handmade_pal.taxon_index("nope")

    def test_bad_site_map_rejected(self, handmade_pal):
        with pytest.raises(ValueError):
            PatternAlignment(
                handmade_pal.taxa,
                handmade_pal.patterns,
                handmade_pal.weights,
                np.array([999]),
            )

    def test_immutability(self, handmade_pal):
        with pytest.raises((ValueError, RuntimeError)):
            handmade_pal.weights[0] = 42
