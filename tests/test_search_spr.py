"""Tests for lazy SPR moves (repro.search.spr)."""

import pytest

from repro.likelihood.engine import LikelihoodEngine, RateModel
from repro.search.spr import SPRParams, edges_within_radius, spr_round, try_spr
from repro.search.starting_tree import random_starting_tree
from repro.util.rng import RAxMLRandom


@pytest.fixture()
def engine(tiny_pal, gtr_model):
    return LikelihoodEngine(tiny_pal, gtr_model, RateModel.gamma(0.8, 4))


@pytest.fixture()
def bad_tree(tiny_pal):
    """A deliberately random (poor) starting topology."""
    return random_starting_tree(tiny_pal, RAxMLRandom(987))


class TestEdgesWithinRadius:
    def test_radius_one_is_neighbourhood(self, tiny_tree):
        origin = tiny_tree.internal_edges()[0]
        edges = edges_within_radius(tiny_tree, origin, 1)
        # Origin itself plus its direct neighbours only.
        assert origin in edges
        assert len(edges) <= 5

    def test_large_radius_covers_tree(self, tiny_tree):
        origin = tiny_tree.edges()[0]
        edges = edges_within_radius(tiny_tree, origin, 100)
        assert len(edges) == len(tiny_tree.edges())

    def test_radius_monotone(self, tiny_tree):
        origin = tiny_tree.edges()[0]
        sizes = [len(edges_within_radius(tiny_tree, origin, r)) for r in (1, 2, 4, 8)]
        assert sizes == sorted(sizes)


class TestTrySPR:
    def test_root_index_returns_none(self, engine, tiny_tree):
        nodes = list(tiny_tree.postorder())
        root_idx = nodes.index(tiny_tree.root)
        assert try_spr(engine, tiny_tree, root_idx, SPRParams()) is None

    def test_returns_valid_tree(self, engine, bad_tree):
        res = try_spr(engine, bad_tree, 0, SPRParams(radius=5))
        assert res is not None
        new_tree, lnl = res
        new_tree.validate()
        assert sorted(l.name for l in new_tree.leaves()) == sorted(bad_tree.taxa)
        assert lnl == pytest.approx(engine.loglikelihood(new_tree), abs=1e-9)

    def test_original_tree_untouched(self, engine, bad_tree):
        from repro.tree.bipartitions import tree_bipartitions

        before = tree_bipartitions(bad_tree)
        lengths = [e.length for e in bad_tree.edges()]
        try_spr(engine, bad_tree, 0, SPRParams())
        assert tree_bipartitions(bad_tree) == before
        assert [e.length for e in bad_tree.edges()] == lengths

    def test_out_of_range_index(self, engine, bad_tree):
        with pytest.raises(IndexError):
            try_spr(engine, bad_tree, 9999, SPRParams())

    def test_params_validation(self):
        with pytest.raises(ValueError):
            SPRParams(radius=0)
        with pytest.raises(ValueError):
            SPRParams(min_improvement=-1)


class TestSPRRound:
    def test_improves_bad_tree(self, engine, bad_tree):
        before = engine.loglikelihood(bad_tree)
        tree, lnl, improved = spr_round(engine, bad_tree, SPRParams(radius=6))
        assert lnl >= before
        tree.validate()

    def test_no_regression(self, engine, bad_tree):
        """A round never returns a tree worse than its input."""
        before = engine.loglikelihood(bad_tree)
        _, lnl, _ = spr_round(engine, bad_tree, SPRParams(radius=3))
        assert lnl >= before - 1e-9

    def test_converges_to_fixpoint(self, engine, bad_tree):
        tree, lnl, improved = spr_round(engine, bad_tree, SPRParams(radius=8))
        while improved:
            tree, lnl, improved = spr_round(
                engine, tree, SPRParams(radius=8), current_lnl=lnl
            )
        # One more round finds nothing.
        _, lnl2, improved2 = spr_round(engine, tree, SPRParams(radius=8), current_lnl=lnl)
        assert not improved2
        assert lnl2 == lnl

    def test_prune_subsampling(self, engine, bad_tree):
        rng = RAxMLRandom(3)
        tree, lnl, _ = spr_round(
            engine, bad_tree, SPRParams(radius=5, max_prune_candidates=3), rng=rng
        )
        tree.validate()
