"""Tests for model optimisation (repro.likelihood.model_opt)."""

import numpy as np
import pytest

from repro.likelihood.engine import LikelihoodEngine, RateModel
from repro.likelihood.gtr import GTRModel
from repro.likelihood.model_opt import (
    empirical_frequencies,
    optimize_alpha,
    optimize_model,
    optimize_rates,
)


@pytest.fixture()
def setup(tiny_pal, tiny_tree):
    engine = LikelihoodEngine(tiny_pal, GTRModel.jc69(), RateModel.gamma(1.0, 4))
    return engine, tiny_tree.copy()


class TestEmpiricalFrequencies:
    def test_probability_vector(self, setup):
        engine, _ = setup
        f = empirical_frequencies(engine)
        assert f.shape == (4,)
        assert f.sum() == pytest.approx(1.0)
        assert np.all(f > 0)

    def test_skewed_composition_detected(self):
        from repro.seq.alignment import Alignment
        from repro.seq.patterns import compress_alignment

        aln = Alignment.from_sequences(
            [("a", "AAAAAAAAGC"), ("b", "AAAAAAAAGC"), ("c", "AAAAAAAATC")]
        )
        engine = LikelihoodEngine(compress_alignment(aln), GTRModel.jc69())
        f = empirical_frequencies(engine)
        assert f[0] > 0.5  # A dominates


class TestOptimizeAlpha:
    def test_improves_lnl(self, setup):
        engine, tree = setup
        before = engine.loglikelihood(tree)
        engine2, after = optimize_alpha(engine, tree)
        assert after >= before - 1e-9
        assert engine2.rate_model.alpha is not None

    def test_cat_engine_passthrough(self, tiny_pal, tiny_tree, gtr_model):
        p2c = np.zeros(tiny_pal.n_patterns, dtype=int)
        engine = LikelihoodEngine(
            tiny_pal, gtr_model, RateModel.cat(np.ones(1), p2c)
        )
        engine2, lnl = optimize_alpha(engine, tiny_tree.copy())
        assert engine2 is engine

    def test_result_is_evaluated_lnl(self, setup):
        engine, tree = setup
        engine2, lnl = optimize_alpha(engine, tree)
        assert lnl == pytest.approx(engine2.loglikelihood(tree), abs=1e-9)


class TestOptimizeRates:
    def test_improves_lnl(self, setup):
        engine, tree = setup
        before = engine.loglikelihood(tree)
        engine2, after = optimize_rates(engine, tree)
        assert after >= before - 1e-9

    def test_gt_rate_stays_one(self, setup):
        engine, tree = setup
        engine2, _ = optimize_rates(engine, tree)
        assert engine2.model.rates[5] == 1.0


class TestOptimizeModel:
    def test_full_round_improves(self, setup):
        engine, tree = setup
        before = engine.loglikelihood(tree)
        engine2, after = optimize_model(engine, tree, rounds=1)
        assert after >= before - 1e-9

    def test_frequencies_become_empirical(self, setup):
        engine, tree = setup
        emp = empirical_frequencies(engine)
        engine2, _ = optimize_model(engine, tree, rounds=1)
        assert np.allclose(engine2.model.pi, emp, atol=1e-9)

    def test_can_disable_parts(self, setup):
        engine, tree = setup
        engine2, _ = optimize_model(
            engine, tree, rounds=1, optimize_gtr=False, optimize_frequencies=False
        )
        assert engine2.model.rates == engine.model.rates
        assert engine2.model.freqs == engine.model.freqs

    def test_bad_rounds_rejected(self, setup):
        engine, tree = setup
        with pytest.raises(ValueError):
            optimize_model(engine, tree, rounds=0)
