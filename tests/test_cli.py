"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, load_alignment, main
from repro.datasets import test_dataset as make_test_dataset
from repro.seq.io_phylip import write_phylip


class TestParser:
    def test_raxml_style_flags(self):
        args = build_parser().parse_args(
            ["-s", "x.phy", "-m", "GTRCAT", "-N", "100", "-p", "12345",
             "-x", "12345", "-f", "a", "-np", "10", "-T", "8"]
        )
        assert args.alignment == "x.phy"
        assert args.bootstraps == 100
        assert args.processes == 10
        assert args.threads == 8

    def test_defaults(self):
        args = build_parser().parse_args(["--simulate", "6", "80"])
        assert args.model == "GTRCAT"
        assert args.seed_p == 12345
        assert args.machine == "dash"

    def test_bad_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["-m", "WAG"])

    def test_bad_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["-f", "z"])


class TestLoadAlignment:
    def test_simulate(self):
        args = build_parser().parse_args(["--simulate", "6", "50"])
        pal = load_alignment(args)
        assert pal.n_taxa == 6
        assert pal.n_sites == 50

    def test_missing_input_errors(self):
        args = build_parser().parse_args([])
        with pytest.raises(SystemExit):
            load_alignment(args)

    def test_missing_file_errors(self):
        args = build_parser().parse_args(["-s", "/does/not/exist.phy"])
        with pytest.raises(SystemExit):
            load_alignment(args)

    def test_phylip_file(self, tmp_path):
        pal, _ = make_test_dataset(n_taxa=5, n_sites=40, seed=1)
        path = tmp_path / "in.phy"
        write_phylip(pal.expand(), path)
        args = build_parser().parse_args(["-s", str(path)])
        loaded = load_alignment(args)
        assert loaded.n_taxa == 5

    def test_fasta_file(self, tmp_path):
        from repro.seq.io_fasta import write_fasta

        pal, _ = make_test_dataset(n_taxa=5, n_sites=40, seed=1)
        path = tmp_path / "in.fasta"
        write_fasta(pal.expand(), path)
        args = build_parser().parse_args(["-s", str(path)])
        assert load_alignment(args).n_taxa == 5


class TestOtherAlgorithms:
    def test_multistart_mode(self, tmp_path, capsys):
        rc = main(
            ["--simulate", "5", "50", "-f", "d", "-N", "2", "-np", "2",
             "--quick", "-n", "ms", "-w", str(tmp_path)]
        )
        assert rc == 0
        assert "multiple ML searches" in capsys.readouterr().out
        assert (tmp_path / "RAxML_bestTree.ms.nwk").exists()

    def test_standard_bootstrap_mode(self, tmp_path, capsys):
        rc = main(
            ["--simulate", "5", "50", "-b", "777", "-N", "2", "-np", "2",
             "--quick", "-n", "sb", "-w", str(tmp_path)]
        )
        assert rc == 0
        assert "standard bootstrap" in capsys.readouterr().out
        trees = (tmp_path / "RAxML_bootstrap.sb.nwk").read_text().strip().splitlines()
        assert len(trees) == 2

    def test_evaluate_mode(self, tmp_path, capsys):
        # First produce a tree, then score it under -f e.
        main(["--simulate", "5", "50", "-f", "d", "-N", "1", "--quick",
              "-n", "src", "-w", str(tmp_path)])
        capsys.readouterr()
        rc = main(
            ["--simulate", "5", "50", "-f", "e",
             "-t", str(tmp_path / "RAxML_bestTree.src.nwk"),
             "-n", "ev", "-w", str(tmp_path)]
        )
        assert rc == 0
        assert "evaluated fixed topology" in capsys.readouterr().out
        assert (tmp_path / "RAxML_result.ev.nwk").exists()

    def test_evaluate_gtrgammai(self, tmp_path, capsys):
        main(["--simulate", "5", "50", "-f", "d", "-N", "1", "--quick",
              "-n", "srcI", "-w", str(tmp_path)])
        capsys.readouterr()
        rc = main(
            ["--simulate", "5", "50", "-f", "e", "-m", "GTRGAMMAI",
             "-t", str(tmp_path / "RAxML_bestTree.srcI.nwk"),
             "-n", "evI", "-w", str(tmp_path)]
        )
        assert rc == 0
        assert "p-invariant" in capsys.readouterr().out

    def test_evaluate_requires_tree(self, tmp_path):
        with pytest.raises(SystemExit, match="-t"):
            main(["--simulate", "5", "50", "-f", "e", "-w", str(tmp_path)])

    def test_evaluate_missing_tree_file(self, tmp_path):
        with pytest.raises(SystemExit, match="not found"):
            main(["--simulate", "5", "50", "-f", "e", "-t", "/nope.nwk",
                  "-w", str(tmp_path)])


class TestMainEndToEnd:
    def test_full_run_writes_outputs(self, tmp_path, capsys):
        rc = main(
            ["--simulate", "5", "60", "-N", "2", "-np", "2", "-T", "1",
             "--quick", "-n", "t1", "-w", str(tmp_path), "-J", "MRE"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Final GAMMA log-likelihood" in out
        assert (tmp_path / "RAxML_bestTree.t1.nwk").exists()
        assert (tmp_path / "RAxML_bipartitions.t1.nwk").exists()
        # -J MRE writes a consensus tree; the info JSON is always written.
        assert (tmp_path / "RAxML_MajorityRuleConsensusTree.t1.nwk").exists()
        import json

        report = json.loads((tmp_path / "RAxML_info.t1.json").read_text())
        assert report["schedule"]["n_processes"] == 2
        # The best tree parses back.
        from repro.tree.newick import parse_newick

        tree = parse_newick((tmp_path / "RAxML_bestTree.t1.nwk").read_text())
        tree.validate()


class TestValidateArgs:
    """The up-front flag-combination sweep (repro.cli.validate_args)."""

    def _args(self, extra):
        return build_parser().parse_args(["--simulate", "5", "50"] + extra)

    def test_resume_requires_checkpoint_dir(self):
        from repro.cli import validate_args

        with pytest.raises(SystemExit, match="checkpoint-dir"):
            validate_args(self._args(["--resume"]))
        validate_args(self._args(["--resume", "--checkpoint-dir", "/tmp/ck"]))

    def test_tree_only_for_evaluate(self):
        from repro.cli import validate_args

        with pytest.raises(SystemExit, match="-f e"):
            validate_args(self._args(["-t", "x.nwk"]))
        with pytest.raises(SystemExit, match="-f e"):
            validate_args(self._args(["-f", "d", "-t", "x.nwk"]))
        validate_args(self._args(["-f", "e", "-t", "x.nwk"]))

    def test_evaluate_requires_tree(self):
        from repro.cli import validate_args

        with pytest.raises(SystemExit, match="-t"):
            validate_args(self._args(["-f", "e"]))

    def test_clv_cache_kernel_capability(self, monkeypatch):
        from repro.cli import validate_args
        from repro.likelihood.kernels import get_kernel

        # Every bundled kernel honours the engine-level cache today; the
        # sweep guards future backends that bypass it.
        validate_args(self._args(["--clv-cache"]))
        monkeypatch.setattr(
            get_kernel("reference"), "uses_clv_cache", False
        )
        with pytest.raises(SystemExit, match="clv-cache"):
            validate_args(self._args(["--clv-cache"]))

    def test_bootstopping_needs_static_schedule(self):
        from repro.cli import validate_args

        with pytest.raises(SystemExit, match="schedule"):
            validate_args(
                self._args(["--bootstopping", "--schedule", "work-steal"])
            )

    def test_comprehensive_only_flags_rejected_elsewhere(self):
        from repro.cli import validate_args

        for extra in (
            ["-f", "d", "--bootstopping"],
            ["-f", "d", "--checkpoint-dir", "/tmp/ck"],
            ["-f", "e", "-t", "x.nwk", "--trace", "t.json"],
            ["-f", "e", "-t", "x.nwk", "--metrics-out", "m.json"],
            ["-b", "777", "-J", "MR"],
            ["-b", "777", "--schedule", "work-steal"],
        ):
            with pytest.raises(SystemExit, match="comprehensive"):
                validate_args(self._args(extra))
        # The same flags are fine for the comprehensive analysis.
        validate_args(self._args(["--schedule", "work-steal", "-J", "MR"]))
