"""Chaos checks specific to the topology-aware communication substrate.

The invariant under test everywhere: hierarchical collectives change
*modelled communication time only* — every analysis output (best lnL,
best tree, bootstrap multiset) is bit-identical to the flat world, under
fault-free runs, node-leader deaths mid-collective (both phases, both
schedules), elastic joins landing on new nodes, and checkpoint → resume.
"""

import tempfile
from pathlib import Path

import pytest

from repro.chaos.campaign import (
    _capture,
    _make_inputs,
    _run,
    run_leader_death_probes,
    run_scenario,
)
from repro.chaos.plans import ScenarioSpec, generate_scenario
from repro.mpi.faults import FaultPlan, JoinSpec, KillSpec


@pytest.fixture(scope="module")
def inputs():
    return _make_inputs()


@pytest.fixture(scope="module")
def flat_baselines(inputs):
    """Fault-free flat-model results per (schedule, p) — the oracle."""
    pal, cc = inputs
    out = {}
    for schedule in ("static", "work-steal"):
        for p in (2, 4):
            spec = ScenarioSpec(index=-1, schedule=schedule, n_processes=p,
                                plan=None, equality="baseline", deaths=())
            out[(schedule, p)] = _capture(_run(pal, cc, spec, plan=None))
    return out


class TestLeaderDeathProbes:
    def test_all_probes_clean(self, inputs):
        pal, cc = inputs
        with tempfile.TemporaryDirectory() as tmp:
            probes = run_leader_death_probes(pal, cc, workdir=Path(tmp))
        assert len(probes) == 6  # 3 plans x 2 schedules
        for record in probes:
            assert record["violations"] == [], record
            assert record["ranks_per_node"] == 2
        # Both phases were exercised: kills at collective call indices
        # (mid-collective, inter-phase leaders) and at a stage boundary.
        kinds = {record["probe"] for record in probes}
        assert kinds == {"leader-node0-collective", "leader-node1-stage",
                         "both-leaders-collective"}
        # The checkpoint -> resume leg ran for both schedules.
        resumed = [r for r in probes if "resume" in r["checks"]]
        assert len(resumed) == 2


class TestJoinOnNewNode:
    @pytest.mark.parametrize("schedule", ["static", "work-steal"])
    def test_joiner_lands_on_fresh_node(self, inputs, flat_baselines, schedule):
        # p=2 packed 2/node occupies one node; the joiner (rank 2) maps
        # to node 1, so the collective set grows an inter-node phase
        # mid-run — results must still match the flat baseline.
        pal, cc = inputs
        spec = ScenarioSpec(
            index=-3, schedule=schedule, n_processes=2,
            plan=FaultPlan(joins=(JoinSpec(rank=2, stage="fast"),)),
            equality="full", deaths=(), ranks_per_node=2,
        )
        result = _run(pal, cc, spec)
        assert _capture(result) == flat_baselines[(schedule, 2)]

    def test_join_plus_leader_death_with_resume(self, inputs, flat_baselines):
        # The hard composition: node 0's leader dies while a joiner
        # enters on node 1, checkpointed, then resumed (joins kept,
        # kills stripped — they already happened).
        pal, cc = inputs
        spec = ScenarioSpec(
            index=-3, schedule="static", n_processes=4,
            plan=FaultPlan(
                kills=(KillSpec(rank=0, collective=1),),
                joins=(JoinSpec(rank=4, stage="slow"),),
            ),
            equality="full", deaths=(0,), ranks_per_node=2,
        )
        baseline = flat_baselines[("static", 4)]
        with tempfile.TemporaryDirectory() as tmp:
            ckpt = str(Path(tmp) / "ckpt")
            first = _run(pal, cc, spec, checkpoint_dir=ckpt)
            assert _capture(first) == baseline
            resumed = _run(pal, cc, spec,
                           plan=FaultPlan(joins=spec.plan.joins),
                           checkpoint_dir=ckpt, resume=True)
            assert _capture(resumed) == baseline


class TestHierarchicalScenarioSweep:
    @pytest.mark.parametrize("index", range(4))
    def test_generated_scenarios_match_flat_baseline(
        self, inputs, flat_baselines, index
    ):
        # A slice of the campaign generator run under rpn=2: same seeds,
        # same plans, hierarchical costs — compared against the *flat*
        # fault-free baseline, which is the cross-model bit-identity
        # claim the full 50-scenario CI sweep scales up.
        pal, cc = inputs
        schedule = ("static", "work-steal")[index % 2]
        spec = generate_scenario(index, 20260808, schedule, 2,
                                 ranks_per_node=2)
        assert spec.ranks_per_node == 2
        record = run_scenario(pal, cc, spec, flat_baselines[(schedule, 2)],
                              None)
        assert record["violations"] == [], record
        assert record["ranks_per_node"] == 2

    def test_generation_ignores_topology(self):
        # The same (seed, schedule, index) must yield the same faults
        # under either communication model — topology never perturbs
        # plan generation.
        a = generate_scenario(7, 123, "static", 3)
        b = generate_scenario(7, 123, "static", 3, ranks_per_node=2)
        assert a.plan == b.plan
        assert a.deaths == b.deaths
