"""Tests for FASTA and PHYLIP I/O (repro.seq.io_fasta, repro.seq.io_phylip)."""

import pytest

from repro.seq.alignment import Alignment
from repro.seq.io_fasta import parse_fasta, read_fasta, write_fasta
from repro.seq.io_phylip import parse_phylip, read_phylip, write_phylip


@pytest.fixture()
def aln():
    return Alignment.from_sequences(
        [("taxon_a", "ACGTACGTAC"), ("taxon_b", "AC-TACGTAA"), ("taxon_c", "ACGTANGTAC")]
    )


class TestFasta:
    def test_parse_basic(self):
        aln = parse_fasta(">a\nACGT\n>b\nAC-T\n>c\nACNT\n")
        assert aln.taxa == ("a", "b", "c")
        assert aln.sequence("a") == "ACGT"

    def test_parse_multiline_sequences(self):
        aln = parse_fasta(">a\nAC\nGT\n>b\nACGT\n>c\nACGT\n")
        assert aln.sequence("a") == "ACGT"

    def test_parse_name_stops_at_whitespace(self):
        aln = parse_fasta(">a description here\nACGT\n>b\nACGT\n>c\nACGT\n")
        assert aln.taxa[0] == "a"

    def test_parse_rejects_data_before_header(self):
        with pytest.raises(ValueError, match="before"):
            parse_fasta("ACGT\n>a\nACGT\n")

    def test_parse_rejects_empty_name(self):
        with pytest.raises(ValueError, match="empty"):
            parse_fasta(">\nACGT\n>b\nACGT\n>c\nACGT\n")

    def test_parse_rejects_empty_input(self):
        with pytest.raises(ValueError):
            parse_fasta("")

    def test_roundtrip(self, aln, tmp_path):
        path = tmp_path / "x.fasta"
        write_fasta(aln, path, width=4)
        assert read_fasta(path) == aln

    def test_write_rejects_bad_width(self, aln, tmp_path):
        with pytest.raises(ValueError):
            write_fasta(aln, tmp_path / "x.fasta", width=0)


class TestPhylip:
    def test_parse_sequential(self):
        aln = parse_phylip("3 4\na ACGT\nb AC-T\nc ACNT\n")
        assert aln.n_taxa == 3
        assert aln.sequence("b") == "AC-T"

    def test_parse_interleaved(self):
        text = "3 8\na ACGT\nb ACGT\nc ACGT\nTTTT\nGGGG\nCCCC\n"
        aln = parse_phylip(text)
        assert aln.sequence("a") == "ACGTTTTT"
        assert aln.sequence("b") == "ACGTGGGG"
        assert aln.sequence("c") == "ACGTCCCC"

    def test_parse_sequence_with_spaces(self):
        aln = parse_phylip("3 8\na ACGT ACGT\nb ACGTACGT\nc ACGTACGT\n")
        assert aln.sequence("a") == "ACGTACGT"

    def test_rejects_bad_header(self):
        with pytest.raises(ValueError, match="header"):
            parse_phylip("nonsense\na ACGT\n")

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError, match="characters"):
            parse_phylip("3 5\na ACGT\nb ACGTA\nc ACGTA\n")

    def test_rejects_too_few_lines(self):
        with pytest.raises(ValueError):
            parse_phylip("3 4\na ACGT\n")

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            parse_phylip("")

    def test_roundtrip(self, aln, tmp_path):
        path = tmp_path / "x.phy"
        write_phylip(aln, path)
        assert read_phylip(path) == aln

    def test_written_header_counts(self, aln, tmp_path):
        path = tmp_path / "x.phy"
        write_phylip(aln, path)
        header = path.read_text().splitlines()[0].split()
        assert header == ["3", "10"]
