"""Tests for text-table rendering (repro.util.tables)."""

import pytest

from repro.util.tables import format_table


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(["a", "bb"], [[1, 2], [30, 4]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert lines[0].endswith("bb")
        assert all(len(l) == len(lines[0]) for l in lines[1:])

    def test_title(self):
        out = format_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_numeric_format(self):
        out = format_table(["v"], [[3.14159]], formats=[".2f"])
        assert "3.14" in out
        assert "3.142" not in out

    def test_none_renders_dash(self):
        out = format_table(["v"], [[None]])
        assert out.splitlines()[-1].strip() == "-"

    def test_string_cells_ignore_format(self):
        out = format_table(["v"], [["hello"]], formats=[".2f"])
        assert "hello" in out

    def test_row_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_format_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1]], formats=[".2f", ".2f"])

    def test_bool_not_formatted_as_number(self):
        out = format_table(["v"], [[True]], formats=[".2f"])
        assert "True" in out
