"""Tests for the +I (proportion of invariant sites) model component."""

import numpy as np
import pytest

from repro.likelihood.brlen import optimize_branch_lengths
from repro.likelihood.engine import LikelihoodEngine, RateModel
from repro.likelihood.gtr import GTRModel
from repro.likelihood.model_opt import optimize_model, optimize_p_invariant
from repro.seq.alignment import Alignment
from repro.seq.patterns import compress_alignment
from repro.tree.newick import parse_newick
from repro.tree.random_trees import yule_tree
from repro.util.rng import RAxMLRandom


@pytest.fixture()
def setup(tiny_pal, gtr_model, tiny_tree):
    return tiny_pal, gtr_model, tiny_tree


class TestRateModelPlusI:
    def test_validation(self):
        with pytest.raises(ValueError):
            RateModel.gamma(1.0, 4, p_invariant=1.0)
        with pytest.raises(ValueError):
            RateModel.gamma(1.0, 4, p_invariant=-0.1)

    def test_with_p_invariant(self):
        rm = RateModel.gamma(0.7, 4)
        rm2 = rm.with_p_invariant(0.2)
        assert rm2.p_invariant == 0.2
        assert rm2.alpha == rm.alpha
        assert np.array_equal(rm2.rates, rm.rates)

    def test_cat_carries_p_invariant_through_subset(self):
        from repro.likelihood.engine import subset_rate_model

        rm = RateModel.cat(np.ones(2), np.array([0, 1, 0]), p_invariant=0.15)
        sub = subset_rate_model(rm, np.array([0, 2]))
        assert sub.p_invariant == 0.15


class TestPlusILikelihood:
    def test_zero_p_is_plain_gamma(self, setup):
        pal, model, tree = setup
        a = LikelihoodEngine(pal, model, RateModel.gamma(0.8, 4))
        b = LikelihoodEngine(pal, model, RateModel.gamma(0.8, 4, p_invariant=0.0))
        assert a.loglikelihood(tree) == b.loglikelihood(tree)

    def test_mixture_formula_on_constant_column(self, gtr_model):
        """For a single all-A column: L = (1-p)·L_var + p·pi_A exactly."""
        pal = compress_alignment(
            Alignment.from_sequences([("a", "A"), ("b", "A"), ("c", "A")])
        )
        tree = parse_newick("(a:0.2,b:0.2,c:0.2);", taxa=pal.taxa)
        p = 0.3
        plain = LikelihoodEngine(pal, gtr_model, RateModel.single())
        l_var = np.exp(plain.loglikelihood(tree))
        withi = LikelihoodEngine(
            pal, gtr_model, RateModel.gamma(1.0, 1, p_invariant=p)
        )
        expected = np.log((1 - p) * l_var + p * gtr_model.pi[0])
        assert withi.loglikelihood(tree) == pytest.approx(float(expected), abs=1e-10)

    def test_variable_column_gets_no_invariant_mass(self, gtr_model):
        """A column that cannot be constant: L = (1-p)·L_var only."""
        pal = compress_alignment(
            Alignment.from_sequences([("a", "A"), ("b", "C"), ("c", "G")])
        )
        tree = parse_newick("(a:0.2,b:0.2,c:0.2);", taxa=pal.taxa)
        p = 0.25
        plain = LikelihoodEngine(pal, gtr_model, RateModel.single())
        withi = LikelihoodEngine(
            pal, gtr_model, RateModel.gamma(1.0, 1, p_invariant=p)
        )
        assert withi.loglikelihood(tree) == pytest.approx(
            plain.loglikelihood(tree) + np.log(1 - p), abs=1e-10
        )

    def test_ambiguity_counts_as_constant_compatible(self, gtr_model):
        """a='A', b='N': the column is compatible with constant A."""
        pal = compress_alignment(
            Alignment.from_sequences([("a", "A"), ("b", "N"), ("c", "A")])
        )
        engine = LikelihoodEngine(
            pal, gtr_model, RateModel.gamma(1.0, 2, p_invariant=0.2)
        )
        assert engine._inv_lik[0] == pytest.approx(gtr_model.pi[0])

    def test_edge_machinery_consistent_with_plusi(self, setup):
        pal, model, tree = setup
        engine = LikelihoodEngine(pal, model, RateModel.gamma(0.8, 4, p_invariant=0.2))
        lnl = engine.loglikelihood(tree)
        down = engine.compute_down_partials(tree)
        up = engine.compute_up_partials(tree, down)
        for e in tree.edges():
            el = engine.edge_loglikelihood(e, e.length, down[id(e)], up[id(e)])
            assert el == pytest.approx(lnl, abs=1e-8)

    def test_sumtable_derivatives_with_plusi(self, setup):
        pal, model, tree = setup
        engine = LikelihoodEngine(pal, model, RateModel.gamma(0.8, 4, p_invariant=0.2))
        down = engine.compute_down_partials(tree)
        up = engine.compute_up_partials(tree, down)
        e = tree.edges()[1]
        coef, exps, ls = engine.edge_coefficients(down[id(e)], up[id(e)])
        t, eps = 0.25, 1e-5
        l0, g, h = engine.edge_lnl_and_derivatives(coef, exps, ls, t)
        lp, _, _ = engine.edge_lnl_and_derivatives(coef, exps, ls, t + eps)
        lm, _, _ = engine.edge_lnl_and_derivatives(coef, exps, ls, t - eps)
        assert l0 == pytest.approx(
            engine.edge_loglikelihood(e, t, down[id(e)], up[id(e)]), abs=1e-9
        )
        assert g == pytest.approx((lp - lm) / (2 * eps), rel=1e-3, abs=1e-6)
        assert h == pytest.approx((lp - 2 * l0 + lm) / eps**2, rel=1e-2, abs=1e-4)

    def test_brlen_optimisation_under_plusi(self, setup):
        pal, model, tree = setup
        engine = LikelihoodEngine(pal, model, RateModel.gamma(0.8, 4, p_invariant=0.15))
        work = tree.copy()
        before = engine.loglikelihood(work)
        after = optimize_branch_lengths(engine, work, passes=3)
        assert after >= before

    def test_threaded_engine_plusi_matches_serial(self, setup):
        from repro.threads.pool import VirtualThreadPool
        from repro.threads.threaded_engine import ThreadedLikelihoodEngine

        pal, model, tree = setup
        rm = RateModel.gamma(0.8, 4, p_invariant=0.2)
        serial = LikelihoodEngine(pal, model, rm)
        threaded = ThreadedLikelihoodEngine(pal, model, VirtualThreadPool(3), rm)
        assert threaded.loglikelihood(tree) == pytest.approx(
            serial.loglikelihood(tree), abs=1e-9
        )


class TestPlusIOptimisation:
    def test_recovers_invariant_signal(self):
        """Data simulated with invariant sites should prefer p > 0."""
        from repro.datasets import SimulationParams, simulate_alignment

        aln, true_tree = simulate_alignment(
            SimulationParams(n_taxa=8, n_sites=400, seed=90,
                             proportion_invariant=0.35)
        )
        pal = compress_alignment(aln)
        engine = LikelihoodEngine(
            pal, GTRModel.default(), RateModel.gamma(1.0, 4)
        )
        tree = true_tree.copy()
        optimize_branch_lengths(engine, tree, passes=3)
        base = engine.loglikelihood(tree)
        engine2, lnl2 = optimize_p_invariant(engine, tree)
        assert lnl2 >= base
        assert engine2.rate_model.p_invariant > 0.03

    def test_optimize_model_with_invariant_flag(self, setup):
        pal, model, tree = setup
        engine = LikelihoodEngine(pal, GTRModel.jc69(), RateModel.gamma(1.0, 4))
        engine2, lnl = optimize_model(
            engine, tree, rounds=1, optimize_invariant=True
        )
        assert lnl >= engine.loglikelihood(tree) - 1e-9
        assert engine2.rate_model.p_invariant >= 0.0
