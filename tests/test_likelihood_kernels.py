"""Tests for the specialised likelihood kernels.

The tip-case kernel (16-entry gather tables) and the rate-model subset
helper must be exactly equivalent to their generic counterparts.
"""

import numpy as np
import pytest

from repro.likelihood.engine import LikelihoodEngine, RateModel, subset_rate_model
from repro.likelihood.gtr import GTRModel
from repro.seq.patterns import PatternAlignment
from repro.tree.random_trees import yule_tree
from repro.util.rng import RAxMLRandom


@pytest.fixture()
def engine(small_pal, gtr_model):
    return LikelihoodEngine(small_pal, gtr_model, RateModel.gamma(0.8, 4))


class TestTipKernel:
    def test_matches_generic_propagate_gamma(self, engine, small_pal):
        pmats = engine._pmatrices(0.27)
        masks = small_pal.patterns[0]
        fast = engine._propagate_tip(pmats, masks)
        dense = engine.tip_clv(0)
        generic = engine._propagate(pmats, dense)
        assert np.allclose(fast, generic, atol=1e-14)

    def test_matches_generic_propagate_cat(self, small_pal, gtr_model):
        p2c = np.arange(small_pal.n_patterns) % 3
        engine = LikelihoodEngine(
            small_pal, gtr_model, RateModel.cat(np.array([0.4, 1.0, 2.1]), p2c)
        )
        pmats = engine._pmatrices(0.15)
        masks = small_pal.patterns[2]
        fast = engine._propagate_tip(pmats, masks)
        generic = engine._propagate(pmats, engine.tip_clv(2))
        assert np.allclose(fast, generic, atol=1e-14)

    def test_ambiguous_tips_handled(self, gtr_model):
        """N/gap/partial-ambiguity masks go through the same table."""
        from repro.seq.alignment import Alignment
        from repro.seq.patterns import compress_alignment
        from repro.tree.newick import parse_newick

        pal = compress_alignment(Alignment.from_sequences(
            [("a", "ANR-"), ("b", "ACGT"), ("c", "MKSW")]
        ))
        tree = parse_newick("(a:0.1,b:0.2,c:0.3);", taxa=pal.taxa)
        engine = LikelihoodEngine(pal, gtr_model, RateModel.gamma(1.0, 4))
        lnl = engine.loglikelihood(tree)
        assert np.isfinite(lnl)
        # Brute check of one column: 'A' vs 'A' vs 'M'(A|C).
        down = engine.compute_down_partials(tree)
        up = engine.compute_up_partials(tree, down)
        for e in tree.edges():
            el = engine.edge_loglikelihood(e, e.length, down[id(e)], up[id(e)])
            assert el == pytest.approx(lnl, abs=1e-9)


class TestSubtreePartials:
    def test_subtree_down_matches_full(self, small_pal, gtr_model):
        """The subtree-restricted down pass must agree with the full pass
        on every node under the subtree root."""
        import numpy as np

        from repro.tree.random_trees import yule_tree
        from repro.util.rng import RAxMLRandom

        tree = yule_tree(small_pal.taxa, RAxMLRandom(23))
        engine = LikelihoodEngine(small_pal, gtr_model, RateModel.gamma(0.8, 4))
        full = engine.compute_down_partials(tree)
        target = tree.internal_edges()[0]
        sub = engine.compute_down_partials(tree, subtree=target)
        for node_id, part in sub.items():
            assert np.allclose(part.clv, full[node_id].clv)
            assert np.allclose(part.logscale, full[node_id].logscale)

    def test_subtree_of_leaf(self, small_pal, gtr_model):
        from repro.tree.random_trees import yule_tree
        from repro.util.rng import RAxMLRandom

        tree = yule_tree(small_pal.taxa, RAxMLRandom(23))
        engine = LikelihoodEngine(small_pal, gtr_model)
        leaf = tree.leaves()[0]
        sub = engine.compute_down_partials(tree, subtree=leaf)
        assert set(sub) == {id(leaf)}

    def test_threaded_engine_subtree(self, small_pal, gtr_model):
        """The sharded engine returns the same unified partial map as the
        serial engine, and subtree partials are bit-identical."""
        from repro.threads.pool import VirtualThreadPool
        from repro.threads.threaded_engine import ThreadedLikelihoodEngine
        from repro.tree.random_trees import yule_tree
        from repro.util.rng import RAxMLRandom

        tree = yule_tree(small_pal.taxa, RAxMLRandom(23))
        serial = LikelihoodEngine(small_pal, gtr_model, RateModel.gamma(0.8, 4))
        threaded = ThreadedLikelihoodEngine(
            small_pal, gtr_model, VirtualThreadPool(3), RateModel.gamma(0.8, 4)
        )
        target = tree.internal_edges()[0]
        sub_s = serial.compute_down_partials(tree, subtree=target)
        sub_t = threaded.compute_down_partials(tree, subtree=target)
        part_s = serial.partial_for(sub_s, target)
        part_t = threaded.partial_for(sub_t, target)
        assert part_t.clv.shape == part_s.clv.shape
        assert np.array_equal(part_t.clv, part_s.clv)
        assert np.array_equal(part_t.logscale, part_s.logscale)


class TestSubsetRateModel:
    def test_gamma_unchanged(self):
        rm = RateModel.gamma(0.7, 4)
        sub = subset_rate_model(rm, np.array([0, 2]))
        assert sub is rm

    def test_cat_sliced(self):
        rm = RateModel.cat(np.array([0.5, 1.5]), np.array([0, 1, 1, 0]))
        sub = subset_rate_model(rm, np.array([1, 3]))
        assert sub.pattern_to_cat.tolist() == [1, 0]
        assert np.array_equal(sub.rates, rm.rates)

    def test_subset_engine_matches_zero_weight_full(self, small_pal, gtr_model):
        """Dropping zero-weight patterns is exactly neutral."""
        tree = yule_tree(small_pal.taxa, RAxMLRandom(8))
        rng = RAxMLRandom(99)
        w = np.array([rng.next_int(3) for _ in range(small_pal.n_patterns)], dtype=float)
        full = LikelihoodEngine(small_pal, gtr_model, RateModel.gamma(0.8, 4), weights=w)
        active = np.flatnonzero(w > 0)
        sub_pal = PatternAlignment(
            small_pal.taxa, small_pal.patterns[:, active], w[active].astype(int),
            np.empty(0, dtype=np.intp),
        )
        sub = LikelihoodEngine(sub_pal, gtr_model, RateModel.gamma(0.8, 4),
                               weights=w[active])
        assert sub.loglikelihood(tree) == pytest.approx(
            full.loglikelihood(tree), abs=1e-9
        )
