"""Property test: the exhaustive single-fault collective sweep.

Killing any one rank at *any* collective call index — under both
``--schedule`` modes — must yield a final result bit-identical to the
fault-free baseline: static recovery replays the dead rank's whole
original share (never re-partitioning the survivors' streams), and
work-steal task streams are origin-pure.

The sweep is exhaustive by construction: collective indices are swept
upward until a kill no longer fires (the index exceeded the victim's
collective count for the run), so every collective the victim ever
participates in is covered.
"""

import pytest

from repro.chaos.campaign import _capture, _make_inputs, _run
from repro.chaos.plans import ScenarioSpec
from repro.mpi.faults import FaultPlan, KillSpec

#: Safety stop only — the toy analysis has well under this many
#: collectives per rank; reaching it would itself be a bug.
MAX_COLLECTIVES = 40


@pytest.fixture(scope="module")
def inputs():
    return _make_inputs()


def _spec(schedule, plan=None, deaths=()):
    return ScenarioSpec(index=-1, schedule=schedule, n_processes=2,
                        plan=plan, equality="full", deaths=tuple(deaths))


@pytest.mark.parametrize("schedule", ["static", "work-steal"])
@pytest.mark.parametrize("victim", [0, 1])
def test_any_collective_kill_is_bit_identical(inputs, schedule, victim):
    pal, cc = inputs
    baseline = _capture(_run(pal, cc, _spec(schedule), plan=None))

    index = 0
    while index < MAX_COLLECTIVES:
        plan = FaultPlan(kills=(KillSpec(rank=victim, collective=index),))
        result = _run(pal, cc, _spec(schedule, plan, deaths=(victim,)))
        if victim not in result.failed_ranks:
            # The kill never fired: the index walked past the victim's
            # last collective — the sweep is complete.
            break
        got = _capture(result)
        for key, want in baseline.items():
            assert got[key] == want, (
                f"{schedule}: killing rank {victim} at collective {index} "
                f"changed {key}"
            )
        index += 1
    else:
        pytest.fail(f"sweep did not terminate within {MAX_COLLECTIVES} indices")
    assert index >= 1, "no collective kill ever fired — sweep vacuous"


@pytest.mark.parametrize("schedule", ["static", "work-steal"])
def test_any_stage_kill_is_bit_identical(inputs, schedule):
    """Companion sweep over the coarser stage-boundary kill points."""
    pal, cc = inputs
    baseline = _capture(_run(pal, cc, _spec(schedule), plan=None))
    for stage in ("setup", "bootstrap", "fast", "slow", "thorough"):
        plan = FaultPlan(kills=(KillSpec(rank=1, stage=stage),))
        result = _run(pal, cc, _spec(schedule, plan, deaths=(1,)))
        assert result.failed_ranks == [1]
        assert _capture(result) == baseline, (
            f"{schedule}: killing rank 1 at stage {stage!r} changed the result"
        )
