"""Shared fixtures: small simulated data sets, engines, quick configs.

Expensive fixtures are session-scoped; tests must treat them as
read-only (copy trees before mutating).
"""

from __future__ import annotations

import pytest

from repro.datasets import test_dataset
from repro.likelihood import GTRModel, LikelihoodEngine, RateModel
from repro.search import ComprehensiveConfig, StageParams
from repro.seq import Alignment, compress_alignment
from repro.tree import parse_newick, yule_tree
from repro.util import RAxMLRandom


@pytest.fixture(scope="session")
def tiny_pal():
    """6 taxa x 80 sites simulated alignment (pattern-compressed)."""
    pal, _ = test_dataset(n_taxa=6, n_sites=80, seed=101)
    return pal


@pytest.fixture(scope="session")
def tiny_true_tree():
    _, tree = test_dataset(n_taxa=6, n_sites=80, seed=101)
    return tree


@pytest.fixture(scope="session")
def small_pal():
    """8 taxa x 150 sites simulated alignment."""
    pal, _ = test_dataset(n_taxa=8, n_sites=150, seed=202)
    return pal


@pytest.fixture(scope="session")
def small_true_tree():
    _, tree = test_dataset(n_taxa=8, n_sites=150, seed=202)
    return tree


@pytest.fixture()
def gtr_model():
    return GTRModel(rates=(1.2, 2.5, 0.8, 1.1, 3.0, 1.0), freqs=(0.3, 0.2, 0.2, 0.3))


@pytest.fixture()
def tiny_engine(tiny_pal, gtr_model):
    return LikelihoodEngine(tiny_pal, gtr_model, RateModel.gamma(0.8, 4))


@pytest.fixture()
def tiny_tree(tiny_pal):
    """A deterministic random tree over the tiny alignment's taxa."""
    return yule_tree(tiny_pal.taxa, RAxMLRandom(77))


@pytest.fixture()
def handmade_alignment():
    return Alignment.from_sequences(
        [("A", "ACGTACGT"), ("B", "ACGTACGA"), ("C", "AGGTAGGT"), ("D", "ACTTACTT")]
    )


@pytest.fixture()
def handmade_pal(handmade_alignment):
    return compress_alignment(handmade_alignment)


@pytest.fixture()
def five_taxon_tree():
    return parse_newick("((A:0.1,B:0.2):0.05,C:0.3,(D:0.1,E:0.15):0.2);")


@pytest.fixture()
def quick_stage_params():
    """Minimal search effort for fast end-to-end tests."""
    return StageParams(
        bootstrap_rounds=1,
        fast_rounds=1,
        slow_max_rounds=1,
        thorough_max_rounds=2,
        brlen_passes=1,
        model_opt_rounds=1,
    )


@pytest.fixture()
def quick_config(quick_stage_params):
    return ComprehensiveConfig(
        n_bootstraps=4, cat_categories=3, stage_params=quick_stage_params
    )
