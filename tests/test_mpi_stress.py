"""Stress tests for the simulated MPI runtime at larger rank counts."""

import pytest

from repro.mpi.launcher import run_spmd
from repro.util.rng import RAxMLRandom


class TestManyRanks:
    def test_32_ranks_collective_storm(self):
        """32 ranks, 25 mixed collectives each — ordering and payloads
        must stay consistent throughout."""

        def fn(comm):
            acc = 0
            for round_no in range(25):
                values = comm.allgather(comm.rank * 1000 + round_no)
                assert values == [r * 1000 + round_no for r in range(comm.size)]
                winner = comm.bcast(
                    round_no if comm.rank == round_no % comm.size else None,
                    root=round_no % comm.size,
                )
                assert winner == round_no
                comm.barrier()
                acc += sum(values)
            return acc

        results = run_spmd(fn, 32, timeout=120.0)
        assert len(set(results)) == 1

    def test_ring_point_to_point(self):
        """A token passes around a 16-rank ring."""

        def fn(comm):
            nxt = (comm.rank + 1) % comm.size
            prev = (comm.rank - 1) % comm.size
            if comm.rank == 0:
                comm.send(1, dest=nxt)
                token = comm.recv(source=prev)
                return token
            token = comm.recv(source=prev)
            comm.send(token + 1, dest=nxt)
            return token

        results = run_spmd(fn, 16, timeout=60.0)
        assert results[0] == 16  # made the full loop

    def test_clock_monotone_across_collectives(self):
        def fn(comm):
            times = [comm.clock.now]
            rng = RAxMLRandom(comm.rank + 1)
            for _ in range(10):
                comm.clock.advance(rng.next_double())
                comm.allgather(None)
                times.append(comm.clock.now)
            return times

        for times in run_spmd(fn, 8, timeout=60.0):
            assert times == sorted(times)

    def test_final_barrier_equalises_after_chaos(self):
        def fn(comm):
            rng = RAxMLRandom(comm.rank * 7 + 1)
            for _ in range(5):
                comm.clock.advance(rng.next_double() * 3)
                comm.barrier()
            return comm.clock.now

        times = run_spmd(fn, 12, timeout=60.0)
        assert len({round(t, 9) for t in times}) == 1


class TestStreamIndependence:
    def test_rank_streams_statistically_uncorrelated(self):
        """Per-rank streams (stride 10,000) should be as good as
        independent: cross-rank correlation of long draws near zero."""
        import numpy as np

        from repro.util.rng import rank_seed

        draws = []
        for rank in range(4):
            rng = RAxMLRandom(rank_seed(12345, rank))
            draws.append(np.array([rng.next_double() for _ in range(3000)]))
        for i in range(4):
            for j in range(i + 1, 4):
                corr = float(np.corrcoef(draws[i], draws[j])[0, 1])
                assert abs(corr) < 0.06, (i, j, corr)
