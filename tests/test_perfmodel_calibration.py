"""Validation of the frozen model constants against the paper's Table 5.

These tests are the reproduction's quantitative core: every Table 5 anchor
(best time at each core count, five data sets, two machines, two bootstrap
regimes) must be matched by the calibrated model within a tolerance band,
and the paper's headline speedup claims must hold in shape.
"""

import math

import pytest

from repro.perfmodel.calibrate import TABLE5_ANCHORS, anchors_for
from repro.perfmodel.coarse import analysis_time, serial_time
from repro.perfmodel.machines import MACHINES
from repro.perfmodel.profiles import profile_for

#: Maximum multiplicative error allowed per anchor (model vs paper).
ANCHOR_TOLERANCE = 1.30


def model_seconds(anchor):
    prof = profile_for(anchor.patterns)
    mach = MACHINES[anchor.machine]
    if anchor.cores == 1:
        return serial_time(prof, mach, anchor.n_bootstraps)
    return analysis_time(
        prof, mach, anchor.n_bootstraps, anchor.processes, anchor.threads
    ).total


class TestTable5Anchors:
    @pytest.mark.parametrize(
        "anchor",
        TABLE5_ANCHORS,
        ids=lambda a: f"{a.patterns}p-{a.machine}-N{a.n_bootstraps}-{a.cores}c",
    )
    def test_anchor_within_band(self, anchor):
        ratio = model_seconds(anchor) / anchor.seconds
        assert 1 / ANCHOR_TOLERANCE <= ratio <= ANCHOR_TOLERANCE, (
            f"model {model_seconds(anchor):.0f}s vs paper {anchor.seconds}s"
        )

    def test_median_error_small(self):
        errors = [abs(math.log(model_seconds(a) / a.seconds)) for a in TABLE5_ANCHORS]
        errors.sort()
        median = errors[len(errors) // 2]
        assert median < 0.06  # typical anchor within ~6 %


class TestHeadlineClaims:
    """The abstract's quantitative statements, as shape checks."""

    def test_speedup_35_on_80_cores(self):
        """'the speedup of the hybrid code ... was 35 compared to the
        serial code' (218 taxa / 1,846 patterns, 10 procs x 8 threads)."""
        prof = profile_for(1846)
        dash = MACHINES["dash"]
        s = serial_time(prof, dash, 100) / analysis_time(prof, dash, 100, 10, 8).total
        assert 28 <= s <= 43

    def test_speedup_6_5_vs_one_node_pthreads(self):
        """'6.5 compared to the Pthreads-only code on one node (8 cores)'."""
        prof = profile_for(1846)
        dash = MACHINES["dash"]
        pthreads = analysis_time(prof, dash, 100, 1, 8).total
        hybrid80 = analysis_time(prof, dash, 100, 10, 8).total
        assert 5.0 <= pthreads / hybrid80 <= 8.0

    def test_speedup_38_on_triton_two_nodes(self):
        """'the speedup on the Triton PDAF computer ... was 38 on two nodes
        (64 cores)' for the 125-taxa / 19,436-pattern set (2 procs x 32 t)."""
        prof = profile_for(19436)
        tri = MACHINES["triton"]
        s = serial_time(prof, tri, 100) / analysis_time(prof, tri, 100, 2, 32).total
        assert 31 <= s <= 46

    def test_one_node_hybrid_1_3x_vs_pthreads(self):
        """'2 MPI processes and 4 Pthreads ... was 1.3x faster than using
        8 threads with the Pthreads-only code'."""
        prof = profile_for(1846)
        dash = MACHINES["dash"]
        ratio = (
            analysis_time(prof, dash, 100, 1, 8).total
            / analysis_time(prof, dash, 100, 2, 4).total
        )
        assert 1.10 <= ratio <= 1.50

    def test_highest_speedup_is_dataset4_recommended(self):
        """'The highest absolute speedup is nearly 57 for the fourth data
        set' (7,429 patterns, 700 bootstraps, 80 cores)."""
        prof = profile_for(7429)
        dash = MACHINES["dash"]
        serial = serial_time(prof, dash, 700)
        best = min(
            analysis_time(prof, dash, 700, 80 // t, t).total for t in (1, 2, 4, 8)
        )
        assert 47 <= serial / best <= 68

    def test_recommended_bootstraps_improve_scaling(self):
        """Section 5.2: scaling at 80 cores improves when more bootstraps
        are specified (ds1: speedup 15 -> 35)."""
        prof = profile_for(348)
        dash = MACHINES["dash"]

        def best_speedup(n):
            serial = serial_time(prof, dash, n)
            best = min(
                analysis_time(prof, dash, n, 80 // t, t).total for t in (1, 2, 4, 8)
            )
            return serial / best

        assert best_speedup(1200) > 1.7 * best_speedup(100)

    def test_optimal_threads_drop_with_more_bootstraps(self):
        """Section 5.2: 'the optimal number of threads is reduced' when the
        bootstrap count rises.  Checked on the 1,130- and 1,846-pattern
        sets (8 -> 4 threads at 80 cores, as in Table 5); the 348-pattern
        set is a near-tie in the model (4 vs the paper's 2)."""
        dash = MACHINES["dash"]

        def best_threads(patterns, n):
            prof = profile_for(patterns)
            return min(
                (1, 2, 4, 8),
                key=lambda t: analysis_time(prof, dash, n, 80 // t, t).total,
            )

        assert best_threads(1846, 550) < best_threads(1846, 100)
        assert best_threads(1130, 650) < best_threads(1130, 100)


class TestAnchorBookkeeping:
    def test_anchor_processes_consistent(self):
        for a in TABLE5_ANCHORS:
            assert a.cores % a.threads == 0

    def test_anchors_for_filters(self):
        dash_19436 = anchors_for(19436, "dash")
        assert all(a.machine == "dash" and a.patterns == 19436 for a in dash_19436)
        assert len(anchors_for(19436)) == len(dash_19436) + len(
            anchors_for(19436, "triton")
        )

    def test_fifty_anchors_total(self):
        assert len(TABLE5_ANCHORS) == 50
