"""Tests for the deterministic RNG streams (repro.util.rng)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.rng import RANK_SEED_STRIDE, RAxMLRandom, rank_seed, spawn_stream


class TestRankSeed:
    def test_rank_zero_is_identity(self):
        assert rank_seed(12345, 0) == 12345

    def test_stride_is_ten_thousand(self):
        # Section 2.4: "seeds incremented by ... multiples of 10,000".
        assert rank_seed(12345, 1) == 22345
        assert rank_seed(12345, 3) == 42345
        assert RANK_SEED_STRIDE == 10_000

    def test_custom_stride(self):
        assert rank_seed(7, 2, stride=100) == 207

    def test_negative_rank_rejected(self):
        with pytest.raises(ValueError):
            rank_seed(1, -1)

    @given(st.integers(1, 10**6), st.integers(0, 100))
    def test_rank_seeds_distinct(self, seed, rank):
        assert rank_seed(seed, rank) == seed + 10_000 * rank


class TestRAxMLRandom:
    def test_deterministic_sequence(self):
        a = RAxMLRandom(42)
        b = RAxMLRandom(42)
        assert [a.next_double() for _ in range(10)] == [
            b.next_double() for _ in range(10)
        ]

    def test_different_seeds_differ(self):
        a = RAxMLRandom(42)
        b = RAxMLRandom(43)
        assert [a.next_double() for _ in range(5)] != [b.next_double() for _ in range(5)]

    def test_doubles_in_unit_interval(self):
        r = RAxMLRandom(7)
        for _ in range(1000):
            x = r.next_double()
            assert 0.0 <= x < 1.0

    def test_doubles_roughly_uniform(self):
        r = RAxMLRandom(12345)
        xs = [r.next_double() for _ in range(5000)]
        assert abs(sum(xs) / len(xs) - 0.5) < 0.02

    def test_rejects_non_positive_seed(self):
        with pytest.raises(ValueError):
            RAxMLRandom(0)
        with pytest.raises(ValueError):
            RAxMLRandom(-5)

    def test_next_int_range(self):
        r = RAxMLRandom(3)
        vals = {r.next_int(7) for _ in range(500)}
        assert vals <= set(range(7))
        assert len(vals) == 7  # all values hit eventually

    def test_next_int_rejects_bad_upper(self):
        r = RAxMLRandom(3)
        with pytest.raises(ValueError):
            r.next_int(0)

    def test_next_seed_positive(self):
        r = RAxMLRandom(3)
        for _ in range(100):
            assert r.next_seed() > 0

    def test_shuffle_is_permutation(self):
        r = RAxMLRandom(5)
        items = list(range(20))
        shuffled = items.copy()
        r.shuffle(shuffled)
        assert sorted(shuffled) == items

    def test_permutation(self):
        r = RAxMLRandom(5)
        p = r.permutation(10)
        assert sorted(p) == list(range(10))

    def test_choice(self):
        r = RAxMLRandom(5)
        items = ["a", "b", "c"]
        assert r.choice(items) in items

    def test_choice_empty_rejected(self):
        with pytest.raises(ValueError):
            RAxMLRandom(5).choice([])

    def test_multinomial_counts_sum(self):
        r = RAxMLRandom(9)
        counts = r.multinomial_counts(100, 10)
        assert counts.sum() == 100
        assert counts.shape == (10,)
        assert np.all(counts >= 0)

    def test_weighted_multinomial_counts_sum(self):
        r = RAxMLRandom(9)
        w = np.array([1.0, 2.0, 3.0, 0.0])
        counts = r.weighted_multinomial_counts(60, w)
        assert counts.sum() == 60
        assert counts[3] == 0  # zero-weight bin never drawn

    def test_weighted_multinomial_respects_weights(self):
        r = RAxMLRandom(11)
        w = np.array([1.0, 9.0])
        counts = r.weighted_multinomial_counts(2000, w)
        assert counts[1] > counts[0] * 4

    def test_weighted_multinomial_validates(self):
        r = RAxMLRandom(1)
        with pytest.raises(ValueError):
            r.weighted_multinomial_counts(5, np.array([]))
        with pytest.raises(ValueError):
            r.weighted_multinomial_counts(5, np.array([-1.0, 2.0]))
        with pytest.raises(ValueError):
            r.weighted_multinomial_counts(5, np.array([0.0, 0.0]))

    def test_gauss_moments(self):
        r = RAxMLRandom(2024)
        xs = [r.gauss() for _ in range(4000)]
        mean = sum(xs) / len(xs)
        var = sum((x - mean) ** 2 for x in xs) / len(xs)
        assert abs(mean) < 0.06
        assert abs(var - 1.0) < 0.12

    def test_lognormal_mean_and_cv(self):
        r = RAxMLRandom(31)
        xs = [r.lognormal(mean=2.0, cv=0.3) for _ in range(5000)]
        mean = sum(xs) / len(xs)
        sd = math.sqrt(sum((x - mean) ** 2 for x in xs) / len(xs))
        assert abs(mean - 2.0) < 0.1
        assert abs(sd / mean - 0.3) < 0.05

    def test_lognormal_zero_cv_is_constant(self):
        r = RAxMLRandom(31)
        assert r.lognormal(mean=3.0, cv=0.0) == 3.0

    def test_lognormal_validates(self):
        r = RAxMLRandom(31)
        with pytest.raises(ValueError):
            r.lognormal(mean=0.0)
        with pytest.raises(ValueError):
            r.lognormal(mean=1.0, cv=-0.1)


class TestVectorizedMultinomialParity:
    """The uint64 LCG jump must be bit-identical to the scalar loop."""

    @settings(max_examples=30)
    @given(st.integers(1, 2**31), st.integers(0, 400), st.integers(1, 5000))
    def test_counts_and_state_match_scalar_oracle(self, seed, n_draws, n_bins):
        vec, ref = RAxMLRandom(seed), RAxMLRandom(seed)
        assert np.array_equal(
            vec.multinomial_counts(n_draws, n_bins),
            ref._multinomial_counts_scalar(n_draws, n_bins),
        )
        # The whole draw stream was consumed identically: subsequent
        # draws from both generators stay in lockstep.
        assert vec._state == ref._state
        assert vec.next_double() == ref.next_double()

    def test_large_seed_near_state_space_boundary(self):
        seed = (1 << 48) - 7
        vec, ref = RAxMLRandom(seed), RAxMLRandom(seed)
        assert np.array_equal(
            vec.multinomial_counts(1000, 97),
            ref._multinomial_counts_scalar(1000, 97),
        )
        assert vec._state == ref._state

    def test_index_never_reaches_upper(self):
        # Even the largest representable state must floor below n_bins.
        d = ((1 << 48) - 1) / float(1 << 48)
        for upper in (1, 2, 1000, 10**6, 2**30):
            assert int(d * upper) < upper

    def test_zero_draws_leaves_state_untouched(self):
        r = RAxMLRandom(77)
        state = r._state
        counts = r.multinomial_counts(0, 5)
        assert counts.tolist() == [0] * 5
        assert r._state == state

    def test_rejects_bad_bins(self):
        with pytest.raises(ValueError):
            RAxMLRandom(1).multinomial_counts(5, 0)

    def test_weighted_counts_match_scalar_searchsorted_loop(self):
        w = np.array([0.5, 2.0, 0.0, 3.5, 1.0])
        cdf = np.cumsum(w) / w.sum()
        vec, ref = RAxMLRandom(4242), RAxMLRandom(4242)
        got = vec.weighted_multinomial_counts(500, w)
        expected = np.zeros(w.size, dtype=np.int64)
        for _ in range(500):
            expected[int(np.searchsorted(cdf, ref.next_double(), side="right"))] += 1
        assert np.array_equal(got, expected)
        assert vec._state == ref._state


class TestSpawnStream:
    def test_deterministic(self):
        p = RAxMLRandom(99)
        a = spawn_stream(p, 5)
        b = spawn_stream(p, 5)
        assert a.next_double() == b.next_double()

    def test_does_not_advance_parent(self):
        p = RAxMLRandom(99)
        before = RAxMLRandom(99).next_double()
        spawn_stream(p, 3)
        assert p.next_double() == before

    def test_labels_give_distinct_streams(self):
        p = RAxMLRandom(99)
        streams = [spawn_stream(p, i) for i in range(50)]
        firsts = {round(s.next_double(), 12) for s in streams}
        assert len(firsts) == 50

    def test_negative_label_rejected(self):
        with pytest.raises(ValueError):
            spawn_stream(RAxMLRandom(1), -1)

    @settings(max_examples=25)
    @given(st.integers(1, 10**9), st.integers(0, 10**5))
    def test_spawn_order_independent(self, seed, label):
        p1 = RAxMLRandom(seed)
        _ = spawn_stream(p1, 0)
        late = spawn_stream(p1, label)
        fresh = spawn_stream(RAxMLRandom(seed), label)
        assert late.next_double() == fresh.next_double()
