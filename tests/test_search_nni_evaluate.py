"""Tests for NNI search and fixed-topology evaluation
(repro.search.nni, repro.search.evaluate)."""

import pytest

from repro.likelihood.engine import LikelihoodEngine, RateModel
from repro.search.evaluate import evaluate_tree
from repro.search.nni import NNIParams, nni_hill_climb, nni_round, try_nni
from repro.search.starting_tree import random_starting_tree
from repro.tree.bipartitions import tree_bipartitions
from repro.util.rng import RAxMLRandom


@pytest.fixture()
def engine(tiny_pal, gtr_model):
    return LikelihoodEngine(tiny_pal, gtr_model, RateModel.gamma(0.8, 4))


@pytest.fixture()
def bad_tree(tiny_pal):
    return random_starting_tree(tiny_pal, RAxMLRandom(4321))


class TestTryNNI:
    def test_changes_topology(self, engine, bad_tree):
        result = try_nni(engine, bad_tree, 0, 0)
        assert result is not None
        new_tree, lnl = result
        new_tree.validate()
        assert tree_bipartitions(new_tree) != tree_bipartitions(bad_tree)

    def test_out_of_range_returns_none(self, engine, bad_tree):
        assert try_nni(engine, bad_tree, 999, 0) is None

    def test_original_untouched(self, engine, bad_tree):
        splits = tree_bipartitions(bad_tree)
        try_nni(engine, bad_tree, 0, 1)
        assert tree_bipartitions(bad_tree) == splits

    def test_params_validation(self):
        with pytest.raises(ValueError):
            NNIParams(min_improvement=-0.1)


class TestNNIRound:
    def test_never_regresses(self, engine, bad_tree):
        before = engine.loglikelihood(bad_tree)
        _, lnl, _ = nni_round(engine, bad_tree)
        assert lnl >= before - 1e-9

    def test_improves_random_tree(self, engine, bad_tree):
        before = engine.loglikelihood(bad_tree)
        tree, lnl, improved = nni_round(engine, bad_tree)
        tree.validate()
        # A random topology on signal-bearing data should improve via NNI.
        assert improved
        assert lnl > before


class TestNNIHillClimb:
    def test_reaches_local_optimum(self, engine, bad_tree):
        tree, lnl = nni_hill_climb(engine, bad_tree, max_rounds=15)
        _, lnl2, improved = nni_round(engine, tree, current_lnl=lnl)
        assert not improved
        assert lnl2 == lnl

    def test_nni_weaker_or_equal_to_spr(self, engine, bad_tree):
        """SPR's move set strictly contains NNI: with the same effort cap
        the SPR climb should not be worse (modulo greedy noise)."""
        from repro.search.hillclimb import hill_climb

        nni_tree, nni_lnl = nni_hill_climb(engine, bad_tree, max_rounds=15)
        spr = hill_climb(engine, bad_tree, max_rounds=6, max_radius=10)
        assert spr.lnl >= nni_lnl - 1.0

    def test_validation(self, engine, bad_tree):
        with pytest.raises(ValueError):
            nni_hill_climb(engine, bad_tree, max_rounds=0)


class TestEvaluateTree:
    def test_preserves_topology(self, tiny_pal, tiny_tree):
        result = evaluate_tree(tiny_pal, tiny_tree, model_rounds=1, brlen_passes=2)
        assert tree_bipartitions(result.tree) == tree_bipartitions(tiny_tree)

    def test_optimises_model_and_lengths(self, tiny_pal, tiny_tree):
        from repro.likelihood.gtr import GTRModel

        result = evaluate_tree(tiny_pal, tiny_tree, model_rounds=1, brlen_passes=2)
        # Frequencies move off the default quarter split.
        assert result.model.freqs != GTRModel.default().freqs
        assert result.alpha is not None
        # lnL is the engine's value for the returned tree and model.
        engine = LikelihoodEngine(
            tiny_pal, result.model, RateModel.gamma(result.alpha, 4)
        )
        assert result.lnl == pytest.approx(engine.loglikelihood(result.tree), abs=1e-6)

    def test_input_not_mutated(self, tiny_pal, tiny_tree):
        lengths = [e.length for e in tiny_tree.edges()]
        evaluate_tree(tiny_pal, tiny_tree, model_rounds=1, brlen_passes=1)
        assert [e.length for e in tiny_tree.edges()] == lengths

    def test_better_topology_scores_higher(self, tiny_pal, tiny_true_tree):
        """The true tree should outscore a random topology after both are
        fully optimised."""
        rand = random_starting_tree(tiny_pal, RAxMLRandom(5))
        good = evaluate_tree(tiny_pal, tiny_true_tree, model_rounds=1, brlen_passes=3)
        bad = evaluate_tree(tiny_pal, rand, model_rounds=1, brlen_passes=3)
        assert good.lnl > bad.lnl

    def test_taxa_mismatch_rejected(self, tiny_pal):
        from repro.tree.random_trees import random_topology

        other = random_topology(tuple("ABCDEF"), RAxMLRandom(1))
        with pytest.raises(ValueError):
            evaluate_tree(tiny_pal, other)
