"""Smoke tests: the model-based examples must run end to end.

The search-heavy examples (quickstart, comprehensive_analysis,
bootstopping_study, analysis_types, multiprocessing_backend) take minutes
and are exercised by the integration tests at smaller scale; here we run
the fast, model-based ones as real subprocesses.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 120) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestModelExamples:
    def test_scaling_study(self):
        out = run_example("scaling_study.py")
        assert "Fig 1" in out
        assert "Fig 4" in out
        assert "fastest configuration per core count" in out

    def test_scaling_study_other_dataset(self):
        out = run_example("scaling_study.py", "19436")
        assert "19436 patterns" in out

    def test_cluster_comparison(self):
        out = run_example("cluster_comparison.py")
        assert "Triton PDAF" in out
        assert "Advisor" in out
        # The advisor must put all 32 threads on Triton at 64 cores.
        triton_line = [l for l in out.splitlines()
                       if "Triton" in l and "procs" in l][0]
        assert "32 threads" in triton_line

    def test_examples_exist_and_documented(self):
        """Every example carries a run-instruction docstring."""
        for path in sorted(EXAMPLES.glob("*.py")):
            text = path.read_text(encoding="utf-8")
            assert text.startswith('"""'), path.name
            assert "Run:" in text, f"{path.name} lacks run instructions"
