"""Tests for the alignment container (repro.seq.alignment)."""

import numpy as np
import pytest

from repro.seq.alignment import Alignment


def make(records):
    return Alignment.from_sequences(records)


class TestConstruction:
    def test_from_sequences(self):
        aln = make([("a", "ACGT"), ("b", "AC-T"), ("c", "ANGT")])
        assert aln.n_taxa == 3
        assert aln.n_sites == 4
        assert aln.taxa == ("a", "b", "c")

    def test_unequal_lengths_rejected(self):
        with pytest.raises(ValueError, match="length"):
            make([("a", "ACGT"), ("b", "ACG"), ("c", "ACGT")])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            make([("a", "ACGT"), ("a", "ACGT"), ("c", "ACGT")])

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            make([("a", "ACGT"), ("", "ACGT"), ("c", "ACGT")])

    def test_fewer_than_three_taxa_rejected(self):
        with pytest.raises(ValueError, match="3 taxa"):
            make([("a", "ACGT"), ("b", "ACGT")])

    def test_empty_records_rejected(self):
        with pytest.raises(ValueError):
            make([])

    def test_invalid_matrix_codes_rejected(self):
        with pytest.raises(ValueError):
            Alignment(("a", "b", "c"), np.zeros((3, 4), dtype=np.uint8))

    def test_matrix_immutable(self):
        aln = make([("a", "ACGT"), ("b", "ACGT"), ("c", "ACGT")])
        with pytest.raises((ValueError, RuntimeError)):
            aln.matrix[0, 0] = 2


class TestQueries:
    def test_sequence_roundtrip(self):
        aln = make([("a", "ACGT"), ("b", "AC-T"), ("c", "ANGT")])
        assert aln.sequence("a") == "ACGT"
        assert aln.sequence("b") == "AC-T"
        # N decodes canonically as '-'
        assert aln.sequence("c") == "A-GT"

    def test_taxon_index(self):
        aln = make([("a", "A"), ("b", "C"), ("c", "G")])
        assert aln.taxon_index("b") == 1
        with pytest.raises(KeyError):
            aln.taxon_index("zzz")

    def test_records(self):
        recs = [("a", "ACGT"), ("b", "AAAA"), ("c", "TTTT")]
        assert make(recs).records() == recs


class TestTransforms:
    def test_take_sites(self):
        aln = make([("a", "ACGT"), ("b", "TGCA"), ("c", "AAAA")])
        sub = aln.take_sites(np.array([3, 0]))
        assert sub.sequence("a") == "TA"
        assert sub.sequence("b") == "AT"

    def test_take_sites_out_of_range(self):
        aln = make([("a", "ACGT"), ("b", "TGCA"), ("c", "AAAA")])
        with pytest.raises(IndexError):
            aln.take_sites(np.array([4]))

    def test_take_sites_empty_rejected(self):
        aln = make([("a", "ACGT"), ("b", "TGCA"), ("c", "AAAA")])
        with pytest.raises(ValueError):
            aln.take_sites(np.array([], dtype=int))

    def test_take_taxa(self):
        aln = make([("a", "ACGT"), ("b", "TGCA"), ("c", "AAAA"), ("d", "CCCC")])
        sub = aln.take_taxa(["d", "a", "b"])
        assert sub.taxa == ("d", "a", "b")
        assert sub.sequence("d") == "CCCC"

    def test_equality_and_hash(self):
        a1 = make([("a", "ACGT"), ("b", "TGCA"), ("c", "AAAA")])
        a2 = make([("a", "ACGT"), ("b", "TGCA"), ("c", "AAAA")])
        a3 = make([("a", "ACGT"), ("b", "TGCA"), ("c", "AAAT")])
        assert a1 == a2
        assert hash(a1) == hash(a2)
        assert a1 != a3

    def test_repr(self):
        aln = make([("a", "ACGT"), ("b", "TGCA"), ("c", "AAAA")])
        assert "n_taxa=3" in repr(aln)
