"""Tests for the coarse-grained stage-time model (repro.perfmodel.coarse,
repro.perfmodel.profiles)."""

import pytest

from repro.datasets.registry import BENCHMARK_DATASETS, dataset_by_patterns
from repro.perfmodel.coarse import StageTimes, analysis_time, imbalance_factor, serial_time
from repro.perfmodel.machines import MACHINES
from repro.perfmodel.profiles import PROFILES, StageProfile, default_profile, profile_for

DASH = MACHINES["dash"]


class TestProfiles:
    def test_all_benchmark_datasets_covered(self):
        assert set(PROFILES) == {d.patterns for d in BENCHMARK_DATASETS}

    def test_fractions_sum_to_one(self):
        for p in PROFILES.values():
            total = p.frac_bootstrap + p.frac_fast + p.frac_slow + p.frac_thorough
            assert total == pytest.approx(1.0, abs=1e-6)

    def test_bootstraps_dominate_everywhere(self):
        """Figs 3-4: the bootstrap stage is the largest serial component."""
        for p in PROFILES.values():
            assert p.frac_bootstrap == max(
                p.frac_bootstrap, p.frac_fast, p.frac_slow, p.frac_thorough
            )

    def test_largest_thorough_fraction_is_19436(self):
        """Paper: 'the fraction of time spent doing thorough searches is
        much larger' for the 19,436-pattern set."""
        thor = {k: p.frac_thorough for k, p in PROFILES.items()}
        assert max(thor, key=thor.get) == 19436

    def test_per_search_costs_reconstruct_serial(self):
        p = profile_for(1846)
        total = (
            100 * p.bootstrap_search_seconds
            + 20 * p.fast_search_seconds
            + 10 * p.slow_search_seconds
            + p.thorough_search_seconds
        )
        assert total == pytest.approx(p.serial_seconds_100, rel=1e-9)

    def test_profile_for_unknown_raises(self):
        with pytest.raises(KeyError):
            profile_for(1234)

    def test_default_profile_valid(self):
        from repro.datasets.registry import DatasetSpec

        spec = DatasetSpec("custom", taxa=50, characters=5000, patterns=3000,
                           recommended_bootstraps=100)
        prof = default_profile(spec)
        assert prof.serial_seconds_100 > 0
        total = prof.frac_bootstrap + prof.frac_fast + prof.frac_slow + prof.frac_thorough
        assert total == pytest.approx(1.0)

    def test_validation(self):
        spec = dataset_by_patterns(1846)
        with pytest.raises(ValueError):
            StageProfile(spec, 100.0, 0.5, 0.5, 0.5, 0.5)
        with pytest.raises(ValueError):
            StageProfile(spec, -1.0, 0.25, 0.25, 0.25, 0.25)


class TestImbalanceFactor:
    def test_serial_is_one(self):
        assert imbalance_factor(1, 100, 0.15) == 1.0

    def test_zero_cv_is_one(self):
        assert imbalance_factor(10, 5, 0.0) == 1.0

    def test_grows_with_ranks(self):
        assert imbalance_factor(20, 5, 0.15) > imbalance_factor(2, 5, 0.15)

    def test_shrinks_with_items(self):
        assert imbalance_factor(10, 100, 0.15) < imbalance_factor(10, 1, 0.15)

    def test_validation(self):
        with pytest.raises(ValueError):
            imbalance_factor(0, 1, 0.1)
        with pytest.raises(ValueError):
            imbalance_factor(1, 0, 0.1)
        with pytest.raises(ValueError):
            imbalance_factor(1, 1, -0.1)


class TestSerialTime:
    def test_reference_serial_matches_table5(self):
        """serial_time at N=100 must reproduce Table 5's 1c column."""
        for patterns, expected in ((348, 1980), (1130, 2325), (1846, 9630),
                                   (7429, 72866), (19436, 22970)):
            assert serial_time(profile_for(patterns), DASH, 100) == pytest.approx(
                expected, rel=1e-6
            )

    def test_scales_with_bootstraps(self):
        p = profile_for(1846)
        assert serial_time(p, DASH, 550) > 3 * serial_time(p, DASH, 100)


class TestAnalysisTime:
    def test_serial_case_equals_serial_time(self):
        p = profile_for(1846)
        st = analysis_time(p, DASH, 100, 1, 1)
        assert st.total == pytest.approx(serial_time(p, DASH, 100))
        assert st.comm == 0.0

    def test_stage_times_positive(self):
        st = analysis_time(profile_for(1846), DASH, 100, 10, 8)
        for v in st.as_dict().values():
            assert v >= 0
        assert st.bootstrap > 0 and st.thorough > 0

    def test_thorough_stage_constant_in_processes(self):
        """Paper: 'the time for the last stage (thorough searches) is
        roughly constant' as processes increase."""
        p = profile_for(1846)
        t2 = analysis_time(p, DASH, 100, 2, 4).thorough
        t10 = analysis_time(p, DASH, 100, 10, 4).thorough
        assert t10 == pytest.approx(t2, rel=0.20)

    def test_bootstrap_stage_shrinks_with_processes(self):
        p = profile_for(1846)
        t2 = analysis_time(p, DASH, 100, 2, 4).bootstrap
        t10 = analysis_time(p, DASH, 100, 10, 4).bootstrap
        assert t10 < t2 / 3

    def test_threads_speed_all_stages(self):
        p = profile_for(19436)
        a = analysis_time(p, DASH, 100, 2, 1)
        b = analysis_time(p, DASH, 100, 2, 8)
        assert b.bootstrap < a.bootstrap
        assert b.thorough < a.thorough

    def test_comm_negligible(self):
        """Paper Section 4: interconnect speed has 'a negligible effect'."""
        st = analysis_time(profile_for(1846), DASH, 100, 10, 8)
        assert st.comm < st.total * 1e-4

    def test_too_many_threads_rejected(self):
        with pytest.raises(ValueError):
            analysis_time(profile_for(1846), DASH, 100, 1, 16)

    def test_more_processes_never_slower_per_stage_counts(self):
        """More ranks => fewer bootstraps each (barring rounding bumps)."""
        p = profile_for(1846)
        t5 = analysis_time(p, DASH, 100, 5, 8)
        t10 = analysis_time(p, DASH, 100, 10, 8)
        assert t10.bootstrap < t5.bootstrap

    def test_hybrid_beats_extremes_on_one_node(self):
        """Paper: on one 8-core Dash node, 2 procs x 4 threads beats both
        8 threads (Pthreads-only) and 8 processes (MPI-only) by ~1.3-1.4x."""
        p = profile_for(1846)
        hybrid = analysis_time(p, DASH, 100, 2, 4).total
        pthreads_only = analysis_time(p, DASH, 100, 1, 8).total
        mpi_only = analysis_time(p, DASH, 100, 8, 1).total
        assert pthreads_only / hybrid > 1.1
        assert mpi_only / hybrid > 1.2
