"""One test per quotable claim of the paper not covered elsewhere.

Each test cites the claim it checks.  These are the reproduction's
narrative-level regression suite: if a refactor breaks one of these, the
repository no longer tells the paper's story.
"""

import pytest

from repro.datasets.registry import BENCHMARK_DATASETS
from repro.likelihood.engine import LikelihoodEngine, OpCounter, RateModel
from repro.likelihood.gtr import GTRModel
from repro.perfmodel.coarse import analysis_time, serial_time
from repro.perfmodel.finegrain import finegrain_speedup
from repro.perfmodel.machines import MACHINES
from repro.perfmodel.profiles import PROFILES, profile_for


class TestIntroductionClaims:
    def test_fine_grained_benefits_all_analyses(self):
        """'virtually all RAxML analyses can benefit from fine-grained
        Pthreads parallelization': S_f(2) > 1 for every benchmark data set
        on every machine."""
        for d in BENCHMARK_DATASETS:
            for m in MACHINES.values():
                assert finegrain_speedup(m, d.patterns, 2) > 1.0, (d.name, m.name)

    def test_work_roughly_proportional_to_patterns(self):
        """Section 3: 'the amount of work to be done is roughly
        proportional to the number of patterns for a fixed number of
        taxa' — measured in engine pattern-ops."""
        from repro.datasets import test_dataset

        ops_by_patterns = {}
        for n_sites in (60, 240):
            pal, tree = test_dataset(n_taxa=6, n_sites=n_sites, seed=42)
            ops = OpCounter()
            engine = LikelihoodEngine(pal, GTRModel.jc69(), RateModel.gamma(1.0, 4),
                                      ops=ops)
            engine.loglikelihood(tree)
            ops_by_patterns[pal.n_patterns] = ops.pattern_ops
        (m1, o1), (m2, o2) = sorted(ops_by_patterns.items())
        assert o2 / o1 == pytest.approx(m2 / m1, rel=1e-6)


class TestSection2Claims:
    def test_useful_processes_limited_to_10_or_20(self):
        """Section 2.3: 'using more than 10 or 20 processes is seldom
        justified' — at 100 bootstraps, going from 20 to 40 processes
        (fixed threads) gains little or nothing."""
        prof = profile_for(1846)
        dash = MACHINES["dash"]
        t20 = analysis_time(prof, dash, 100, 20, 4).total
        t40 = analysis_time(prof, dash, 100, 40, 4).total
        assert t40 > 0.8 * t20  # < 25 % gain for doubling the ranks

    def test_speedup_beyond_10_processes_limited_by_slow_stage(self):
        """Section 2.3: 'Speedup beyond 10 processes becomes more limited
        because all processes are then doing a single slow search'."""
        from repro.search.schedule import make_schedule

        for p in (10, 16, 20):
            assert make_schedule(100, p).slow_per_process == 1

    def test_five_hundred_bootstraps_scale_past_ten(self):
        """Section 2.3: with 500 bootstraps the fast searches still scale
        at 20 processes ('though not for the case of 500 bootstraps')."""
        from repro.search.schedule import make_schedule

        s10 = make_schedule(500, 10)
        s20 = make_schedule(500, 20)
        # Fast work per rank halves from 10 to 20 ranks at N=500...
        assert s20.fast_per_process == s10.fast_per_process // 2
        # ...but not at N=100 (it bottoms out at 1-2 per rank).
        assert make_schedule(100, 20).fast_per_process == 1


class TestSection5Claims:
    def test_scaling_improves_with_patterns_first_four_sets(self):
        """Section 5.1: 'The scaling on Dash improves as the number of
        patterns increases in the first four data sets'."""
        dash = MACHINES["dash"]
        speedups = []
        for patterns in (348, 1130, 1846, 7429):
            prof = profile_for(patterns)
            serial = serial_time(prof, dash, 100)
            best = min(
                analysis_time(prof, dash, 100, 80 // t, t).total
                for t in (1, 2, 4, 8)
            )
            speedups.append(serial / best)
        assert speedups == sorted(speedups)

    def test_scaling_drops_for_last_set(self):
        """...'The scaling on Dash drops for the last data set because the
        fraction of time spent doing thorough searches is much larger'."""
        dash = MACHINES["dash"]

        def best80(patterns):
            prof = profile_for(patterns)
            serial = serial_time(prof, dash, 100)
            return serial / min(
                analysis_time(prof, dash, 100, 80 // t, t).total
                for t in (1, 2, 4, 8)
            )

        assert best80(19436) < best80(7429)
        assert (
            PROFILES[19436].frac_thorough
            > 2 * PROFILES[7429].frac_thorough
        )

    def test_single_process_overhead_note(self):
        """Section 5.1 note: runs for one process used the Pthreads-only
        code 'to avoid the overhead associated with using a single MPI
        process'.  Our model's p=1 path correspondingly carries no MPI
        communication cost."""
        prof = profile_for(348)
        st = analysis_time(prof, MACHINES["dash"], 100, 1, 4)
        assert st.comm == 0.0

    def test_timing_variability_structure(self):
        """Section 4: per-search jitter drives rank imbalance; the model's
        imbalance factor grows with ranks and shrinks with work items."""
        from repro.perfmodel.coarse import imbalance_factor

        assert imbalance_factor(10, 1, 0.15) > imbalance_factor(10, 100, 0.15)
        assert imbalance_factor(20, 10, 0.15) > imbalance_factor(2, 10, 0.15)


class TestSummaryClaims:
    def test_threads_limited_to_node(self):
        """Summary: the thread count 'is limited to the number of cores in
        a node' — enforced at configuration time."""
        from repro.hybrid.driver import HybridConfig

        with pytest.raises(ValueError):
            HybridConfig(n_processes=1, n_threads=9, machine="dash")
        with pytest.raises(ValueError):
            analysis_time(profile_for(1846), MACHINES["dash"], 100, 1, 9)

    def test_versatile_tool_for_tomorrow(self):
        """Summary/Discussion: machines with more cores per node win for
        the data sets of tomorrow — the 32-core node machine has the
        highest 64-core speedup for the pattern-richest set."""
        prof = profile_for(19436)
        speedups = {}
        for key, m in MACHINES.items():
            serial = serial_time(prof, m, 100)
            best = min(
                analysis_time(prof, m, 100, 64 // t, t).total
                for t in (1, 2, 4, 8, 16, 32)
                if t <= m.cores_per_node
            )
            speedups[key] = serial / best
        assert max(speedups, key=speedups.get) == "triton"
