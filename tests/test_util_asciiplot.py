"""Tests for the ASCII chart renderer (repro.util.asciiplot)."""

import pytest

from repro.util.asciiplot import Series, line_plot


@pytest.fixture()
def simple():
    return [
        Series("up", ((1.0, 1.0), (2.0, 2.0), (4.0, 4.0))),
        Series("flat", ((1.0, 2.0), (2.0, 2.0), (4.0, 2.0))),
    ]


class TestSeries:
    def test_requires_points(self):
        with pytest.raises(ValueError):
            Series("empty", ())

    def test_requires_ascending_x(self):
        with pytest.raises(ValueError):
            Series("bad", ((2.0, 1.0), (1.0, 2.0)))


class TestLinePlot:
    def test_contains_glyphs_and_legend(self, simple):
        out = line_plot(simple)
        assert "o up" in out
        assert "* flat" in out
        assert "o" in out.splitlines()[0] or any("o" in l for l in out.splitlines())

    def test_title_and_labels(self, simple):
        out = line_plot(simple, title="T", xlabel="cores", ylabel="speedup")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert any("cores" in l for l in lines)
        assert "speedup" in lines[-1]

    def test_dimensions(self, simple):
        out = line_plot(simple, width=40, height=10)
        plot_rows = [l for l in out.splitlines() if "|" in l]
        assert len(plot_rows) == 10
        for row in plot_rows:
            assert len(row.split("|", 1)[1]) == 40

    def test_log_x(self, simple):
        out = line_plot(simple, logx=True)
        assert out  # renders without error

    def test_log_x_rejects_nonpositive(self):
        s = [Series("bad", ((0.0, 1.0), (1.0, 2.0)))]
        with pytest.raises(ValueError):
            line_plot(s, logx=True)

    def test_extreme_dimensions_rejected(self, simple):
        with pytest.raises(ValueError):
            line_plot(simple, width=5)
        with pytest.raises(ValueError):
            line_plot(simple, height=2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_plot([])

    def test_constant_series_renders(self):
        out = line_plot([Series("c", ((1.0, 5.0), (2.0, 5.0)))])
        assert "o" in out

    def test_single_point_series(self):
        out = line_plot([Series("dot", ((1.0, 1.0),))])
        assert "o" in out

    def test_axis_ticks_present(self, simple):
        out = line_plot(simple)
        # y ticks include min and max values.
        assert "4" in out
        assert "1" in out

    def test_many_series_glyph_cycling(self):
        series = [
            Series(f"s{i}", ((1.0, float(i)), (2.0, float(i + 1)))) for i in range(10)
        ]
        out = line_plot(series)
        assert "s9" in out
