"""Tests for virtual clocks and stage timers (repro.util.timing)."""

import pytest

from repro.util.timing import StageTimer, VirtualClock, WallTimer


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_custom_start(self):
        assert VirtualClock(5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock(-1.0)

    def test_advance_accumulates(self):
        c = VirtualClock()
        c.advance(1.5)
        c.advance(0.5)
        assert c.now == 2.0

    def test_advance_returns_new_time(self):
        assert VirtualClock().advance(3.0) == 3.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-0.1)

    def test_synchronize_moves_forward_only(self):
        c = VirtualClock(10.0)
        c.synchronize(5.0)
        assert c.now == 10.0  # never backwards
        c.synchronize(12.0)
        assert c.now == 12.0


class TestStageTimer:
    def test_accumulates_per_stage(self):
        t = StageTimer()
        t.add("bootstrap", 2.0)
        t.add("bootstrap", 1.0)
        t.add("fast", 0.5)
        assert t.get("bootstrap") == 3.0
        assert t.get("fast") == 0.5
        assert t.get("missing") == 0.0

    def test_total(self):
        t = StageTimer()
        t.add("a", 1.0)
        t.add("b", 2.0)
        assert t.total == 3.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            StageTimer().add("a", -1.0)

    def test_merged_max_is_elementwise(self):
        a = StageTimer({"x": 1.0, "y": 5.0})
        b = StageTimer({"x": 3.0, "z": 2.0})
        m = a.merged_max(b)
        assert m.stages == {"x": 3.0, "y": 5.0, "z": 2.0}

    def test_as_dict_copies(self):
        t = StageTimer({"a": 1.0})
        d = t.as_dict()
        d["a"] = 99.0
        assert t.get("a") == 1.0


class TestWallTimer:
    def test_measures_something(self):
        with WallTimer() as w:
            sum(range(10000))
        assert w.elapsed >= 0.0
