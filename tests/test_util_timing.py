"""Tests for virtual clocks and stage timers (repro.util.timing)."""

import pytest

from repro.util.timing import StageTimer, VirtualClock, WallTimer


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_custom_start(self):
        assert VirtualClock(5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock(-1.0)

    def test_advance_accumulates(self):
        c = VirtualClock()
        c.advance(1.5)
        c.advance(0.5)
        assert c.now == 2.0

    def test_advance_returns_new_time(self):
        assert VirtualClock().advance(3.0) == 3.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-0.1)

    def test_synchronize_moves_forward_only(self):
        c = VirtualClock(10.0)
        c.synchronize(5.0)
        assert c.now == 10.0  # never backwards
        c.synchronize(12.0)
        assert c.now == 12.0


class TestStageTimer:
    def test_accumulates_per_stage(self):
        t = StageTimer()
        t.add("bootstrap", 2.0)
        t.add("bootstrap", 1.0)
        t.add("fast", 0.5)
        assert t.get("bootstrap") == 3.0
        assert t.get("fast") == 0.5
        assert t.get("missing") == 0.0

    def test_total(self):
        t = StageTimer()
        t.add("a", 1.0)
        t.add("b", 2.0)
        assert t.total == 3.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            StageTimer().add("a", -1.0)

    def test_merged_max_is_elementwise(self):
        a = StageTimer({"x": 1.0, "y": 5.0})
        b = StageTimer({"x": 3.0, "z": 2.0})
        m = a.merged_max(b)
        assert m.stages == {"x": 3.0, "y": 5.0, "z": 2.0}

    def test_as_dict_copies(self):
        t = StageTimer({"a": 1.0})
        d = t.as_dict()
        d["a"] = 99.0
        assert t.get("a") == 1.0


class TestMergedMaxMultiRank:
    """Fig. 3-4 convention: per-stage time is the last process to finish."""

    RANKS = [
        StageTimer({"bootstrap": 4.0, "fast": 1.0, "slow": 0.5, "thorough": 2.0}),
        StageTimer({"bootstrap": 3.0, "fast": 2.5, "slow": 0.25, "thorough": 6.0}),
        StageTimer({"bootstrap": 3.5, "fast": 0.75, "slow": 1.0, "thorough": 4.0}),
    ]

    def test_three_rank_fold_hand_computed(self):
        merged = self.RANKS[0].merged_max(self.RANKS[1]).merged_max(self.RANKS[2])
        assert merged.stages == {
            "bootstrap": 4.0, "fast": 2.5, "slow": 1.0, "thorough": 6.0,
        }
        # The merged total is NOT any single rank's total: each stage's
        # maximum may come from a different straggler.
        assert merged.total == 13.5
        assert max(t.total for t in self.RANKS) == 11.75

    def test_merge_is_commutative_and_idempotent(self):
        a, b = self.RANKS[0], self.RANKS[1]
        assert a.merged_max(b).stages == b.merged_max(a).stages
        assert a.merged_max(a).stages == a.stages

    def test_merge_with_empty_timer_is_identity(self):
        a = self.RANKS[0]
        assert a.merged_max(StageTimer()).stages == a.stages


class TestCommSecondsHandComputed:
    """comm_seconds against a fully hand-computed two-rank trace."""

    def test_barrier_then_bcast_exact_costs(self):
        from repro.mpi.comm import CommTiming
        from repro.mpi.launcher import run_spmd

        timing = CommTiming(latency=1e-3, byte_time=0.0, barrier_base=1e-2)

        def fn(comm):
            comm.clock.advance(1.0 if comm.rank == 0 else 3.0)
            comm.barrier()
            comm.bcast(b"x" if comm.rank == 0 else None, root=0)
            return comm.comm_seconds(), comm.clock.now

        (secs0, end0), (secs1, end1) = run_spmd(fn, 2, comm_timing=timing)
        # Barrier: everyone leaves at max(1.0, 3.0) + 1e-2*ceil(log2 2).
        # Bcast: one message round on synchronized clocks costs latency.
        assert end0 == end1 == pytest.approx(3.0 + 1e-2 + 1e-3)
        # Rank 0 entered the barrier at 1.0 -> waited for the straggler.
        assert secs0 == pytest.approx((3.01 - 1.0) + 1e-3)
        assert secs1 == pytest.approx(1e-2 + 1e-3)

    def test_comm_seconds_sums_per_event_trace(self):
        from repro.mpi.comm import CommTiming
        from repro.mpi.launcher import run_spmd

        timing = CommTiming(latency=2e-3, byte_time=0.0, barrier_base=5e-3)

        def fn(comm):
            for _ in range(3):
                comm.barrier()
            return [e.seconds for e in comm.trace], comm.comm_seconds()

        for per_event, total in run_spmd(fn, 4, comm_timing=timing):
            assert total == pytest.approx(sum(per_event))
            # 4 ranks advance nothing, so each barrier costs exactly
            # barrier_base * ceil(log2 4) on every rank.
            assert per_event == [pytest.approx(1e-2)] * 3


class TestWallTimer:
    def test_measures_something(self):
        with WallTimer() as w:
            sum(range(10000))
        assert w.elapsed >= 0.0
