"""Tests for bootstrap resampling (repro.seq.bootstrap)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.seq.bootstrap import bootstrap_pattern_weights, bootstrap_weights
from repro.util.rng import RAxMLRandom


class TestBootstrapWeights:
    def test_sums_to_n_sites(self):
        w = bootstrap_weights(50, RAxMLRandom(1))
        assert w.sum() == 50
        assert w.shape == (50,)

    def test_deterministic(self):
        a = bootstrap_weights(30, RAxMLRandom(7))
        b = bootstrap_weights(30, RAxMLRandom(7))
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = bootstrap_weights(100, RAxMLRandom(7))
        b = bootstrap_weights(100, RAxMLRandom(8))
        assert not np.array_equal(a, b)

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            bootstrap_weights(0, RAxMLRandom(1))

    @settings(max_examples=20)
    @given(st.integers(1, 200), st.integers(1, 10**6))
    def test_sum_property(self, n, seed):
        assert bootstrap_weights(n, RAxMLRandom(seed)).sum() == n


class TestBootstrapPatternWeights:
    def test_sums_to_original_sites(self, handmade_pal):
        w = bootstrap_pattern_weights(handmade_pal, RAxMLRandom(3))
        assert w.sum() == handmade_pal.n_sites

    def test_zero_weight_patterns_possible(self, small_pal):
        """With enough patterns, some never get drawn (that's the point)."""
        w = bootstrap_pattern_weights(small_pal, RAxMLRandom(3))
        assert (w == 0).any()

    def test_respects_original_multiplicities(self, tiny_pal):
        """Heavier patterns should be drawn more often on average."""
        totals = np.zeros(tiny_pal.n_patterns)
        for seed in range(1, 40):
            totals += bootstrap_pattern_weights(tiny_pal, RAxMLRandom(seed))
        heavy = np.argmax(tiny_pal.weights)
        light = np.argmin(tiny_pal.weights)
        if tiny_pal.weights[heavy] > 2 * tiny_pal.weights[light]:
            assert totals[heavy] > totals[light]

    def test_deterministic(self, handmade_pal):
        a = bootstrap_pattern_weights(handmade_pal, RAxMLRandom(5))
        b = bootstrap_pattern_weights(handmade_pal, RAxMLRandom(5))
        assert np.array_equal(a, b)
