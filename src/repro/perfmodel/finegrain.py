"""The fine-grained (Pthreads) timing model.

One *parallel region* — a CLV update or likelihood reduction over all
patterns, ended by a barrier — costs, in pattern-units::

    region(T) = max_chunk · c(chunk, T) + sync · T^e

where the per-pattern cost ``c`` carries the machine's cache and memory-
bandwidth behaviour::

    miss(chunk)  = chunk / (chunk + cache_patterns)          # miss fraction
    bw(T)        = 1 + penalty · max(0, T - bandwidth_cores) / bandwidth_cores
    c(chunk, T)  = 1 + (cache_factor - 1) · miss(chunk) · bw(T)

This reproduces the mechanisms the paper describes: per-thread chunks
shrink as T grows, so cache hit rates *improve* (superlinear speedup from
1 to 4 cores on Abe/Ranger/Triton, Fig 8); saturated memory buses inflate
miss costs at high thread counts (Abe drops fastest); the quadratic
barrier term caps useful thread counts for small-pattern data sets (the
optimal number of Pthreads "increases with the number of patterns").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.perfmodel.machines import MachineSpec


def pattern_cost(machine: MachineSpec, chunk: float, n_threads: int) -> float:
    """Per-pattern-category cost (pattern-units) of a thread working on a
    chunk of ``chunk`` patterns while ``n_threads`` share the node."""
    if chunk < 0:
        raise ValueError("chunk must be non-negative")
    if n_threads < 1:
        raise ValueError("n_threads must be >= 1")
    miss = chunk / (chunk + machine.cache_patterns)
    over = max(0, n_threads - machine.bandwidth_cores)
    bw = 1.0 + machine.bandwidth_penalty * over / machine.bandwidth_cores
    return 1.0 + (machine.cache_factor - 1.0) * miss * bw


def region_pattern_units(
    machine: MachineSpec,
    n_patterns: int,
    n_threads: int,
    n_categories: int = 1,
) -> float:
    """Cost of one balanced parallel region, in pattern-units."""
    if n_patterns < 0:
        raise ValueError("n_patterns must be >= 0")
    if n_threads < 1:
        raise ValueError("n_threads must be >= 1")
    chunk = math.ceil(n_patterns / n_threads)
    compute = chunk * n_categories * pattern_cost(machine, chunk, n_threads)
    sync = (
        machine.sync_pattern_units * n_threads**machine.sync_exponent
        if n_threads > 1
        else 0.0
    )
    return compute + sync


def finegrain_speedup(machine: MachineSpec, n_patterns: int, n_threads: int) -> float:
    """Fine-grained speedup S_f(T) = region(1) / region(T)."""
    if n_threads > machine.cores_per_node:
        raise ValueError(
            f"{machine.name} has {machine.cores_per_node} cores per node; "
            f"cannot run {n_threads} threads"
        )
    return region_pattern_units(machine, n_patterns, 1) / region_pattern_units(
        machine, n_patterns, n_threads
    )


def traversal_pattern_units(
    machine: MachineSpec,
    plan,
    n_patterns: int,
    n_threads: int,
    n_categories: int = 1,
) -> float:
    """Cost of executing one traversal plan, in pattern-units.

    ``plan`` is a :class:`repro.likelihood.plan.TraversalPlan`: only its
    ``n_inner`` ops cost parallel regions (tips are gathers folded into
    their parent's update; cached ops are dictionary fetches), plus one
    region for the evaluate/reduction sweep.  This is the analytic twin of
    the engine's region charging, so planned (incremental) traversals can
    be priced without running them — the quantity the kernel
    microbenchmark compares against measured virtual time.
    """
    regions = max(plan.n_inner, 1) + 1
    return regions * region_pattern_units(
        machine, n_patterns, n_threads, n_categories
    )


def serial_pattern_cost(machine: MachineSpec, n_patterns: int) -> float:
    """Per-pattern serial cost including the machine's core speed — the
    quantity cross-machine comparisons (Fig 8, Table 5) are built on."""
    return pattern_cost(machine, n_patterns, 1) / machine.core_speed


@dataclass(frozen=True)
class MachineRegionTiming:
    """A :class:`repro.threads.timing.RegionTiming` implementation backed
    by a machine model, for wiring real (virtual-thread) runs to machine-
    accurate timing.  ``seconds_per_pattern_unit`` converts model units to
    simulated seconds."""

    machine: MachineSpec
    seconds_per_pattern_unit: float = 1e-7

    def region_seconds(self, chunk_patterns: Sequence[int], n_categories: int) -> float:
        t = len(chunk_patterns)
        if t == 0:
            return 0.0
        biggest = max(chunk_patterns)
        compute = biggest * n_categories * pattern_cost(self.machine, biggest, t)
        sync = (
            self.machine.sync_pattern_units * t**self.machine.sync_exponent
            if t > 1
            else 0.0
        )
        return (compute + sync) * self.seconds_per_pattern_unit / self.machine.core_speed


def lane_post_seconds(
    machine: MachineSpec,
    n_threads: int,
    n_channels: int,
    n_bytes: int = 8,
) -> float:
    """Modelled lane-post drain of one region under ``n_channels`` VCIs.

    The analytic twin of :meth:`repro.mpi.vci.ChannelSet.lane_post_makespan`:
    ``T`` simultaneous per-lane posts (one ``n_bytes`` partial each),
    round-robined over the channels, each post priced as an intra-node
    hop.  A single lane reduces in place and posts nothing.
    """
    if n_threads <= 1:
        return 0.0
    if n_channels < 1:
        raise ValueError(f"n_channels must be >= 1, got {n_channels}")
    per_post = machine.intra_node_latency + machine.intra_node_byte_time * n_bytes
    return math.ceil(n_threads / n_channels) * per_post
