"""Table 4: the benchmark computers, plus calibrated model constants.

    Computer      Location  Processor                    Cores/node
    Abe           NCSA      2.33-GHz Intel Clovertown     8
    Dash          SDSC      2.4-GHz Intel Nehalem         8
    Ranger        TACC      2.3-GHz AMD Barcelona        16
    Triton PDAF   SDSC      2.5-GHz AMD Shanghai         32

Model constants encode the paper's qualitative characterisations:

* Dash's "newer cache design is more effective" → no cache-miss penalty
  (``cache_factor`` 1.0), so speedup is linear to 8 cores (Fig 8);
* Abe's "bus-based memory subsystem ... is generally slower" → large
  cache factor, low ``bandwidth_cores`` → superlinear 1→4 cores then the
  fastest efficiency drop;
* Ranger and Triton show cache superlinearity with a gentler drop and
  support 16/32 threads.

``sync_pattern_units`` (the quadratic barrier coefficient) and the
Triton cache constants are calibrated against the paper's Table 5 rows by
:mod:`repro.perfmodel.calibrate`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MachineSpec:
    """One benchmark computer with its cost-model constants.

    ``core_speed`` is per-core in-cache throughput relative to Dash.
    ``cache_factor`` is the per-pattern slowdown of fully out-of-cache
    work; ``cache_patterns`` is the per-thread chunk size at which half
    the working set misses.  ``bandwidth_cores`` is how many concurrently
    active threads the node's memory can feed at full speed; the miss-cost
    inflation beyond that is ``bandwidth_penalty``-strong.
    ``sync_pattern_units``·T^``sync_exponent`` is the per-region barrier
    cost (in units of one pattern-category computation): exponent 2 models
    a busy-wait flat barrier (cache-line traffic ∝ T²), exponent 1 a
    tree/hierarchical barrier.

    The ``intra_node_*`` / ``inter_node_*`` pairs are the two-tier
    communication constants used by the topology-aware collectives
    (:mod:`repro.mpi.topology`): latency/per-byte cost of a hop inside a
    node (shared memory) vs across the interconnect.  The inter-node
    defaults equal the historical flat
    :class:`~repro.mpi.comm.CommTiming` numbers, so a trivial topology
    reproduces today's costs exactly.
    """

    name: str
    location: str
    processor: str
    cores_per_node: int
    clock_ghz: float
    core_speed: float
    cache_factor: float
    cache_patterns: float
    bandwidth_cores: int
    bandwidth_penalty: float
    sync_pattern_units: float
    sync_exponent: float = 2.0
    memory_per_node_gb: float = 32.0
    #: Two-tier communication constants (seconds / seconds-per-byte).
    #: Inter-node defaults match the flat CommTiming constants.
    intra_node_latency: float = 5e-7
    intra_node_byte_time: float = 4e-11
    inter_node_latency: float = 5e-6
    inter_node_byte_time: float = 1e-9

    def __post_init__(self) -> None:
        if self.cores_per_node < 1:
            raise ValueError("cores_per_node must be >= 1")
        if self.core_speed <= 0 or self.clock_ghz <= 0:
            raise ValueError("core_speed and clock_ghz must be positive")
        if self.cache_factor < 1.0:
            raise ValueError("cache_factor must be >= 1 (1 = no miss penalty)")
        if self.cache_patterns <= 0:
            raise ValueError("cache_patterns must be positive")
        if self.bandwidth_cores < 1:
            raise ValueError("bandwidth_cores must be >= 1")
        if self.bandwidth_penalty < 0 or self.sync_pattern_units < 0:
            raise ValueError("penalties must be non-negative")
        if self.sync_exponent < 0.5:
            raise ValueError("sync_exponent must be >= 0.5")
        if self.memory_per_node_gb <= 0:
            raise ValueError("memory_per_node_gb must be positive")
        if self.intra_node_latency <= 0 or self.inter_node_latency <= 0:
            raise ValueError("node latencies must be positive")
        if self.intra_node_byte_time <= 0 or self.inter_node_byte_time <= 0:
            raise ValueError("node byte times must be positive")
        if self.intra_node_latency > self.inter_node_latency:
            raise ValueError(
                "intra-node latency must not exceed inter-node latency"
            )
        if self.intra_node_byte_time > self.inter_node_byte_time:
            raise ValueError(
                "intra-node byte time must not exceed inter-node byte time"
            )

    def max_threads(self) -> int:
        """Threads are "limited to the number of cores per node" (paper)."""
        return self.cores_per_node


#: The four benchmark computers of Table 4 with calibrated constants.
MACHINES: dict[str, MachineSpec] = {
    "abe": MachineSpec(
        name="Abe",
        location="NCSA",
        processor="2.33-GHz Intel Clovertown",
        cores_per_node=8,
        clock_ghz=2.33,
        core_speed=0.88,
        cache_factor=2.1,
        cache_patterns=900.0,
        bandwidth_cores=4,
        bandwidth_penalty=1.0,
        sync_pattern_units=3.0,
        memory_per_node_gb=8.0,
        # Bus-based memory subsystem: the slowest intra-node tier.
        intra_node_latency=8e-7,
        intra_node_byte_time=1e-10,
    ),
    "dash": MachineSpec(
        name="Dash",
        location="SDSC",
        processor="2.4-GHz Intel Nehalem",
        cores_per_node=8,
        clock_ghz=2.4,
        core_speed=1.0,
        cache_factor=1.0,
        cache_patterns=4000.0,
        bandwidth_cores=8,
        bandwidth_penalty=0.1,
        sync_pattern_units=1.75,
        memory_per_node_gb=48.0,
        # Nehalem QPI: fast on-node fabric (~40 GB/s effective).
        intra_node_latency=4e-7,
        intra_node_byte_time=2.5e-11,
    ),
    "ranger": MachineSpec(
        name="Ranger",
        location="TACC",
        processor="2.3-GHz AMD Barcelona",
        cores_per_node=16,
        clock_ghz=2.3,
        core_speed=0.80,
        cache_factor=1.9,
        cache_patterns=1400.0,
        bandwidth_cores=10,
        bandwidth_penalty=0.5,
        sync_pattern_units=2.0,
        memory_per_node_gb=32.0,
        intra_node_latency=6e-7,
        intra_node_byte_time=5e-11,
    ),
    "triton": MachineSpec(
        name="Triton PDAF",
        location="SDSC",
        processor="2.5-GHz AMD Shanghai",
        cores_per_node=32,
        clock_ghz=2.5,
        core_speed=0.9773,
        cache_factor=1.4,
        cache_patterns=400.0,
        bandwidth_cores=24,
        bandwidth_penalty=0.3,
        sync_pattern_units=12.395,
        sync_exponent=1.0,
        memory_per_node_gb=256.0,
        intra_node_latency=5e-7,
        intra_node_byte_time=4e-11,
    ),
}


def machine_by_name(name: str) -> MachineSpec:
    """Look up a machine case-insensitively ('dash', 'Triton PDAF', ...)."""
    key = name.strip().lower().split()[0]
    if key == "triton":
        return MACHINES["triton"]
    if key in MACHINES:
        return MACHINES[key]
    raise KeyError(f"unknown machine {name!r}; known: {sorted(MACHINES)}")
