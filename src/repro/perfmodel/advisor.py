"""Layout advisor: the paper's practical guidance, as a function.

Given a data set, a machine, a bootstrap count and a core budget, pick the
(processes × threads) layout the model predicts to be fastest — subject to
the constraints the paper spells out: threads bounded by the node width,
and per-process memory bounded by the node's share
(:mod:`repro.perfmodel.memory`).  This is exactly the decision the
Summary's guidance automates ("The useful number of MPI processes
increases with the number of bootstraps ... The optimal number of
Pthreads increases with the number of patterns").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perfmodel.coarse import analysis_time, serial_time
from repro.perfmodel.machines import MachineSpec
from repro.perfmodel.memory import max_processes_per_node, process_memory
from repro.perfmodel.profiles import StageProfile


@dataclass(frozen=True)
class LayoutRecommendation:
    """The advisor's verdict for one core budget."""

    n_processes: int
    n_threads: int
    cores: int
    predicted_seconds: float
    predicted_speedup: float
    memory_per_process_gb: float
    alternatives: tuple[tuple[int, int, float], ...]  # (p, T, seconds)


def recommend_layout(
    profile: StageProfile,
    machine: MachineSpec,
    n_bootstraps: int,
    max_cores: int,
    gamma_categories: int = 4,
) -> LayoutRecommendation:
    """The fastest memory-feasible (p, T) layout within ``max_cores``.

    Candidate thread counts divide the node width; the process count fills
    the core budget.  Layouts whose per-process memory exceeds the node's
    per-process share are discarded.
    """
    if max_cores < 1:
        raise ValueError("max_cores must be >= 1")
    d = profile.dataset
    est = process_memory(d.taxa, d.patterns, n_categories=gamma_categories)
    mem_procs = max_processes_per_node(machine, est)
    if mem_procs < 1:
        raise ValueError(
            f"{d.name}: one process needs {est.total_gb:.1f} GB, more than a "
            f"{machine.name} node offers"
        )

    serial = serial_time(profile, machine, n_bootstraps)
    candidates: list[tuple[int, int, float]] = []
    for threads in (1, 2, 4, 8, 16, 32):
        if threads > machine.cores_per_node or threads > max_cores:
            continue
        if machine.cores_per_node % threads:
            continue
        procs = max_cores // threads
        if procs < 1:
            continue
        # Memory: processes sharing one node must fit in node memory.
        procs_per_node = min(procs, machine.cores_per_node // threads)
        if procs_per_node > mem_procs:
            continue
        seconds = analysis_time(profile, machine, n_bootstraps, procs, threads).total
        candidates.append((procs, threads, seconds))
    if not candidates:
        raise ValueError(
            f"no memory-feasible layout within {max_cores} cores on {machine.name}"
        )
    candidates.sort(key=lambda c: c[2])
    p, t, seconds = candidates[0]
    return LayoutRecommendation(
        n_processes=p,
        n_threads=t,
        cores=p * t,
        predicted_seconds=seconds,
        predicted_speedup=serial / seconds,
        memory_per_process_gb=est.total_gb,
        alternatives=tuple(candidates[1:]),
    )
