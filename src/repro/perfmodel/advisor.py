"""Layout advisor: the paper's practical guidance, as a function.

Given a data set, a machine, a bootstrap count and a core budget, pick the
(processes × threads) layout the model predicts to be fastest — subject to
the constraints the paper spells out: threads bounded by the node width,
and per-process memory bounded by the node's share
(:mod:`repro.perfmodel.memory`).  This is exactly the decision the
Summary's guidance automates ("The useful number of MPI processes
increases with the number of bootstraps ... The optimal number of
Pthreads increases with the number of patterns").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perfmodel.coarse import analysis_time, serial_time
from repro.perfmodel.machines import MachineSpec
from repro.perfmodel.memory import max_processes_per_node, process_memory
from repro.perfmodel.profiles import StageProfile


@dataclass(frozen=True)
class LayoutRecommendation:
    """The advisor's verdict for one core budget."""

    n_processes: int
    n_threads: int
    cores: int
    predicted_seconds: float
    predicted_speedup: float
    memory_per_process_gb: float
    alternatives: tuple[tuple[int, int, float], ...]  # (p, T, seconds)
    #: "static" or "work-steal": the schedule mode predicted fastest for
    #: the recommended layout (DES over the layout's stage pools with the
    #: profile's jitter).
    schedule_mode: str = "static"
    #: Modelled search-stage makespans under each mode (seconds; excludes
    #: setup/communication, so they are comparable to each other, not to
    #: ``predicted_seconds``).
    predicted_static_seconds: float = 0.0
    predicted_worksteal_seconds: float = 0.0
    #: Mean per-rank idle-tail seconds summed over stages, per mode — the
    #: quantity the Fig. 3-4 report surfaces and stealing exists to shrink.
    predicted_idle_tail_static: float = 0.0
    predicted_idle_tail_worksteal: float = 0.0


#: Modelled run-time advantage work stealing must show before the advisor
#: recommends it (steals are not free: each is a modelled round-trip).
_STEAL_ADVANTAGE_THRESHOLD = 0.01


def predict_schedule_modes(
    profile: StageProfile,
    machine: MachineSpec,
    n_bootstraps: int,
    n_processes: int,
    n_threads: int,
    seed: int = 12345,
    topology=None,
) -> dict[str, dict[str, float]]:
    """Static vs. work-steal stage-pool predictions for one layout.

    Runs the scheduler's discrete-event simulator over the layout's real
    task DAG (Table 2 shares, bootstrap chain dependencies included) with
    per-task costs drawn lognormally around the perfmodel's stage hints
    using the profile's ``jitter_cv`` — the same jitter the coarse model's
    ``imbalance_factor`` summarises analytically.  Both modes see
    identical costs, so the difference is purely scheduling.

    ``topology`` (a :class:`~repro.mpi.topology.Topology`) prices steals
    per hop — an on-node steal as a shared-memory round-trip, a
    cross-node one at interconnect cost — via the machine's two-tier
    model, matching the work-steal backend's charging rule.

    Returns ``{"static": {...}, "work-steal": {...}}`` where each entry
    has ``makespan`` (summed stage makespans, seconds), ``idle_tail``
    (mean per-rank tail seconds summed over stages) and ``steal_grants``.
    """
    from repro.search.comprehensive import ComprehensiveConfig
    from repro.search.schedule import make_schedule
    from repro.sched.placement import initial_assignment, stage_cost_hints
    from repro.sched.stealing import simulate
    from repro.sched.tasks import build_dag
    from repro.util.rng import RAxMLRandom, rank_seed

    sched = make_schedule(n_bootstraps, n_processes)
    cfg = ComprehensiveConfig(n_bootstraps=n_bootstraps)
    dag = build_dag(sched, cfg, n_processes)
    hints = stage_cost_hints(profile, machine, n_threads)
    members = tuple(range(n_processes))
    steal_seconds = 1.05e-5
    if topology is not None and not topology.is_trivial:
        from repro.mpi.topology import HierarchicalCommTiming

        timing = HierarchicalCommTiming.for_machine(machine, topology)

        def steal_seconds(thief, victim):  # noqa: F811 - hop-aware override
            return 2.0 * timing.message_seconds(256, src=thief, dst=victim)

    out = {m: {"makespan": 0.0, "idle_tail": 0.0, "steal_grants": 0.0}
           for m in ("static", "work-steal")}
    for si, stage in enumerate(("bootstrap", "fast", "slow", "thorough")):
        tasks = dag[stage]
        ids = {t.id for t in tasks}
        pre = {d for t in tasks for d in t.deps if d not in ids}
        rng = RAxMLRandom(rank_seed(seed, si))
        costs = {
            t.id: hints[stage] * rng.lognormal(1.0, profile.jitter_cv)
            for t in tasks
        }
        assignment = initial_assignment(tasks, members)
        for mode in ("static", "work-steal"):
            res = simulate(
                tasks, assignment, costs, members, mode=mode,
                steal_seed=seed, steal_seconds=steal_seconds,
                pre_completed=pre,
            )
            out[mode]["makespan"] += res["makespan"]
            tails = res["idle_tail"]
            out[mode]["idle_tail"] += sum(tails.values()) / max(len(tails), 1)
            out[mode]["steal_grants"] += res["steal_grants"]
    return out


def compare_layouts(
    profile: StageProfile,
    machine: MachineSpec,
    n_bootstraps: int,
    layouts,
    seed: int = 12345,
) -> dict:
    """Answer "8×4 or 4×8?" with the topology-aware model.

    ``layouts`` is a sequence of ``(n_processes, n_threads)`` pairs using
    the same core budget (they need not — each is modelled on its own).
    For each layout the node packing is implied by the machine:
    ``ranks_per_node = cores_per_node // n_threads`` (at least 1), so a
    thread-heavy layout spreads ranks across more nodes and pays
    interconnect prices for more of its collectives and steals, while a
    process-heavy layout keeps collectives on shared memory but spends
    more time in imbalanced stage tails.  The verdict combines the coarse
    analytic model (compute + hierarchical communication) with the
    scheduler DES replay under hop-priced steals.

    Returns ``{"layouts": [...], "best": {...}}`` where each layout entry
    carries ``n_processes``/``n_threads``/``ranks_per_node``/``n_nodes``,
    the coarse stage times (``predicted_seconds``, ``comm_seconds``) and
    the DES schedule-mode predictions; ``best`` is the entry with the
    smallest ``predicted_seconds``.
    """
    from repro.mpi.topology import Topology

    entries = []
    for p, t in layouts:
        if t > machine.cores_per_node:
            raise ValueError(
                f"{machine.name} has {machine.cores_per_node} cores/node; "
                f"T={t} is impossible"
            )
        rpn = max(1, machine.cores_per_node // t)
        topo = Topology(p, rpn)
        times = analysis_time(
            profile, machine, n_bootstraps, p, t, topology=topo
        )
        modes = (
            predict_schedule_modes(
                profile, machine, n_bootstraps, p, t,
                seed=seed, topology=topo,
            )
            if p > 1 else None
        )
        entries.append({
            "n_processes": p,
            "n_threads": t,
            "cores": p * t,
            "ranks_per_node": rpn,
            "n_nodes": topo.n_nodes,
            "predicted_seconds": times.total,
            "comm_seconds": times.comm,
            "stage_seconds": times.as_dict(),
            "schedule_modes": modes,
        })
    if not entries:
        raise ValueError("compare_layouts needs at least one layout")
    best = min(entries, key=lambda e: e["predicted_seconds"])
    return {"layouts": entries, "best": best}


def recommend_layout(
    profile: StageProfile,
    machine: MachineSpec,
    n_bootstraps: int,
    max_cores: int,
    gamma_categories: int = 4,
) -> LayoutRecommendation:
    """The fastest memory-feasible (p, T) layout within ``max_cores``.

    Candidate thread counts divide the node width; the process count fills
    the core budget.  Layouts whose per-process memory exceeds the node's
    per-process share are discarded.
    """
    if max_cores < 1:
        raise ValueError("max_cores must be >= 1")
    d = profile.dataset
    est = process_memory(d.taxa, d.patterns, n_categories=gamma_categories)
    mem_procs = max_processes_per_node(machine, est)
    if mem_procs < 1:
        raise ValueError(
            f"{d.name}: one process needs {est.total_gb:.1f} GB, more than a "
            f"{machine.name} node offers"
        )

    serial = serial_time(profile, machine, n_bootstraps)
    candidates: list[tuple[int, int, float]] = []
    for threads in (1, 2, 4, 8, 16, 32):
        if threads > machine.cores_per_node or threads > max_cores:
            continue
        if machine.cores_per_node % threads:
            continue
        procs = max_cores // threads
        if procs < 1:
            continue
        # Memory: processes sharing one node must fit in node memory.
        procs_per_node = min(procs, machine.cores_per_node // threads)
        if procs_per_node > mem_procs:
            continue
        seconds = analysis_time(profile, machine, n_bootstraps, procs, threads).total
        candidates.append((procs, threads, seconds))
    if not candidates:
        raise ValueError(
            f"no memory-feasible layout within {max_cores} cores on {machine.name}"
        )
    candidates.sort(key=lambda c: c[2])
    p, t, seconds = candidates[0]
    mode, modes = "static", None
    if p > 1:
        modes = predict_schedule_modes(profile, machine, n_bootstraps, p, t)
        gain = 1.0 - modes["work-steal"]["makespan"] / modes["static"]["makespan"]
        if gain >= _STEAL_ADVANTAGE_THRESHOLD:
            mode = "work-steal"
    return LayoutRecommendation(
        n_processes=p,
        n_threads=t,
        cores=p * t,
        predicted_seconds=seconds,
        predicted_speedup=serial / seconds,
        memory_per_process_gb=est.total_gb,
        alternatives=tuple(candidates[1:]),
        schedule_mode=mode,
        predicted_static_seconds=modes["static"]["makespan"] if modes else 0.0,
        predicted_worksteal_seconds=(
            modes["work-steal"]["makespan"] if modes else 0.0
        ),
        predicted_idle_tail_static=modes["static"]["idle_tail"] if modes else 0.0,
        predicted_idle_tail_worksteal=(
            modes["work-steal"]["idle_tail"] if modes else 0.0
        ),
    )
