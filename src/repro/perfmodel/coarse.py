"""The coarse-grained (MPI) stage-time model.

Combines the Table 2 work schedule with per-search costs from a stage
profile and the fine-grained thread speedup:

* every stage's per-rank time is (searches per rank) × (per-search cost)
  ÷ S_f(T), scaled to the target machine;
* a deterministic load-imbalance factor models "the last process to
  finish": the expected maximum over p ranks of a sum of k jittery search
  times exceeds the mean by ≈ cv·sqrt(2·ln p / k);
* the bootstrap stage ends with the code's one barrier; the last three
  stages run barrier-free, so their reported times are per-stage maxima
  (exactly how Figs 3–4 present them);
* MPI communication cost (one barrier + one bcast) is included and is
  negligible, as the paper stresses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.mpi.comm import CommTiming
from repro.perfmodel.finegrain import region_pattern_units, serial_pattern_cost
from repro.perfmodel.machines import MACHINES, MachineSpec, machine_by_name
from repro.perfmodel.profiles import StageProfile
from repro.search.comprehensive import fast_count, slow_count
from repro.search.schedule import make_schedule

#: Rate-category counts of the search stages: CAT-based stages evaluate
#: one category per pattern; the thorough stage runs under GTRGAMMA (4).
STAGE_CATEGORIES = {"bootstrap": 1, "fast": 1, "slow": 1, "thorough": 4}


@dataclass(frozen=True)
class StageTimes:
    """Modelled wall-clock seconds per stage (last process to finish)."""

    bootstrap: float
    fast: float
    slow: float
    thorough: float
    comm: float = 0.0

    @property
    def total(self) -> float:
        return self.bootstrap + self.fast + self.slow + self.thorough + self.comm

    def as_dict(self) -> dict[str, float]:
        return {
            "bootstrap": self.bootstrap,
            "fast": self.fast,
            "slow": self.slow,
            "thorough": self.thorough,
            "comm": self.comm,
        }


def imbalance_factor(n_processes: int, items_per_process: int, cv: float) -> float:
    """Expected max-over-ranks inflation of a sum of jittery search times.

    For p ranks each summing ``k`` i.i.d. search times with coefficient of
    variation ``cv``, the slowest rank exceeds the mean by roughly
    ``cv / sqrt(k) · sqrt(2 ln p)`` (Gaussian extreme-value approximation).
    Deterministic on purpose: the analytic model should be smooth.
    """
    if n_processes < 1:
        raise ValueError("n_processes must be >= 1")
    if items_per_process < 1:
        raise ValueError("items_per_process must be >= 1")
    if cv < 0:
        raise ValueError("cv must be non-negative")
    if n_processes == 1 or cv == 0:
        return 1.0
    return 1.0 + cv * math.sqrt(2.0 * math.log(n_processes) / items_per_process)


def _machine_scale(profile: StageProfile, machine: MachineSpec) -> float:
    """Serial per-pattern cost of ``machine`` relative to the profile's
    reference machine (the factor all per-search seconds scale by)."""
    ref = machine_by_name(profile.reference_machine)
    m = profile.dataset.patterns
    return serial_pattern_cost(machine, m) / serial_pattern_cost(ref, m)


def _stage_speedup(machine: MachineSpec, n_patterns: int, n_threads: int, stage: str) -> float:
    """Fine-grained speedup of one stage (its category count matters:
    GAMMA's 4 categories amortise the barrier cost over more compute)."""
    k = STAGE_CATEGORIES[stage]
    return region_pattern_units(machine, n_patterns, 1, k) / region_pattern_units(
        machine, n_patterns, n_threads, k
    )


def serial_time(
    profile: StageProfile,
    machine: MachineSpec | None = None,
    n_bootstraps: int = 100,
) -> float:
    """Serial (1 process, 1 thread) run time for ``n_bootstraps``."""
    machine = machine if machine is not None else MACHINES[profile.reference_machine]
    n_fast = fast_count(n_bootstraps)
    n_slow = slow_count(n_fast)
    seconds = (
        n_bootstraps * profile.bootstrap_search_seconds
        + n_fast * profile.fast_search_seconds
        + n_slow * profile.slow_search_seconds
        + profile.thorough_search_seconds
    )
    return seconds * _machine_scale(profile, machine)


def analysis_time(
    profile: StageProfile,
    machine: MachineSpec,
    n_bootstraps: int,
    n_processes: int,
    n_threads: int,
    comm_timing: CommTiming | None = None,
    topology=None,
) -> StageTimes:
    """Modelled stage times of one hybrid run (p processes × T threads).

    ``topology`` (a :class:`~repro.mpi.topology.Topology`) switches the
    communication term to the machine's two-tier hierarchical model —
    compute terms are unchanged, exactly as in the simulator.  An
    explicit ``comm_timing`` wins over ``topology``.

    Raises if ``n_threads`` exceeds the machine's cores per node (the
    paper: threads are "limited to the number of cores per node").
    """
    if n_threads > machine.cores_per_node:
        raise ValueError(
            f"{machine.name} has {machine.cores_per_node} cores/node; "
            f"T={n_threads} is impossible"
        )
    if comm_timing is None and topology is not None:
        from repro.mpi.topology import HierarchicalCommTiming

        comm_timing = HierarchicalCommTiming.for_machine(machine, topology)
    if n_processes == 1 and n_threads == 1:
        # The serial code path (no MPI/Pthreads overhead), as benchmarked.
        scale0 = _machine_scale(profile, machine)
        n_fast = fast_count(n_bootstraps)
        return StageTimes(
            bootstrap=n_bootstraps * profile.bootstrap_search_seconds * scale0,
            fast=n_fast * profile.fast_search_seconds * scale0,
            slow=slow_count(n_fast) * profile.slow_search_seconds * scale0,
            thorough=profile.thorough_search_seconds * scale0,
            comm=0.0,
        )
    sched = make_schedule(n_bootstraps, n_processes)
    scale = _machine_scale(profile, machine)
    m = profile.dataset.patterns
    cv = profile.jitter_cv
    p = n_processes

    def stage(stage_name: str, per_rank: int, w: float) -> float:
        s_f = _stage_speedup(machine, m, n_threads, stage_name)
        return per_rank * w * imbalance_factor(p, per_rank, cv) * scale / s_f

    comm = 0.0
    if p > 1:
        timing = comm_timing if comm_timing is not None else CommTiming()
        # One barrier after the bootstraps, one bcast of the best tree
        # (a Newick string: ~30 bytes per taxon).
        comm = timing.barrier_seconds(p) + timing.collective_seconds(
            p, 30 * profile.dataset.taxa
        )
    return StageTimes(
        bootstrap=stage("bootstrap", sched.bootstraps_per_process, profile.bootstrap_search_seconds),
        fast=stage("fast", sched.fast_per_process, profile.fast_search_seconds),
        slow=stage("slow", sched.slow_per_process, profile.slow_search_seconds),
        thorough=stage("thorough", 1, profile.thorough_search_seconds),
        comm=comm,
    )
