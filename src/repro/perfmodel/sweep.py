"""Parameter sweeps over (cores, processes, threads) grids.

These produce exactly the series the paper's figures plot: speedup and
parallel-efficiency curves at constant thread counts (Figs 1–2, 5–7),
per-stage run-time components (Figs 3–4), and best-speed-per-core curves
across machines (Fig 8, Table 5).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perfmodel.coarse import StageTimes, analysis_time, serial_time
from repro.perfmodel.machines import MachineSpec
from repro.perfmodel.profiles import StageProfile

#: The core counts the paper's Dash plots use.
DEFAULT_CORE_COUNTS = (1, 2, 4, 8, 16, 32, 40, 64, 80)


@dataclass(frozen=True)
class SweepPoint:
    """One modelled run within a sweep."""

    cores: int
    n_processes: int
    n_threads: int
    stage_times: StageTimes
    serial_seconds: float

    @property
    def seconds(self) -> float:
        return self.stage_times.total

    @property
    def speedup(self) -> float:
        return self.serial_seconds / self.seconds

    @property
    def efficiency(self) -> float:
        return self.speedup / self.cores


def _point(
    profile: StageProfile,
    machine: MachineSpec,
    n_bootstraps: int,
    p: int,
    t: int,
    serial_seconds: float,
) -> SweepPoint:
    st = analysis_time(profile, machine, n_bootstraps, p, t)
    return SweepPoint(p * t, p, t, st, serial_seconds)


def sweep_cores(
    profile: StageProfile,
    machine: MachineSpec,
    n_bootstraps: int = 100,
    core_counts: tuple[int, ...] = DEFAULT_CORE_COUNTS,
    thread_counts: tuple[int, ...] | None = None,
) -> list[SweepPoint]:
    """All feasible (cores, threads) grid points.

    A point is feasible when ``threads`` divides ``cores`` and does not
    exceed the machine's cores per node.  Thread counts default to the
    powers of two up to the node width.
    """
    if thread_counts is None:
        thread_counts = tuple(
            t for t in (1, 2, 4, 8, 16, 32) if t <= machine.cores_per_node
        )
    serial = serial_time(profile, machine, n_bootstraps)
    points = []
    for cores in core_counts:
        for t in thread_counts:
            if cores % t != 0:
                continue
            p = cores // t
            points.append(_point(profile, machine, n_bootstraps, p, t, serial))
    return points


def thread_curves(
    points: list[SweepPoint],
) -> dict[int, list[SweepPoint]]:
    """Group sweep points into constant-thread-count curves (the figure
    series), each sorted by core count."""
    curves: dict[int, list[SweepPoint]] = {}
    for pt in points:
        curves.setdefault(pt.n_threads, []).append(pt)
    for series in curves.values():
        series.sort(key=lambda q: q.cores)
    return curves


def best_per_core_count(points: list[SweepPoint]) -> dict[int, SweepPoint]:
    """The fastest configuration at each core count (Table 5's 'best
    time / threads' cells)."""
    best: dict[int, SweepPoint] = {}
    for pt in points:
        cur = best.get(pt.cores)
        if cur is None or pt.seconds < cur.seconds:
            best[pt.cores] = pt
    return best
