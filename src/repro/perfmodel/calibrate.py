"""Calibration of model constants against the paper's Table 5.

Table 5 reports, per data set, the fastest time and optimal thread count
at 1/8/16/40/80 cores (Dash; 8/16/32/64 for Triton PDAF), for both 100
bootstraps and the WC-recommended bootstrap numbers.  This module fits

* the per-dataset stage fractions of :mod:`repro.perfmodel.profiles`
  (3 free parameters per data set), and
* Triton PDAF's fine-grain constants (core speed, cache factor, cache
  size, barrier coefficient),

by least squares on log time over all anchors.  Run

    python -m repro.perfmodel.calibrate

to re-fit and print the frozen-constant blocks.  The committed values in
``profiles.py``/``machines.py`` are the output of exactly this procedure.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass

import numpy as np
from scipy import optimize

from repro.datasets.registry import dataset_by_patterns
from repro.perfmodel.coarse import analysis_time, serial_time
from repro.perfmodel.machines import MACHINES, MachineSpec
from repro.perfmodel.profiles import StageProfile


@dataclass(frozen=True)
class Anchor:
    """One Table 5 cell: the best time at a core count."""

    patterns: int
    machine: str
    n_bootstraps: int
    cores: int
    threads: int  # Table 5's "/threads" annotation
    seconds: float

    @property
    def processes(self) -> int:
        return self.cores // self.threads


#: Table 5 of the paper, transcribed. The serial (1-core) entries use
#: threads=1.  Triton's high-core entries are 32c/64c per the footnote.
TABLE5_ANCHORS: tuple[Anchor, ...] = (
    # -- 100 bootstraps specified, Dash --
    Anchor(348, "dash", 100, 1, 1, 1980),
    Anchor(348, "dash", 100, 8, 2, 432),
    Anchor(348, "dash", 100, 16, 2, 307),
    Anchor(348, "dash", 100, 40, 4, 168),
    Anchor(348, "dash", 100, 80, 4, 130),
    Anchor(1130, "dash", 100, 1, 1, 2325),
    Anchor(1130, "dash", 100, 8, 4, 456),
    Anchor(1130, "dash", 100, 16, 4, 283),
    Anchor(1130, "dash", 100, 40, 4, 139),
    Anchor(1130, "dash", 100, 80, 8, 95),
    Anchor(1846, "dash", 100, 1, 1, 9630),
    Anchor(1846, "dash", 100, 8, 4, 1370),
    Anchor(1846, "dash", 100, 16, 4, 846),
    Anchor(1846, "dash", 100, 40, 8, 430),
    Anchor(1846, "dash", 100, 80, 8, 271),
    Anchor(7429, "dash", 100, 1, 1, 72866),
    Anchor(7429, "dash", 100, 8, 4, 9494),
    Anchor(7429, "dash", 100, 16, 8, 5497),
    Anchor(7429, "dash", 100, 40, 8, 2830),
    Anchor(7429, "dash", 100, 80, 8, 1828),
    Anchor(19436, "dash", 100, 1, 1, 22970),
    Anchor(19436, "dash", 100, 8, 8, 3018),
    Anchor(19436, "dash", 100, 16, 8, 2006),
    Anchor(19436, "dash", 100, 40, 8, 1314),
    Anchor(19436, "dash", 100, 80, 8, 1092),
    # -- 100 bootstraps, Triton PDAF (32c/64c per footnote) --
    Anchor(19436, "triton", 100, 1, 1, 32627),
    Anchor(19436, "triton", 100, 8, 8, 3844),
    Anchor(19436, "triton", 100, 16, 16, 2179),
    Anchor(19436, "triton", 100, 32, 32, 1351),
    Anchor(19436, "triton", 100, 64, 32, 847),
    # -- recommended (>100) bootstraps, Dash --
    Anchor(348, "dash", 1200, 1, 1, 15703),
    Anchor(348, "dash", 1200, 8, 1, 2286),
    Anchor(348, "dash", 1200, 16, 1, 1287),
    Anchor(348, "dash", 1200, 40, 2, 702),
    Anchor(348, "dash", 1200, 80, 2, 443),
    Anchor(1130, "dash", 650, 1, 1, 10566),
    Anchor(1130, "dash", 650, 8, 2, 1714),
    Anchor(1130, "dash", 650, 16, 2, 980),
    Anchor(1130, "dash", 650, 40, 2, 473),
    Anchor(1130, "dash", 650, 80, 4, 290),
    Anchor(1846, "dash", 550, 1, 1, 33738),
    Anchor(1846, "dash", 550, 8, 2, 5184),
    Anchor(1846, "dash", 550, 16, 2, 2778),
    Anchor(1846, "dash", 550, 40, 4, 1290),
    Anchor(1846, "dash", 550, 80, 4, 845),
    Anchor(7429, "dash", 700, 1, 1, 355724),
    Anchor(7429, "dash", 700, 8, 4, 45851),
    Anchor(7429, "dash", 700, 16, 4, 25454),
    Anchor(7429, "dash", 700, 40, 4, 11229),
    Anchor(7429, "dash", 700, 80, 8, 6270),
)

#: Serial seconds at 100 bootstraps per (patterns, 'dash') — fixed inputs.
SERIAL_100 = {348: 1980.0, 1130: 2325.0, 1846: 9630.0, 7429: 72866.0, 19436: 22970.0}


def anchors_for(patterns: int, machine: str | None = None) -> list[Anchor]:
    return [
        a
        for a in TABLE5_ANCHORS
        if a.patterns == patterns and (machine is None or a.machine == machine)
    ]


def _fractions_from_logits(logits: np.ndarray) -> tuple[float, float, float, float]:
    """Softmax over (bootstrap, fast, slow, thorough); last logit pinned 0."""
    z = np.concatenate([logits, [0.0]])
    e = np.exp(z - z.max())
    f = e / e.sum()
    return tuple(float(x) for x in f)


def _profile_with(patterns: int, logits: np.ndarray) -> StageProfile:
    fb, ff, fs, ft = _fractions_from_logits(logits)
    return StageProfile(
        dataset=dataset_by_patterns(patterns),
        serial_seconds_100=SERIAL_100[patterns],
        frac_bootstrap=fb,
        frac_fast=ff,
        frac_slow=fs,
        frac_thorough=ft,
    )


#: Weak prior on stage fractions from the paper's Figs 3–4 (bootstraps
#: dominate; fast < slow; thorough a minority).  The bootstrap-vs-fast
#: split is nearly unidentifiable from Table 5 times alone (both stage
#: times scale ~N/p), so the prior resolves the flat direction without
#: fighting the time anchors.
_FRACTION_PRIOR = np.array([0.55, 0.12, 0.23, 0.10])
_PRIOR_WEIGHT = 0.35


def fit_profile(
    patterns: int,
    machines: dict[str, MachineSpec] | None = None,
) -> StageProfile:
    """Fit one data set's stage fractions to its Dash anchors."""
    machines = machines if machines is not None else MACHINES
    anchors = anchors_for(patterns, "dash")

    def residuals(logits: np.ndarray) -> np.ndarray:
        profile = _profile_with(patterns, logits)
        out = []
        for a in anchors:
            mach = machines[a.machine]
            if a.cores == 1:
                model = serial_time(profile, mach, a.n_bootstraps)
            else:
                model = analysis_time(
                    profile, mach, a.n_bootstraps, a.processes, a.threads
                ).total
            out.append(math.log(model / a.seconds))
        fracs = np.array(_fractions_from_logits(logits))
        out.extend(_PRIOR_WEIGHT * np.log(fracs / _FRACTION_PRIOR))
        return np.asarray(out)

    res = optimize.least_squares(residuals, x0=np.array([1.5, 0.5, 0.5]), method="lm")
    return _profile_with(patterns, res.x)


def fit_triton(profile_19436: StageProfile) -> MachineSpec:
    """Fit Triton PDAF's fine-grain constants to its Table 5 anchors.

    Besides the time anchors, one soft ordering constraint enforces the
    paper's observation that on Triton "optimal performance is achieved
    using all 32 threads": at 32 cores, 1 process × 32 threads must not be
    slower than 2 × 16.  The fit lands on a *linear* barrier exponent
    (hierarchical barrier) — the quadratic busy-wait exponent of the
    8-core machines cannot reproduce Triton's 32-thread efficiency curve.
    """
    anchors = anchors_for(19436, "triton")
    base = MACHINES["triton"]

    def build(params: np.ndarray) -> MachineSpec:
        core_speed, cf, cache, sync, exponent = params
        return dataclasses.replace(
            base,
            core_speed=float(core_speed),
            cache_factor=float(max(cf, 1.0)),
            cache_patterns=float(max(cache, 50.0)),
            sync_pattern_units=float(max(sync, 0.0)),
            sync_exponent=float(max(exponent, 0.5)),
        )

    def residuals(params: np.ndarray) -> np.ndarray:
        mach = build(params)
        out = []
        for a in anchors:
            if a.cores == 1:
                model = serial_time(profile_19436, mach, a.n_bootstraps)
            else:
                model = analysis_time(
                    profile_19436, mach, a.n_bootstraps, a.processes, a.threads
                ).total
            out.append(math.log(model / a.seconds))
        # Soft ordering constraint: T=32 optimal at 32 cores.
        t_32t = analysis_time(profile_19436, mach, 100, 1, 32).total
        t_16t = analysis_time(profile_19436, mach, 100, 2, 16).total
        out.append(3.0 * max(0.0, math.log(t_32t / t_16t) + 0.01))
        return np.asarray(out)

    res = optimize.least_squares(
        residuals,
        x0=np.array([0.9, 1.8, 1500.0, 3.0, 1.3]),
        bounds=([0.3, 1.4, 400.0, 0.01, 1.0], [2.0, 4.0, 6000.0, 50.0, 2.5]),
    )
    return build(res.x)


def calibration_report() -> str:
    """Fit everything and render model-vs-paper for every anchor."""
    from repro.util.tables import format_table

    profiles = {p: fit_profile(p) for p in SERIAL_100}
    triton = fit_triton(profiles[19436])
    machines = dict(MACHINES)
    machines["triton"] = triton

    rows = []
    for a in TABLE5_ANCHORS:
        prof = profiles[a.patterns]
        mach = machines[a.machine]
        if a.cores == 1:
            model = serial_time(prof, mach, a.n_bootstraps)
        else:
            model = analysis_time(prof, mach, a.n_bootstraps, a.processes, a.threads).total
        rows.append(
            (
                a.patterns,
                a.machine,
                a.n_bootstraps,
                a.cores,
                a.threads,
                a.seconds,
                model,
                model / a.seconds,
            )
        )
    table = format_table(
        ["patterns", "machine", "N", "cores", "T", "paper s", "model s", "ratio"],
        rows,
        formats=[None, None, None, None, None, ".0f", ".0f", ".3f"],
        title="Table 5 anchors: paper vs calibrated model",
    )
    lines = [table, "", "Fitted fractions:"]
    for p, prof in profiles.items():
        lines.append(
            f"  {p:>6}: bs={prof.frac_bootstrap:.4f} fast={prof.frac_fast:.4f} "
            f"slow={prof.frac_slow:.4f} thorough={prof.frac_thorough:.4f}"
        )
    lines.append(
        f"Triton: core_speed={triton.core_speed:.4f} cache_factor={triton.cache_factor:.4f} "
        f"cache_patterns={triton.cache_patterns:.1f} sync={triton.sync_pattern_units:.4f}"
    )
    return "\n".join(lines)


if __name__ == "__main__":
    print(calibration_report())
