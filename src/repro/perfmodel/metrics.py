"""Speedup / parallel-efficiency / speed-per-core metrics.

Paper definitions (Section 5): "Speedup is just the speed normalized to 1
on a single core"; "parallel efficiency ... is the speedup per core"; Fig 8
plots the "speed per core ... normalized to that for Abe".  The Discussion
also computes efficiency against a single *node*, which
:func:`parallel_efficiency` supports via ``reference_cores``.
"""

from __future__ import annotations


def speedup(serial_seconds: float, parallel_seconds: float) -> float:
    """Speed normalised to the serial (1-core) run."""
    if serial_seconds <= 0 or parallel_seconds <= 0:
        raise ValueError("times must be positive")
    return serial_seconds / parallel_seconds


def parallel_efficiency(
    reference_seconds: float,
    parallel_seconds: float,
    cores: int,
    reference_cores: int = 1,
) -> float:
    """Speedup per allocation unit.

    With the default ``reference_cores == 1``, ``reference_seconds`` is the
    serial time and this is the paper's plain parallel efficiency.  With
    ``reference_cores > 1`` it computes the Discussion section's
    node-referenced efficiency (users "are often charged for all cores in
    a node"): pass the best time *on one node* as ``reference_seconds`` and
    the node width as ``reference_cores``.
    """
    if cores < 1 or reference_cores < 1:
        raise ValueError("core counts must be >= 1")
    if cores % reference_cores and reference_cores > 1:
        raise ValueError("cores must be a multiple of reference_cores")
    return speedup(reference_seconds, parallel_seconds) / (cores / reference_cores)


def speed_per_core(
    serial_seconds_reference_machine: float,
    parallel_seconds: float,
    cores: int,
) -> float:
    """Fig 8's metric: (reference serial time / time) / cores.

    With the *reference machine's* serial time in the numerator, curves
    from different machines are mutually comparable (Fig 8 normalises to
    Abe's serial speed).
    """
    if cores < 1:
        raise ValueError("cores must be >= 1")
    return speedup(serial_seconds_reference_machine, parallel_seconds) / cores
