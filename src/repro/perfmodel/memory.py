"""Memory-footprint model: how many MPI processes fit on a node?

Paper, Discussion (Section 7):

    "Second, not enough memory per core will be available to analyze a
    single tree using one MPI process per core.  Instead the memory of
    multiple cores, perhaps even the entire node, will be needed for each
    MPI process."

Each MPI process holds a full copy of the likelihood state (the Pthreads
share it within the process), so the per-node process count is capped by
memory — another force pushing hybrid runs toward more threads per
process as data sets grow.  This module estimates the per-process
footprint from the data-set shape and derives feasible (p-per-node, T)
layouts for a machine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.perfmodel.machines import MachineSpec

_BYTES_PER_GB = 1024**3
#: Conditional likelihood vectors are double precision over 4 states.
_CLV_ENTRY_BYTES = 8 * 4
#: Down + up partials and the Newton sumtable roughly triple the inner
#: CLV storage (matches RAxML's ~3x rule of thumb for -f a runs).
_CLV_SETS = 3.0


@dataclass(frozen=True)
class MemoryEstimate:
    """Per-process memory requirement of one analysis."""

    clv_bytes: float
    alignment_bytes: float
    overhead_bytes: float

    @property
    def total_bytes(self) -> float:
        return self.clv_bytes + self.alignment_bytes + self.overhead_bytes

    @property
    def total_gb(self) -> float:
        return self.total_bytes / _BYTES_PER_GB


def process_memory(
    n_taxa: int,
    n_patterns: int,
    n_categories: int = 4,
    overhead_mb: float = 200.0,
) -> MemoryEstimate:
    """Estimated memory of one MPI process (threads share it).

    CLVs dominate: one per inner node, ``patterns x categories x 4`` doubles
    each, with a factor for the up-partials/sumtables the searches keep.
    """
    if n_taxa < 4 or n_patterns < 1 or n_categories < 1:
        raise ValueError("implausible data-set shape")
    inner_nodes = n_taxa - 2
    clv = inner_nodes * n_patterns * n_categories * _CLV_ENTRY_BYTES * _CLV_SETS
    alignment = n_taxa * n_patterns  # one byte per state mask
    return MemoryEstimate(
        clv_bytes=float(clv),
        alignment_bytes=float(alignment),
        overhead_bytes=overhead_mb * 1024**2,
    )


def max_processes_per_node(
    machine: MachineSpec,
    estimate: MemoryEstimate,
) -> int:
    """How many full analysis processes the node's memory can hold.

    0 means the data set does not fit on the node at all.
    """
    per_proc = estimate.total_gb
    if per_proc <= 0:
        raise ValueError("estimate must be positive")
    return min(
        machine.cores_per_node, int(machine.memory_per_node_gb / per_proc)
    )


def min_threads_per_process(machine: MachineSpec, estimate: MemoryEstimate) -> int:
    """The smallest thread count that makes a node-filling layout feasible.

    If memory admits only ``q`` processes per node, each process must span
    at least ``ceil(cores/q)`` cores — the Discussion's "memory of
    multiple cores ... needed for each MPI process".  Raises when the data
    set does not fit on the node at all.
    """
    q = max_processes_per_node(machine, estimate)
    if q < 1:
        raise ValueError(
            f"a single process needs {estimate.total_gb:.1f} GB but "
            f"{machine.name} has {machine.memory_per_node_gb:.0f} GB per node"
        )
    return math.ceil(machine.cores_per_node / q)


def feasible_node_layouts(
    machine: MachineSpec,
    estimate: MemoryEstimate,
) -> list[tuple[int, int]]:
    """All (processes-per-node, threads) layouts that fill a node and fit
    in memory.  Sorted by process count descending."""
    layouts = []
    for procs in range(machine.cores_per_node, 0, -1):
        if machine.cores_per_node % procs:
            continue
        threads = machine.cores_per_node // procs
        if procs * estimate.total_gb <= machine.memory_per_node_gb:
            layouts.append((procs, threads))
    return layouts
