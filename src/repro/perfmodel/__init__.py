"""Analytic performance model of the hybrid code on the paper's clusters.

The paper measured wall-clock times on Abe, Dash, Ranger and Triton PDAF
(Table 4).  This package substitutes those machines with an analytic model
whose mechanisms mirror the paper's explanations:

* **fine grain** (:mod:`repro.perfmodel.finegrain`): per-region thread
  time = max thread chunk · per-pattern cost + quadratic barrier cost;
  per-pattern cost carries a cache term (superlinear speedup at small
  thread counts on cache-starved machines — Fig 8) and a memory-bandwidth
  contention term (Abe's bus-based memory);
* **coarse grain** (:mod:`repro.perfmodel.coarse`): Table 2 per-rank
  search counts × per-search costs from a calibrated per-dataset stage
  profile, with a deterministic load-imbalance factor (no barriers between
  the last three stages);
* machine and stage-profile constants are calibrated against the paper's
  Table 5 anchors by :mod:`repro.perfmodel.calibrate` and frozen here.
"""

from repro.perfmodel.machines import MachineSpec, MACHINES, machine_by_name
from repro.perfmodel.history import VersionRecord, RAXML_HISTORY
from repro.perfmodel.finegrain import finegrain_speedup, region_pattern_units, MachineRegionTiming
from repro.perfmodel.profiles import StageProfile, PROFILES, profile_for, default_profile
from repro.perfmodel.coarse import StageTimes, analysis_time, serial_time
from repro.perfmodel.metrics import speedup, parallel_efficiency, speed_per_core
from repro.perfmodel.sweep import (
    SweepPoint,
    sweep_cores,
    best_per_core_count,
    thread_curves,
)
from repro.perfmodel.memory import (
    MemoryEstimate,
    process_memory,
    max_processes_per_node,
    min_threads_per_process,
    feasible_node_layouts,
)
from repro.perfmodel.advisor import LayoutRecommendation, recommend_layout

__all__ = [
    "MachineSpec",
    "MACHINES",
    "machine_by_name",
    "VersionRecord",
    "RAXML_HISTORY",
    "finegrain_speedup",
    "region_pattern_units",
    "MachineRegionTiming",
    "StageProfile",
    "PROFILES",
    "profile_for",
    "default_profile",
    "StageTimes",
    "analysis_time",
    "serial_time",
    "speedup",
    "parallel_efficiency",
    "speed_per_core",
    "SweepPoint",
    "sweep_cores",
    "best_per_core_count",
    "thread_curves",
    "MemoryEstimate",
    "process_memory",
    "max_processes_per_node",
    "min_threads_per_process",
    "feasible_node_layouts",
    "LayoutRecommendation",
    "recommend_layout",
]
