"""Per-dataset stage profiles: how serial run time splits across stages.

A :class:`StageProfile` records, for one data set, the fraction of serial
run time (at N = 100 bootstraps) spent in each stage of the comprehensive
analysis, plus the measured serial seconds on the reference machine
(Table 5's 1-core column).  Per-search costs follow by dividing by the
serial stage counts (100 bootstraps, 20 fast, 10 slow, 1 thorough).

The fractions for the five benchmark data sets are **calibrated** against
the paper's Table 5 rows by :mod:`repro.perfmodel.calibrate` (run
``python -m repro.perfmodel.calibrate`` to regenerate) and frozen here.
Fraction patterns follow the paper's narrative: bootstraps dominate
everywhere; the thorough-search fraction is largest for the 19,436-pattern
set ("the scaling on Dash drops for the last data set because the
fraction of time spent doing thorough searches is much larger").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.registry import BENCHMARK_DATASETS, DatasetSpec
from repro.search.comprehensive import fast_count, slow_count

#: Serial stage counts at the reference bootstrap number (N = 100).
REFERENCE_BOOTSTRAPS = 100

#: Coefficient of variation of individual search run times, driving the
#: deterministic load-imbalance factor (paper: "the load is not perfectly
#: balanced").
DEFAULT_JITTER_CV = 0.15


@dataclass(frozen=True)
class StageProfile:
    """Stage-time decomposition of one data set's serial analysis."""

    dataset: DatasetSpec
    serial_seconds_100: float  # Table 5, 1c column (reference machine)
    frac_bootstrap: float
    frac_fast: float
    frac_slow: float
    frac_thorough: float
    reference_machine: str = "dash"
    jitter_cv: float = DEFAULT_JITTER_CV

    def __post_init__(self) -> None:
        total = self.frac_bootstrap + self.frac_fast + self.frac_slow + self.frac_thorough
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"stage fractions must sum to 1, got {total}")
        for f in (self.frac_bootstrap, self.frac_fast, self.frac_slow, self.frac_thorough):
            if f <= 0:
                raise ValueError("all stage fractions must be positive")
        if self.serial_seconds_100 <= 0:
            raise ValueError("serial_seconds_100 must be positive")

    # -- per-search costs on the reference machine (seconds) ---------------

    @property
    def bootstrap_search_seconds(self) -> float:
        return self.frac_bootstrap * self.serial_seconds_100 / REFERENCE_BOOTSTRAPS

    @property
    def fast_search_seconds(self) -> float:
        return self.frac_fast * self.serial_seconds_100 / fast_count(REFERENCE_BOOTSTRAPS)

    @property
    def slow_search_seconds(self) -> float:
        n_fast = fast_count(REFERENCE_BOOTSTRAPS)
        return self.frac_slow * self.serial_seconds_100 / slow_count(n_fast)

    @property
    def thorough_search_seconds(self) -> float:
        return self.frac_thorough * self.serial_seconds_100


def _spec(patterns: int) -> DatasetSpec:
    for s in BENCHMARK_DATASETS:
        if s.patterns == patterns:
            return s
    raise KeyError(patterns)


# ---------------------------------------------------------------------------
# Calibrated profiles (regenerate with `python -m repro.perfmodel.calibrate`)
# ---------------------------------------------------------------------------

PROFILES: dict[int, StageProfile] = {
    348: StageProfile(
        dataset=_spec(348),
        serial_seconds_100=1980.0,
        frac_bootstrap=0.523348,
        frac_fast=0.118932,
        frac_slow=0.233338,
        frac_thorough=0.124382,
    ),
    1130: StageProfile(
        dataset=_spec(1130),
        serial_seconds_100=2325.0,
        frac_bootstrap=0.564713,
        frac_fast=0.122862,
        frac_slow=0.206413,
        frac_thorough=0.106012,
    ),
    1846: StageProfile(
        dataset=_spec(1846),
        serial_seconds_100=9630.0,
        frac_bootstrap=0.526093,
        frac_fast=0.116787,
        frac_slow=0.295293,
        frac_thorough=0.061827,
    ),
    7429: StageProfile(
        dataset=_spec(7429),
        serial_seconds_100=72866.0,
        frac_bootstrap=0.549571,
        frac_fast=0.118654,
        frac_slow=0.262659,
        frac_thorough=0.069116,
    ),
    19436: StageProfile(
        dataset=_spec(19436),
        serial_seconds_100=22970.0,
        frac_bootstrap=0.475214,
        frac_fast=0.116446,
        frac_slow=0.219120,
        frac_thorough=0.189220,
    ),
}


def profile_for(patterns: int) -> StageProfile:
    """The calibrated profile of a benchmark data set (by pattern count)."""
    try:
        return PROFILES[patterns]
    except KeyError:
        raise KeyError(
            f"no calibrated profile for {patterns} patterns; "
            "use default_profile() for arbitrary data sets"
        ) from None


def default_profile(
    dataset: DatasetSpec,
    serial_seconds_100: float | None = None,
) -> StageProfile:
    """A plausible profile for an arbitrary data set.

    Stage fractions interpolate the calibrated benchmark profiles by
    pattern count; the serial time estimate scales with taxa × patterns
    relative to the 1,846-pattern benchmark set.
    """
    anchor = PROFILES[1846]
    if serial_seconds_100 is None:
        scale = (dataset.taxa * dataset.patterns) / (
            anchor.dataset.taxa * anchor.dataset.patterns
        )
        serial_seconds_100 = anchor.serial_seconds_100 * scale
    # Thorough fraction grows mildly with patterns-per-taxon, as in the
    # calibrated set (ds5 has by far the largest thorough share).
    import math

    ppt = dataset.patterns / dataset.taxa
    frac_thorough = min(0.35, 0.05 + 0.03 * math.log10(max(ppt, 1.0)) * 2.2)
    rest = 1.0 - frac_thorough
    return StageProfile(
        dataset=dataset,
        serial_seconds_100=serial_seconds_100,
        frac_bootstrap=rest * 0.60,
        frac_fast=rest * 0.15,
        frac_slow=rest * 0.25,
        frac_thorough=frac_thorough,
    )
