"""Table 1: the evolution of parallel RAxML versions.

A structured registry of the paper's historical table, used by the
Table 1 benchmark target and the documentation.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class VersionRecord:
    """One row of Table 1."""

    year: int
    version: str
    coarse_grained: str | None
    fine_grained: str | None
    multi_grained: bool | None
    hybrid: bool | None
    reference: str

    def as_row(self) -> tuple:
        def fmt(b):
            return "-" if b is None else ("Yes" if b else "No")

        return (
            self.year,
            self.version,
            self.coarse_grained or "-",
            self.fine_grained or "-",
            fmt(self.multi_grained),
            fmt(self.hybrid),
            self.reference,
        )


#: Table 1 of the paper, verbatim.
RAXML_HISTORY: tuple[VersionRecord, ...] = (
    VersionRecord(2004, "II", "MPI (medium-grained)", None, None, None, "[3]"),
    VersionRecord(2005, "OMP", None, "OpenMP", None, None, "[4]"),
    VersionRecord(2006, "VI-HPC", "MPI", "OpenMP", False, False, "[5]"),
    VersionRecord(2007, "Cell", "MPI", "Cell-specific", True, True, "[6]"),
    VersionRecord(2007, "Blue Gene/L", "MPI", "MPI", True, False, "[7]"),
    VersionRecord(2008, "Performance", None, "MPI, Pthreads, or OpenMP", False, False, "[8]"),
    VersionRecord(2008, "7.0.0", "MPI", "Pthreads", False, False, "[9]"),
    VersionRecord(2009, "7.1.0", None, "Pthreads", None, None, "[10]"),
    VersionRecord(2009, "7.2.4", "MPI", "Pthreads", True, True, "This paper, [10]"),
)
