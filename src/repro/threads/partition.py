"""Partitioning of the pattern axis across worker threads."""

from __future__ import annotations

import numpy as np


def chunk_sizes(n_items: int, n_threads: int) -> list[int]:
    """Balanced chunk sizes: the first ``n_items % n_threads`` chunks get
    one extra item.  Sizes sum to ``n_items``; threads beyond ``n_items``
    get empty chunks (RAxML simply leaves surplus workers idle).
    """
    if n_threads < 1:
        raise ValueError(f"n_threads must be >= 1, got {n_threads}")
    if n_items < 0:
        raise ValueError(f"n_items must be >= 0, got {n_items}")
    base, extra = divmod(n_items, n_threads)
    return [base + (1 if i < extra else 0) for i in range(n_threads)]


def contiguous_chunks(n_items: int, n_threads: int) -> list[slice]:
    """Contiguous balanced slices of ``range(n_items)`` (cache-friendly)."""
    sizes = chunk_sizes(n_items, n_threads)
    out: list[slice] = []
    start = 0
    for s in sizes:
        out.append(slice(start, start + s))
        start += s
    return out


def active_chunks(n_items: int, n_threads: int) -> list[slice]:
    """Contiguous balanced slices with surplus workers' empty slices
    dropped — the degenerate-chunk guard for ``n_threads > n_items``.

    Kernel backends consume this shape: every returned slice is non-empty,
    so no kernel ever runs on zero patterns, while region *timing* still
    charges the full per-thread chunk list (idle workers wait at the
    barrier; see :func:`chunk_sizes`).
    """
    return [c for c in contiguous_chunks(n_items, n_threads) if c.stop > c.start]


def cyclic_assignment(n_items: int, n_threads: int) -> list[np.ndarray]:
    """Round-robin index sets (RAxML's actual assignment: pattern ``i``
    belongs to thread ``i mod T``), which balances per-pattern cost
    variation at the price of strided access."""
    if n_threads < 1:
        raise ValueError(f"n_threads must be >= 1, got {n_threads}")
    return [np.arange(t, n_items, n_threads) for t in range(n_threads)]


def weighted_chunks(costs: np.ndarray, n_threads: int) -> list[slice]:
    """Contiguous chunks balanced by per-pattern *cost* instead of count.

    Splits at the quantiles of the cumulative cost, so a thread owning
    expensive patterns gets fewer of them.  Used when per-pattern work is
    uneven (e.g. CAT category mixes or weighted bootstrap replicates).
    Returns ``n_threads`` slices covering ``range(len(costs))``.
    """
    if n_threads < 1:
        raise ValueError(f"n_threads must be >= 1, got {n_threads}")
    c = np.asarray(costs, dtype=np.float64)
    if c.ndim != 1:
        raise ValueError("costs must be 1-D")
    if np.any(c < 0):
        raise ValueError("costs must be non-negative")
    n = c.shape[0]
    if n == 0:
        return [slice(0, 0)] * n_threads
    cum = np.cumsum(c)
    total = cum[-1]
    if total <= 0:
        return contiguous_chunks(n, n_threads)
    bounds = [0]
    for t in range(1, n_threads):
        target = total * t / n_threads
        # The straddling item goes to whichever side lands closer to the
        # target (note: a single item heavier than total/T still bounds
        # the achievable balance from below — items are indivisible).
        idx = int(np.searchsorted(cum, target, side="left"))
        below = cum[idx - 1] if idx > 0 else 0.0
        above = cum[idx] if idx < n else total
        cut = idx if (target - below) <= (above - target) else idx + 1
        bounds.append(min(max(cut, bounds[-1]), n))
    bounds.append(n)
    return [slice(a, b) for a, b in zip(bounds[:-1], bounds[1:])]


def imbalance(costs: np.ndarray, chunks: list[slice]) -> float:
    """Max-over-threads cost divided by the mean (1.0 = perfect balance)."""
    c = np.asarray(costs, dtype=np.float64)
    loads = [float(c[sl].sum()) for sl in chunks]
    mean = sum(loads) / len(loads) if loads else 0.0
    if mean <= 0:
        return 1.0
    return max(loads) / mean
