"""Fine-grained "Pthreads" substrate: pattern-parallel likelihood kernels.

RAxML's production fine-grained parallelization is a Pthreads master/worker
scheme over the *pattern* axis of the alignment: every worker owns a slice
of patterns, computes its share of each CLV update / likelihood reduction,
and the master combines per-thread partial sums (paper Section 2).

Real Python threads cannot speed up this arithmetic (GIL), so the layer is
*virtual*: the kernels are executed per-slice for real (bit-for-bit the
same results as one-shot evaluation, proving the decomposition), while a
pluggable :class:`RegionTiming` model charges simulated time — the maximum
over the per-thread chunk costs plus a synchronisation term, exactly the
quantity a busy-wait barrier implementation pays per parallel region.
"""

from repro.threads.partition import (
    active_chunks,
    contiguous_chunks,
    cyclic_assignment,
    chunk_sizes,
    weighted_chunks,
    imbalance,
)
from repro.threads.timing import RegionTiming, ZeroTiming, LinearRegionTiming
from repro.threads.pool import VirtualThreadPool
from repro.threads.threaded_engine import ThreadedLikelihoodEngine

__all__ = [
    "active_chunks",
    "contiguous_chunks",
    "cyclic_assignment",
    "chunk_sizes",
    "weighted_chunks",
    "imbalance",
    "RegionTiming",
    "ZeroTiming",
    "LinearRegionTiming",
    "VirtualThreadPool",
    "ThreadedLikelihoodEngine",
]
