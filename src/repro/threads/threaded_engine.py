"""Threaded likelihood execution — a thin adapter over the one engine.

Historically this module re-implemented the serial engine's surface with
per-chunk sub-engines.  The traversal-plan refactor moved sharding into
the likelihood core itself: :class:`repro.likelihood.engine.LikelihoodEngine`
accepts a :class:`~repro.threads.pool.VirtualThreadPool` directly, runs
every kernel once per worker's pattern slice, and charges one parallel
region of simulated time per kernel sweep.  What remains here is a
constructor-order adapter so existing call sites (``pal, model, pool,
...``) keep working.

Functional results are *bit-identical* to serial execution by
construction: kernels write per-shard slices of shared full-pattern
arrays, and every reduction (log-likelihood, Newton derivatives) runs
once over the full pattern axis.  Tests assert this bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from repro.likelihood.engine import LikelihoodEngine, OpCounter, RateModel
from repro.likelihood.gtr import GTRModel
from repro.likelihood.plan import CLVCache
from repro.seq.patterns import PatternAlignment
from repro.threads.pool import VirtualThreadPool


class ThreadedLikelihoodEngine(LikelihoodEngine):
    """Pattern-sharded engine over a :class:`VirtualThreadPool`.

    Parameters mirror :class:`LikelihoodEngine`; ``pool`` supplies the
    thread count and the region timing model.
    """

    def __init__(
        self,
        pal: PatternAlignment,
        model: GTRModel,
        pool: VirtualThreadPool,
        rate_model: RateModel | None = None,
        weights: np.ndarray | None = None,
        ops: OpCounter | None = None,
        kernel: str = "reference",
        clv_cache: bool | CLVCache = False,
    ) -> None:
        super().__init__(
            pal,
            model,
            rate_model,
            weights,
            ops,
            kernel=kernel,
            clv_cache=clv_cache,
            pool=pool,
        )

    def with_model(self, model: GTRModel) -> "ThreadedLikelihoodEngine":
        return ThreadedLikelihoodEngine(
            self.pal, model, self.pool, self.rate_model, self.weights, self.ops,
            kernel=self.kernel_name, clv_cache=self.clv_cache is not None,
        )

    def with_rate_model(self, rate_model: RateModel) -> "ThreadedLikelihoodEngine":
        return ThreadedLikelihoodEngine(
            self.pal, self.model, self.pool, rate_model, self.weights, self.ops,
            kernel=self.kernel_name, clv_cache=self.clv_cache is not None,
        )

    def with_weights(self, weights: np.ndarray) -> "ThreadedLikelihoodEngine":
        return ThreadedLikelihoodEngine(
            self.pal, self.model, self.pool, self.rate_model, weights, self.ops,
            kernel=self.kernel_name,
            clv_cache=self.clv_cache if self.clv_cache is not None else False,
        )
