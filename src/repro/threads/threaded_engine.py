"""A likelihood engine whose pattern axis is split across virtual threads.

:class:`ThreadedLikelihoodEngine` duck-types the public surface of
:class:`repro.likelihood.engine.LikelihoodEngine` that the search code
uses, but every kernel runs once per thread chunk — genuinely exercising
the master/worker decomposition RAxML's Pthreads code uses — and charges
one parallel region of simulated time per kernel through the pool.

Functional results are *identical* to the serial engine: CLV recursions
are independent per pattern, and every reduction (log-likelihood, Newton
derivatives) is a weighted sum that the master re-assembles from
per-thread partial sums.  Tests assert this equivalence bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from repro.likelihood.engine import LikelihoodEngine, OpCounter, RateModel
from repro.likelihood.gtr import GTRModel
from repro.seq.patterns import PatternAlignment
from repro.threads.pool import VirtualThreadPool
from repro.tree.topology import Node, Tree


def _slice_pattern_alignment(pal: PatternAlignment, sl: slice) -> PatternAlignment:
    """A chunk view of ``pal`` (site map dropped: chunks never expand)."""
    return PatternAlignment(
        pal.taxa,
        pal.patterns[:, sl],
        pal.weights[sl],
        np.empty(0, dtype=np.intp),
    )


def _slice_rate_model(rm: RateModel, sl: slice) -> RateModel:
    from repro.likelihood.engine import subset_rate_model

    return subset_rate_model(rm, np.arange(sl.start, sl.stop))


class ThreadedLikelihoodEngine:
    """Pattern-chunked engine over a :class:`VirtualThreadPool`.

    Parameters mirror :class:`LikelihoodEngine`; ``pool`` supplies the
    thread count and the region timing model.
    """

    def __init__(
        self,
        pal: PatternAlignment,
        model: GTRModel,
        pool: VirtualThreadPool,
        rate_model: RateModel | None = None,
        weights: np.ndarray | None = None,
        ops: OpCounter | None = None,
    ) -> None:
        self.pal = pal
        self.model = model
        self.pool = pool
        self.rate_model = rate_model if rate_model is not None else RateModel.gamma()
        w = pal.weights if weights is None else np.asarray(weights, dtype=np.float64)
        if w.shape != (pal.n_patterns,):
            raise ValueError("weights length must equal the number of patterns")
        self.weights = w.astype(np.float64)
        self.ops = ops if ops is not None else OpCounter()

        from repro.threads.partition import contiguous_chunks

        self._chunks = contiguous_chunks(pal.n_patterns, pool.n_threads)
        self._chunk_sizes = [c.stop - c.start for c in self._chunks]
        self._engines = [
            LikelihoodEngine(
                _slice_pattern_alignment(pal, c),
                model,
                _slice_rate_model(self.rate_model, c),
                weights=self.weights[c],
                ops=self.ops,
            )
            for c in self._chunks
            if c.stop > c.start
        ]

    # -- trivial delegation ------------------------------------------------

    @property
    def n_patterns(self) -> int:
        return self.pal.n_patterns

    @property
    def n_categories(self) -> int:
        return self.rate_model.n_categories

    @property
    def is_cat(self) -> bool:
        return self.rate_model.kind == "cat"

    def with_model(self, model: GTRModel) -> "ThreadedLikelihoodEngine":
        return ThreadedLikelihoodEngine(
            self.pal, model, self.pool, self.rate_model, self.weights, self.ops
        )

    def with_rate_model(self, rate_model: RateModel) -> "ThreadedLikelihoodEngine":
        return ThreadedLikelihoodEngine(
            self.pal, self.model, self.pool, rate_model, self.weights, self.ops
        )

    def with_weights(self, weights: np.ndarray) -> "ThreadedLikelihoodEngine":
        return ThreadedLikelihoodEngine(
            self.pal, self.model, self.pool, self.rate_model, weights, self.ops
        )

    # -- region accounting ----------------------------------------------------

    def _charge(self, n_regions: int = 1) -> None:
        for _ in range(n_regions):
            self.pool.charge_region(self._chunk_sizes, self.n_categories)

    # -- chunked computations --------------------------------------------------

    def compute_down_partials(self, tree: Tree, subtree: Node | None = None) -> list[dict]:
        """Per-chunk down-partial maps (one dict per worker)."""
        out = [e.compute_down_partials(tree, subtree) for e in self._engines]
        # One region per internal-node CLV update, as in the serial engine.
        if subtree is None:
            n_updates = sum(1 for n in tree.postorder() if not n.is_leaf)
        else:
            n_updates = sum(
                1
                for n in LikelihoodEngine._subtree_postorder(subtree)
                if not n.is_leaf
            )
        self._charge(max(n_updates, 1))
        return out

    def compute_up_partials(self, tree: Tree, down: list[dict]) -> list[dict]:
        out = [e.compute_up_partials(tree, d) for e, d in zip(self._engines, down)]
        n_updates = sum(len(n.children) for n in tree.postorder() if not n.is_leaf)
        self._charge(n_updates)
        return out

    def site_loglikelihoods(self, tree: Tree) -> np.ndarray:
        parts = [e.site_loglikelihoods(tree) for e in self._engines]
        n_updates = sum(1 for n in tree.postorder() if not n.is_leaf) + 1
        self._charge(n_updates)
        return np.concatenate(parts) if parts else np.empty(0)

    def loglikelihood(self, tree: Tree) -> float:
        """Master/worker reduction: per-thread weighted sums, then a sum."""
        down = [e.compute_down_partials(tree) for e in self._engines]
        partial_sums = [
            float(e.weights @ e._combine_root(d[id(tree.root)]))
            for e, d in zip(self._engines, down)
        ]
        n_updates = sum(1 for n in tree.postorder() if not n.is_leaf) + 1
        self._charge(n_updates)
        return float(sum(partial_sums))

    # -- per-edge machinery (chunked) ---------------------------------------------

    def _indexed(self, chunked_partials: list[dict], node: Node) -> list:
        return [d[id(node)] for d in chunked_partials]

    def edge_loglikelihood(self, edge_child: Node, t: float, down_v: list, up_v: list) -> float:
        vals = [
            e.edge_loglikelihood(edge_child, t, d, u)
            for e, d, u in zip(self._engines, down_v, up_v)
        ]
        self._charge()
        return float(sum(vals))

    def edge_coefficients(self, down_v: list, up_v: list):
        coefs = [
            e.edge_coefficients(d, u) for e, d, u in zip(self._engines, down_v, up_v)
        ]
        self._charge()
        return coefs, None, None  # matches (coef, exps, logscale) arity

    def edge_lnl_and_derivatives(self, coef, exps, logscale, t: float):
        """Sums per-thread (lnl, d1, d2) partials — RAxML's parallel Newton."""
        chunk_tables = coef  # packed by edge_coefficients
        lnl = g = h = 0.0
        for e, (c, x, ls) in zip(self._engines, chunk_tables):
            l_, g_, h_ = e.edge_lnl_and_derivatives(c, x, ls, t)
            lnl += l_
            g += g_
            h += h_
        self._charge()
        return lnl, g, h

    def insertion_loglikelihood(self, down_v: list, up_v: list, down_s: list, t_edge: float, t_sub: float) -> float:
        vals = [
            e.insertion_loglikelihood(d, u, s, t_edge, t_sub)
            for e, d, u, s in zip(self._engines, down_v, up_v, down_s)
        ]
        self._charge()
        return float(sum(vals))

    # -- partial indexing helper used by search code --------------------------------

    def partial_for(self, chunked: list[dict], node: Node) -> list:
        """Extract one node's per-chunk partials from a chunked map."""
        return self._indexed(chunked, node)
