"""Timing models for one fine-grained parallel region.

A *parallel region* is one CLV update or likelihood reduction executed by
all T worker threads over their pattern chunks, ended by a barrier.  Its
wall time is::

    max_t (chunk_patterns_t * per_pattern_cost) + sync_cost(T)

Machine-accurate per-pattern costs and synchronisation constants live in
:mod:`repro.perfmodel.finegrain`; this module defines the interface plus
two simple reference implementations used by tests and default runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable


@runtime_checkable
class RegionTiming(Protocol):
    """Charge policy for one parallel region."""

    def region_seconds(self, chunk_patterns: Sequence[int], n_categories: int) -> float:
        """Simulated wall-clock seconds for one region with the given
        per-thread chunk sizes (in patterns) and rate-category count."""
        ...


@dataclass(frozen=True)
class ZeroTiming:
    """No time accounting (pure functional runs)."""

    def region_seconds(self, chunk_patterns: Sequence[int], n_categories: int) -> float:
        return 0.0


@dataclass(frozen=True)
class LinearRegionTiming:
    """A plain cost model: per-pattern-category cost plus quadratic barrier.

    ``sync_quadratic * T**2`` reflects busy-wait barriers whose cache-line
    traffic grows superlinearly with thread count — the mechanism that
    caps useful thread counts for small-pattern data sets in the paper.
    """

    per_pattern_second: float = 1e-6
    sync_quadratic: float = 2e-6

    def __post_init__(self) -> None:
        if self.per_pattern_second < 0 or self.sync_quadratic < 0:
            raise ValueError("timing constants must be non-negative")

    def region_seconds(self, chunk_patterns: Sequence[int], n_categories: int) -> float:
        if n_categories < 1:
            raise ValueError("n_categories must be >= 1")
        t = len(chunk_patterns)
        biggest = max(chunk_patterns) if chunk_patterns else 0
        compute = biggest * n_categories * self.per_pattern_second
        sync = self.sync_quadratic * t * t if t > 1 else 0.0
        return compute + sync
