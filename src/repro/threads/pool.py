"""The virtual thread pool: master/worker execution over pattern chunks."""

from __future__ import annotations

from typing import Callable, Sequence

from repro.obs.recorder import current as _obs_current
from repro.threads.partition import contiguous_chunks
from repro.threads.timing import RegionTiming, ZeroTiming
from repro.util.timing import VirtualClock


class VirtualThreadPool:
    """Executes pattern-sliced kernels and accounts simulated region time.

    The pool mirrors RAxML's Pthreads master/worker design: the master
    broadcasts a job, each worker processes its pattern chunk, a barrier
    ends the region.  ``run_region`` really executes the kernel once per
    chunk (so functional results are exact) and advances the virtual clock
    by the modelled region time.

    With a :class:`~repro.mpi.vci.ChannelSet` attached, each region
    additionally charges the lane-post drain: the ``T`` per-lane partial
    results posted at the region barrier are round-robined over the
    channels (``ceil(T/C)`` serialized rounds) instead of funnelling
    through one implicit endpoint.  Without channels no post cost is
    charged — the historical behaviour, pinned by the parity suite.
    """

    def __init__(
        self,
        n_threads: int,
        timing: RegionTiming | None = None,
        clock: VirtualClock | None = None,
        channels=None,
    ) -> None:
        if n_threads < 1:
            raise ValueError(f"n_threads must be >= 1, got {n_threads}")
        self.n_threads = n_threads
        self.timing = timing if timing is not None else ZeroTiming()
        self.clock = clock if clock is not None else VirtualClock()
        self.channels = channels
        self.regions_executed = 0

    def _charge_lane_posts(self, n_categories: int, n_regions: int) -> float:
        """Post the per-lane partial results of ``n_regions`` regions.

        A single lane reduces in place — only multi-lane ranks post.
        Each post ships one partial likelihood per category (8 bytes
        each); the makespan comes from the channel round-robin.
        """
        if self.channels is None or self.n_threads <= 1 or n_regions <= 0:
            return 0.0
        extra = self.channels.lane_post_makespan(
            self.n_threads, 8 * max(1, n_categories), repeats=n_regions
        )
        self.clock.advance(extra)
        rec = _obs_current()
        if rec is not None and extra > 0.0:
            rec.count("comm.seconds.lane_post", extra)
        return extra

    # -- execution --------------------------------------------------------

    def run_region(
        self,
        kernel: Callable[[slice], object],
        n_patterns: int,
        n_categories: int = 1,
    ) -> list:
        """One parallel region: ``kernel(chunk_slice)`` per thread.

        Returns the list of per-thread results (empty chunks yield
        ``None``) and charges the modelled region time to the clock.
        """
        chunks = contiguous_chunks(n_patterns, self.n_threads)
        results = [kernel(c) if c.stop > c.start else None for c in chunks]
        self.charge_region([c.stop - c.start for c in chunks], n_categories)
        return results

    def charge_region(self, chunk_patterns: Sequence[int], n_categories: int) -> float:
        """Advance the clock for one region without executing anything.

        Used when the caller has already computed full-vector results and
        only needs the timing (the arithmetic is identical either way).
        """
        t0 = self.clock.now
        dt = self.timing.region_seconds(chunk_patterns, n_categories)
        self.clock.advance(dt)
        self.regions_executed += 1
        rec = _obs_current()
        if rec is not None:
            self._record_regions(rec, t0, dt, chunk_patterns, 1)
        return dt + self._charge_lane_posts(n_categories, 1)

    def charge_regions(self, n_regions: int, n_patterns: int, n_categories: int) -> float:
        """Charge ``n_regions`` identical balanced regions at once."""
        if n_regions < 0:
            raise ValueError("n_regions must be >= 0")
        from repro.threads.partition import chunk_sizes

        sizes = chunk_sizes(n_patterns, self.n_threads)
        t0 = self.clock.now
        dt = self.timing.region_seconds(sizes, n_categories) * n_regions
        self.clock.advance(dt)
        self.regions_executed += n_regions
        rec = _obs_current()
        if rec is not None and n_regions > 0:
            self._record_regions(rec, t0, dt, sizes, n_regions)
        return dt + self._charge_lane_posts(n_categories, n_regions)

    def _record_regions(
        self,
        rec,
        t0: float,
        dt: float,
        chunk_patterns: Sequence[int],
        n_regions: int,
    ) -> None:
        """Feed one region charge into the recorder's per-thread lanes.

        The bottleneck chunk is busy for the whole compute window; every
        other thread's busy share scales with its chunk size — the rest
        of its lane is barrier wait, which is exactly the fine-grained
        load-imbalance picture the paper's Section 5.1 discusses.
        """
        rec.count("threads.regions", n_regions)
        biggest = max(chunk_patterns) if chunk_patterns else 0
        busy = [
            dt * (c / biggest) if biggest > 0 else dt for c in chunk_patterns
        ]
        # Surplus workers (empty chunk list entries dropped upstream)
        # still own a lane; pad so every declared track gets a span.
        busy += [0.0] * (self.n_threads - len(busy))
        rec.thread_regions(t0, t0 + dt, busy, count=n_regions)

    @property
    def virtual_time(self) -> float:
        return self.clock.now
