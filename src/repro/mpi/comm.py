"""The simulated communicator.

Ranks execute as cooperating Python threads; messages travel through
in-memory mailboxes; collectives are built from a shared generation-tagged
scratch board guarded by a condition variable.  All ranks must call
collectives in the same order (the standard SPMD contract — violations
raise :class:`SPMDError` via generation mismatches or broken exchanges).

Virtual time: each rank owns a clock; a collective advances every
participant to ``max(entry clocks) + cost(p, payload)``.  The cost model
(:class:`CommTiming`) defaults to realistic-but-small cluster constants —
the paper stresses that "a fast and expensive interconnect is not
required" because communication is negligible.

Fault tolerance: when a :class:`~repro.mpi.faults.FaultPlan` is attached
the world runs in *resilient* mode.  Every collective carries a per-call
deadline; a peer that dies (fail-stop) or misses the deadline is declared
dead, the exchange completes over the survivors, and each survivor
receives a :class:`RankFailure` carrying a *consistent* death set (the
first rank to complete an exchange freezes the participant view for that
generation, so every survivor observes the same deaths at the same
collective).  Transiently failing collectives are retried with
exponential backoff charged to the virtual clock.
"""

from __future__ import annotations

import pickle
import queue
import threading
import time
from dataclasses import dataclass
from math import ceil, log2

from repro.mpi.faults import FaultPlan, RankKilledError
from repro.obs.recorder import current as _obs_current
from repro.util.timing import VirtualClock


class SPMDError(RuntimeError):
    """Raised when ranks violate the SPMD collective-ordering contract."""


class RankFailure(SPMDError):
    """One or more peers died (fail-stop) during a communication call.

    Raised only in resilient mode, on every survivor, at the same
    collective generation, with the same ``dead`` tuple — so survivors
    can run recovery in lockstep.
    """

    def __init__(self, dead, op: str = "collective") -> None:
        self.dead = tuple(dead)
        self.op = op
        super().__init__(
            f"rank(s) {list(self.dead)} died during {op!r}; "
            "surviving ranks must recover their work"
        )


class DistributedStateError(SPMDError):
    """Replicated or sharded state diverged across ranks (a bug, not a
    recoverable failure) — e.g. a bipartition-table shard that missed
    trees its peers saw."""


class RetryExhaustedError(SPMDError):
    """A transiently-failing collective exceeded the retry budget."""


class AllRanksDeadError(SPMDError):
    """Every rank of a resilient world died; there is nobody to recover."""


class _DeadRankSentinel:
    """Marker for a rank absent from a collective (died before joining).

    Distinct from every payload — in particular from a rank legitimately
    contributing ``None`` — so reductions can exclude dead peers without
    corrupting real values.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<dead rank>"


#: The singleton dead-rank sentinel used by reducing collectives.
DEAD_RANK = _DeadRankSentinel()


#: Rank lifecycle states tracked by :class:`_World`.
RUNNING, EXITED, FAILED, DEAD = "running", "exited", "failed", "dead"

#: First backoff (virtual seconds) before retrying a failed collective;
#: doubles on every subsequent attempt.
RETRY_BACKOFF = 1e-3

#: Maximum retries of one transiently-failing collective call.
MAX_RETRIES = 8


@dataclass(frozen=True)
class CommTiming:
    """Virtual-time costs of communication operations (seconds)."""

    latency: float = 5e-6  # per point-to-point message
    byte_time: float = 1e-9  # per payload byte (~1 GB/s interconnect)
    barrier_base: float = 1e-5  # per barrier, times ceil(log2(p))

    def message_seconds(self, n_bytes: int) -> float:
        return self.latency + self.byte_time * n_bytes

    def barrier_seconds(self, size: int) -> float:
        if size <= 1:
            return 0.0
        return self.barrier_base * ceil(log2(size))

    def collective_seconds(self, size: int, n_bytes: int) -> float:
        """Tree-structured collective: log2(p) message rounds."""
        if size <= 1:
            return 0.0
        return ceil(log2(size)) * self.message_seconds(n_bytes)


def _payload_bytes(obj) -> int:
    """Approximate wire size of a Python object (pickle length)."""
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 64  # unpicklable objects still need *some* cost


@dataclass(frozen=True)
class CommEvent:
    """One recorded communication operation (for the per-rank trace)."""

    op: str
    rank: int
    seconds: float  # virtual time spent in the operation
    payload_bytes: int
    started_at: float


class _World:
    """Shared state of one SPMD run."""

    def __init__(
        self,
        size: int,
        timing: CommTiming,
        timeout: float,
        fault_plan: FaultPlan | None = None,
        max_retries: int = MAX_RETRIES,
    ) -> None:
        self.size = size
        self.timing = timing
        self.timeout = timeout
        self.fault_plan = fault_plan
        #: Resilient worlds tolerate fail-stop deaths instead of aborting.
        self.resilient = fault_plan is not None
        self.max_retries = max_retries
        self.mailboxes: dict[tuple[int, int, int], queue.Queue] = {}
        self.mailbox_lock = threading.Lock()
        #: Everything below is guarded by ``cond``.
        self.cond = threading.Condition()
        self.scratch: dict[int, dict[int, tuple]] = {}
        self.scratch_ops: dict[int, str] = {}
        #: Participant view frozen by the first rank to complete each
        #: generation — the agreement that keeps death sets consistent.
        self.outcomes: dict[int, frozenset[int]] = {}
        self.leavers: dict[int, set[int]] = {}
        self.status: dict[int, str] = {r: RUNNING for r in range(size)}
        #: Set at teardown to release ranks wedged by an injected hang.
        self.release = threading.Event()

    def mailbox(self, src: int, dst: int, tag: int) -> queue.Queue:
        key = (src, dst, tag)
        with self.mailbox_lock:
            q = self.mailboxes.get(key)
            if q is None:
                q = self.mailboxes[key] = queue.Queue()
            return q

    def running(self) -> list[int]:
        """Ranks still executing (caller must hold ``cond``)."""
        return [r for r in range(self.size) if self.status[r] == RUNNING]

    def mark(self, rank: int, status: str) -> None:
        with self.cond:
            if self.status[rank] == RUNNING:
                self.status[rank] = status
            self.cond.notify_all()

    def status_of(self, rank: int) -> str:
        with self.cond:
            return self.status[rank]

    def dead_ranks(self) -> list[int]:
        with self.cond:
            return sorted(r for r in range(self.size) if self.status[r] == DEAD)


class SimComm:
    """Per-rank communicator handle (mpi4py-flavoured lowercase API)."""

    def __init__(self, world: _World, rank: int, clock: VirtualClock | None = None) -> None:
        if not (0 <= rank < world.size):
            raise ValueError(f"rank {rank} out of range for size {world.size}")
        self._world = world
        self.rank = rank
        self.size = world.size
        self.clock = clock if clock is not None else VirtualClock()
        self._generation = 0
        self._collective_calls = 0
        #: Ranks this communicator believes alive; shrinks only at exchange
        #: completion, so all survivors agree on it after each collective.
        self.known_alive: set[int] = set(range(world.size))
        #: Transient-collective retries performed by this rank.
        self.n_retries = 0
        #: Per-rank record of every communication operation.
        self.trace: list[CommEvent] = []

    def _record(self, op: str, started_at: float, payload: int) -> None:
        seconds = self.clock.now - started_at
        self.trace.append(
            CommEvent(
                op=op,
                rank=self.rank,
                seconds=seconds,
                payload_bytes=payload,
                started_at=started_at,
            )
        )
        rec = _obs_current()
        if rec is not None:
            # The CommEvent trace generalised into the span model: one
            # span per operation on the rank's main track, plus running
            # call/byte/seconds counters and a payload histogram.
            rec.span(op, "comm", started_at, args={"bytes": payload})
            rec.count(f"comm.calls.{op}")
            rec.count(f"comm.bytes.{op}", payload)
            rec.count(f"comm.seconds.{op}", seconds)
            rec.observe("comm.payload_bytes", payload)

    def comm_seconds(self) -> float:
        """Total virtual time this rank spent communicating (including
        barrier wait — i.e. time attributable to synchronisation)."""
        return sum(e.seconds for e in self.trace)

    def alive_ranks(self) -> list[int]:
        """Ranks this communicator believes alive (sorted)."""
        return sorted(self.known_alive)

    @property
    def known_dead(self) -> list[int]:
        """Ranks this communicator has observed dying (sorted)."""
        return sorted(set(range(self.size)) - self.known_alive)

    # -- mpi4py-style accessors ------------------------------------------

    def Get_rank(self) -> int:
        return self.rank

    def Get_size(self) -> int:
        return self.size

    # -- point-to-point -----------------------------------------------------

    def send(self, obj, dest: int, tag: int = 0) -> None:
        if not (0 <= dest < self.size):
            raise ValueError(f"invalid destination rank {dest}")
        if dest == self.rank:
            raise ValueError("send to self would deadlock a blocking recv")
        t0 = self.clock.now
        payload = _payload_bytes(obj)
        cost = self._world.timing.message_seconds(payload)
        self.clock.advance(cost)
        self._world.mailbox(self.rank, dest, tag).put((obj, self.clock.now))
        self._record("send", t0, payload)

    def recv(self, source: int, tag: int = 0):
        if not (0 <= source < self.size):
            raise ValueError(f"invalid source rank {source}")
        world = self._world
        mailbox = world.mailbox(source, self.rank, tag)
        deadline = time.monotonic() + world.timeout
        while True:
            try:
                obj, sent_at = mailbox.get(timeout=0.05)
                break
            except queue.Empty:
                status = world.status_of(source)
                if status == DEAD:
                    self.known_alive.discard(source)
                    rec = _obs_current()
                    if rec is not None:
                        rec.count("comm.rank_failures")
                        rec.instant(
                            "rank-failure", "fault",
                            args={"op": f"recv(tag={tag})", "dead": [source],
                                  "known_dead": self.known_dead},
                        )
                    raise RankFailure((source,), op=f"recv(tag={tag})") from None
                if status in (EXITED, FAILED):
                    raise SPMDError(
                        f"rank {self.rank} cannot receive from rank {source}: "
                        f"it {status} without sending (tag {tag})"
                    ) from None
                if time.monotonic() >= deadline:
                    raise SPMDError(
                        f"rank {self.rank} timed out receiving from rank "
                        f"{source} (tag {tag})"
                    ) from None
        # A blocking receive cannot complete before the message exists.
        t0 = self.clock.now
        self.clock.synchronize(sent_at)
        self._record("recv", t0, _payload_bytes(obj))
        return obj

    # -- fault hooks --------------------------------------------------------

    def _apply_collective_faults(self, op: str) -> None:
        """Evaluate the fault plan at the entry of one collective call."""
        world = self._world
        index = self._collective_calls
        self._collective_calls += 1
        plan = world.fault_plan
        if plan is None:
            return
        plan.kill_at_collective(self.rank, index)
        glitch = plan.glitch_at(self.rank, index)
        if glitch is None:
            return
        if glitch.kind == "delay":
            self.clock.advance(glitch.delay_seconds)
        elif glitch.kind == "hang":
            # The rank wedges inside the collective; peers declare it dead
            # via their deadlines, and the launcher releases the thread at
            # teardown so it can die cleanly.
            world.release.wait()
            raise RankKilledError(
                f"rank {self.rank} hung in collective call {index}"
            )
        elif glitch.kind == "fail":
            attempts = min(glitch.failures, world.max_retries)
            rec = _obs_current()
            for attempt in range(attempts):
                self.n_retries += 1
                self.clock.advance(RETRY_BACKOFF * (2 ** attempt))
                if rec is not None:
                    rec.count("comm.retries")
                    rec.instant(
                        "retry", "comm",
                        args={"op": op, "call": index, "attempt": attempt + 1},
                    )
            if glitch.failures > world.max_retries:
                if rec is not None:
                    rec.instant(
                        "retry-exhausted", "comm", args={"op": op, "call": index}
                    )
                raise RetryExhaustedError(
                    f"rank {self.rank}: collective {op!r} (call {index}) "
                    f"still failing after {world.max_retries} retries"
                )

    # -- collectives --------------------------------------------------------

    def _exchange(self, value, op: str = "collective", internal: bool = False) -> dict[int, tuple]:
        """All-to-all scratch exchange underpinning every collective.

        ``op`` names the collective; ranks disagreeing on which collective
        they are in (a classic SPMD bug) are detected and rejected.  With
        ``internal=True`` the exchange is a runtime-coordination step:
        fault hooks are skipped (but death detection still applies).
        """
        world = self._world
        if not internal:
            self._apply_collective_faults(op)
        gen = self._generation
        self._generation += 1
        deadline = time.monotonic() + world.timeout
        with world.cond:
            expected = world.scratch_ops.setdefault(gen, op)
            if expected != op:
                raise SPMDError(
                    f"collective mismatch at generation {gen}: rank "
                    f"{self.rank} called {op!r} but another rank called "
                    f"{expected!r}"
                )
            board = world.scratch.setdefault(gen, {})
            if self.rank in board:
                raise SPMDError(
                    f"rank {self.rank} re-entered collective generation {gen}"
                )
            board[self.rank] = (value, self.clock.now)
            world.cond.notify_all()
            while True:
                waiting_for = [
                    r for r in range(world.size)
                    if r not in board and world.status[r] == RUNNING
                ]
                defectors = [
                    r for r in range(world.size)
                    if r not in board and world.status[r] in (EXITED, FAILED)
                ]
                if defectors:
                    raise SPMDError(
                        f"collective {op!r} (generation {gen}) broken: "
                        f"rank(s) {defectors} left the computation without "
                        "joining it (mismatched collective ordering?)"
                    )
                if not waiting_for:
                    break
                remaining = deadline - time.monotonic()
                if remaining <= 0.0:
                    if world.resilient:
                        # Per-call deadline expired: fail-stop suspicion.
                        # Declare the stragglers dead so survivors recover.
                        for r in waiting_for:
                            world.status[r] = DEAD
                        world.cond.notify_all()
                        continue
                    raise SPMDError(
                        f"collective {op!r} (generation {gen}) broken: rank "
                        f"{self.rank} timed out after {world.timeout:.1f}s "
                        f"waiting for rank(s) {waiting_for}"
                    )
                world.cond.wait(min(remaining, 0.25))
            # The first rank to complete freezes the participant view so
            # every survivor observes the *same* death set for this call.
            outcome = world.outcomes.get(gen)
            if outcome is None:
                outcome = world.outcomes[gen] = frozenset(world.running())
            result = dict(board)
            left = world.leavers.setdefault(gen, set())
            left.add(self.rank)
            if outcome <= left:
                for store in (world.scratch, world.scratch_ops,
                              world.outcomes, world.leavers):
                    store.pop(gen, None)
        newly_dead = sorted(self.known_alive - outcome)
        if newly_dead:
            self.known_alive.difference_update(newly_dead)
            rec = _obs_current()
            if rec is not None:
                rec.count("comm.rank_failures")
                rec.instant(
                    "rank-failure", "fault",
                    args={"op": op, "dead": newly_dead,
                          "known_dead": self.known_dead},
                )
            raise RankFailure(newly_dead, op=op)
        return result

    def _plain_allgather(self, obj, op: str = "coordination") -> list:
        """Cost-free allgather for runtime coordination (e.g. negotiating
        a common checkpoint-resume point): no virtual-clock advance, no
        trace entry, no fault hooks — so resumed runs stay bit-identical
        to uninterrupted ones."""
        board = self._exchange(obj, op=op, internal=True)
        return [board[r][0] if r in board else None for r in range(self.size)]

    def _sync_clocks(self, board: dict[int, tuple], extra: float) -> None:
        entry_max = max(t for _, t in board.values())
        self.clock.synchronize(entry_max)
        self.clock.advance(extra)

    def barrier(self) -> None:
        """Synchronise all ranks (the paper's post-bootstrap barrier)."""
        t0 = self.clock.now
        board = self._exchange(None, op="barrier")
        self._sync_clocks(board, self._world.timing.barrier_seconds(self.size))
        self._record("barrier", t0, 0)

    def bcast(self, obj, root: int = 0):
        """Broadcast from ``root`` (the paper's final best-solution bcast)."""
        if not (0 <= root < self.size):
            raise ValueError(f"invalid root rank {root}")
        t0 = self.clock.now
        board = self._exchange(obj if self.rank == root else None, op="bcast")
        if root not in board:
            # The root died in an *earlier* collective, so this exchange
            # completes over the survivors without raising.  Survivors
            # must still see a RankFailure (with the frozen death set) —
            # a generic SPMDError here would leave them unable to run
            # recovery in lockstep.
            if self._world.resilient:
                raise RankFailure(self.known_dead, op="bcast")
            raise SPMDError(f"bcast root {root} is dead")
        value = board[root][0]
        payload = _payload_bytes(value)
        cost = self._world.timing.collective_seconds(self.size, payload)
        self._sync_clocks(board, cost)
        self._record("bcast", t0, payload)
        return value

    def gather(self, obj, root: int = 0):
        if not (0 <= root < self.size):
            raise ValueError(f"invalid root rank {root}")
        t0 = self.clock.now
        board = self._exchange(obj, op="gather")
        values = [board[r][0] if r in board else None for r in range(self.size)]
        payload = max(_payload_bytes(v) for v in values)
        cost = self._world.timing.collective_seconds(self.size, payload)
        self._sync_clocks(board, cost)
        self._record("gather", t0, payload)
        return values if self.rank == root else None

    def allgather(self, obj) -> list:
        """Gather everyone's value on every rank.  Ranks that died before
        contributing appear as ``None`` entries (resilient mode only —
        otherwise a death raises before any entry can be missing)."""
        t0 = self.clock.now
        board = self._exchange(obj, op="allgather")
        values = [board[r][0] if r in board else None for r in range(self.size)]
        payload = max(_payload_bytes(v) for v in values)
        cost = self._world.timing.collective_seconds(self.size, payload)
        self._sync_clocks(board, cost)
        self._record("allgather", t0, payload)
        return values

    def allreduce(self, obj, op=None):
        """Reduce with ``op`` (a 2-ary callable; default: sum).

        Ranks absent from the exchange (dead peers in resilient mode) are
        excluded via the :data:`DEAD_RANK` sentinel — **not** by value —
        so a rank legitimately contributing ``None`` participates in the
        reduction.  If no contribution survives at all, the reduction is
        undefined and :class:`AllRanksDeadError` is raised.
        """
        t0 = self.clock.now
        board = self._exchange(obj, op="allreduce")
        values = [
            board[r][0] if r in board else DEAD_RANK for r in range(self.size)
        ]
        alive = [v for v in values if v is not DEAD_RANK]
        if not alive:
            raise AllRanksDeadError(
                f"allreduce at rank {self.rank}: no rank contributed a "
                "value (every participant is dead); nothing to reduce"
            )
        payload = max(_payload_bytes(v) for v in alive)
        cost = self._world.timing.collective_seconds(self.size, payload)
        self._sync_clocks(board, cost)
        self._record("allreduce", t0, payload)
        acc = alive[0]
        for v in alive[1:]:
            acc = acc + v if op is None else op(acc, v)
        return acc
