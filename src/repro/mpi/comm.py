"""The simulated communicator.

Ranks execute as cooperating Python threads; messages travel through
in-memory mailboxes; collectives are built from a shared generation-tagged
scratch board guarded by a condition variable.  All ranks must call
collectives in the same order (the standard SPMD contract — violations
raise :class:`SPMDError` via generation mismatches or broken exchanges).

Virtual time: each rank owns a clock; a collective advances every
participant to ``max(entry clocks) + cost(p, payload)``.  The cost model
(:class:`CommTiming`) defaults to realistic-but-small cluster constants —
the paper stresses that "a fast and expensive interconnect is not
required" because communication is negligible.  Attach a
:class:`~repro.mpi.topology.HierarchicalCommTiming` instead and costs
become topology-aware: collectives are priced as two-phase operations
(node-local at shared-memory cost, one leader per node over the
network), sends are priced per hop, and the intra/inter split is
recorded — while the data plane (exchange, reduction order, death
sets, epochs) is untouched, keeping results bit-identical to flat.

Fault tolerance: when a :class:`~repro.mpi.faults.FaultPlan` is attached
the world runs in *resilient* mode.  Every collective carries a per-call
deadline; a peer that dies (fail-stop) or misses the deadline is declared
dead, the exchange completes over the survivors, and each survivor
receives a :class:`RankFailure` carrying a *consistent* death set (the
first rank to complete an exchange freezes the participant view for that
generation, so every survivor observes the same deaths at the same
collective).  Transiently failing collectives are retried with
exponential backoff charged to the virtual clock; retry and timeout
knobs live in one :class:`~repro.mpi.policy.RetryPolicy` /
:class:`~repro.mpi.policy.TimeoutPolicy` pair.

Membership: each communicator tracks a versioned
:class:`~repro.mpi.membership.MembershipView` — the epoch increments on
every observed membership delta.  Deaths shrink the view at collectives
(above); elastic *joins* grow it at declared epoch boundaries via
:meth:`SimComm.advance_epoch`, which activates dormant joiner ranks with
a deterministic entry state (generation, clock, live set) shared by all
participants.
"""

from __future__ import annotations

import pickle
import queue
import threading
import time
from dataclasses import dataclass
from math import ceil, log2

from repro.mpi.faults import FaultPlan, RankKilledError
from repro.mpi.membership import MembershipLedger, MembershipView
from repro.mpi.policy import RetryPolicy, TimeoutPolicy
from repro.obs.recorder import current as _obs_current
from repro.util.timing import VirtualClock


class SPMDError(RuntimeError):
    """Raised when ranks violate the SPMD collective-ordering contract."""


class RankFailure(SPMDError):
    """One or more peers died (fail-stop) during a communication call.

    Raised only in resilient mode, on every survivor, at the same
    collective generation, with the same ``dead`` tuple — so survivors
    can run recovery in lockstep.
    """

    def __init__(self, dead, op: str = "collective") -> None:
        self.dead = tuple(dead)
        self.op = op
        super().__init__(
            f"rank(s) {list(self.dead)} died during {op!r}; "
            "surviving ranks must recover their work"
        )


class DistributedStateError(SPMDError):
    """Replicated or sharded state diverged across ranks (a bug, not a
    recoverable failure) — e.g. a bipartition-table shard that missed
    trees its peers saw."""


class RetryExhaustedError(SPMDError):
    """A transiently-failing collective exceeded the retry budget."""


class AllRanksDeadError(SPMDError):
    """Every rank of a resilient world died; there is nobody to recover."""


class _DeadRankSentinel:
    """Marker for a rank absent from a collective (died before joining).

    Distinct from every payload — in particular from a rank legitimately
    contributing ``None`` — so reductions can exclude dead peers without
    corrupting real values.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<dead rank>"


#: The singleton dead-rank sentinel used by reducing collectives.
DEAD_RANK = _DeadRankSentinel()


#: Rank lifecycle states tracked by :class:`_World`.  ``DORMANT`` ranks
#: are allocated joiners that have not entered the world yet: invisible
#: to collectives, suspicion and schedules until activated.
RUNNING, EXITED, FAILED, DEAD = "running", "exited", "failed", "dead"
DORMANT = "dormant"

#: First backoff (virtual seconds) before retrying a failed collective;
#: doubles on every subsequent attempt.  Kept as the historical default
#: of :class:`repro.mpi.policy.RetryPolicy`.
RETRY_BACKOFF = 1e-3

#: Maximum retries of one transiently-failing collective call (default
#: of :class:`repro.mpi.policy.RetryPolicy`).
MAX_RETRIES = 8


@dataclass(frozen=True)
class CommTiming:
    """Virtual-time costs of communication operations (seconds).

    This is the *flat* model: every hop costs the same, regardless of
    where the two ranks live.  Costs scale with a **log tree**, not
    linearly — a collective over ``p`` ranks is modelled as a binomial
    tree of ``ceil(log2(p))`` rounds, each round shipping the full
    payload once, never as ``p`` sequential messages.

    Hand-trace (defaults: latency 5e-6 s, byte_time 1e-9 s/B,
    barrier_base 1e-5 s)::

        message_seconds(1000)       = 5e-6 + 1000*1e-9     = 6.0e-6
        collective_seconds(8, 1000) = ceil(log2(8)) * 6e-6 = 1.8e-5
        collective_seconds(9, 1000) = ceil(log2(9)) * 6e-6 = 2.4e-5
        barrier_seconds(8)          = 1e-5 * 3             = 3.0e-5
        barrier_seconds(1)          = 0.0   (nobody to sync with)

    Doubling ``p`` therefore adds *one round* (+6e-6 above), where a
    linear model would double the cost — the distinction the scaling
    curves past 32 ranks hinge on.  These numbers are pinned
    byte-for-byte by the regression tests; the topology-aware model
    (:class:`repro.mpi.topology.HierarchicalCommTiming`) must reproduce
    them exactly whenever the topology is trivial.
    """

    latency: float = 5e-6  # per point-to-point message
    byte_time: float = 1e-9  # per payload byte (~1 GB/s interconnect)
    barrier_base: float = 1e-5  # per barrier, times ceil(log2(p))

    def message_seconds(self, n_bytes: int) -> float:
        return self.latency + self.byte_time * n_bytes

    def barrier_seconds(self, size: int) -> float:
        """Tree barrier: ``barrier_base`` per round, ``ceil(log2(p))``
        rounds; 0.0 for a single rank (log-tree, not linear-in-p)."""
        if size <= 1:
            return 0.0
        return self.barrier_base * ceil(log2(size))

    def collective_seconds(self, size: int, n_bytes: int) -> float:
        """Tree-structured collective: ``ceil(log2(p))`` full-payload
        message rounds; 0.0 for a single rank (log-tree, not linear)."""
        if size <= 1:
            return 0.0
        return ceil(log2(size)) * self.message_seconds(n_bytes)


def _payload_bytes(obj) -> int:
    """Approximate wire size of a Python object (pickle length)."""
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 64  # unpicklable objects still need *some* cost


@dataclass(frozen=True)
class CommEvent:
    """One recorded communication operation (for the per-rank trace).

    ``intra_seconds``/``inter_seconds`` split the *modelled transfer
    cost* by tier when the world runs a topology-aware timing model;
    both stay 0.0 under the flat model.  ``seconds`` additionally
    includes straggler wait, so ``intra + inter <= seconds``.
    """

    op: str
    rank: int
    seconds: float  # virtual time spent in the operation
    payload_bytes: int
    started_at: float
    intra_seconds: float = 0.0  # modelled intra-node share
    inter_seconds: float = 0.0  # modelled inter-node share


class _World:
    """Shared state of one SPMD run."""

    def __init__(
        self,
        size: int,
        timing: CommTiming,
        timeout: float | None = None,
        fault_plan: FaultPlan | None = None,
        max_retries: int | None = None,
        retry_policy: RetryPolicy | None = None,
        timeout_policy: TimeoutPolicy | None = None,
        dormant: tuple[int, ...] = (),
    ) -> None:
        # Policy resolution: explicit policy objects win; the legacy
        # ``timeout`` / ``max_retries`` floats are folded into policies
        # so every consumer reads one place.
        if retry_policy is None:
            retry_policy = RetryPolicy(
                max_retries=MAX_RETRIES if max_retries is None else max_retries
            )
        if timeout_policy is None:
            timeout_policy = TimeoutPolicy.from_timeout(
                600.0 if timeout is None else timeout
            )
        self.size = size
        self.timing = timing
        self.retry_policy = retry_policy
        self.timeout_policy = timeout_policy
        self.fault_plan = fault_plan
        #: Resilient worlds tolerate fail-stop deaths instead of aborting.
        self.resilient = fault_plan is not None
        self.mailboxes: dict[tuple[int, int, int], queue.Queue] = {}
        self.mailbox_lock = threading.Lock()
        #: Everything below is guarded by ``cond``.
        self.cond = threading.Condition()
        self.scratch: dict[int, dict[int, tuple]] = {}
        self.scratch_ops: dict[int, str] = {}
        #: Expected participant set per generation, frozen by the first
        #: rank to arrive.  Membership changes mid-generation (a joiner
        #: activated by a faster rank) must not alter who an in-flight
        #: collective waits for.
        self.expected: dict[int, frozenset[int]] = {}
        #: Participant view frozen by the first rank to complete each
        #: generation — the agreement that keeps death sets consistent.
        self.outcomes: dict[int, frozenset[int]] = {}
        self.leavers: dict[int, set[int]] = {}
        self.status: dict[int, str] = {
            r: (DORMANT if r in dormant else RUNNING) for r in range(size)
        }
        #: Ranks alive at t=0 (dormant joiners excluded).
        self.initial_live: tuple[int, ...] = tuple(
            r for r in range(size) if r not in dormant
        )
        #: Deterministic activation records per join point, installed by
        #: the first live rank to process the epoch boundary.
        self.join_info: dict[str, dict] = {}
        #: Cross-rank blackboard for values every rank computes
        #: identically (e.g. the negotiated resume prefix) that late
        #: joiners need at activation.  Guarded by ``cond``.
        self.shared: dict[str, object] = {}
        #: World-level chronicle of membership transitions (reporting).
        self.ledger = MembershipLedger(self.initial_live)
        #: Set at teardown to release ranks wedged by an injected hang.
        self.release = threading.Event()
        #: Per-rank virtual clocks, registered at communicator creation.
        #: The failure detector's heartbeat: a rank that is computing
        #: advances its clock continuously, a wedged/killed rank's clock
        #: is frozen — so suspicion reads clock *progress*, never wall
        #: time alone (which would suspect slow-but-healthy peers).
        self.clocks: dict[int, VirtualClock] = {}

    @property
    def timeout(self) -> float:
        """Per-collective suspicion deadline (harness seconds)."""
        return self.timeout_policy.collective_seconds

    @property
    def max_retries(self) -> int:
        return self.retry_policy.max_retries

    def install_join(
        self,
        point: str,
        ranks: tuple[int, ...],
        generation: int,
        entry: float,
        epoch: int,
        live: tuple[int, ...],
        dead: tuple[int, ...],
        glitched: tuple[int, ...] = (),
    ) -> dict:
        """Activate the joiners of one epoch boundary (idempotent).

        Every live participant of the boundary exchange calls this with
        identical values (generation and entry time come from the frozen
        exchange board; epoch and live set from the deterministic delta
        history), so ``setdefault`` makes the first caller the installer
        and the rest witnesses.
        """
        with self.cond:
            info = self.join_info.setdefault(point, {
                "point": point, "ranks": tuple(ranks),
                "generation": generation, "entry": entry, "epoch": epoch,
                "live": tuple(live), "dead": tuple(dead),
            })
            for r in info["ranks"]:
                if self.status[r] == DORMANT:
                    self.status[r] = RUNNING
            self.cond.notify_all()
            return info

    def await_activation(self, rank: int, point: str) -> dict | None:
        """Block a dormant joiner until its epoch boundary (or teardown).

        Returns the activation record, or ``None`` when the world tore
        down before the boundary was reached (the joiner then exits
        without ever having been a member).
        """
        with self.cond:
            while self.status[rank] == DORMANT and not self.release.is_set():
                self.cond.wait(0.05)
            if self.status[rank] != RUNNING:
                return None
            return self.join_info.get(point)

    def mailbox(self, src: int, dst: int, tag: int) -> queue.Queue:
        key = (src, dst, tag)
        with self.mailbox_lock:
            q = self.mailboxes.get(key)
            if q is None:
                q = self.mailboxes[key] = queue.Queue()
            return q

    def running(self) -> list[int]:
        """Ranks still executing (caller must hold ``cond``)."""
        return [r for r in range(self.size) if self.status[r] == RUNNING]

    def any_running(self) -> bool:
        with self.cond:
            return any(s == RUNNING for s in self.status.values())

    def mark(self, rank: int, status: str) -> None:
        with self.cond:
            if self.status[rank] == RUNNING:
                self.status[rank] = status
            self.cond.notify_all()

    def status_of(self, rank: int) -> str:
        with self.cond:
            return self.status[rank]

    def dead_ranks(self) -> list[int]:
        with self.cond:
            return sorted(r for r in range(self.size) if self.status[r] == DEAD)


class SimComm:
    """Per-rank communicator handle (mpi4py-flavoured lowercase API)."""

    def __init__(self, world: _World, rank: int, clock: VirtualClock | None = None) -> None:
        if not (0 <= rank < world.size):
            raise ValueError(f"rank {rank} out of range for size {world.size}")
        self._world = world
        self.rank = rank
        self.size = world.size
        self.clock = clock if clock is not None else VirtualClock()
        world.clocks[rank] = self.clock
        self._generation = 0
        self._collective_calls = 0
        #: Ranks this communicator believes alive; shrinks only at exchange
        #: completion, so all survivors agree on it after each collective.
        self.known_alive: set[int] = set(world.initial_live)
        #: Every rank this communicator has ever seen as a member
        #: (initial live set plus observed joiners) — the base set that
        #: :attr:`known_dead` is computed against.
        self._ever_alive: set[int] = set(world.initial_live)
        #: Membership epoch: bumped once per observed delta batch
        #: (deaths noticed at one collective, or one join boundary).
        self.epoch = 0
        #: Joiner ranks this communicator has observed entering.
        self._joined_seen: set[int] = set()
        #: Epoch-boundary points already processed (each join point is
        #: handled exactly once, even across collective retries).
        self._joined_points: set[str] = set()
        #: Entry-time maximum of the most recent completed exchange —
        #: the deterministic activation instant handed to joiners.
        self._last_entry_max = 0.0
        #: True for a rank that entered the world via an elastic join;
        #: the SPMD body uses this to start from its join point instead
        #: of replaying the collectives that happened before it existed.
        self.is_joiner = False
        #: Transient-collective retries performed by this rank.
        self.n_retries = 0
        #: Virtual seconds this rank spent in retry backoff.
        self.backoff_seconds = 0.0
        #: Per-rank record of every communication operation.
        self.trace: list[CommEvent] = []
        #: True when the world's timing model carries a node topology
        #: (duck-typed: it offers ``collective_phases``).  Flat worlds
        #: must stay byte-identical, so every topology-only behaviour —
        #: split recording, per-hop send costs, re-election charges —
        #: is gated on this flag.
        self._topology_aware = hasattr(world.timing, "collective_phases")

    def _record(self, op: str, started_at: float, payload: int,
                intra: float = 0.0, inter: float = 0.0) -> None:
        seconds = self.clock.now - started_at
        self.trace.append(
            CommEvent(
                op=op,
                rank=self.rank,
                seconds=seconds,
                payload_bytes=payload,
                started_at=started_at,
                intra_seconds=intra,
                inter_seconds=inter,
            )
        )
        rec = _obs_current()
        if rec is not None:
            # The CommEvent trace generalised into the span model: one
            # span per operation on the rank's main track, plus running
            # call/byte/seconds counters and a payload histogram.
            rec.span(op, "comm", started_at, args={"bytes": payload})
            rec.count(f"comm.calls.{op}")
            rec.count(f"comm.bytes.{op}", payload)
            rec.count(f"comm.seconds.{op}", seconds)
            rec.observe("comm.payload_bytes", payload)
            if self._topology_aware:
                rec.count("comm.seconds.intra", intra)
                rec.count("comm.seconds.inter", inter)

    def _collective_cost(self, op: str, payload: int) -> tuple[float, float, float]:
        """Modelled transfer cost of one collective: (total, intra, inter).

        Topology-aware worlds split the cost over the two phases of the
        hierarchical design (node-local at shared-memory cost, leaders
        over the network) and price the *alive member set*; the flat
        path keeps the historical size-based formulas byte-for-byte.
        """
        timing = self._world.timing
        if self._topology_aware:
            phases = timing.collective_phases(op, self.known_alive, payload)
            return phases.total, phases.intra, phases.inter
        if op == "barrier":
            return timing.barrier_seconds(self.size), 0.0, 0.0
        return timing.collective_seconds(self.size, payload), 0.0, 0.0

    def comm_seconds(self) -> float:
        """Total virtual time this rank spent communicating (including
        barrier wait — i.e. time attributable to synchronisation)."""
        return sum(e.seconds for e in self.trace)

    def comm_intra_seconds(self) -> float:
        """Modelled intra-node share of this rank's communication time
        (0.0 in a flat world)."""
        return sum(e.intra_seconds for e in self.trace)

    def comm_inter_seconds(self) -> float:
        """Modelled inter-node share of this rank's communication time
        (0.0 in a flat world)."""
        return sum(e.inter_seconds for e in self.trace)

    def node_leaders(self) -> dict[int, int]:
        """Current node → leader map (smallest alive rank per node).

        Empty for flat or trivial-topology worlds.  Recomputed from
        :attr:`known_alive` on every call — this *is* the deterministic
        re-election rule: a dead leader is replaced by the next alive
        rank of its node the instant the death set is agreed."""
        topo = getattr(self._world.timing, "topology", None)
        if topo is None or topo.is_trivial:
            return {}
        return topo.leaders(self.known_alive)

    def alive_ranks(self) -> list[int]:
        """Ranks this communicator believes alive (sorted)."""
        return sorted(self.known_alive)

    @property
    def known_dead(self) -> list[int]:
        """Ranks this communicator has observed dying (sorted).

        Computed against the set of ranks that were ever members —
        dormant joiners that have not entered yet are neither alive nor
        dead."""
        return sorted(self._ever_alive - self.known_alive)

    def membership_view(self) -> MembershipView:
        """This rank's current versioned membership picture."""
        return MembershipView(
            epoch=self.epoch,
            live=tuple(sorted(self.known_alive)),
            joined=tuple(sorted(self._joined_seen)),
            dead=tuple(self.known_dead),
        )

    def _bump_epoch(self, *, joined=(), dead=(), point: str | None = None) -> None:
        """Advance the membership epoch by one observed delta batch."""
        self.epoch += 1
        rec = _obs_current()
        if rec is not None:
            args = {"epoch": self.epoch, "live": sorted(self.known_alive)}
            if joined:
                args["joined"] = sorted(joined)
            if dead:
                args["dead"] = sorted(dead)
            if point is not None:
                args["point"] = point
            rec.count("membership.epochs")
            rec.instant("membership-epoch", "fault", args=args)

    # -- mpi4py-style accessors ------------------------------------------

    def Get_rank(self) -> int:
        return self.rank

    def Get_size(self) -> int:
        return self.size

    # -- point-to-point -----------------------------------------------------

    def send(self, obj, dest: int, tag: int = 0) -> None:
        if not (0 <= dest < self.size):
            raise ValueError(f"invalid destination rank {dest}")
        if dest == self.rank:
            raise ValueError("send to self would deadlock a blocking recv")
        t0 = self.clock.now
        payload = _payload_bytes(obj)
        timing = self._world.timing
        if self._topology_aware:
            cost = timing.message_seconds(payload, src=self.rank, dst=dest)
            intra_hop = timing.topology.same_node(self.rank, dest)
            intra, inter = (cost, 0.0) if intra_hop else (0.0, cost)
        else:
            cost = timing.message_seconds(payload)
            intra = inter = 0.0
        self.clock.advance(cost)
        self._world.mailbox(self.rank, dest, tag).put((obj, self.clock.now))
        self._record("send", t0, payload, intra=intra, inter=inter)

    def recv(self, source: int, tag: int = 0):
        if not (0 <= source < self.size):
            raise ValueError(f"invalid source rank {source}")
        world = self._world
        mailbox = world.mailbox(source, self.rank, tag)
        deadline = time.monotonic() + world.timeout
        while True:
            try:
                obj, sent_at = mailbox.get(timeout=0.05)
                break
            except queue.Empty:
                status = world.status_of(source)
                if status == DEAD:
                    self.known_alive.discard(source)
                    self._bump_epoch(dead=(source,))
                    world.ledger.record_deaths((source,), self.clock.now)
                    rec = _obs_current()
                    if rec is not None:
                        rec.count("comm.rank_failures")
                        rec.instant(
                            "rank-failure", "fault",
                            args={"op": f"recv(tag={tag})", "dead": [source],
                                  "known_dead": self.known_dead},
                        )
                    raise RankFailure((source,), op=f"recv(tag={tag})") from None
                if status in (EXITED, FAILED):
                    raise SPMDError(
                        f"rank {self.rank} cannot receive from rank {source}: "
                        f"it {status} without sending (tag {tag})"
                    ) from None
                if time.monotonic() >= deadline:
                    raise SPMDError(
                        f"rank {self.rank} timed out receiving from rank "
                        f"{source} (tag {tag})"
                    ) from None
        # A blocking receive cannot complete before the message exists.
        t0 = self.clock.now
        self.clock.synchronize(sent_at)
        self._record("recv", t0, _payload_bytes(obj))
        return obj

    # -- fault hooks --------------------------------------------------------

    def _apply_collective_faults(self, op: str) -> None:
        """Evaluate the fault plan at the entry of one collective call."""
        world = self._world
        index = self._collective_calls
        self._collective_calls += 1
        plan = world.fault_plan
        if plan is None:
            return
        plan.kill_at_collective(self.rank, index)
        glitch = plan.glitch_at(self.rank, index)
        if glitch is None:
            return
        if glitch.kind == "delay":
            self.clock.advance(glitch.delay_seconds)
        elif glitch.kind == "hang":
            # The rank wedges inside the collective; peers declare it dead
            # via their deadlines, and the launcher releases the thread at
            # teardown so it can die cleanly.
            world.release.wait()
            raise RankKilledError(
                f"rank {self.rank} hung in collective call {index}"
            )
        elif glitch.kind == "fail":
            policy = world.retry_policy
            attempts = min(glitch.failures, policy.max_retries)
            rec = _obs_current()
            for attempt in range(attempts):
                backoff = policy.backoff_seconds(attempt)
                self.n_retries += 1
                self.backoff_seconds += backoff
                self.clock.advance(backoff)
                if rec is not None:
                    rec.count("comm.retries")
                    rec.count("comm.backoff_seconds", backoff)
                    rec.instant(
                        "retry", "comm",
                        args={"op": op, "call": index, "attempt": attempt + 1},
                    )
            if glitch.failures > world.max_retries:
                if rec is not None:
                    rec.instant(
                        "retry-exhausted", "comm", args={"op": op, "call": index}
                    )
                raise RetryExhaustedError(
                    f"rank {self.rank}: collective {op!r} (call {index}) "
                    f"still failing after {world.max_retries} retries"
                )

    # -- collectives --------------------------------------------------------

    def _exchange(self, value, op: str = "collective", internal: bool = False) -> dict[int, tuple]:
        """All-to-all scratch exchange underpinning every collective.

        ``op`` names the collective; ranks disagreeing on which collective
        they are in (a classic SPMD bug) are detected and rejected.  With
        ``internal=True`` the exchange is a runtime-coordination step:
        fault hooks are skipped (but death detection still applies).
        """
        world = self._world
        if not internal:
            self._apply_collective_faults(op)
        gen = self._generation
        self._generation += 1
        deadline = time.monotonic() + world.timeout
        hard_deadline = time.monotonic() + world.timeout_policy.world_seconds
        #: Heartbeat observations per straggler: (virtual clock, wall
        #: time it was last seen advancing).
        progress: dict[int, tuple[float | None, float]] = {}
        with world.cond:
            expected = world.scratch_ops.setdefault(gen, op)
            if expected != op:
                raise SPMDError(
                    f"collective mismatch at generation {gen}: rank "
                    f"{self.rank} called {op!r} but another rank called "
                    f"{expected!r}"
                )
            board = world.scratch.setdefault(gen, {})
            # The first arriver freezes who participates in this
            # generation: the ranks running *now*.  A joiner activated
            # while the collective is in flight enters at the next
            # generation — nobody must wait for it here.
            expected = world.expected.setdefault(
                gen, frozenset(world.running()) | {self.rank}
            )
            if self.rank in board:
                raise SPMDError(
                    f"rank {self.rank} re-entered collective generation {gen}"
                )
            board[self.rank] = (value, self.clock.now)
            world.cond.notify_all()
            while True:
                waiting_for = [
                    r for r in sorted(expected)
                    if r not in board and world.status[r] == RUNNING
                ]
                defectors = [
                    r for r in sorted(expected)
                    if r not in board and world.status[r] in (EXITED, FAILED)
                ]
                if defectors:
                    raise SPMDError(
                        f"collective {op!r} (generation {gen}) broken: "
                        f"rank(s) {defectors} left the computation without "
                        "joining it (mismatched collective ordering?)"
                    )
                if not waiting_for:
                    break
                if world.resilient:
                    # Fail-stop suspicion on frozen virtual clocks: a
                    # straggler is declared dead only once its clock has
                    # made no progress for the per-call deadline.  A
                    # peer that is legitimately computing advances its
                    # clock continuously (every likelihood op charges
                    # it); a wedged, killed or diverged rank's clock is
                    # frozen — so slow-but-healthy ranks are never
                    # falsely suspected, no matter how long their stage
                    # takes in harness time.
                    now = time.monotonic()
                    stalled = []
                    for r in waiting_for:
                        rc = world.clocks.get(r)
                        beat = rc.now if rc is not None else None
                        prev = progress.get(r)
                        if prev is None or prev[0] != beat:
                            progress[r] = (beat, now)
                        elif now - prev[1] >= world.timeout:
                            stalled.append(r)
                    if stalled:
                        for r in stalled:
                            world.status[r] = DEAD
                        world.cond.notify_all()
                        continue
                    if now >= hard_deadline:
                        raise SPMDError(
                            f"collective {op!r} (generation {gen}) broken: "
                            f"rank {self.rank} exceeded the world deadline "
                            f"({world.timeout_policy.world_seconds:.1f}s) "
                            f"waiting for live rank(s) {waiting_for}"
                        )
                    world.cond.wait(0.25)
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0.0:
                    raise SPMDError(
                        f"collective {op!r} (generation {gen}) broken: rank "
                        f"{self.rank} timed out after {world.timeout:.1f}s "
                        f"waiting for rank(s) {waiting_for}"
                    )
                world.cond.wait(min(remaining, 0.25))
            # The first rank to complete freezes the participant view so
            # every survivor observes the *same* death set for this call.
            outcome = world.outcomes.get(gen)
            if outcome is None:
                outcome = world.outcomes[gen] = frozenset(
                    r for r in expected if world.status[r] == RUNNING
                )
            result = dict(board)
            left = world.leavers.setdefault(gen, set())
            left.add(self.rank)
            if outcome <= left:
                for store in (world.scratch, world.scratch_ops,
                              world.expected, world.outcomes, world.leavers):
                    store.pop(gen, None)
        # Deterministic instant of this exchange (max of the frozen entry
        # clocks) — the activation time handed to joiners at a boundary.
        self._last_entry_max = max(t for _, t in result.values())
        newly_dead = sorted(self.known_alive - outcome)
        if newly_dead:
            # Leader set *before* the deaths are applied: any of these
            # leaders in the death set triggers deterministic
            # re-election (the map is a pure function of the alive set).
            old_leaders = self.node_leaders()
            self.known_alive.difference_update(newly_dead)
            # The failure detector's round-trip cost (0.0 by default).
            self.clock.advance(world.timeout_policy.suspicion_charge_seconds)
            self._bump_epoch(dead=newly_dead)
            world.ledger.record_deaths(tuple(newly_dead), self.clock.now)
            rec = _obs_current()
            if rec is not None:
                rec.count("comm.rank_failures")
                rec.instant(
                    "rank-failure", "fault",
                    args={"op": op, "dead": newly_dead,
                          "known_dead": self.known_dead},
                )
            dead_set = set(newly_dead)
            dead_leaders = sorted(
                r for r in old_leaders.values() if r in dead_set
            )
            if dead_leaders:
                # Leader hand-off: the successor (next alive rank of the
                # node) inherits mid-collective; each survivor charges
                # the modelled hand-off cost once per lost leader.
                self.clock.advance(
                    world.timeout_policy.reelection_charge_seconds
                    * len(dead_leaders)
                )
                if rec is not None:
                    rec.count("comm.leader_reelections", len(dead_leaders))
                    rec.instant(
                        "leader-reelection", "fault",
                        args={
                            "op": op,
                            "dead_leaders": dead_leaders,
                            "leaders": {
                                str(n): r
                                for n, r in sorted(self.node_leaders().items())
                            },
                        },
                    )
            raise RankFailure(newly_dead, op=op)
        return result

    def _plain_allgather(self, obj, op: str = "coordination") -> list:
        """Cost-free allgather for runtime coordination (e.g. negotiating
        a common checkpoint-resume point): no virtual-clock advance, no
        trace entry, no fault hooks — so resumed runs stay bit-identical
        to uninterrupted ones."""
        board = self._exchange(obj, op=op, internal=True)
        return [board[r][0] if r in board else None for r in range(self.size)]

    def publish(self, key: str, value):
        """Deposit a coordination value on the world blackboard.

        First writer wins (every rank must compute the value
        identically); late joiners read it with :meth:`lookup` after
        activation.  Cost-free — publication is runtime coordination,
        not modelled communication."""
        with self._world.cond:
            return self._world.shared.setdefault(key, value)

    def lookup(self, key: str, default=None):
        """Read a value previously :meth:`publish`-ed by any rank."""
        with self._world.cond:
            return self._world.shared.get(key, default)

    # -- membership epochs ---------------------------------------------------

    def advance_epoch(self, point: str) -> None:
        """Process the membership epoch boundary at pipeline ``point``.

        A no-op unless the fault plan declares joiners at this point.
        Otherwise the live ranks run one internal coordination exchange
        (so the activation instant — generation, entry clock, live set —
        is identical everywhere) and activate the dormant joiners.  Each
        point is processed at most once per rank, so backend retry loops
        can safely call this again after handling a :class:`RankFailure`.

        Peer deaths noticed *at* the boundary exchange still raise
        :class:`RankFailure`, but only after the join has been applied —
        the joiner is then part of the surviving membership that runs
        recovery.
        """
        world = self._world
        plan = world.fault_plan
        if plan is None:
            return
        joining = plan.joins_at(point)
        if not joining or point in self._joined_points:
            return
        self._joined_points.add(point)
        try:
            self._exchange(None, op=f"epoch:{point}", internal=True)
        except RankFailure:
            self._activate(point, joining)
            raise
        self._activate(point, joining)

    def _activate(self, point: str, joining: tuple[int, ...]) -> None:
        """Apply one join delta locally and install the activation record."""
        world = self._world
        self.known_alive.update(joining)
        self._ever_alive.update(joining)
        self._joined_seen.update(joining)
        self._bump_epoch(joined=joining, point=point)
        entry = self._last_entry_max
        world.install_join(
            point, joining,
            generation=self._generation,
            entry=entry,
            epoch=self.epoch,
            live=tuple(sorted(self.known_alive)),
            dead=tuple(self.known_dead),
        )
        world.ledger.record_join(point, joining, self.epoch, entry)

    def _adopt_join_state(self, info: dict) -> None:
        """Initialise a freshly-activated joiner from its activation record.

        The record was computed identically by every live participant of
        the boundary exchange, so the joiner enters with a deterministic
        generation, clock, epoch and membership view.
        """
        self.is_joiner = True
        self._generation = info["generation"]
        self.clock.synchronize(info["entry"])
        self._last_entry_max = info["entry"]
        self.known_alive = set(info["live"])
        self._ever_alive = set(info["live"]) | set(info["dead"])
        self.epoch = info["epoch"]
        self._joined_seen = set(info["ranks"])
        self._joined_points.add(info["point"])

    def _sync_clocks(self, board: dict[int, tuple], extra: float) -> None:
        entry_max = max(t for _, t in board.values())
        self.clock.synchronize(entry_max)
        self.clock.advance(extra)

    def barrier(self) -> None:
        """Synchronise all ranks (the paper's post-bootstrap barrier)."""
        t0 = self.clock.now
        board = self._exchange(None, op="barrier")
        total, intra, inter = self._collective_cost("barrier", 0)
        self._sync_clocks(board, total)
        self._record("barrier", t0, 0, intra=intra, inter=inter)

    def bcast(self, obj, root: int = 0):
        """Broadcast from ``root`` (the paper's final best-solution bcast)."""
        if not (0 <= root < self.size):
            raise ValueError(f"invalid root rank {root}")
        t0 = self.clock.now
        board = self._exchange(obj if self.rank == root else None, op="bcast")
        if root not in board:
            # The root died in an *earlier* collective, so this exchange
            # completes over the survivors without raising.  Survivors
            # must still see a RankFailure (with the frozen death set) —
            # a generic SPMDError here would leave them unable to run
            # recovery in lockstep.
            if self._world.resilient:
                raise RankFailure(self.known_dead, op="bcast")
            raise SPMDError(f"bcast root {root} is dead")
        value = board[root][0]
        payload = _payload_bytes(value)
        total, intra, inter = self._collective_cost("bcast", payload)
        self._sync_clocks(board, total)
        self._record("bcast", t0, payload, intra=intra, inter=inter)
        return value

    def gather(self, obj, root: int = 0):
        if not (0 <= root < self.size):
            raise ValueError(f"invalid root rank {root}")
        t0 = self.clock.now
        board = self._exchange(obj, op="gather")
        values = [board[r][0] if r in board else None for r in range(self.size)]
        payload = max(_payload_bytes(v) for v in values)
        total, intra, inter = self._collective_cost("gather", payload)
        self._sync_clocks(board, total)
        self._record("gather", t0, payload, intra=intra, inter=inter)
        return values if self.rank == root else None

    def allgather(self, obj) -> list:
        """Gather everyone's value on every rank.  Ranks that died before
        contributing appear as ``None`` entries (resilient mode only —
        otherwise a death raises before any entry can be missing)."""
        t0 = self.clock.now
        board = self._exchange(obj, op="allgather")
        values = [board[r][0] if r in board else None for r in range(self.size)]
        payload = max(_payload_bytes(v) for v in values)
        total, intra, inter = self._collective_cost("allgather", payload)
        self._sync_clocks(board, total)
        self._record("allgather", t0, payload, intra=intra, inter=inter)
        return values

    def allreduce(self, obj, op=None):
        """Reduce with ``op`` (a 2-ary callable; default: sum).

        Ranks absent from the exchange (dead peers in resilient mode) are
        excluded via the :data:`DEAD_RANK` sentinel — **not** by value —
        so a rank legitimately contributing ``None`` participates in the
        reduction.  If no contribution survives at all, the reduction is
        undefined and :class:`AllRanksDeadError` is raised.
        """
        t0 = self.clock.now
        board = self._exchange(obj, op="allreduce")
        values = [
            board[r][0] if r in board else DEAD_RANK for r in range(self.size)
        ]
        alive = [v for v in values if v is not DEAD_RANK]
        if not alive:
            raise AllRanksDeadError(
                f"allreduce at rank {self.rank}: no rank contributed a "
                "value (every participant is dead); nothing to reduce"
            )
        payload = max(_payload_bytes(v) for v in alive)
        total, intra, inter = self._collective_cost("allreduce", payload)
        self._sync_clocks(board, total)
        self._record("allreduce", t0, payload, intra=intra, inter=inter)
        acc = alive[0]
        for v in alive[1:]:
            acc = acc + v if op is None else op(acc, v)
        return acc
