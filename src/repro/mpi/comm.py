"""The simulated communicator.

Ranks execute as cooperating Python threads; messages travel through
in-memory mailboxes; collectives are built from a shared generation-tagged
scratch board plus a thread barrier.  All ranks must call collectives in
the same order (the standard SPMD contract — violations raise
:class:`SPMDError` via generation mismatches or barrier timeouts).

Virtual time: each rank owns a clock; a collective advances every
participant to ``max(entry clocks) + cost(p, payload)``.  The cost model
(:class:`CommTiming`) defaults to realistic-but-small cluster constants —
the paper stresses that "a fast and expensive interconnect is not
required" because communication is negligible.
"""

from __future__ import annotations

import pickle
import queue
import threading
from dataclasses import dataclass
from math import ceil, log2

from repro.util.timing import VirtualClock


class SPMDError(RuntimeError):
    """Raised when ranks violate the SPMD collective-ordering contract."""


@dataclass(frozen=True)
class CommTiming:
    """Virtual-time costs of communication operations (seconds)."""

    latency: float = 5e-6  # per point-to-point message
    byte_time: float = 1e-9  # per payload byte (~1 GB/s interconnect)
    barrier_base: float = 1e-5  # per barrier, times ceil(log2(p))

    def message_seconds(self, n_bytes: int) -> float:
        return self.latency + self.byte_time * n_bytes

    def barrier_seconds(self, size: int) -> float:
        if size <= 1:
            return 0.0
        return self.barrier_base * ceil(log2(size))

    def collective_seconds(self, size: int, n_bytes: int) -> float:
        """Tree-structured collective: log2(p) message rounds."""
        if size <= 1:
            return 0.0
        return ceil(log2(size)) * self.message_seconds(n_bytes)


def _payload_bytes(obj) -> int:
    """Approximate wire size of a Python object (pickle length)."""
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 64  # unpicklable objects still need *some* cost


@dataclass(frozen=True)
class CommEvent:
    """One recorded communication operation (for the per-rank trace)."""

    op: str
    rank: int
    seconds: float  # virtual time spent in the operation
    payload_bytes: int
    started_at: float


class _World:
    """Shared state of one SPMD run."""

    def __init__(self, size: int, timing: CommTiming, timeout: float) -> None:
        self.size = size
        self.timing = timing
        self.timeout = timeout
        self.mailboxes: dict[tuple[int, int, int], queue.Queue] = {}
        self.mailbox_lock = threading.Lock()
        self.scratch: dict[int, dict[int, object]] = {}
        self.scratch_ops: dict[int, str] = {}
        self.scratch_lock = threading.Lock()
        self.barrier = threading.Barrier(size)

    def mailbox(self, src: int, dst: int, tag: int) -> queue.Queue:
        key = (src, dst, tag)
        with self.mailbox_lock:
            q = self.mailboxes.get(key)
            if q is None:
                q = self.mailboxes[key] = queue.Queue()
            return q


class SimComm:
    """Per-rank communicator handle (mpi4py-flavoured lowercase API)."""

    def __init__(self, world: _World, rank: int, clock: VirtualClock | None = None) -> None:
        if not (0 <= rank < world.size):
            raise ValueError(f"rank {rank} out of range for size {world.size}")
        self._world = world
        self.rank = rank
        self.size = world.size
        self.clock = clock if clock is not None else VirtualClock()
        self._generation = 0
        #: Per-rank record of every communication operation.
        self.trace: list[CommEvent] = []

    def _record(self, op: str, started_at: float, payload: int) -> None:
        self.trace.append(
            CommEvent(
                op=op,
                rank=self.rank,
                seconds=self.clock.now - started_at,
                payload_bytes=payload,
                started_at=started_at,
            )
        )

    def comm_seconds(self) -> float:
        """Total virtual time this rank spent communicating (including
        barrier wait — i.e. time attributable to synchronisation)."""
        return sum(e.seconds for e in self.trace)

    # -- mpi4py-style accessors ------------------------------------------

    def Get_rank(self) -> int:
        return self.rank

    def Get_size(self) -> int:
        return self.size

    # -- point-to-point -----------------------------------------------------

    def send(self, obj, dest: int, tag: int = 0) -> None:
        if not (0 <= dest < self.size):
            raise ValueError(f"invalid destination rank {dest}")
        if dest == self.rank:
            raise ValueError("send to self would deadlock a blocking recv")
        t0 = self.clock.now
        payload = _payload_bytes(obj)
        cost = self._world.timing.message_seconds(payload)
        self.clock.advance(cost)
        self._world.mailbox(self.rank, dest, tag).put((obj, self.clock.now))
        self._record("send", t0, payload)

    def recv(self, source: int, tag: int = 0):
        if not (0 <= source < self.size):
            raise ValueError(f"invalid source rank {source}")
        try:
            obj, sent_at = self._world.mailbox(source, self.rank, tag).get(
                timeout=self._world.timeout
            )
        except queue.Empty:
            raise SPMDError(
                f"rank {self.rank} timed out receiving from rank {source} (tag {tag})"
            ) from None
        # A blocking receive cannot complete before the message exists.
        t0 = self.clock.now
        self.clock.synchronize(sent_at)
        self._record("recv", t0, _payload_bytes(obj))
        return obj

    # -- collectives --------------------------------------------------------

    def _exchange(self, value, op: str = "collective") -> dict[int, object]:
        """All-to-all scratch exchange underpinning every collective.

        ``op`` names the collective; ranks disagreeing on which collective
        they are in (a classic SPMD bug) are detected and rejected.
        """
        gen = self._generation
        self._generation += 1
        world = self._world
        with world.scratch_lock:
            ops = world.scratch_ops.setdefault(gen, op)
            if ops != op:
                world.barrier.abort()
                raise SPMDError(
                    f"collective mismatch at generation {gen}: rank "
                    f"{self.rank} called {op!r} but another rank called {ops!r}"
                )
            board = world.scratch.setdefault(gen, {})
            if self.rank in board:
                raise SPMDError(
                    f"rank {self.rank} re-entered collective generation {gen}"
                )
            board[self.rank] = (value, self.clock.now)
        try:
            world.barrier.wait(timeout=world.timeout)
        except threading.BrokenBarrierError:
            raise SPMDError(
                f"collective {gen} broken: some rank never arrived "
                "(mismatched collective ordering?)"
            ) from None
        with world.scratch_lock:
            board = world.scratch[gen]
            result = dict(board)
        # Second barrier before cleanup so nobody reads a reaped board.
        try:
            world.barrier.wait(timeout=world.timeout)
        except threading.BrokenBarrierError:
            raise SPMDError(f"collective {gen} broken during cleanup") from None
        if self.rank == 0:
            with world.scratch_lock:
                world.scratch.pop(gen, None)
                world.scratch_ops.pop(gen, None)
        return result

    def _sync_clocks(self, board: dict[int, object], extra: float) -> None:
        entry_max = max(t for _, t in board.values())
        self.clock.synchronize(entry_max)
        self.clock.advance(extra)

    def barrier(self) -> None:
        """Synchronise all ranks (the paper's post-bootstrap barrier)."""
        t0 = self.clock.now
        board = self._exchange(None, op="barrier")
        self._sync_clocks(board, self._world.timing.barrier_seconds(self.size))
        self._record("barrier", t0, 0)

    def bcast(self, obj, root: int = 0):
        """Broadcast from ``root`` (the paper's final best-solution bcast)."""
        if not (0 <= root < self.size):
            raise ValueError(f"invalid root rank {root}")
        t0 = self.clock.now
        board = self._exchange(obj if self.rank == root else None, op="bcast")
        value = board[root][0]
        payload = _payload_bytes(value)
        cost = self._world.timing.collective_seconds(self.size, payload)
        self._sync_clocks(board, cost)
        self._record("bcast", t0, payload)
        return value

    def gather(self, obj, root: int = 0):
        if not (0 <= root < self.size):
            raise ValueError(f"invalid root rank {root}")
        t0 = self.clock.now
        board = self._exchange(obj, op="gather")
        values = [board[r][0] for r in range(self.size)]
        payload = max(_payload_bytes(v) for v in values)
        cost = self._world.timing.collective_seconds(self.size, payload)
        self._sync_clocks(board, cost)
        self._record("gather", t0, payload)
        return values if self.rank == root else None

    def allgather(self, obj) -> list:
        t0 = self.clock.now
        board = self._exchange(obj, op="allgather")
        values = [board[r][0] for r in range(self.size)]
        payload = max(_payload_bytes(v) for v in values)
        cost = self._world.timing.collective_seconds(self.size, payload)
        self._sync_clocks(board, cost)
        self._record("allgather", t0, payload)
        return values

    def allreduce(self, obj, op=None):
        """Reduce with ``op`` (a 2-ary callable; default: sum)."""
        values = self.allgather(obj)
        if op is None:
            total = values[0]
            for v in values[1:]:
                total = total + v
            return total
        acc = values[0]
        for v in values[1:]:
            acc = op(acc, v)
        return acc
