"""SPMD launcher: run one function across p simulated MPI ranks."""

from __future__ import annotations

import threading
import time
from typing import Callable, Sequence

from repro.mpi.comm import (
    DEAD,
    EXITED,
    FAILED,
    AllRanksDeadError,
    CommTiming,
    SimComm,
    SPMDError,
    _World,
)
from repro.mpi.faults import FaultPlan, RankKilledError
from repro.util.timing import VirtualClock


def _raise_rank_errors(errors: list) -> None:
    """Raise the primary rank error with every other one attached.

    The primary is the first non-SPMD error by rank (an SPMDError is
    usually collateral damage of whatever went wrong first), falling back
    to the first SPMDError.  All other errors ride along as ``__notes__``
    so multi-rank failures stay diagnosable.
    """
    ranked = [(r, e) for r, e in enumerate(errors) if e is not None]
    if not ranked:
        return
    primary = next(
        ((r, e) for r, e in ranked if not isinstance(e, SPMDError)), ranked[0]
    )
    rank, exc = primary
    others = [(r, e) for r, e in ranked if r != rank]
    if others:
        notes = [
            f"[simmpi] also failed: rank {r}: {type(e).__name__}: {e}"
            for r, e in others
        ]
        exc.__notes__ = [*getattr(exc, "__notes__", []), *notes]
    raise exc


def run_spmd(
    fn: Callable[[SimComm], object],
    n_ranks: int,
    comm_timing: CommTiming | None = None,
    clocks: Sequence[VirtualClock] | None = None,
    timeout: float = 600.0,
    fault_plan: FaultPlan | None = None,
) -> list:
    """Execute ``fn(comm)`` on every rank of a simulated world.

    Ranks run as daemon threads (the GIL serialises the Python work — this
    runtime provides *semantics and virtual timing*, not wall-clock
    speedup).  Returns the per-rank return values in rank order.  The
    primary rank exception, if any, is re-raised in the caller with the
    other ranks' errors attached as ``__notes__``.

    ``clocks`` optionally supplies pre-created per-rank virtual clocks so
    the caller can inspect final rank times.  ``fault_plan`` switches the
    world into resilient mode and injects the planned faults; ranks killed
    by the plan return ``None`` in the result list (their peers are
    expected to recover their work).
    """
    if n_ranks < 1:
        raise ValueError(f"n_ranks must be >= 1, got {n_ranks}")
    timing = comm_timing if comm_timing is not None else CommTiming()
    if clocks is not None and len(clocks) != n_ranks:
        raise ValueError("clocks must have one entry per rank")
    world = _World(n_ranks, timing, timeout, fault_plan=fault_plan)
    results: list = [None] * n_ranks
    errors: list = [None] * n_ranks
    deaths: list = [None] * n_ranks

    def target(rank: int) -> None:
        comm = SimComm(world, rank, clocks[rank] if clocks is not None else None)
        try:
            results[rank] = fn(comm)
        except RankKilledError as exc:
            deaths[rank] = exc
            world.mark(rank, DEAD)
            return
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            errors[rank] = exc
            world.mark(rank, FAILED)
            return
        world.mark(rank, EXITED)

    threads = [
        threading.Thread(target=target, args=(r,), name=f"simmpi-rank-{r}", daemon=True)
        for r in range(n_ranks)
    ]
    for t in threads:
        t.start()
    # One *shared* deadline for the whole world (a per-thread timeout would
    # make the worst-case wait n_ranks x timeout).  Ranks already declared
    # dead are not waited for: their threads are released below.
    deadline = time.monotonic() + timeout
    for rank, t in enumerate(threads):
        while t.is_alive():
            if world.status_of(rank) == DEAD:
                break
            remaining = deadline - time.monotonic()
            if remaining <= 0.0:
                break
            t.join(min(remaining, 0.1))
    # Wake any rank wedged inside an injected hang so its thread can exit.
    world.release.set()
    stuck = []
    for rank, t in enumerate(threads):
        if t.is_alive():
            t.join(0.5)
        if t.is_alive() and world.status_of(rank) != DEAD:
            stuck.append(t.name)
    if stuck:
        raise SPMDError(
            f"{', '.join(stuck)} did not finish within the shared "
            f"{timeout}s deadline"
        )
    _raise_rank_errors(errors)
    if fault_plan is None:
        for death in deaths:
            if death is not None:
                # A RankKilledError outside a fault plan is a bug, not a
                # simulated failure — surface it.
                raise death
    elif world.dead_ranks() == list(range(n_ranks)):
        raise AllRanksDeadError(
            f"all {n_ranks} ranks died before completing; nothing to recover"
        )
    return results
