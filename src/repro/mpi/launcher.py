"""SPMD launcher: run one function across p simulated MPI ranks."""

from __future__ import annotations

import threading
from typing import Callable, Sequence

from repro.mpi.comm import CommTiming, SimComm, SPMDError, _World
from repro.util.timing import VirtualClock


def run_spmd(
    fn: Callable[[SimComm], object],
    n_ranks: int,
    comm_timing: CommTiming | None = None,
    clocks: Sequence[VirtualClock] | None = None,
    timeout: float = 600.0,
) -> list:
    """Execute ``fn(comm)`` on every rank of a simulated world.

    Ranks run as daemon threads (the GIL serialises the Python work — this
    runtime provides *semantics and virtual timing*, not wall-clock
    speedup).  Returns the per-rank return values in rank order.  The
    first rank exception, if any, is re-raised in the caller.

    ``clocks`` optionally supplies pre-created per-rank virtual clocks so
    the caller can inspect final rank times.
    """
    if n_ranks < 1:
        raise ValueError(f"n_ranks must be >= 1, got {n_ranks}")
    timing = comm_timing if comm_timing is not None else CommTiming()
    if clocks is not None and len(clocks) != n_ranks:
        raise ValueError("clocks must have one entry per rank")
    world = _World(n_ranks, timing, timeout)
    results: list = [None] * n_ranks
    errors: list = [None] * n_ranks

    def target(rank: int) -> None:
        comm = SimComm(world, rank, clocks[rank] if clocks is not None else None)
        try:
            results[rank] = fn(comm)
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            errors[rank] = exc
            world.barrier.abort()  # wake peers stuck in collectives

    threads = [
        threading.Thread(target=target, args=(r,), name=f"simmpi-rank-{r}", daemon=True)
        for r in range(n_ranks)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout)
        if t.is_alive():
            world.barrier.abort()
            raise SPMDError(f"{t.name} did not finish within {timeout}s")

    for rank, err in enumerate(errors):
        if err is not None and not isinstance(err, SPMDError):
            raise err
    # Pure SPMD errors (broken barriers) surface only if nothing better.
    for err in errors:
        if err is not None:
            raise err
    return results
