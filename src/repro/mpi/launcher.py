"""SPMD launcher: run one function across p simulated MPI ranks.

``comm_timing`` accepts either the flat :class:`~repro.mpi.comm.CommTiming`
or a topology-aware :class:`~repro.mpi.topology.HierarchicalCommTiming` —
the world and communicator duck-type on it, so hierarchical collectives
need no launcher changes beyond passing the richer timing object.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Sequence

from repro.mpi.comm import (
    DEAD,
    DORMANT,
    EXITED,
    FAILED,
    AllRanksDeadError,
    CommTiming,
    SimComm,
    SPMDError,
    _World,
)
from repro.mpi.faults import FaultPlan, RankKilledError
from repro.mpi.policy import RetryPolicy, TimeoutPolicy
from repro.util.timing import VirtualClock


def _raise_rank_errors(errors: list) -> None:
    """Raise the primary rank error with every other one attached.

    The primary is the first non-SPMD error by rank (an SPMDError is
    usually collateral damage of whatever went wrong first), falling back
    to the first SPMDError.  All other errors ride along as ``__notes__``
    so multi-rank failures stay diagnosable.
    """
    ranked = [(r, e) for r, e in enumerate(errors) if e is not None]
    if not ranked:
        return
    primary = next(
        ((r, e) for r, e in ranked if not isinstance(e, SPMDError)), ranked[0]
    )
    rank, exc = primary
    others = [(r, e) for r, e in ranked if r != rank]
    if others:
        notes = [
            f"[simmpi] also failed: rank {r}: {type(e).__name__}: {e}"
            for r, e in others
        ]
        exc.__notes__ = [*getattr(exc, "__notes__", []), *notes]
    raise exc


def _joiner_ranks(n_ranks: int, fault_plan: FaultPlan | None) -> tuple[int, ...]:
    """Validate and return the plan's joiner ranks (sorted)."""
    if fault_plan is None or not fault_plan.joins:
        return ()
    joiners = tuple(sorted(j.rank for j in fault_plan.joins))
    expected = tuple(range(n_ranks, n_ranks + len(joiners)))
    if joiners != expected:
        raise ValueError(
            f"joiner ranks must be numbered directly above the initial "
            f"world of {n_ranks}: expected {list(expected)}, got "
            f"{list(joiners)}"
        )
    return joiners


def run_spmd(
    fn: Callable[[SimComm], object],
    n_ranks: int,
    comm_timing: CommTiming | None = None,
    clocks: Sequence[VirtualClock] | None = None,
    timeout: float = 600.0,
    fault_plan: FaultPlan | None = None,
    retry_policy: RetryPolicy | None = None,
    timeout_policy: TimeoutPolicy | None = None,
) -> list:
    """Execute ``fn(comm)`` on every rank of a simulated world.

    Ranks run as daemon threads (the GIL serialises the Python work — this
    runtime provides *semantics and virtual timing*, not wall-clock
    speedup).  Returns the per-rank return values in rank order.  The
    primary rank exception, if any, is re-raised in the caller with the
    other ranks' errors attached as ``__notes__``.

    ``clocks`` optionally supplies pre-created per-rank virtual clocks so
    the caller can inspect final rank times.  ``fault_plan`` switches the
    world into resilient mode and injects the planned faults; ranks killed
    by the plan return ``None`` in the result list (their peers are
    expected to recover their work).

    A plan with :class:`~repro.mpi.faults.JoinSpec` entries allocates the
    joiner ranks up front as *dormant* threads: they block until the live
    ranks reach the declared epoch boundary (``comm.advance_epoch``),
    then run ``fn`` with a communicator initialised from the boundary's
    deterministic activation record.  The result list covers initial and
    joiner ranks; joiners that were never activated return ``None``.

    ``retry_policy`` / ``timeout_policy`` consolidate the resilience
    knobs; the legacy ``timeout`` float is honoured when no
    ``timeout_policy`` is given (it governs both the per-collective
    suspicion deadline and the shared world deadline).
    """
    if n_ranks < 1:
        raise ValueError(f"n_ranks must be >= 1, got {n_ranks}")
    timing = comm_timing if comm_timing is not None else CommTiming()
    if timeout_policy is None:
        timeout_policy = TimeoutPolicy.from_timeout(timeout)
    joiners = _joiner_ranks(n_ranks, fault_plan)
    total = n_ranks + len(joiners)
    if clocks is not None and len(clocks) not in (n_ranks, total):
        raise ValueError("clocks must have one entry per rank")
    world = _World(
        total, timing, fault_plan=fault_plan,
        retry_policy=retry_policy, timeout_policy=timeout_policy,
        dormant=joiners,
    )
    results: list = [None] * total
    errors: list = [None] * total
    deaths: list = [None] * total

    def rank_clock(rank: int) -> VirtualClock | None:
        if clocks is None or rank >= len(clocks):
            return None
        return clocks[rank]

    def target(rank: int) -> None:
        comm = SimComm(world, rank, rank_clock(rank))
        if rank in joiners:
            point = fault_plan.join_stage_of(rank)
            info = world.await_activation(rank, point)
            if info is None:
                # World tore down before the boundary: the joiner never
                # became a member; it exits still dormant.
                return
            comm._adopt_join_state(info)
        try:
            results[rank] = fn(comm)
        except RankKilledError as exc:
            deaths[rank] = exc
            world.mark(rank, DEAD)
            return
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            errors[rank] = exc
            world.mark(rank, FAILED)
            return
        world.mark(rank, EXITED)

    threads = [
        threading.Thread(target=target, args=(r,), name=f"simmpi-rank-{r}", daemon=True)
        for r in range(total)
    ]
    for t in threads:
        t.start()
    # One *shared* deadline for the whole world (a per-thread timeout would
    # make the worst-case wait n_ranks x timeout).  Ranks already declared
    # dead are not waited for: their threads are released below.  Dormant
    # joiners are only waited for while someone is left to activate them.
    deadline = time.monotonic() + timeout_policy.world_seconds
    for rank, t in enumerate(threads):
        while t.is_alive():
            status = world.status_of(rank)
            if status == DEAD:
                break
            if status == DORMANT and not world.any_running():
                break  # nobody left alive to reach this joiner's boundary
            remaining = deadline - time.monotonic()
            if remaining <= 0.0:
                break
            t.join(min(remaining, 0.1))
    # Wake any rank wedged inside an injected hang (or a joiner that will
    # never be activated) so its thread can exit.
    world.release.set()
    stuck = []
    for rank, t in enumerate(threads):
        if t.is_alive():
            t.join(0.5)
        if t.is_alive() and world.status_of(rank) not in (DEAD, DORMANT):
            stuck.append(t.name)
    if stuck:
        raise SPMDError(
            f"{', '.join(stuck)} did not finish within the shared "
            f"{timeout_policy.world_seconds}s deadline"
        )
    _raise_rank_errors(errors)
    if fault_plan is None:
        for death in deaths:
            if death is not None:
                # A RankKilledError outside a fault plan is a bug, not a
                # simulated failure — surface it.
                raise death
    else:
        member_statuses = [
            world.status_of(r) for r in range(total)
            if world.status_of(r) != DORMANT
        ]
        if member_statuses and all(s == DEAD for s in member_statuses):
            raise AllRanksDeadError(
                f"all {len(member_statuses)} member ranks died before "
                "completing; nothing to recover"
            )
    return results
