"""Simulated MPI substrate (SPMD over rank threads, virtual clocks).

The paper's MPI usage is deliberately minimal: each rank parses its own
input, works independently, and the only noteworthy communications are an
``MPI_Barrier`` after the bootstrap stage and an ``MPI_Bcast`` to select
the final best solution (Section 2.1).  This package provides:

* :class:`SimComm` — an mpi4py-style communicator (send/recv/bcast/
  barrier/gather/allgather/allreduce) backed by in-process mailboxes, with
  a per-rank :class:`~repro.util.timing.VirtualClock` that collectives
  synchronise exactly as real barriers synchronise wall clocks;
* :func:`run_spmd` — launch one SPMD function across ``p`` rank threads;
* :mod:`repro.mpi.mp_backend` — a *real* ``multiprocessing`` backend for
  the embarrassingly-parallel rank work (functional demonstration; the
  virtual-clock runtime is what the benchmarks time).
"""

from repro.mpi.comm import (
    DEAD_RANK,
    AllRanksDeadError,
    CommEvent,
    CommTiming,
    DistributedStateError,
    RankFailure,
    RetryExhaustedError,
    SimComm,
    SPMDError,
)
from repro.mpi.faults import (
    CollectiveGlitch,
    FaultPlan,
    JoinSpec,
    KillSpec,
    RankKilledError,
)
from repro.mpi.launcher import run_spmd
from repro.mpi.membership import MembershipLedger, MembershipView
from repro.mpi.mp_backend import run_coarse_multiprocessing
from repro.mpi.policy import RetryPolicy, TimeoutPolicy
from repro.util.rng import rank_seed

__all__ = [
    "SimComm",
    "CommTiming",
    "CommEvent",
    "SPMDError",
    "RankFailure",
    "DistributedStateError",
    "RetryExhaustedError",
    "AllRanksDeadError",
    "DEAD_RANK",
    "FaultPlan",
    "KillSpec",
    "CollectiveGlitch",
    "JoinSpec",
    "RankKilledError",
    "MembershipView",
    "MembershipLedger",
    "RetryPolicy",
    "TimeoutPolicy",
    "run_spmd",
    "run_coarse_multiprocessing",
    "rank_seed",
]
