"""Real coarse-grained parallelism via ``multiprocessing``.

The paper's coarse grain is embarrassingly parallel: ranks work
independently and only the final best-solution selection communicates.
That pattern maps directly onto a process pool: run the per-rank work
function in worker processes and reduce in the parent.  This backend
demonstrates *functional* multi-process execution (results identical to
the simulated runtime); the virtual-clock runtime remains the tool for
timing studies, since a laptop has nowhere near 80 cores.
"""

from __future__ import annotations

import concurrent.futures
import os
from typing import Callable


def run_coarse_multiprocessing(
    fn: Callable[[int, int], object],
    n_ranks: int,
    max_workers: int | None = None,
) -> list:
    """Run ``fn(rank, size)`` for every rank in a process pool.

    ``fn`` must be a picklable top-level function.  Results are returned
    in rank order.  ``max_workers`` defaults to ``min(n_ranks, cpu_count)``
    — ranks beyond the worker count simply queue, which changes wall time
    but not results.
    """
    if n_ranks < 1:
        raise ValueError(f"n_ranks must be >= 1, got {n_ranks}")
    if max_workers is None:
        max_workers = min(n_ranks, os.cpu_count() or 1)
    if n_ranks == 1 or max_workers == 1:
        # Degenerate case: avoid pool overhead entirely.
        return [fn(rank, n_ranks) for rank in range(n_ranks)]
    with concurrent.futures.ProcessPoolExecutor(max_workers=max_workers) as pool:
        futures = [pool.submit(fn, rank, n_ranks) for rank in range(n_ranks)]
        return [f.result() for f in futures]
