"""Deterministic fault injection for the simulated MPI runtime.

Long comprehensive analyses on the paper's clusters (Abe, Ranger, Triton)
routinely lose nodes mid-run, and Zhou et al. ("Frustrated with
MPI+Threads?") catalogue the collective-mismatch/hang failure modes a
hybrid runtime must detect.  A :class:`FaultPlan` describes, *ahead of
time and deterministically*, which simulated rank fails where:

* :class:`KillSpec` — fail-stop death of a rank at a named point: a stage
  boundary, the k-th bootstrap replicate, or the n-th collective call.
  Death is modelled by raising :class:`RankKilledError`, which derives
  from ``BaseException`` so a stray ``except Exception`` inside the
  analysis code cannot accidentally resurrect a dead node.
* :class:`CollectiveGlitch` — a *transient* problem in one rank's n-th
  collective call: extra latency (``delay``), a bounded number of
  failures that the communicator retries with exponential backoff
  (``fail``), or an indefinite hang that peers must detect via their
  per-call deadlines (``hang``).
* :class:`JoinSpec` — the elastic counterpart of a kill: an extra rank
  that starts *dormant* and enters the world at a named stage boundary
  (an epoch boundary of the membership layer).

Plans are immutable and evaluated with pure arithmetic, so the same plan
injected into the same run produces the same failure every time — the
property that makes recovery *testable*.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Pipeline points accepted by :class:`KillSpec.stage` (the hybrid
#: driver's stage boundaries, in execution order).
STAGE_POINTS = ("setup", "bootstrap", "fast", "slow", "thorough", "finalize")

#: Transient-glitch kinds accepted by :class:`CollectiveGlitch.kind`.
GLITCH_KINDS = ("fail", "delay", "hang")


class RankKilledError(BaseException):
    """A simulated fail-stop rank death (node loss, OOM kill, job eviction).

    Deliberately a ``BaseException``: analysis code that catches
    ``Exception`` must not be able to swallow a node death.
    """


@dataclass(frozen=True)
class KillSpec:
    """Kill ``rank`` (or every rank, when ``rank`` is None) at one point.

    Exactly one of ``stage``, ``replicate``, ``collective`` must be set:

    * ``stage`` — at the named stage boundary, before the stage runs;
    * ``replicate`` — just before the rank's k-th local bootstrap
      replicate (0-based);
    * ``collective`` — on entry to the rank's n-th collective call
      (0-based), i.e. *inside* the communication layer.
    """

    rank: int | None
    stage: str | None = None
    replicate: int | None = None
    collective: int | None = None

    def __post_init__(self) -> None:
        points = [p for p in (self.stage, self.replicate, self.collective)
                  if p is not None]
        if len(points) != 1:
            raise ValueError(
                "KillSpec needs exactly one of stage/replicate/collective, "
                f"got {self!r}"
            )
        if self.stage is not None and self.stage not in STAGE_POINTS:
            raise ValueError(
                f"unknown stage {self.stage!r}; expected one of {STAGE_POINTS}"
            )
        if self.replicate is not None and self.replicate < 0:
            raise ValueError("replicate index must be >= 0")
        if self.collective is not None and self.collective < 0:
            raise ValueError("collective index must be >= 0")

    def targets(self, rank: int) -> bool:
        return self.rank is None or self.rank == rank


@dataclass(frozen=True)
class CollectiveGlitch:
    """A transient problem in ``rank``'s ``call_index``-th collective.

    * ``kind="fail"`` — the call fails ``failures`` times before
      succeeding; the communicator retries with exponential backoff and
      counts the retries.
    * ``kind="delay"`` — the call costs ``delay_seconds`` extra virtual
      time (a congested or degraded link).
    * ``kind="hang"`` — the rank wedges inside the call forever; peers
      must declare it dead via their per-call deadline.
    """

    rank: int
    call_index: int
    kind: str = "fail"
    failures: int = 1
    delay_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in GLITCH_KINDS:
            raise ValueError(
                f"unknown glitch kind {self.kind!r}; expected one of {GLITCH_KINDS}"
            )
        if self.rank < 0:
            raise ValueError("rank must be >= 0")
        if self.call_index < 0:
            raise ValueError("call_index must be >= 0")
        if self.kind == "fail" and self.failures < 1:
            raise ValueError("failures must be >= 1 for kind='fail'")
        if self.kind == "delay" and self.delay_seconds <= 0:
            raise ValueError("delay_seconds must be > 0 for kind='delay'")


@dataclass(frozen=True)
class JoinSpec:
    """Rank ``rank`` joins the world at the ``stage`` epoch boundary.

    Joining ranks are allocated up front by the launcher but start
    *dormant* — invisible to collectives, schedules and suspicion — and
    are activated when the live ranks reach ``stage``'s boundary (via
    ``SimComm.advance_epoch``).  Joiner ranks must be numbered directly
    above the initial world (``n_ranks``, ``n_ranks + 1``, ...); the
    launcher validates the numbering.
    """

    rank: int
    stage: str

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError("rank must be >= 0")
        if self.stage not in STAGE_POINTS:
            raise ValueError(
                f"unknown stage {self.stage!r}; expected one of {STAGE_POINTS}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """The complete, deterministic fault schedule of one SPMD run.

    Passing any plan (even an empty one) to :func:`repro.mpi.run_spmd`
    switches the world into *resilient* mode: peer deaths are tolerated
    and surfaced as :class:`repro.mpi.comm.RankFailure` instead of
    aborting the run.
    """

    kills: tuple[KillSpec, ...] = ()
    glitches: tuple[CollectiveGlitch, ...] = ()
    joins: tuple[JoinSpec, ...] = ()

    def __post_init__(self) -> None:
        seen = set()
        for g in self.glitches:
            key = (g.rank, g.call_index)
            if key in seen:
                raise ValueError(
                    f"multiple glitches for rank {g.rank} collective "
                    f"{g.call_index}"
                )
            seen.add(key)
        joiners = set()
        for j in self.joins:
            if j.rank in joiners:
                raise ValueError(f"multiple joins for rank {j.rank}")
            joiners.add(j.rank)

    # -- kill points --------------------------------------------------------

    def kill_at_stage(self, rank: int, stage: str) -> None:
        for k in self.kills:
            if k.stage == stage and k.targets(rank):
                raise RankKilledError(
                    f"rank {rank} killed at stage boundary {stage!r}"
                )

    def kill_at_replicate(self, rank: int, replicate: int) -> None:
        for k in self.kills:
            if k.replicate == replicate and k.targets(rank):
                raise RankKilledError(
                    f"rank {rank} killed at bootstrap replicate {replicate}"
                )

    def kill_at_collective(self, rank: int, call_index: int) -> None:
        for k in self.kills:
            if k.collective == call_index and k.targets(rank):
                raise RankKilledError(
                    f"rank {rank} killed inside collective call {call_index}"
                )

    # -- transient glitches --------------------------------------------------

    def glitch_at(self, rank: int, call_index: int) -> CollectiveGlitch | None:
        for g in self.glitches:
            if g.rank == rank and g.call_index == call_index:
                return g
        return None

    # -- elastic joins -------------------------------------------------------

    def joins_at(self, stage: str) -> tuple[int, ...]:
        """Joiner ranks entering at the ``stage`` epoch boundary, sorted."""
        return tuple(sorted(j.rank for j in self.joins if j.stage == stage))

    def join_stage_of(self, rank: int) -> str | None:
        for j in self.joins:
            if j.rank == rank:
                return j.stage
        return None
