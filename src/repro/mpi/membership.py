"""Epoch-based rank membership.

Each rank holds a versioned :class:`MembershipView` — the epoch number,
the live set, and the deltas (ranks that joined, ranks that died) that
produced it.  Views advance deterministically: deaths are discovered by
the resilient collectives' suspicion deadline on virtual clocks (the
collective arrival *is* the heartbeat; missing the deadline is the
suspicion), and joins happen only at declared epoch boundaries via
:meth:`repro.mpi.comm.SimComm.advance_epoch`.  Because both kinds of
delta surface exclusively at deterministic collective points, every
rank walks the same sequence of views for a given fault plan — there
is no gossip round and no wall-clock sensitivity.

The :class:`MembershipLedger` is the world-level chronicle of those
transitions; it exists for the launcher and for post-run reporting.
The per-rank view (``SimComm.membership_view()``) is the authority a
rank acts on, because a rank must never act on membership information
it has not yet deterministically observed.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass, field


@dataclass(frozen=True)
class MembershipView:
    """One rank's versioned picture of who is in the world.

    ``epoch`` increments by one for every observed membership change
    (a batch of deaths noticed at one collective, or a join boundary).
    ``live`` is the full membership after the change; ``joined`` and
    ``dead`` are the deltas that produced this view from its
    predecessor.
    """

    epoch: int
    live: tuple[int, ...]
    joined: tuple[int, ...] = ()
    dead: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.epoch < 0:
            raise ValueError(f"epoch must be >= 0, got {self.epoch}")
        if tuple(sorted(self.live)) != self.live:
            raise ValueError(f"live set must be sorted, got {self.live!r}")

    @property
    def size(self) -> int:
        return len(self.live)

    def fingerprint(self) -> str:
        """Stable digest of (epoch, live) — what a checkpoint stamps.

        Deltas are history, not state: two ranks that reached the same
        epoch and live set agree on membership regardless of how the
        deltas were batched, so only (epoch, live) participates.
        """
        doc = {"epoch": self.epoch, "live": list(self.live)}
        blob = json.dumps(doc, sort_keys=True).encode("ascii")
        return hashlib.sha256(blob).hexdigest()[:16]

    def node_leaders(self, topology) -> dict[int, int]:
        """Node → leader rank among this view's live set.

        The leader of a node is the smallest live rank mapped to it by
        ``topology`` (see :meth:`repro.mpi.topology.Topology.leaders`) —
        re-election after a leader death is therefore a pure function of
        the view, needing no extra protocol.  Empty for a trivial (or
        ``None``) topology: the flat world has no leaders.
        """
        if topology is None or topology.is_trivial:
            return {}
        return topology.leaders(self.live)

    def as_doc(self) -> dict:
        return {
            "epoch": self.epoch,
            "live": list(self.live),
            "joined": list(self.joined),
            "dead": list(self.dead),
            "fingerprint": self.fingerprint(),
        }


@dataclass
class MembershipLedger:
    """World-level chronicle of membership transitions.

    Thread-safe append-only record kept by ``_World`` for post-run
    reporting.  Ranks do *not* read the ledger to make decisions —
    they act on their own deterministic :class:`MembershipView`.
    """

    initial_live: tuple[int, ...]
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    events: list[dict] = field(default_factory=list)

    def record_join(self, point: str, ranks: tuple[int, ...], epoch: int,
                    time: float) -> None:
        with self._lock:
            key = ("join", point, ranks)
            if any(e["_key"] == key for e in self.events):
                return  # every live rank reports the same activation once
            self.events.append({
                "_key": key, "kind": "join", "point": point,
                "ranks": list(ranks), "epoch": epoch, "time": time,
            })

    def record_deaths(self, ranks: tuple[int, ...], time: float) -> None:
        with self._lock:
            key = ("death", ranks)
            if any(e["_key"] == key for e in self.events):
                return  # survivors all observe the same death batch
            self.events.append({
                "_key": key, "kind": "death", "ranks": list(ranks),
                "time": time,
            })

    def as_doc(self) -> dict:
        with self._lock:
            return {
                "initial_live": list(self.initial_live),
                "events": [
                    {k: v for k, v in e.items() if k != "_key"}
                    for e in self.events
                ],
            }
