"""Unified retry/timeout/backoff policy for the communication layer.

Before this module every resilience knob lived as a loose constant:
``MAX_RETRIES`` and ``RETRY_BACKOFF`` in :mod:`repro.mpi.comm`, the
``timeout=`` keyword of :func:`repro.mpi.launcher.run_spmd`, the
``spmd_timeout`` field of :class:`repro.hybrid.driver.HybridConfig`,
and the steal-board deadline in the work-steal backend.  The two frozen
dataclasses here consolidate them so each middleware/layer is handed
one policy object instead of threading individual floats around.

Both policies are *deterministic*: backoff is charged to the virtual
clock (never slept), and timeouts are expressed in the same simulated
seconds the collectives use for suspicion deadlines.  Neither
participates in the checkpoint config fingerprint — how patiently a
run retried does not change what it computed.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Historical defaults, re-exported for callers that predate the policy
#: objects (``comm.MAX_RETRIES`` / ``comm.RETRY_BACKOFF`` alias these).
DEFAULT_MAX_RETRIES = 8
DEFAULT_BACKOFF = 1e-3


@dataclass(frozen=True)
class RetryPolicy:
    """How often and how patiently an operation is retried.

    ``backoff_seconds(attempt)`` is the virtual-clock charge before
    retry number ``attempt`` (0-based): ``base_backoff * multiplier**attempt``.
    The charge is deterministic — it advances the rank's virtual clock,
    it never sleeps a wall-clock thread.
    """

    max_retries: int = DEFAULT_MAX_RETRIES
    base_backoff: float = DEFAULT_BACKOFF
    multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.base_backoff < 0:
            raise ValueError(f"base_backoff must be >= 0, got {self.base_backoff}")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")

    def backoff_seconds(self, attempt: int) -> float:
        """Virtual seconds to charge before the given 0-based retry."""
        return self.base_backoff * (self.multiplier ** attempt)


@dataclass(frozen=True)
class TimeoutPolicy:
    """Every deadline the distributed run observes, in one place.

    ``collective_seconds`` — resilient-collective suspicion deadline: a
    rank whose partners have not posted within this many harness
    seconds of its own arrival declares them dead.  This is the
    heartbeat of the membership layer — arrival at a collective is the
    heartbeat, missing the deadline is the suspicion.

    ``world_seconds`` — harness deadline for the whole SPMD region;
    trips only when the simulation itself wedges.

    ``suspicion_charge_seconds`` — virtual-clock cost every survivor
    pays when it declares a peer dead (models the failure-detector
    round-trip).  Defaults to 0.0, which preserves the historical
    timing behaviour exactly.

    ``reelection_charge_seconds`` — additional virtual-clock cost per
    *node leader* among the newly dead, paid by every survivor of a
    topology-aware run (the leader hand-off: the successor must learn
    the in-flight leader state).  Leaders are recomputed from the alive
    set, so re-election itself needs no protocol — this charge is its
    modelled cost.  Defaults to 0.0; flat runs never pay it.
    """

    collective_seconds: float = 600.0
    world_seconds: float = 600.0
    suspicion_charge_seconds: float = 0.0
    reelection_charge_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.collective_seconds <= 0:
            raise ValueError(
                f"collective_seconds must be > 0, got {self.collective_seconds}"
            )
        if self.world_seconds <= 0:
            raise ValueError(f"world_seconds must be > 0, got {self.world_seconds}")
        if self.suspicion_charge_seconds < 0:
            raise ValueError(
                "suspicion_charge_seconds must be >= 0, "
                f"got {self.suspicion_charge_seconds}"
            )
        if self.reelection_charge_seconds < 0:
            raise ValueError(
                "reelection_charge_seconds must be >= 0, "
                f"got {self.reelection_charge_seconds}"
            )

    @classmethod
    def from_timeout(cls, timeout: float) -> "TimeoutPolicy":
        """Back-compat helper: one legacy ``timeout`` float governs both."""
        return cls(collective_seconds=timeout, world_seconds=timeout)
