"""Virtual communication channels (VCIs) for threaded lanes.

"Frustrated with MPI+Threads? Try MPI×Threads!" observes that a hybrid
code whose threads all funnel through their rank's single MPI endpoint
serialises on it; giving each thread (or small groups of threads) an
independent *virtual communication interface* removes that serialisation
without changing program semantics.

Here the serialisation point is the per-region reduction: after every
likelihood region the rank's vthread lanes post their partial results to
the rank mailbox.  A :class:`ChannelSet` models ``C`` independent
channels over ``T`` lanes: the ``T`` simultaneous posts are round-robined
over the channels, so the makespan is ``ceil(T/C)`` *serialized rounds*
of one post each — ``C = 1`` is the fully-serialised legacy endpoint,
``C = T`` posts everything in parallel.  Posts are always intra-node
(lanes share their rank's memory), so the per-post cost comes from the
machine's intra-node constants regardless of the network topology.

The steal board gets its own dedicated channel: steal requests are rare,
asynchronous, and must never queue behind a burst of lane posts.  Its
cost is charged by the scheduler (the board's commit rule); the channel
records the traffic for the per-channel observability split.

Everything is opt-in: a rank without a :class:`ChannelSet` charges no
post cost at all, which is the historical (pre-VCI) behaviour, pinned by
the golden parity suite.
"""

from __future__ import annotations

from math import ceil
from typing import Callable


def channel_rounds(n_posts: int, n_channels: int) -> int:
    """Serialized rounds needed to drain ``n_posts`` over ``n_channels``."""
    if n_posts <= 0:
        return 0
    if n_channels < 1:
        raise ValueError(f"n_channels must be >= 1, got {n_channels}")
    return ceil(n_posts / n_channels)


class ChannelStats:
    """Traffic counters of one virtual channel."""

    __slots__ = ("posts", "bytes", "seconds")

    def __init__(self) -> None:
        self.posts = 0
        self.bytes = 0
        self.seconds = 0.0

    def note(self, n_posts: int, n_bytes: int, seconds: float) -> None:
        self.posts += n_posts
        self.bytes += n_bytes * n_posts
        self.seconds += seconds

    def as_doc(self) -> dict:
        return {"posts": self.posts, "bytes": self.bytes,
                "seconds": self.seconds}


class ChannelSet:
    """``n_channels`` lane channels plus the dedicated steal channel.

    ``post_seconds(n_bytes)`` prices one lane post (an intra-node hop:
    the lanes live inside one rank).  All accounting is deterministic —
    lane ``i`` always posts on channel ``i % n_channels``.
    """

    STEAL = "steal"

    def __init__(self, n_channels: int,
                 post_seconds: Callable[[int], float]) -> None:
        if n_channels < 1:
            raise ValueError(f"n_channels must be >= 1, got {n_channels}")
        self.n_channels = n_channels
        self.post_seconds = post_seconds
        self._lanes = [ChannelStats() for _ in range(n_channels)]
        self._steal = ChannelStats()

    def lane_post_makespan(self, n_posts: int, n_bytes: int,
                           repeats: int = 1) -> float:
        """Virtual seconds until ``n_posts`` simultaneous lane posts have
        drained, repeated ``repeats`` times (e.g. once per region).

        Updates the per-channel counters: post ``i`` of each repeat goes
        to channel ``i % n_channels``, so with ``C < T`` the first
        channels carry one extra post per round.
        """
        if n_posts <= 0 or repeats <= 0:
            return 0.0
        per_post = self.post_seconds(n_bytes)
        rounds = channel_rounds(n_posts, self.n_channels)
        for c in range(self.n_channels):
            on_c = len(range(c, n_posts, self.n_channels)) * repeats
            if on_c:
                self._lanes[c].note(on_c, n_bytes, on_c * per_post)
        return rounds * per_post * repeats

    def note_steal(self, n_bytes: int, seconds: float) -> None:
        """Account one steal-board message on the dedicated channel (the
        time itself is charged by the scheduler's commit rule)."""
        self._steal.note(1, n_bytes, seconds)

    def seconds_by_channel(self) -> dict[str, float]:
        doc = {f"lane{c}": s.seconds for c, s in enumerate(self._lanes)}
        doc[self.STEAL] = self._steal.seconds
        return doc

    def as_doc(self) -> dict:
        return {
            "n_channels": self.n_channels,
            "lanes": [s.as_doc() for s in self._lanes],
            "steal": self._steal.as_doc(),
        }
