"""Node topology of the simulated cluster, and the two-tier cost model.

The paper's whole premise is that a hybrid MPI/Pthreads code must treat
intra-node and inter-node communication differently: threads inside one
node share memory, ranks across nodes cross the interconnect.  The flat
:class:`~repro.mpi.comm.CommTiming` prices every hop identically; this
module adds the node structure and a hierarchical cost model on top of
it, following the two-stage collective design of "MPI Collectives for
Multi-core Clusters": every collective runs an *intra-node phase* among
the ranks of each node (at shared-memory cost) and an *inter-node phase*
among one elected leader per node (at network cost).

Only **costs and attribution** are hierarchical.  The data plane — the
scratch-board exchange in :class:`~repro.mpi.comm.SimComm`, its
reduction order, death sets, epochs and retries — is untouched, which is
what keeps hierarchical runs bit-identical to flat runs in every
analysis output.

Leaders are not state: the leader of a node is *defined* as the smallest
alive rank mapped to it, recomputed from the survivor set at every
collective.  When a leader dies mid-collective the next collective's
leader set is therefore already re-elected, deterministically and
identically on every survivor — no election protocol, no extra
messages (an optional re-election charge can be modelled via
:class:`~repro.mpi.policy.TimeoutPolicy.reelection_charge_seconds`).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log2
from typing import Iterable

from repro.mpi.comm import CommTiming


@dataclass(frozen=True)
class Topology:
    """Rank→node map of a run: ``ranks_per_node`` consecutive ranks per node.

    ``size`` is the number of ranks the run *starts* with; elastic
    joiners get ranks above it and are mapped by the same rule
    (``rank // ranks_per_node``), so membership growth never reshuffles
    the placement of existing ranks.
    """

    size: int
    ranks_per_node: int = 1

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError(f"topology size must be >= 1, got {self.size}")
        if self.ranks_per_node < 1:
            raise ValueError(
                f"ranks_per_node must be >= 1, got {self.ranks_per_node}"
            )

    @property
    def n_nodes(self) -> int:
        """Nodes occupied by the initial ``size`` ranks."""
        return ceil(self.size / self.ranks_per_node)

    @property
    def is_trivial(self) -> bool:
        """One rank per node — the flat world."""
        return self.ranks_per_node == 1

    def node_of(self, rank: int) -> int:
        """The node hosting ``rank`` (joiner ranks >= size included)."""
        if rank < 0:
            raise ValueError(f"invalid rank {rank}")
        return rank // self.ranks_per_node

    def same_node(self, a: int, b: int) -> bool:
        return self.node_of(a) == self.node_of(b)

    def node_members(self, node: int, among: Iterable[int] | None = None) -> list[int]:
        """Ranks of ``node`` (restricted to ``among`` when given), sorted."""
        if among is None:
            among = range(self.size)
        return sorted(r for r in among if self.node_of(r) == node)

    def leaders(self, alive: Iterable[int]) -> dict[int, int]:
        """Node → leader (smallest alive rank on the node).

        Pure function of the alive set — this *is* the re-election rule:
        every survivor recomputes the same map from the same death set.
        """
        out: dict[int, int] = {}
        for r in sorted(alive):
            out.setdefault(self.node_of(r), r)
        return out

    def leader_of(self, rank: int, alive: Iterable[int]) -> int:
        """The current leader of ``rank``'s node."""
        node = self.node_of(rank)
        members = self.node_members(node, among=alive)
        if not members:
            raise ValueError(f"node {node} has no alive ranks")
        return members[0]

    def as_doc(self) -> dict:
        return {
            "size": self.size,
            "ranks_per_node": self.ranks_per_node,
            "n_nodes": self.n_nodes,
        }


@dataclass(frozen=True)
class CommPhases:
    """Modelled transfer cost of one collective, split by tier."""

    intra: float = 0.0  # intra-node phases (shared-memory cost)
    inter: float = 0.0  # inter-node leader phase (network cost)

    @property
    def total(self) -> float:
        return self.intra + self.inter


def _tree_rounds(n: int) -> int:
    """Rounds of a binomial tree over ``n`` participants."""
    return ceil(log2(n)) if n > 1 else 0


@dataclass(frozen=True)
class HierarchicalCommTiming:
    """Two-tier communication costs over a :class:`Topology`.

    Duck-type superset of :class:`~repro.mpi.comm.CommTiming`:
    ``message_seconds``/``barrier_seconds``/``collective_seconds`` keep
    working (as totals), and :meth:`collective_phases` exposes the
    intra/inter split that :class:`~repro.mpi.comm.SimComm` records.
    ``SimComm`` detects the hierarchical model by the presence of
    ``collective_phases`` — no import in either direction.

    Per-collective model (``r_max`` = ranks on the fullest node among
    the members, ``k`` = nodes represented, ``b`` = payload bytes):

    =========== ======================================= ==========================================
    op          intra phases                            inter leader phase
    =========== ======================================= ==========================================
    barrier     2·⌈log2 r_max⌉ rounds at intra base     ⌈log2 k⌉ rounds at inter base
    bcast       ⌈log2 r_max⌉ tree rounds (fan-out)      ⌈log2 k⌉ tree rounds
    gather      ⌈log2 r_max⌉ tree rounds (fan-in)       ⌈log2 k⌉ tree rounds
    allgather   2·⌈log2 r_max⌉ (fan-in + fan-out)       ⌈log2 k⌉ tree rounds
    allreduce   2·⌈log2 r_max⌉ (reduce + bcast)         Rabenseifner: 2⌈log2 k⌉·L + 2·(k−1)/k·b·B
    =========== ======================================= ==========================================

    The inter allreduce is a reduce-scatter + allgather (Rabenseifner):
    byte-count ~2b instead of the tree's ⌈log2 k⌉·b, which is where the
    ≥2× modelled win over the flat log-tree at 64 ranks comes from.
    """

    topology: Topology
    intra: CommTiming
    inter: CommTiming

    def __post_init__(self) -> None:
        if self.intra.latency > self.inter.latency:
            raise ValueError(
                "intra-node latency must not exceed inter-node latency: "
                f"{self.intra.latency} > {self.inter.latency}"
            )
        if self.intra.byte_time > self.inter.byte_time:
            raise ValueError(
                "intra-node byte time must not exceed inter-node byte time: "
                f"{self.intra.byte_time} > {self.inter.byte_time}"
            )

    @classmethod
    def for_machine(cls, machine, topology: Topology):
        """The machine's two-tier model over ``topology``.

        A trivial topology (one rank per node) *is* the flat world, so
        this returns a plain flat :class:`CommTiming` built from the
        machine's inter-node constants — which default to the historical
        flat numbers, reproducing today's costs exactly.
        """
        inter = CommTiming(
            latency=machine.inter_node_latency,
            byte_time=machine.inter_node_byte_time,
        )
        if topology.is_trivial:
            return inter
        # The barrier base scales with the tier's latency so that the
        # intra arrive/release rounds stay proportionally cheaper.
        intra = CommTiming(
            latency=machine.intra_node_latency,
            byte_time=machine.intra_node_byte_time,
            barrier_base=inter.barrier_base
            * (machine.intra_node_latency / machine.inter_node_latency),
        )
        return cls(topology=topology, intra=intra, inter=inter)

    # -- flat-compatible API -------------------------------------------------

    def message_seconds(self, n_bytes: int, src: int | None = None,
                        dst: int | None = None) -> float:
        """Point-to-point cost; hop-aware when both endpoints are given."""
        if src is not None and dst is not None and self.topology.same_node(src, dst):
            return self.intra.message_seconds(n_bytes)
        return self.inter.message_seconds(n_bytes)

    def barrier_seconds(self, size: int) -> float:
        return self.collective_phases("barrier", range(size), 0).total

    def collective_seconds(self, size: int, n_bytes: int) -> float:
        """Total cost of a tree data collective over ranks 0..size-1."""
        return self.collective_phases("bcast", range(size), n_bytes).total

    def allreduce_seconds(self, size: int, n_bytes: int) -> float:
        return self.collective_phases("allreduce", range(size), n_bytes).total

    # -- the hierarchical split ----------------------------------------------

    def collective_phases(self, op: str, members: Iterable[int],
                          n_bytes: int) -> CommPhases:
        """Intra/inter cost split of one collective over ``members``.

        ``members`` is the alive set the collective runs over (possibly
        shrunk by deaths or grown by joins); the split is a pure function
        of it, so every survivor charges identical virtual time.
        """
        per_node: dict[int, int] = {}
        n = 0
        for r in members:
            n += 1
            node = self.topology.node_of(r)
            per_node[node] = per_node.get(node, 0) + 1
        if n <= 1:
            return CommPhases()
        k = len(per_node)
        intra_rounds = _tree_rounds(max(per_node.values()))
        inter_rounds = _tree_rounds(k)
        if op == "barrier":
            return CommPhases(
                intra=2 * intra_rounds * self.intra.barrier_base,
                inter=inter_rounds * self.inter.barrier_base,
            )
        m_in = self.intra.message_seconds(n_bytes)
        m_out = self.inter.message_seconds(n_bytes)
        if op == "allreduce":
            # Leaders run reduce-scatter + allgather (Rabenseifner):
            # 2·log2(k) latency terms but only ~2·(k-1)/k payload sends.
            inter = (
                2 * inter_rounds * self.inter.latency
                + 2.0 * (k - 1) / k * n_bytes * self.inter.byte_time
            )
            return CommPhases(intra=2 * intra_rounds * m_in, inter=inter)
        if op in ("bcast", "gather"):
            return CommPhases(intra=intra_rounds * m_in,
                              inter=inter_rounds * m_out)
        # allgather and any other data collective: node-local fan-in,
        # leader exchange, node-local fan-out.
        return CommPhases(intra=2 * intra_rounds * m_in,
                          inter=inter_rounds * m_out)
