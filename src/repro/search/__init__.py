"""Tree-search substrate: starting trees, SPR hill climbing, stage searches.

Implements the search pipeline of RAxML's rapid-bootstrap "comprehensive
analysis" (``-f a``; Stamatakis, Hoover & Rougemont 2008), the algorithm
the paper parallelises:

1. N rapid **bootstrap** searches (cheap CAT-based SPR on resampled
   weights, chaining starting trees between replicates);
2. **fast** ML searches on the original alignment, started from every
   fifth bootstrap tree;
3. **slow** ML searches continuing the best fast trees;
4. one **thorough** ML search (GAMMA-based, full optimisation) from the
   best slow tree.
"""

from repro.search.starting_tree import parsimony_starting_tree, random_starting_tree
from repro.search.spr import SPRParams, spr_round
from repro.search.hillclimb import hill_climb, SearchResult
from repro.search.searches import (
    StageParams,
    bootstrap_replicate_search,
    fast_search,
    slow_search,
    thorough_search,
)
from repro.search.comprehensive import (
    ComprehensiveConfig,
    ComprehensiveResult,
    run_comprehensive,
    fast_count,
    slow_count,
)
from repro.search.nni import NNIParams, nni_round, nni_hill_climb
from repro.search.evaluate import EvaluationResult, evaluate_tree

__all__ = [
    "parsimony_starting_tree",
    "random_starting_tree",
    "SPRParams",
    "spr_round",
    "hill_climb",
    "SearchResult",
    "StageParams",
    "bootstrap_replicate_search",
    "fast_search",
    "slow_search",
    "thorough_search",
    "ComprehensiveConfig",
    "ComprehensiveResult",
    "run_comprehensive",
    "fast_count",
    "slow_count",
    "NNIParams",
    "nni_round",
    "nni_hill_climb",
    "EvaluationResult",
    "evaluate_tree",
]
