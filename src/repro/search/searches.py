"""The four stage searches of the comprehensive analysis.

Costs are deliberately ordered bootstrap < fast < slow < thorough, as in
RAxML's ``-f a`` algorithm: bootstrap replicates do the cheapest possible
topology refresh under CAT, fast searches one SPR sweep, slow searches a
radius-escalating hill climb, and the thorough search a full GAMMA-based
optimisation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.likelihood.brlen import optimize_branch_lengths
from repro.likelihood.model_opt import optimize_model
from repro.search.hillclimb import SearchResult, hill_climb
from repro.search.spr import SPRParams, spr_round
from repro.tree.topology import Tree
from repro.util.rng import RAxMLRandom


@dataclass(frozen=True)
class StageParams:
    """Per-stage search effort knobs (defaults follow RAxML's relative
    effort; tests shrink them further)."""

    bootstrap_radius: int = 5
    bootstrap_rounds: int = 1
    fast_radius: int = 5
    fast_rounds: int = 1
    slow_initial_radius: int = 5
    slow_max_radius: int = 10
    slow_max_rounds: int = 6
    thorough_initial_radius: int = 5
    thorough_max_radius: int = 15
    thorough_max_rounds: int = 12
    brlen_passes: int = 2
    min_improvement: float = 0.02
    model_opt_rounds: int = 1
    max_prune_candidates: int | None = None


def bootstrap_replicate_search(
    engine,
    start_tree: Tree,
    rng: RAxMLRandom,
    params: StageParams = StageParams(),
) -> SearchResult:
    """One rapid-bootstrap replicate: quick SPR refresh under CAT.

    ``engine`` must already carry the replicate's resampled weights.
    """
    work = start_tree.copy()
    lnl = optimize_branch_lengths(engine, work, passes=1)
    for _ in range(params.bootstrap_rounds):
        work, lnl, improved = spr_round(
            engine,
            work,
            SPRParams(
                radius=params.bootstrap_radius,
                min_improvement=params.min_improvement,
                max_prune_candidates=params.max_prune_candidates,
            ),
            current_lnl=lnl,
            rng=rng,
        )
        if not improved:
            break
    return SearchResult(work, lnl)


def fast_search(
    engine,
    start_tree: Tree,
    rng: RAxMLRandom,
    params: StageParams = StageParams(),
) -> SearchResult:
    """A fast ML search: brief SPR sweeps on the original alignment."""
    work = start_tree.copy()
    lnl = optimize_branch_lengths(engine, work, passes=params.brlen_passes)
    for _ in range(params.fast_rounds):
        work, lnl, improved = spr_round(
            engine,
            work,
            SPRParams(
                radius=params.fast_radius,
                min_improvement=params.min_improvement,
                max_prune_candidates=params.max_prune_candidates,
            ),
            current_lnl=lnl,
            rng=rng,
        )
        if not improved:
            break
    lnl = optimize_branch_lengths(engine, work, passes=params.brlen_passes)
    return SearchResult(work, lnl)


def slow_search(
    engine,
    start_tree: Tree,
    rng: RAxMLRandom,
    params: StageParams = StageParams(),
) -> SearchResult:
    """A slow ML search: radius-escalating hill climb to convergence."""
    return hill_climb(
        engine,
        start_tree,
        initial_radius=params.slow_initial_radius,
        max_radius=params.slow_max_radius,
        max_rounds=params.slow_max_rounds,
        brlen_passes=params.brlen_passes,
        min_improvement=params.min_improvement,
        rng=rng,
        max_prune_candidates=params.max_prune_candidates,
    )


def thorough_search(
    engine,
    start_tree: Tree,
    rng: RAxMLRandom,
    params: StageParams = StageParams(),
) -> tuple[SearchResult, object]:
    """The final thorough ML search under GAMMA.

    Optimises model parameters, hill-climbs with the widest radius
    schedule, and finishes with a full branch-length smoothing.  Returns
    ``(result, engine)`` because model optimisation produces a new engine.
    """
    work = start_tree.copy()
    optimize_branch_lengths(engine, work, passes=params.brlen_passes)
    engine, _ = optimize_model(engine, work, rounds=params.model_opt_rounds)
    result = hill_climb(
        engine,
        work,
        initial_radius=params.thorough_initial_radius,
        max_radius=params.thorough_max_radius,
        max_rounds=params.thorough_max_rounds,
        brlen_passes=params.brlen_passes,
        min_improvement=params.min_improvement,
        rng=rng,
        max_prune_candidates=params.max_prune_candidates,
    )
    engine, _ = optimize_model(engine, result.tree, rounds=params.model_opt_rounds)
    final_lnl = optimize_branch_lengths(engine, result.tree, passes=params.brlen_passes + 1)
    return SearchResult(result.tree, final_lnl, result.rounds), engine
