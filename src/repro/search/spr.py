"""Lazy subtree-pruning-and-regrafting (SPR) moves.

RAxML's search applies *lazy* SPR: a subtree is pruned, candidate
re-insertion edges within a rearrangement radius are scored with fixed
branch lengths using precomputed partials (one kernel call per candidate),
and only the winning insertion is optimised and fully evaluated.  This
module implements one such round over all prune positions, working on tree
copies so rejected moves leave the current tree untouched.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.likelihood.brlen import optimize_edge
from repro.obs.recorder import current as _obs_current
from repro.tree.topology import Node, Tree


@dataclass(frozen=True)
class SPRParams:
    """Tuning knobs of one SPR round.

    ``radius`` is RAxML's rearrangement setting: candidate insertion edges
    must lie within this many edges of the pruning point.  ``min_improvement``
    is the likelihood epsilon below which a move is not accepted.
    """

    radius: int = 5
    min_improvement: float = 0.01
    local_brlen: bool = True
    max_prune_candidates: int | None = None  # optionally subsample prune points

    def __post_init__(self) -> None:
        if self.radius < 1:
            raise ValueError(f"radius must be >= 1, got {self.radius}")
        if self.min_improvement < 0:
            raise ValueError("min_improvement must be non-negative")


def edges_within_radius(tree: Tree, origin: Node, radius: int) -> list[Node]:
    """All edges (child endpoints) within ``radius`` hops of ``origin``."""
    dist: dict[int, int] = {id(origin): 0}
    queue: deque[Node] = deque([origin])
    nodes: list[Node] = [origin]
    while queue:
        node = queue.popleft()
        d = dist[id(node)]
        if d >= radius:
            continue
        neighbours = list(node.children)
        if node.parent is not None:
            neighbours.append(node.parent)
        for nb in neighbours:
            if id(nb) not in dist:
                dist[id(nb)] = d + 1
                queue.append(nb)
                nodes.append(nb)
    return [n for n in nodes if n.parent is not None]


def try_spr(
    engine,
    tree: Tree,
    prune_index: int,
    params: SPRParams,
) -> tuple[Tree, float] | None:
    """Attempt the best lazy-SPR move for one prune position.

    ``prune_index`` indexes the postorder enumeration of ``tree``.  Works
    on a copy; returns ``(new_tree, lnl)`` for the best insertion found,
    or ``None`` when the position cannot be pruned (root, too-large
    subtree, or no candidate edges).
    """
    work = tree.copy()
    nodes = list(work.postorder())
    if not (0 <= prune_index < len(nodes)):
        raise IndexError(f"prune_index {prune_index} out of range")
    target = nodes[prune_index]
    if target.parent is None:
        return None
    n_sub = len(work.subtree_leaves(target))
    if work.n_leaves - n_sub < 3:
        return None

    # Subtree partial (valid after pruning: the subtree is untouched, so
    # only the nodes under the prune point need computing).
    down_sub = engine.compute_down_partials(work, subtree=target)
    d_s = engine.partial_for(down_sub, target)
    t_sub = target.length

    parent = target.parent
    siblings = [c for c in parent.children if c is not target]
    pruned, _ = work.prune(target)
    origin = siblings[0]

    # Post-prune partials.  With the engine's CLV cache enabled the
    # traversal planner serves every subtree signature untouched by the
    # prune from cache, so only the path from the pruning point to the
    # root costs kernel work; without a cache this is a full traversal.
    down = engine.compute_down_partials(work)
    up = engine.compute_up_partials(work, down)
    candidates = edges_within_radius(work, origin, params.radius)
    if not candidates:
        return None

    # Tie-break tolerance: sharded and cached evaluations are bit-identical
    # to serial ones by construction, but a clear margin keeps the chosen
    # insertion (and hence the search trajectory) stable under future
    # backends whose reductions may legitimately differ in the last ulps.
    _TIE_EPS = 1e-8
    best_edge = None
    best_score = -float("inf")
    for v in candidates:
        score = engine.insertion_loglikelihood(
            engine.partial_for(down, v),
            engine.partial_for(up, v),
            d_s,
            v.length,
            t_sub,
        )
        if score > best_score + _TIE_EPS:
            best_score = score
            best_edge = v

    joint = work.regraft(pruned, best_edge, length=t_sub)
    if params.local_brlen:
        # Optimise the three branches around the insertion point against
        # one shared set of partials (Jacobi-style, like the smoothing
        # passes) — recomputing partials per edge would triple the cost.
        down_new = engine.compute_down_partials(work)
        up_new = engine.compute_up_partials(work, down_new)
        for edge_child in [joint] + joint.children:
            if edge_child.parent is not None:
                optimize_edge(engine, work, edge_child, down=down_new, up=up_new)
    lnl = engine.loglikelihood(work)
    return work, lnl


def spr_round(
    engine,
    tree: Tree,
    params: SPRParams,
    current_lnl: float | None = None,
    rng=None,
) -> tuple[Tree, float, bool]:
    """One greedy pass over all prune positions.

    Accepted moves take effect immediately (RAxML's behaviour); returns
    ``(tree, lnl, improved_any)``.  ``rng`` optionally subsamples prune
    positions down to ``params.max_prune_candidates``.
    """
    current = tree
    lnl = engine.loglikelihood(tree) if current_lnl is None else current_lnl
    improved_any = False
    n_nodes = len(list(current.postorder()))
    indices = list(range(n_nodes))
    if (
        params.max_prune_candidates is not None
        and rng is not None
        and len(indices) > params.max_prune_candidates
    ):
        rng.shuffle(indices)
        indices = sorted(indices[: params.max_prune_candidates])
    rec = _obs_current()
    t_round = rec.now if rec is not None else 0.0
    tried = accepted = 0
    for idx in indices:
        result = try_spr(engine, current, idx, params)
        if result is None:
            continue
        tried += 1
        new_tree, new_lnl = result
        if new_lnl > lnl + params.min_improvement:
            current, lnl = new_tree, new_lnl
            improved_any = True
            accepted += 1
    if rec is not None:
        rec.count("search.spr.tried", tried)
        rec.count("search.spr.accepted", accepted)
        rec.span("spr_round", "search", t_round, args={
            "radius": params.radius, "tried": tried,
            "accepted": accepted, "lnl": lnl,
        })
    return current, lnl, improved_any
