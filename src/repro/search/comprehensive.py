"""The serial comprehensive analysis (RAxML ``-f a``).

    "The comprehensive analysis consists of four main stages: 100
    bootstrap searches, followed by 20 fast ML searches, 10 slow ML
    searches, and one final thorough ML search ... The latter three
    stages comprise the full ML search."  — paper, Section 2

The stage functions are shared with the hybrid driver
(:mod:`repro.hybrid.driver`), which composes them with the per-rank counts
of Table 2 instead of the serial counts used here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, ClassVar

import numpy as np

from repro.likelihood.cat import estimate_cat_rates
from repro.likelihood.engine import (
    LikelihoodEngine,
    OpCounter,
    RateModel,
    subset_rate_model,
)
from repro.likelihood.gtr import GTRModel
from repro.likelihood.model_opt import empirical_frequencies
from repro.seq.bootstrap import bootstrap_pattern_weights
from repro.seq.patterns import PatternAlignment
from repro.search.hillclimb import SearchResult
from repro.search.searches import (
    StageParams,
    bootstrap_replicate_search,
    fast_search,
    slow_search,
    thorough_search,
)
from repro.search.starting_tree import parsimony_starting_tree
from repro.util.validation import check_min, check_positive
from repro.tree.topology import Tree
from repro.util.rng import RAxMLRandom, spawn_stream

#: Hard-coded comprehensive-analysis parameters (paper Section 2.3: "how
#: many fast and slow searches are carried out [is] based on hard-coded
#: parameters").
FAST_FRACTION = 5  # one fast search per 5 bootstraps
SLOW_FRACTION = 2  # one slow search per 2 fast searches
MAX_SLOW = 10  # at most 10 slow searches

EngineFactory = Callable[..., object]


def default_engine_factory(pal, model, rate_model, weights, ops):
    """Build a plain serial :class:`LikelihoodEngine`."""
    return LikelihoodEngine(pal, model, rate_model, weights=weights, ops=ops)


def fast_count(n_bootstraps: int) -> int:
    """Number of fast ML searches for ``n_bootstraps`` (ceil(N/5))."""
    if n_bootstraps < 1:
        raise ValueError("n_bootstraps must be >= 1")
    return math.ceil(n_bootstraps / FAST_FRACTION)


def slow_count(n_fast: int, cap: int = MAX_SLOW) -> int:
    """Number of slow ML searches: ceil(fast/2) capped at 10."""
    if n_fast < 1:
        raise ValueError("n_fast must be >= 1")
    return min(math.ceil(n_fast / SLOW_FRACTION), cap)


@dataclass(frozen=True)
class ComprehensiveConfig:
    """Inputs of a comprehensive analysis (mirrors the RAxML command line
    ``-m GTRCAT -N <n> -p <seed> -x <seed> -f a``)."""

    n_bootstraps: int = 100
    seed_p: int = 12345  # -p: search randomness
    seed_x: int = 12345  # -x: rapid-bootstrap randomness
    gamma_categories: int = 4
    cat_categories: int = 8
    use_cat: bool = True
    parsimony_refresh_every: int = 10  # fresh parsimony start every k replicates
    #: Drop zero-weight patterns from bootstrap-replicate engines (RAxML's
    #: optimisation: a replicate only touches ~63 % of the patterns).
    compress_bootstrap_patterns: bool = True
    stage_params: StageParams = field(default_factory=StageParams)

    #: Fields that enter the checkpoint fingerprint (every one of these
    #: changes the run's results or timings; see
    #: :func:`repro.hybrid.checkpoint.fingerprint_doc`).
    fingerprint_fields: ClassVar[tuple[str, ...]] = (
        "n_bootstraps", "seed_p", "seed_x", "gamma_categories",
        "cat_categories", "use_cat", "parsimony_refresh_every",
        "compress_bootstrap_patterns", "stage_params",
    )

    def __post_init__(self) -> None:
        check_min("n_bootstraps", self.n_bootstraps, 1)
        check_positive("seed_p (RAxML -p)", self.seed_p)
        check_positive("seed_x (RAxML -x)", self.seed_x)
        check_min("parsimony_refresh_every", self.parsimony_refresh_every, 1)


@dataclass
class ComprehensiveResult:
    """Everything a comprehensive run produces."""

    best_tree: Tree
    best_lnl: float  # final GAMMA log-likelihood
    bootstrap_trees: list[Tree]
    fast_results: list[SearchResult]
    slow_results: list[SearchResult]
    thorough_result: SearchResult
    model: GTRModel
    stage_ops: dict[str, int]
    n_bootstraps_done: int


# ---------------------------------------------------------------------------
# Stage functions (shared with the hybrid driver)
# ---------------------------------------------------------------------------


def prepare_model_and_rates(
    pal: PatternAlignment,
    config: ComprehensiveConfig,
    p_rng: RAxMLRandom,
    engine_factory: EngineFactory,
    ops: OpCounter,
) -> tuple[GTRModel, RateModel, RateModel, Tree]:
    """Initial model setup: empirical frequencies, CAT estimation.

    Returns ``(model, search_rate_model, gamma_rate_model, initial_tree)``.
    The initial parsimony tree doubles as the CAT-estimation tree and the
    fallback starting topology.
    """
    gamma_rm = RateModel.gamma(1.0, config.gamma_categories)
    model = GTRModel.default()
    probe = engine_factory(pal, model, gamma_rm, None, ops)
    model = model.with_freqs(empirical_frequencies(probe))
    init_tree = parsimony_starting_tree(pal, spawn_stream(p_rng, 0))
    if config.use_cat:
        probe = engine_factory(pal, model, gamma_rm, None, ops)
        cat = estimate_cat_rates(probe, init_tree, config.cat_categories)
        search_rm = cat.rate_model()
    else:
        search_rm = gamma_rm
    return model, search_rm, gamma_rm, init_tree


def bootstrap_stage(
    pal: PatternAlignment,
    model: GTRModel,
    rate_model: RateModel,
    n_replicates: int,
    x_rng: RAxMLRandom,
    p_rng: RAxMLRandom,
    engine_factory: EngineFactory,
    ops: OpCounter,
    config: ComprehensiveConfig,
    init_tree: Tree,
    on_replicate: Callable[[int], None] | None = None,
) -> list[SearchResult]:
    """Run ``n_replicates`` rapid-bootstrap searches.

    Replicate weights are drawn sequentially from ``x_rng`` (the paper's
    per-rank ``-x`` stream); starting trees chain from the previous
    replicate, refreshed with a new parsimony tree every
    ``config.parsimony_refresh_every`` replicates.  ``on_replicate`` is
    called with the local replicate index before each replicate (the
    hybrid driver's fault-injection point).
    """
    results: list[SearchResult] = []
    current_start = init_tree
    for b in range(n_replicates):
        if on_replicate is not None:
            on_replicate(b)
        weights = bootstrap_pattern_weights(pal, x_rng)
        if config.compress_bootstrap_patterns:
            # Replicates draw ~63 % of the patterns; dropping the rest is
            # exact (zero weight = zero contribution) and saves kernel work.
            active = np.flatnonzero(weights > 0)
            sub_pal = PatternAlignment(
                pal.taxa,
                pal.patterns[:, active],
                weights[active],
                np.empty(0, dtype=np.intp),
            )
            engine = engine_factory(
                sub_pal,
                model,
                subset_rate_model(rate_model, active),
                weights[active].astype(np.float64),
                ops,
            )
        else:
            engine = engine_factory(pal, model, rate_model, weights, ops)
        if b % config.parsimony_refresh_every == 0 and b > 0:
            current_start = parsimony_starting_tree(
                pal, spawn_stream(p_rng, 1000 + b), weights=weights
            )
        res = bootstrap_replicate_search(
            engine, current_start, spawn_stream(p_rng, 2000 + b), config.stage_params
        )
        results.append(res)
        current_start = res.tree
    return results


def fast_stage(
    pal: PatternAlignment,
    model: GTRModel,
    rate_model: RateModel,
    start_trees: list[Tree],
    p_rng: RAxMLRandom,
    engine_factory: EngineFactory,
    ops: OpCounter,
    config: ComprehensiveConfig,
) -> list[SearchResult]:
    """Fast ML searches on the original alignment from the given starts."""
    engine = engine_factory(pal, model, rate_model, None, ops)
    return [
        fast_search(engine, t, spawn_stream(p_rng, 3000 + i), config.stage_params)
        for i, t in enumerate(start_trees)
    ]


def slow_stage(
    pal: PatternAlignment,
    model: GTRModel,
    rate_model: RateModel,
    start_trees: list[Tree],
    p_rng: RAxMLRandom,
    engine_factory: EngineFactory,
    ops: OpCounter,
    config: ComprehensiveConfig,
) -> list[SearchResult]:
    """Slow ML searches continuing the best fast-search trees."""
    engine = engine_factory(pal, model, rate_model, None, ops)
    return [
        slow_search(engine, t, spawn_stream(p_rng, 4000 + i), config.stage_params)
        for i, t in enumerate(start_trees)
    ]


def thorough_stage(
    pal: PatternAlignment,
    model: GTRModel,
    gamma_rm: RateModel,
    start_tree: Tree,
    p_rng: RAxMLRandom,
    engine_factory: EngineFactory,
    ops: OpCounter,
    config: ComprehensiveConfig,
) -> tuple[SearchResult, GTRModel]:
    """The final thorough GAMMA search; returns the result and the
    re-optimised model."""
    engine = engine_factory(pal, model, gamma_rm, None, ops)
    result, engine = thorough_search(
        engine, start_tree, spawn_stream(p_rng, 5000), config.stage_params
    )
    return result, engine.model


def select_fast_starts(bootstrap_trees: list[Tree], n_fast: int) -> list[Tree]:
    """Every ``FAST_FRACTION``-th bootstrap tree seeds a fast search."""
    if n_fast > len(bootstrap_trees):
        raise ValueError("cannot select more fast starts than bootstrap trees")
    return [bootstrap_trees[(i * FAST_FRACTION) % len(bootstrap_trees)] for i in range(n_fast)]


def select_best(results: list[SearchResult], k: int) -> list[SearchResult]:
    """The ``k`` best results by log-likelihood (descending, stable).

    Likelihoods are rounded to 1e-6 before comparison so that the ordering
    (and therefore which trees continue to the next stage) is independent
    of thread-count-induced floating-point noise.
    """
    if k > len(results):
        raise ValueError("cannot select more results than available")
    return sorted(results, key=lambda r: -round(r.lnl, 6))[:k]


# ---------------------------------------------------------------------------
# The serial pipeline
# ---------------------------------------------------------------------------


def run_comprehensive(
    pal: PatternAlignment,
    config: ComprehensiveConfig = ComprehensiveConfig(),
    engine_factory: EngineFactory = default_engine_factory,
    ops: OpCounter | None = None,
) -> ComprehensiveResult:
    """Serial comprehensive analysis (the non-MPI reference algorithm).

    The non-MPI code sorts *all* fast searches at once and continues with
    exactly one thorough search from the single best slow tree (paper
    Sections 2.1–2.2), which is what this function implements.
    """
    ops = ops if ops is not None else OpCounter()
    stage_ops: dict[str, int] = {}
    p_rng = RAxMLRandom(config.seed_p)
    x_rng = RAxMLRandom(config.seed_x)

    model, search_rm, gamma_rm, init_tree = prepare_model_and_rates(
        pal, config, p_rng, engine_factory, ops
    )
    mark = ops.pattern_ops
    stage_ops["setup"] = mark

    bs_results = bootstrap_stage(
        pal, model, search_rm, config.n_bootstraps, x_rng, p_rng,
        engine_factory, ops, config, init_tree,
    )
    stage_ops["bootstrap"] = ops.pattern_ops - mark
    mark = ops.pattern_ops

    bootstrap_trees = [r.tree for r in bs_results]
    n_fast = fast_count(config.n_bootstraps)
    fast_results = fast_stage(
        pal, model, search_rm, select_fast_starts(bootstrap_trees, n_fast),
        p_rng, engine_factory, ops, config,
    )
    stage_ops["fast"] = ops.pattern_ops - mark
    mark = ops.pattern_ops

    n_slow = slow_count(n_fast)
    slow_starts = [r.tree for r in select_best(fast_results, n_slow)]
    slow_results = slow_stage(
        pal, model, search_rm, slow_starts, p_rng, engine_factory, ops, config
    )
    stage_ops["slow"] = ops.pattern_ops - mark
    mark = ops.pattern_ops

    best_slow = select_best(slow_results, 1)[0]
    thorough, final_model = thorough_stage(
        pal, model, gamma_rm, best_slow.tree, p_rng, engine_factory, ops, config
    )
    stage_ops["thorough"] = ops.pattern_ops - mark

    return ComprehensiveResult(
        best_tree=thorough.tree,
        best_lnl=thorough.lnl,
        bootstrap_trees=bootstrap_trees,
        fast_results=fast_results,
        slow_results=slow_results,
        thorough_result=thorough,
        model=final_model,
        stage_ops=stage_ops,
        n_bootstraps_done=config.n_bootstraps,
    )
