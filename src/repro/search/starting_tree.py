"""Starting trees: randomised stepwise-addition parsimony (RAxML's default).

Each ML search needs a reasonable starting topology.  RAxML builds one by
adding taxa in random order, each at the parsimony-optimal insertion edge
(computed with Fitch state sets).  Randomising the addition order is what
makes "multiple ML searches from different starting trees" meaningful.
"""

from __future__ import annotations

import numpy as np

from repro.likelihood.parsimony import ParsimonyEngine
from repro.seq.patterns import PatternAlignment
from repro.tree.random_trees import random_topology
from repro.tree.topology import Node, Tree
from repro.util.rng import RAxMLRandom


def random_starting_tree(
    pal: PatternAlignment, rng: RAxMLRandom, branch_length: float = 0.1
) -> Tree:
    """A uniformly random starting topology (no parsimony guidance)."""
    return random_topology(pal.taxa, rng, branch_length=branch_length)


def parsimony_starting_tree(
    pal: PatternAlignment,
    rng: RAxMLRandom,
    weights: np.ndarray | None = None,
    branch_length: float = 0.1,
) -> Tree:
    """Randomised stepwise-addition parsimony tree.

    Taxa are shuffled; the first three form a star; each further taxon is
    inserted on the edge with the lowest approximate Fitch insertion cost.
    ``weights`` may override pattern weights (bootstrap replicates).
    """
    n = pal.n_taxa
    if n < 3:
        raise ValueError("need at least 3 taxa")
    pe = ParsimonyEngine(pal, weights)
    order = rng.permutation(n)
    tree = Tree.star(tuple(pal.taxa[i] for i in order[:3]), length=branch_length)
    for leaf, global_idx in zip(tree.root.children, order[:3]):
        leaf.leaf_index = global_idx
        leaf.name = pal.taxa[global_idx]
    tree.taxa = pal.taxa

    for global_idx in order[3:]:
        down, _ = pe.down_sets(tree)
        up = pe.up_sets(tree, down)
        costs = pe.insertion_costs(tree, global_idx, down, up)
        best_cost = min(c for _, c in costs)
        # Break ties randomly for search diversity (RAxML's behaviour).
        best_edges = [e for e, c in costs if c <= best_cost + 1e-12]
        target = best_edges[rng.next_int(len(best_edges))]
        leaf = Node(name=pal.taxa[global_idx], leaf_index=global_idx)
        tree.insert_leaf_on_edge(leaf, target, leaf_length=branch_length)
    tree.validate()
    return tree
