"""SPR hill climbing to a local likelihood optimum."""

from __future__ import annotations

from dataclasses import dataclass

from repro.likelihood.brlen import optimize_branch_lengths
from repro.obs.recorder import current as _obs_current
from repro.search.spr import SPRParams, spr_round
from repro.tree.topology import Tree


@dataclass
class SearchResult:
    """Outcome of one tree search."""

    tree: Tree
    lnl: float
    rounds: int = 0

    def __iter__(self):  # allow `tree, lnl = result`
        yield self.tree
        yield self.lnl


def hill_climb(
    engine,
    tree: Tree,
    initial_radius: int = 5,
    max_radius: int = 10,
    radius_step: int = 5,
    max_rounds: int = 25,
    brlen_passes: int = 2,
    min_improvement: float = 0.01,
    rng=None,
    max_prune_candidates: int | None = None,
) -> SearchResult:
    """Iterated SPR rounds with escalating rearrangement radius.

    Mirrors RAxML's strategy: search at a small radius while it keeps
    improving; when a round yields nothing, widen the radius; stop when
    the maximum radius also yields nothing (or ``max_rounds`` is hit).
    Branch lengths are smoothed before the first round and after every
    accepted round.  The engine's traversal planner decides per move how
    much CLV work each of these steps actually costs (see
    :mod:`repro.likelihood.plan`); results are independent of that choice.
    """
    if initial_radius < 1 or max_radius < initial_radius or radius_step < 1:
        raise ValueError("invalid radius schedule")
    rec = _obs_current()
    t_climb = rec.now if rec is not None else 0.0
    work = tree.copy()
    lnl = optimize_branch_lengths(engine, work, passes=brlen_passes)
    radius = initial_radius
    rounds = 0
    while rounds < max_rounds:
        params = SPRParams(
            radius=radius,
            min_improvement=min_improvement,
            max_prune_candidates=max_prune_candidates,
        )
        work, lnl, improved = spr_round(engine, work, params, current_lnl=lnl, rng=rng)
        rounds += 1
        if improved:
            lnl = optimize_branch_lengths(engine, work, passes=brlen_passes)
            continue
        if radius >= max_radius:
            break
        radius = min(radius + radius_step, max_radius)
    if rec is not None:
        rec.count("search.hill_climbs")
        rec.span("hill_climb", "search", t_climb, args={
            "rounds": rounds, "final_radius": radius, "lnl": lnl,
        })
    return SearchResult(work, lnl, rounds)
