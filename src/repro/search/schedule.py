"""Work partition of the comprehensive analysis across MPI ranks (Table 2).

    "The new MPI code begins by having each MPI process parse its own
    input and then gives each process N/p bootstraps ... the number of
    bootstraps done in the MPI code can be slightly larger than the
    specified number ... since each process does an equal number of
    bootstraps.  This in turn affects how many fast and slow searches are
    carried out based on hard-coded parameters."  — paper, Sections 2, 2.3

Per-rank counts (derived from RAxML's hard-coded parameters, reproducing
every row of Table 2):

* bootstraps/process  = ceil(N / p)
* fast searches/proc  = ceil(bootstraps_per_proc / 5)
* slow searches/proc  = min(ceil(fast_per_proc / 2), ceil(10 / p))
* thorough/proc       = 1   (each rank runs its own thorough search)
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.search.comprehensive import FAST_FRACTION, MAX_SLOW, SLOW_FRACTION


@dataclass(frozen=True)
class WorkSchedule:
    """Per-rank and total search counts for one (N, p) configuration."""

    n_bootstraps_requested: int
    n_processes: int
    bootstraps_per_process: int
    fast_per_process: int
    slow_per_process: int
    thorough_per_process: int

    def __post_init__(self) -> None:
        # Every rank must hold a full pipeline share — even in the
        # n_processes > n_bootstraps corner where each rank gets a single
        # replicate, the fast/slow/thorough stages still run (b=1 ⇒ f=1,
        # s=1).  A zero share would starve a stage pool and deadlock the
        # work-steal scheduler's stage barrier.
        for name in (
            "n_processes", "bootstraps_per_process", "fast_per_process",
            "slow_per_process", "thorough_per_process",
        ):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1, got {getattr(self, name)}")
        if self.total_bootstraps < self.n_bootstraps_requested:
            raise ValueError(
                f"schedule undershoots: {self.total_bootstraps} total "
                f"bootstraps < {self.n_bootstraps_requested} requested"
            )

    @property
    def total_bootstraps(self) -> int:
        return self.bootstraps_per_process * self.n_processes

    @property
    def total_fast(self) -> int:
        return self.fast_per_process * self.n_processes

    @property
    def total_slow(self) -> int:
        return self.slow_per_process * self.n_processes

    @property
    def total_thorough(self) -> int:
        return self.thorough_per_process * self.n_processes

    def shrink(self, n_survivors: int) -> "WorkSchedule":
        """Degraded-mode schedule after rank failures: the Table 2
        partition recomputed over the surviving processes.  Bootstrap
        shares are unchanged (dead ranks' replicates are *replayed* from
        their seed streams, not re-partitioned); the fast/slow shares
        follow the smaller world."""
        if not (1 <= n_survivors <= self.n_processes):
            raise ValueError(
                f"n_survivors must be in [1, {self.n_processes}], "
                f"got {n_survivors}"
            )
        return make_schedule(self.n_bootstraps_requested, n_survivors)

    def as_table_row(self) -> tuple:
        """One row of Table 2:
        (processes, bootstraps, fast, slow, thorough, bs/p, fast/p, slow/p, thorough/p)."""
        return (
            self.n_processes,
            self.total_bootstraps,
            self.total_fast,
            self.total_slow,
            self.total_thorough,
            self.bootstraps_per_process,
            self.fast_per_process,
            self.slow_per_process,
            self.thorough_per_process,
        )


def make_schedule(n_bootstraps: int, n_processes: int) -> WorkSchedule:
    """The Table 2 work partition for ``n_bootstraps`` over ``n_processes``.

    Well-defined for ``n_processes > n_bootstraps`` too: each rank gets one
    replicate (``ceil`` never rounds to zero) and the derived fast/slow
    shares stay at their b=1 values, so the total work *over-provisions*
    to ``p`` replicates rather than leaving ranks without a pipeline.
    """
    if n_bootstraps < 1:
        raise ValueError(f"n_bootstraps must be >= 1, got {n_bootstraps}")
    if n_processes < 1:
        raise ValueError(f"n_processes must be >= 1, got {n_processes}")
    b = math.ceil(n_bootstraps / n_processes)
    f = math.ceil(b / FAST_FRACTION)
    s = min(math.ceil(f / SLOW_FRACTION), math.ceil(MAX_SLOW / n_processes))
    return WorkSchedule(
        n_bootstraps_requested=n_bootstraps,
        n_processes=n_processes,
        bootstraps_per_process=b,
        fast_per_process=f,
        slow_per_process=s,
        thorough_per_process=1,
    )


#: The (N, p) configurations shown in Table 2 of the paper.
TABLE2_CONFIGS: tuple[tuple[int, int], ...] = (
    (100, 1),
    (100, 2),
    (100, 4),
    (100, 5),
    (100, 8),
    (100, 10),
    (100, 16),
    (100, 20),
    (500, 10),
    (500, 20),
)

#: Expected totals for the Table 2 rows:
#: (processes, bootstraps, fast, slow, thorough) — from the paper.
TABLE2_EXPECTED: tuple[tuple[int, int, int, int, int], ...] = (
    (1, 100, 20, 10, 1),
    (2, 100, 20, 10, 2),
    (4, 100, 20, 12, 4),
    (5, 100, 20, 10, 5),
    (8, 104, 24, 16, 8),
    (10, 100, 20, 10, 10),
    (16, 112, 32, 16, 16),
    (20, 100, 20, 20, 20),
    (10, 500, 100, 10, 10),
    (20, 500, 100, 20, 20),
)
