"""Tree evaluation under a fixed topology (RAxML's ``-f e``).

Optimises model parameters and branch lengths for a user-supplied tree
without changing its topology — the standard way to score competing
hypotheses, and the final GAMMA evaluation step the comprehensive
analysis applies to its thorough-search result.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.likelihood.brlen import optimize_branch_lengths
from repro.likelihood.engine import LikelihoodEngine, OpCounter, RateModel
from repro.likelihood.gtr import GTRModel
from repro.likelihood.model_opt import optimize_model
from repro.seq.patterns import PatternAlignment
from repro.tree.topology import Tree


@dataclass
class EvaluationResult:
    """Outcome of a fixed-topology evaluation."""

    tree: Tree  # topology as given, branch lengths optimised
    lnl: float
    model: GTRModel
    alpha: float | None
    p_invariant: float = 0.0


def evaluate_tree(
    pal: PatternAlignment,
    tree: Tree,
    gamma_categories: int = 4,
    model_rounds: int = 2,
    brlen_passes: int = 6,
    plus_invariant: bool = False,
    engine_factory=None,
    ops: OpCounter | None = None,
    kernel: str = "reference",
    clv_cache: bool = False,
) -> EvaluationResult:
    """Score ``tree`` under GTR+Γ (optionally GTR+I+Γ) with full parameter
    optimisation.

    Alternates model optimisation and branch-length smoothing (RAxML's
    evaluation loop).  The input tree is not modified.
    ``plus_invariant`` adds the proportion-of-invariant-sites parameter
    to the optimisation (RAxML's ``GTRGAMMAI``).  ``kernel`` selects the
    likelihood kernel backend and ``clv_cache`` enables signature-keyed
    CLV reuse; both are ignored when a custom ``engine_factory`` is given
    (the factory owns engine construction).
    """
    if tree.taxa != pal.taxa:
        raise ValueError("tree and alignment taxon sets differ")
    work = tree.copy()
    ops = ops if ops is not None else OpCounter()
    rm = RateModel.gamma(1.0, gamma_categories)
    if engine_factory is None:
        engine = LikelihoodEngine(
            pal, GTRModel.default(), rm, ops=ops,
            kernel=kernel, clv_cache=clv_cache,
        )
    else:
        engine = engine_factory(pal, GTRModel.default(), rm, None, ops)

    lnl = optimize_branch_lengths(engine, work, passes=brlen_passes)
    for _ in range(model_rounds):
        engine, _ = optimize_model(
            engine, work, rounds=1, optimize_invariant=plus_invariant
        )
        new_lnl = optimize_branch_lengths(engine, work, passes=brlen_passes)
        if new_lnl - lnl < 0.01:
            lnl = new_lnl
            break
        lnl = new_lnl
    return EvaluationResult(
        tree=work,
        lnl=lnl,
        model=engine.model,
        alpha=engine.rate_model.alpha,
        p_invariant=engine.rate_model.p_invariant,
    )
