"""Nearest-neighbour-interchange (NNI) local search.

NNI is the cheapest rearrangement move (two alternative topologies per
internal edge).  RAxML's searches are SPR-based, but NNI rounds are a
useful light-weight refinement — and the standard baseline SPR is compared
against, so this module also serves the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.likelihood.brlen import optimize_edge
from repro.obs.recorder import current as _obs_current
from repro.tree.topology import Tree


@dataclass(frozen=True)
class NNIParams:
    """Tuning knobs of one NNI round."""

    min_improvement: float = 0.01
    local_brlen: bool = True

    def __post_init__(self) -> None:
        if self.min_improvement < 0:
            raise ValueError("min_improvement must be non-negative")


def try_nni(engine, tree: Tree, edge_index: int, variant: int,
            params: NNIParams = NNIParams()) -> tuple[Tree, float] | None:
    """Apply one NNI on a copy; returns ``(tree, lnl)`` or ``None`` if the
    indexed edge is not an internal edge."""
    work = tree.copy()
    internal = work.internal_edges()
    if not (0 <= edge_index < len(internal)):
        return None
    edge = internal[edge_index]
    work.nni(edge, variant)
    if params.local_brlen:
        # With the engine's CLV cache on, only partials whose subtree
        # signature changed by the interchange are recomputed here.
        down = engine.compute_down_partials(work)
        up = engine.compute_up_partials(work, down)
        for e in [edge] + edge.children:
            if e.parent is not None:
                optimize_edge(engine, work, e, down=down, up=up)
    return work, engine.loglikelihood(work)


def nni_round(engine, tree: Tree, params: NNIParams = NNIParams(),
              current_lnl: float | None = None) -> tuple[Tree, float, bool]:
    """One greedy pass over all internal edges and both NNI variants.

    Accepted improvements take effect immediately; returns
    ``(tree, lnl, improved_any)``.
    """
    current = tree
    lnl = engine.loglikelihood(tree) if current_lnl is None else current_lnl
    improved_any = False
    idx = 0
    rec = _obs_current()
    t_round = rec.now if rec is not None else 0.0
    tried = accepted = 0
    while idx < len(current.internal_edges()):
        best_alt = None
        for variant in (0, 1):
            result = try_nni(engine, current, idx, variant, params)
            if result is None:
                break
            tried += 1
            if result[1] > lnl + params.min_improvement and (
                best_alt is None or result[1] > best_alt[1]
            ):
                best_alt = result
        if best_alt is not None:
            current, lnl = best_alt
            improved_any = True
            accepted += 1
        idx += 1
    if rec is not None:
        rec.count("search.nni.tried", tried)
        rec.count("search.nni.accepted", accepted)
        rec.span("nni_round", "search", t_round, args={
            "tried": tried, "accepted": accepted, "lnl": lnl,
        })
    return current, lnl, improved_any


def nni_hill_climb(engine, tree: Tree, params: NNIParams = NNIParams(),
                   max_rounds: int = 30) -> tuple[Tree, float]:
    """Iterate NNI rounds to a local optimum."""
    if max_rounds < 1:
        raise ValueError("max_rounds must be >= 1")
    work = tree.copy()
    lnl = engine.loglikelihood(work)
    for _ in range(max_rounds):
        work, lnl, improved = nni_round(engine, work, params, current_lnl=lnl)
        if not improved:
            break
    return work, lnl
