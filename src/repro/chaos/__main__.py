"""CLI of the chaos campaign: ``python -m repro.chaos``."""

from __future__ import annotations

import argparse
import sys

from repro.chaos.campaign import replay_scenario, run_campaign


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="Deterministic chaos campaign over the resilient "
                    "hybrid runtime (both --schedule backends).",
    )
    parser.add_argument("--scenarios", type=int, default=200,
                        help="number of generated fault scenarios "
                             "(default 200; degradation probes ride on top)")
    parser.add_argument("--seed", type=int, default=20260808,
                        help="campaign seed (every scenario is a pure "
                             "function of seed/schedule/index)")
    parser.add_argument("--out", default="benchmarks/output/BENCH_chaos.json",
                        help="report path (default %(default)s)")
    parser.add_argument("--replay", type=int, default=None, metavar="INDEX",
                        help="re-run one scenario from a previous campaign "
                             "instead of sweeping (with --replay-schedule/"
                             "--replay-np from the report record)")
    parser.add_argument("--replay-schedule", default="static",
                        choices=["static", "work-steal"])
    parser.add_argument("--replay-np", type=int, default=2)
    parser.add_argument("--ranks-per-node", dest="ranks_per_node", type=int,
                        default=None, metavar="R",
                        help="sweep every scenario under the hierarchical "
                             "communication model (R ranks per node) while "
                             "the baselines stay flat — a cross-model "
                             "bit-identity check (default: flat)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-scenario progress lines")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.replay is not None:
        record = replay_scenario(args.replay, args.seed,
                                 args.replay_schedule, args.replay_np,
                                 ranks_per_node=args.ranks_per_node)
        import json

        print(json.dumps(record, indent=1, sort_keys=True))
        return 1 if record["violations"] else 0

    def progress(record):
        if args.quiet:
            return
        status = "FAIL" if record["violations"] else "ok"
        print(f"  [{record['index']:>4}] {record['schedule']:<10} "
              f"p={record['n_processes']} {record['equality']:<5} "
              f"checks={','.join(record['checks'])} {status}", flush=True)
        for v in record["violations"]:
            print(f"         violation: {v}", flush=True)

    report = run_campaign(n_scenarios=args.scenarios, seed=args.seed,
                          out=args.out, progress=progress,
                          ranks_per_node=args.ranks_per_node)
    print(f"chaos campaign: {report['n_records']} records, "
          f"{report['n_violations']} violations, "
          f"{report['elapsed_seconds']:.1f}s -> {args.out}")
    if report["n_violations"]:
        for v in report["violations"]:
            print(f"  VIOLATION [{v['index']}/{v['schedule']}]: "
                  f"{'; '.join(v['violations'])}")
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
