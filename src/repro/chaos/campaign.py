"""The deterministic chaos campaign: sweep seeded fault plans, assert
the runtime's three resilience invariants, emit ``BENCH_chaos.json``.

Every scenario runs the pinned toy comprehensive analysis (the same one
the golden parity suite pins) under a generated
:class:`~repro.chaos.plans.ScenarioSpec` and checks:

1. **No hang** — the run completes under the simulated world's own
   deadlines (a wedged collective is detected by peers' virtual-clock
   suspicion, never by the test watching a wall clock).
2. **Determinism** — whenever recovery succeeds, the result is
   bit-identical to the fault-free baseline: best lnL, best tree, and
   the bootstrap multiset.  Static recovery replays a dead rank's whole
   original share and never re-partitions the survivors' streams, so
   this holds for kills at any stage, replicate or collective index.  A
   sample of scenarios is additionally run twice to confirm the fault
   path itself is replayable bit-for-bit, timings included.
3. **Checkpoint → resume equivalence** — a sample of scenarios runs
   checkpointed and is then resumed with the kills/glitches stripped
   (they already happened) and the joins kept (they are membership, and
   keep the checkpoints' membership fingerprints valid); the resumed
   run must reproduce the fault-free baseline.

The campaign is a pure function of ``(seed, n_scenarios)``: the report
names every scenario's plan, so any violation can be replayed in
isolation with :func:`replay_scenario`.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.chaos.plans import ScenarioSpec, generate_scenario, strip_for_resume
from repro.datasets import test_dataset as make_test_dataset
from repro.hybrid.driver import HybridConfig, run_hybrid_analysis
from repro.mpi.policy import TimeoutPolicy
from repro.search.comprehensive import ComprehensiveConfig
from repro.search.searches import StageParams
from repro.tree.newick import write_newick

#: Both execution backends are swept, alternately.
SCHEDULES = ("static", "work-steal")

#: World sizes swept (alternately, per schedule).
WORLD_SIZES = (2, 3)

#: Scenario indices divisible by this run the checkpoint→resume check.
RESUME_EVERY = 3

#: Scenario indices divisible by this are run twice (replay determinism).
REPEAT_EVERY = 25

#: Snappy suspicion deadline (virtual seconds): the toy analysis's real
#: collective waits are under ~0.1 virtual seconds, so 2.0 never falsely
#: suspects a live rank but converts a hung one into a death quickly.
CHAOS_TIMEOUTS = TimeoutPolicy(collective_seconds=2.0, world_seconds=600.0)

#: The pinned toy analysis (same dataset family as the parity goldens).
DATASET = {"n_taxa": 6, "n_sites": 60, "seed": 301}
QUICK = StageParams(bootstrap_rounds=1, fast_rounds=1, slow_max_rounds=1,
                    thorough_max_rounds=2, brlen_passes=1)


def _make_inputs():
    pal, _ = make_test_dataset(**DATASET)
    cc = ComprehensiveConfig(n_bootstraps=4, cat_categories=3,
                             stage_params=QUICK)
    return pal, cc


def _capture(result) -> dict:
    """The fields equality is asserted over (results, not timings)."""
    return {
        "best_lnl": result.best_lnl,
        "best_newick": (
            write_newick(result.best_tree, digits=None)
            if result.best_tree is not None else None
        ),
        "bootstrap_newicks": sorted(
            write_newick(t, digits=None) for t in result.bootstrap_trees
        ),
        "n_bootstraps_done": result.n_bootstraps_done,
    }


def _capture_replay(result) -> dict:
    """Replay determinism is the strongest check: timings included."""
    doc = _capture(result)
    doc["total_seconds"] = result.total_seconds
    doc["finish_times"] = [r.finish_time for r in result.ranks]
    doc["failed_ranks"] = sorted(result.failed_ranks)
    doc["stage_seconds"] = dict(result.stage_seconds)
    return doc


def _run(pal, cc, spec: ScenarioSpec, *, plan=None, checkpoint_dir=None,
         resume=False, quorum=0.0):
    config = HybridConfig(
        n_processes=spec.n_processes,
        n_threads=1,
        comprehensive=cc,
        schedule=spec.schedule,
        fault_plan=spec.plan if plan is None and not resume else plan,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
        quorum=quorum,
        timeout_policy=CHAOS_TIMEOUTS,
        ranks_per_node=spec.ranks_per_node,
    )
    return run_hybrid_analysis(pal, config)


def run_scenario(pal, cc, spec: ScenarioSpec, baseline: dict,
                 workdir: Path | None) -> dict:
    """Run one scenario; returns its record (with a ``violations`` list)."""
    record = spec.as_doc()
    record["checks"] = []
    violations: list[str] = []
    t0 = time.perf_counter()

    check_resume = workdir is not None and spec.index % RESUME_EVERY == 0
    ckpt = None
    if check_resume:
        ckpt = workdir / f"ckpt-{spec.schedule}-{spec.index}"

    try:
        result = _run(pal, cc, spec, checkpoint_dir=str(ckpt) if ckpt else None)
    except BaseException as exc:  # RankKilledError is a BaseException
        violations.append(f"hang-or-crash: {type(exc).__name__}: {exc}")
        record["violations"] = violations
        record["elapsed_seconds"] = round(time.perf_counter() - t0, 3)
        return record

    got = _capture(result)
    record["checks"].append("equality-full")
    for key in ("best_lnl", "best_newick", "bootstrap_newicks",
                "n_bootstraps_done"):
        if got[key] != baseline[key]:
            violations.append(f"determinism: {key} differs from baseline")

    if spec.index % REPEAT_EVERY == 0 and not violations:
        record["checks"].append("replay")
        # Config-identical re-run: checkpointing shifts collective call
        # indices (the resume negotiation is itself a collective), so a
        # checkpointed first run is only comparable to a checkpointed
        # replay (into its own directory).
        again = _run(pal, cc, spec,
                     checkpoint_dir=str(ckpt) + "-replay" if ckpt else None)
        if _capture_replay(again) != _capture_replay(result):
            violations.append("determinism: replaying the same plan diverged")

    if check_resume and not violations:
        record["checks"].append("resume")
        try:
            resumed = _run(
                pal, cc, spec, plan=strip_for_resume(spec.plan),
                checkpoint_dir=str(ckpt), resume=True,
            )
        except BaseException as exc:
            violations.append(
                f"resume: hang-or-crash: {type(exc).__name__}: {exc}"
            )
        else:
            # A resumed continuation is fault-free (the faults already
            # happened), so it must reproduce the fault-free baseline.
            for key, want in baseline.items():
                if _capture(resumed)[key] != want:
                    violations.append(f"resume: {key} differs from baseline")

    record["violations"] = violations
    record["elapsed_seconds"] = round(time.perf_counter() - t0, 3)
    return record


def run_degradation_probes(pal, cc) -> list[dict]:
    """Below-quorum scenarios: the run must *complete*, tagged partial.

    Kills all but one rank of a p=3 world with ``quorum=0.9``: survivors
    are under quorum, so instead of replaying the dead ranks' shares the
    run finishes with partial results and machine-readable notes.
    """
    from repro.mpi.faults import FaultPlan, KillSpec

    probes = []
    for schedule in SCHEDULES:
        spec = ScenarioSpec(
            index=-1, schedule=schedule, n_processes=3,
            plan=FaultPlan(kills=(KillSpec(rank=1, stage="fast"),
                                  KillSpec(rank=2, stage="slow"))),
            equality="degraded", deaths=(1, 2),
        )
        record = spec.as_doc()
        record["checks"] = ["degradation"]
        violations = []
        t0 = time.perf_counter()
        try:
            result = _run(pal, cc, spec, quorum=0.9)
        except BaseException as exc:
            violations.append(f"degradation: {type(exc).__name__}: {exc}")
        else:
            if not result.degraded or not result.notes:
                violations.append(
                    "degradation: below-quorum run not tagged as partial"
                )
            if sorted(result.failed_ranks) != [1, 2]:
                violations.append(
                    f"degradation: failed_ranks {result.failed_ranks} != [1, 2]"
                )
        record["violations"] = violations
        record["elapsed_seconds"] = round(time.perf_counter() - t0, 3)
        probes.append(record)
    return probes


def run_leader_death_probes(pal, cc, workdir: Path | None = None) -> list[dict]:
    """Node-leader deaths mid-collective under the hierarchical model.

    A p=4 world packed 2 ranks/node has node leaders {node 0: rank 0,
    node 1: rank 2}.  Each probe kills one or both leaders (at a
    collective call index or a stage boundary) under both schedules; the
    survivors must re-elect deterministically — the new leader is simply
    the smallest live rank of the node — and reproduce the *flat-model*
    fault-free baseline bit for bit, so leader death can never leak into
    analysis results.  The both-leaders probe additionally runs
    checkpointed and resumed when ``workdir`` is given.
    """
    from repro.mpi.faults import FaultPlan, KillSpec

    flat_base = ScenarioSpec(index=-1, schedule="static", n_processes=4,
                             plan=None, equality="baseline", deaths=())
    baseline = _capture(_run(pal, cc, flat_base, plan=None))
    plans = {
        "leader-node0-collective": FaultPlan(
            kills=(KillSpec(rank=0, collective=1),)),
        "leader-node1-stage": FaultPlan(
            kills=(KillSpec(rank=2, stage="fast"),)),
        "both-leaders-collective": FaultPlan(
            kills=(KillSpec(rank=0, collective=1),
                   KillSpec(rank=2, collective=2))),
    }
    probes = []
    for schedule in SCHEDULES:
        for name, plan in plans.items():
            spec = ScenarioSpec(
                index=-2, schedule=schedule, n_processes=4, plan=plan,
                equality="leader-death",
                deaths=tuple(sorted(k.rank for k in plan.kills)),
                ranks_per_node=2,
            )
            record = spec.as_doc()
            record["probe"] = name
            record["checks"] = ["leader-death"]
            violations: list[str] = []
            t0 = time.perf_counter()
            check_resume = (
                workdir is not None and name == "both-leaders-collective"
            )
            ckpt = (
                Path(workdir) / f"ckpt-leader-{schedule}"
                if check_resume else None
            )
            try:
                result = _run(pal, cc, spec,
                              checkpoint_dir=str(ckpt) if ckpt else None)
            except BaseException as exc:
                violations.append(
                    f"leader-death: {type(exc).__name__}: {exc}")
            else:
                got = _capture(result)
                for key, want in baseline.items():
                    if got[key] != want:
                        violations.append(
                            f"leader-death: {key} differs from flat baseline")
                if check_resume and not violations:
                    record["checks"].append("resume")
                    try:
                        resumed = _run(
                            pal, cc, spec, plan=strip_for_resume(spec.plan),
                            checkpoint_dir=str(ckpt), resume=True,
                        )
                    except BaseException as exc:
                        violations.append(
                            f"leader-death resume: {type(exc).__name__}: {exc}")
                    else:
                        got = _capture(resumed)
                        for key, want in baseline.items():
                            if got[key] != want:
                                violations.append(
                                    f"leader-death resume: {key} differs "
                                    "from flat baseline")
            record["violations"] = violations
            record["elapsed_seconds"] = round(time.perf_counter() - t0, 3)
            probes.append(record)
    return probes


def run_campaign(n_scenarios: int = 200, seed: int = 20260808,
                 out: str | Path | None = None,
                 workdir: str | Path | None = None,
                 progress=None, ranks_per_node: int | None = None) -> dict:
    """Run the full campaign and return (and optionally write) its report.

    ``n_scenarios`` counts generated fault scenarios; the degradation and
    leader-death probes and the cached fault-free baselines ride on top.
    ``workdir`` holds the checkpoint directories of the resume checks (a
    temporary directory when None).  ``progress`` is an optional callable
    invoked with each finished scenario record.

    ``ranks_per_node`` sweeps every generated scenario under the
    hierarchical communication model while the cached baselines stay
    *flat* — so the whole campaign doubles as a cross-model bit-identity
    check: faults, joins and leader deaths under two-phase collectives
    must reproduce exactly what the flat world computes.
    """
    import tempfile

    t0 = time.perf_counter()
    pal, cc = _make_inputs()

    baselines: dict[tuple[str, int], dict] = {}
    records: list[dict] = []
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(workdir) if workdir is not None else Path(tmp)
        root.mkdir(parents=True, exist_ok=True)
        for i in range(n_scenarios):
            schedule = SCHEDULES[i % len(SCHEDULES)]
            p = WORLD_SIZES[(i // len(SCHEDULES)) % len(WORLD_SIZES)]
            key = (schedule, p)
            if key not in baselines:
                base_spec = ScenarioSpec(
                    index=-1, schedule=schedule, n_processes=p,
                    plan=None, equality="baseline", deaths=(),
                )
                baselines[key] = _capture(_run(pal, cc, base_spec, plan=None))
            spec = generate_scenario(i, seed, schedule, p,
                                     ranks_per_node=ranks_per_node)
            record = run_scenario(pal, cc, spec, baselines[key], root)
            records.append(record)
            if progress is not None:
                progress(record)
        records.extend(run_degradation_probes(pal, cc))
        records.extend(run_leader_death_probes(pal, cc, workdir=root))

    violations = [
        {"index": r["index"], "schedule": r["schedule"], "violations": v}
        for r in records if (v := r["violations"])
    ]
    checks = sorted({c for r in records for c in r["checks"]})
    report = {
        "campaign": "repro.chaos",
        "seed": seed,
        "n_scenarios": n_scenarios,
        "ranks_per_node": ranks_per_node,
        "n_records": len(records),
        "n_violations": len(violations),
        "violations": violations,
        "counts": {
            "by_schedule": {
                s: sum(1 for r in records if r["schedule"] == s)
                for s in SCHEDULES
            },
            "by_equality": {
                e: sum(1 for r in records if r["equality"] == e)
                for e in sorted({r["equality"] for r in records})
            },
            "by_check": {
                c: sum(1 for r in records if c in r["checks"]) for c in checks
            },
        },
        "timeout_policy": {
            "collective_seconds": CHAOS_TIMEOUTS.collective_seconds,
            "world_seconds": CHAOS_TIMEOUTS.world_seconds,
        },
        "dataset": dict(DATASET),
        "elapsed_seconds": round(time.perf_counter() - t0, 3),
        "scenarios": records,
    }
    if out is not None:
        out = Path(out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n",
                       encoding="ascii")
    return report


def replay_scenario(index: int, seed: int, schedule: str,
                    n_processes: int,
                    ranks_per_node: int | None = None) -> dict:
    """Re-run one scenario from a campaign report, in isolation."""
    pal, cc = _make_inputs()
    base_spec = ScenarioSpec(index=-1, schedule=schedule,
                             n_processes=n_processes, plan=None,
                             equality="baseline", deaths=())
    baseline = _capture(_run(pal, cc, base_spec, plan=None))
    spec = generate_scenario(index, seed, schedule, n_processes,
                             ranks_per_node=ranks_per_node)
    return run_scenario(pal, cc, spec, baseline, None)
