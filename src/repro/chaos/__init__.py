"""Deterministic chaos-campaign harness for the resilient runtime.

Sweeps seeded randomized :class:`~repro.mpi.faults.FaultPlan`\\ s — rank
kills at every kind of injection point, transient collective glitches,
elastic joins, and combinations — over a pinned comprehensive analysis
on both execution backends, asserting the three invariants a resilient
SPMD runtime owes its users: no hangs, bit-identical results whenever
recovery succeeds, and checkpoint→resume equivalence mid-fault.

Run it::

    PYTHONPATH=src python -m repro.chaos --scenarios 200 \\
        --out benchmarks/output/BENCH_chaos.json

Every scenario is a pure function of ``(seed, schedule, index)``; a
violation reported in ``BENCH_chaos.json`` can be replayed in isolation
with :func:`repro.chaos.campaign.replay_scenario`.
"""

from repro.chaos.campaign import replay_scenario, run_campaign, run_scenario
from repro.chaos.plans import ScenarioSpec, generate_scenario, strip_for_resume

__all__ = [
    "ScenarioSpec",
    "generate_scenario",
    "strip_for_resume",
    "run_campaign",
    "run_scenario",
    "replay_scenario",
]
