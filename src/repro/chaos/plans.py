"""Seeded random :class:`~repro.mpi.faults.FaultPlan` generation.

A chaos campaign needs fault schedules that are *adversarial but legal*:
random enough to explore the failure-mode space (kills at every kind of
point, transient glitches, elastic joins, and combinations), yet bounded
so every scenario is recoverable by construction — at least one original
rank survives, transient failures stay within the retry budget, and
joiner ranks are never targeted before they exist.

Generation is a pure function of ``(seed, schedule, index)`` via
:class:`random.Random` seeded with a string key, so a campaign can be
re-run — or a single failing scenario replayed — bit-identically from
its report.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.mpi.faults import (
    STAGE_POINTS,
    CollectiveGlitch,
    FaultPlan,
    JoinSpec,
    KillSpec,
)

#: Transient ``fail`` glitches are retried with exponential backoff up
#: to the policy's ``max_retries`` (default 8); staying well below keeps
#: every generated glitch survivable.
MAX_GLITCH_FAILURES = 3


@dataclass(frozen=True)
class ScenarioSpec:
    """One generated chaos scenario: a fault plan plus its oracle class.

    ``equality`` declares what the scenario must reproduce of the
    fault-free baseline.  Every recoverable plan is ``"full"``: best
    lnL, best tree and the bootstrap multiset must be bit-identical to
    the baseline — static recovery replays a dead rank's whole original
    share (never re-partitioning the survivors' streams) and work-steal
    task streams are origin-pure, so kills at any stage, replicate or
    collective index, with glitches and elastic joins on top, must all
    reproduce the fault-free result exactly.
    """

    index: int
    schedule: str
    n_processes: int
    plan: FaultPlan
    equality: str
    deaths: tuple[int, ...]
    #: Node packing for the run (``None``: the flat communication model).
    #: Orthogonal to the fault plan — results must be bit-identical either
    #: way, so any scenario can be swept under either model.
    ranks_per_node: int | None = None

    def as_doc(self) -> dict:
        """JSON-serialisable record (enough to replay the scenario)."""
        return {
            "index": self.index,
            "schedule": self.schedule,
            "n_processes": self.n_processes,
            "ranks_per_node": self.ranks_per_node,
            "equality": self.equality,
            "deaths": list(self.deaths),
            "kills": [
                {"rank": k.rank, "stage": k.stage, "replicate": k.replicate,
                 "collective": k.collective}
                for k in self.plan.kills
            ],
            "glitches": [
                {"rank": g.rank, "call_index": g.call_index, "kind": g.kind,
                 "failures": g.failures, "delay_seconds": g.delay_seconds}
                for g in self.plan.glitches
            ],
            "joins": [
                {"rank": j.rank, "stage": j.stage} for j in self.plan.joins
            ],
        }


def _classify(schedule: str, kills, glitches) -> str:
    """Equality oracle for a plan (see :class:`ScenarioSpec`).

    Work-steal task streams are origin-pure — every task's RNG streams
    derive from its origin rank, not its executor — and static recovery
    replays a dead rank's whole original share without re-partitioning
    the survivors' streams, so every recoverable plan must reproduce
    the fault-free baseline bit for bit.
    """
    return "full"


def generate_scenario(
    index: int,
    seed: int,
    schedule: str,
    n_processes: int,
    max_replicate: int = 2,
    ranks_per_node: int | None = None,
) -> ScenarioSpec:
    """Generate the ``index``-th scenario of a campaign, deterministically.

    The plan always remains recoverable: the set of ranks doomed to die
    (fail-stop kills plus ``hang`` glitches, which peers convert into
    deaths via their collective deadline) never exceeds
    ``n_processes - 1``, and kills/glitches only target original ranks —
    joiners enter clean.  ``ranks_per_node`` is carried through to the
    spec verbatim; it does not participate in plan generation, so the
    same (seed, schedule, index) yields the same faults under either
    communication model.
    """
    rng = random.Random(f"chaos:{seed}:{schedule}:{index}")
    p = n_processes
    doomed: set[int] = set()

    kills: list[KillSpec] = []
    for _ in range(rng.choice((0, 1, 1, 2))):
        victim = rng.randrange(p)
        if victim not in doomed and len(doomed) + 1 > p - 1:
            continue  # keep at least one original survivor
        doomed.add(victim)
        point = rng.choice(("stage", "stage", "replicate", "collective"))
        if point == "stage":
            kills.append(KillSpec(rank=victim, stage=rng.choice(STAGE_POINTS)))
        elif point == "replicate":
            kills.append(KillSpec(rank=victim,
                                  replicate=rng.randrange(max_replicate + 1)))
        else:
            kills.append(KillSpec(rank=victim, collective=rng.randrange(6)))

    glitches: list[CollectiveGlitch] = []
    used: set[tuple[int, int]] = set()
    for _ in range(rng.choice((0, 1, 1, 2, 3))):
        rank = rng.randrange(p)
        call_index = rng.randrange(8)
        if (rank, call_index) in used:
            continue
        kind = rng.choice(("fail", "fail", "delay", "hang"))
        if kind == "hang":
            if rank not in doomed and len(doomed) + 1 > p - 1:
                continue  # a hang dooms its rank too
            doomed.add(rank)
            glitches.append(CollectiveGlitch(rank=rank, call_index=call_index,
                                             kind="hang"))
        elif kind == "fail":
            glitches.append(CollectiveGlitch(
                rank=rank, call_index=call_index, kind="fail",
                failures=rng.randint(1, MAX_GLITCH_FAILURES)))
        else:
            glitches.append(CollectiveGlitch(
                rank=rank, call_index=call_index, kind="delay",
                delay_seconds=round(rng.uniform(0.005, 0.2), 6)))
        used.add((rank, call_index))

    joins = tuple(
        JoinSpec(rank=p + i, stage=rng.choice(STAGE_POINTS))
        for i in range(rng.choice((0, 1, 1, 2)))
    )

    plan = FaultPlan(kills=tuple(kills), glitches=tuple(glitches), joins=joins)
    return ScenarioSpec(
        index=index,
        schedule=schedule,
        n_processes=p,
        plan=plan,
        equality=_classify(schedule, plan.kills, plan.glitches),
        deaths=tuple(sorted(doomed)),
        ranks_per_node=ranks_per_node,
    )


def strip_for_resume(plan: FaultPlan) -> FaultPlan | None:
    """The fault plan a ``--resume`` continuation of ``plan`` should use.

    Kills and glitches already happened in the first run — re-injecting
    them would fault the continuation, and a killed rank resumes alive.
    Elastic joins are *membership*, not faults: the joiner ranks exist
    again in the resumed world and re-enter at the same epoch
    boundaries, which is exactly what keeps the membership fingerprints
    of the loaded checkpoints valid.  Returns None when nothing remains
    (so the continuation runs fault-free in non-resilient mode).
    """
    if not plan.joins:
        return None
    return FaultPlan(joins=plan.joins)
