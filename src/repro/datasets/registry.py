"""Registry of the paper's five benchmark data sets (Table 3).

    Taxa  Characters  Patterns  Recommended bootstraps [13]
     354         460       348                        1,200
     150       1,269     1,130                          650
     218       2,294     1,846                          550
     404      13,158     7,429                          700
     125      29,149    19,436                           50

"The data sets in the table are ordered by increasing number of patterns"
(paper Section 3); the number of patterns is the primary workload
parameter because "the amount of work to be done is roughly proportional
to the number of patterns for a fixed number of taxa".
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DatasetSpec:
    """Shape parameters of one benchmark alignment."""

    name: str
    taxa: int
    characters: int
    patterns: int
    recommended_bootstraps: int  # WC bootstopping recommendation, Table 3

    def __post_init__(self) -> None:
        if self.taxa < 4:
            raise ValueError("benchmark data sets need >= 4 taxa")
        if not (0 < self.patterns <= self.characters):
            raise ValueError("patterns must be in (0, characters]")
        if self.recommended_bootstraps < 1:
            raise ValueError("recommended_bootstraps must be positive")

    @property
    def redundancy(self) -> float:
        """Characters per pattern (column redundancy of the alignment)."""
        return self.characters / self.patterns


#: The five benchmark data sets of Table 3, ordered by pattern count.
BENCHMARK_DATASETS: tuple[DatasetSpec, ...] = (
    DatasetSpec("rna_354", taxa=354, characters=460, patterns=348, recommended_bootstraps=1200),
    DatasetSpec("dna_150", taxa=150, characters=1269, patterns=1130, recommended_bootstraps=650),
    DatasetSpec("dna_218", taxa=218, characters=2294, patterns=1846, recommended_bootstraps=550),
    DatasetSpec("dna_404", taxa=404, characters=13158, patterns=7429, recommended_bootstraps=700),
    DatasetSpec("dna_125", taxa=125, characters=29149, patterns=19436, recommended_bootstraps=50),
)


def dataset_by_patterns(patterns: int) -> DatasetSpec:
    """Look a benchmark data set up by its pattern count (unique key)."""
    for spec in BENCHMARK_DATASETS:
        if spec.patterns == patterns:
            return spec
    raise KeyError(f"no benchmark data set with {patterns} patterns")


def dataset_by_name(name: str) -> DatasetSpec:
    for spec in BENCHMARK_DATASETS:
        if spec.name == name:
            return spec
    raise KeyError(f"no benchmark data set named {name!r}")
