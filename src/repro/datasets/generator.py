"""Simulation of alignments under GTR+Γ on Yule trees.

Sequences are evolved site-by-site down a random Yule tree using the exact
transition matrices of a :class:`GTRModel`, with per-site Γ rate
multipliers — the standard generative counterpart of the inference model,
so simulated alignments carry genuine phylogenetic signal and realistic
pattern redundancy.  Bulk sampling uses a NumPy generator seeded
deterministically from the :class:`RAxMLRandom` stream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.registry import DatasetSpec
from repro.likelihood.gtr import GTRModel
from repro.seq.alignment import Alignment
from repro.seq.patterns import PatternAlignment, compress_alignment
from repro.tree.random_trees import yule_tree
from repro.tree.topology import Tree
from repro.util.rng import RAxMLRandom

_STATE_CHARS = np.array(list("ACGT"))


@dataclass(frozen=True)
class SimulationParams:
    """Knobs of one simulation run."""

    n_taxa: int
    n_sites: int
    seed: int = 12345
    alpha: float = 0.8  # Γ shape of per-site rates
    branch_scale: float = 0.25
    model: GTRModel | None = None
    proportion_invariant: float = 0.1  # extra column redundancy, like real rRNA

    def __post_init__(self) -> None:
        if self.n_taxa < 4:
            raise ValueError("need at least 4 taxa")
        if self.n_sites < 1:
            raise ValueError("need at least 1 site")
        if not (0.0 <= self.proportion_invariant < 1.0):
            raise ValueError("proportion_invariant must be in [0, 1)")
        if self.alpha <= 0 or self.branch_scale <= 0:
            raise ValueError("alpha and branch_scale must be positive")


def _default_model() -> GTRModel:
    """A GTR model with realistic transition/transversion structure."""
    return GTRModel(
        rates=(1.3, 4.6, 0.9, 1.1, 5.2, 1.0),
        freqs=(0.27, 0.23, 0.26, 0.24),
    )


def simulate_alignment(params: SimulationParams) -> tuple[Alignment, Tree]:
    """Evolve an alignment; returns ``(alignment, true_tree)``.

    Per-site rates are Γ(α, α) draws (a fraction
    ``proportion_invariant`` of sites is held at rate 0 — invariant
    columns, which real alignments have in abundance and which drive the
    characters-vs-patterns redundancy of Table 3).
    """
    model = params.model if params.model is not None else _default_model()
    taxa = tuple(f"t{i:04d}" for i in range(params.n_taxa))
    seeder = RAxMLRandom(params.seed)
    tree = yule_tree(taxa, seeder, scale=params.branch_scale)
    np_rng = np.random.Generator(np.random.PCG64(seeder.next_seed()))

    n = params.n_sites
    site_rates = np_rng.gamma(shape=params.alpha, scale=1.0 / params.alpha, size=n)
    invariant = np_rng.random(n) < params.proportion_invariant
    site_rates[invariant] = 0.0

    pi = model.pi
    root_states = np_rng.choice(4, size=n, p=pi)

    seqs: dict[str, np.ndarray] = {}

    def evolve(parent_states: np.ndarray, node) -> None:
        for child in node.children:
            # Transition matrix per site rate would be exact but costly;
            # bucket rates into a fine grid for vectorized sampling.
            child_states = _evolve_edge(model, parent_states, site_rates, child.length, np_rng)
            if child.is_leaf:
                seqs[child.name] = child_states
            else:
                evolve(child_states, child)

    evolve(root_states, tree.root)
    records = [(t, "".join(_STATE_CHARS[seqs[t]])) for t in taxa]
    return Alignment.from_sequences(records), tree


def _evolve_edge(
    model: GTRModel,
    parent_states: np.ndarray,
    site_rates: np.ndarray,
    length: float,
    np_rng: np.random.Generator,
) -> np.ndarray:
    """Sample child states per site given parent states and site rates.

    Sites are grouped by quantised rate so each group shares one exact
    P(t·r) matrix; quantisation is fine enough (256 buckets over the rate
    range) to be statistically indistinguishable from exact per-site rates.
    """
    n = parent_states.shape[0]
    child = parent_states.copy()
    positive = site_rates > 0
    if not np.any(positive):
        return child
    rates = site_rates[positive]
    # Quantise to a log grid.
    lo, hi = float(rates.min()), float(rates.max())
    if hi / max(lo, 1e-12) < 1.0001:
        buckets = np.zeros(rates.shape, dtype=np.intp)
        grid = np.array([0.5 * (lo + hi)])
    else:
        grid = np.exp(np.linspace(np.log(lo), np.log(hi), 256))
        buckets = np.searchsorted(grid, rates).clip(0, len(grid) - 1)
    pmats = model.transition_matrices(length, grid)  # (256, 4, 4)
    cdfs = np.cumsum(pmats, axis=2)
    idx = np.flatnonzero(positive)
    u = np_rng.random(idx.shape[0])
    parent = parent_states[idx]
    rows = cdfs[buckets, parent, :]  # (k, 4)
    new_states = (u[:, None] > rows).sum(axis=1)
    child[idx] = np.minimum(new_states, 3)
    return child


def simulate_dataset(spec: DatasetSpec, seed: int = 12345) -> tuple[PatternAlignment, Tree]:
    """Simulate an alignment with the shape of a Table 3 benchmark set.

    The taxon and character counts match the spec exactly; the pattern
    count emerges from the simulation (tuned via invariant-site fraction
    to land near the spec's redundancy) and will differ somewhat from the
    real data's.
    """
    # Choose the invariant fraction so characters/patterns roughly matches.
    prop_inv = max(0.0, min(0.6, 1.0 - 1.0 / spec.redundancy))
    params = SimulationParams(
        n_taxa=spec.taxa, n_sites=spec.characters, seed=seed,
        proportion_invariant=prop_inv,
    )
    aln, tree = simulate_alignment(params)
    return compress_alignment(aln), tree


def test_dataset(
    n_taxa: int = 8,
    n_sites: int = 120,
    seed: int = 4242,
    branch_scale: float = 0.3,
) -> tuple[PatternAlignment, Tree]:
    """A small simulated data set for tests and quickstart examples."""
    aln, tree = simulate_alignment(
        SimulationParams(n_taxa=n_taxa, n_sites=n_sites, seed=seed, branch_scale=branch_scale)
    )
    return compress_alignment(aln), tree
