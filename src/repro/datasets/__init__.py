"""Dataset substrate: benchmark registry and sequence simulation.

The paper's five benchmark alignments (Table 3) are real rRNA/DNA data
sets that are no longer distributable here; :mod:`repro.datasets.registry`
records their shape parameters (taxa, characters, patterns, recommended
bootstraps), and :mod:`repro.datasets.generator` simulates alignments under
GTR+Γ on Yule trees so that every code path — including full comprehensive
analyses — can run on data with genuine phylogenetic signal.
"""

from repro.datasets.registry import (
    DatasetSpec,
    BENCHMARK_DATASETS,
    dataset_by_patterns,
    dataset_by_name,
)
from repro.datasets.generator import (
    SimulationParams,
    simulate_alignment,
    simulate_dataset,
    test_dataset,
)

__all__ = [
    "DatasetSpec",
    "BENCHMARK_DATASETS",
    "dataset_by_patterns",
    "dataset_by_name",
    "SimulationParams",
    "simulate_alignment",
    "simulate_dataset",
    "test_dataset",
]
