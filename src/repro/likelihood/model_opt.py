"""Model-parameter optimisation (Γ shape, GTR exchangeabilities, frequencies).

RAxML optimises model parameters with Brent's method one coordinate at a
time, interleaved with branch-length smoothing.  We use
``scipy.optimize.minimize_scalar`` (Brent, bounded) per coordinate.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from repro.likelihood.engine import LikelihoodEngine, RateModel
from repro.likelihood.gamma import MAX_ALPHA, MIN_ALPHA
from repro.tree.topology import Tree

#: Bounds for individual GTR exchangeabilities during optimisation.
_RATE_LO, _RATE_HI = 1e-3, 100.0


def empirical_frequencies(engine: LikelihoodEngine) -> np.ndarray:
    """Observed base frequencies of the alignment (ambiguity-aware).

    Each character contributes its weight split uniformly over its
    compatible states; fully undetermined characters are ignored.  A small
    pseudocount keeps all frequencies strictly positive.
    """
    from repro.seq.encoding import state_likelihood_rows

    pal = engine.pal
    tip_rows = state_likelihood_rows()
    counts = np.zeros(4)
    w = engine.weights
    for taxon in range(pal.n_taxa):
        clv = tip_rows[pal.patterns[taxon]]  # (m, 4)
        nstates = clv.sum(axis=1)
        informative = nstates < 4
        if not np.any(informative):
            continue
        contrib = clv[informative] / nstates[informative, None]
        counts += contrib.T @ w[informative]
    counts += 1e-6
    return counts / counts.sum()


def optimize_alpha(
    engine: LikelihoodEngine,
    tree: Tree,
    lo: float = MIN_ALPHA,
    hi: float = 20.0,
    xtol: float = 1e-3,
) -> tuple[LikelihoodEngine, float]:
    """Optimise the Γ shape parameter; returns ``(new_engine, lnl)``.

    Only meaningful for gamma engines with >= 2 categories; CAT engines
    are returned unchanged.
    """
    rm = engine.rate_model
    if rm.kind != "gamma" or rm.n_categories < 2:
        return engine, engine.loglikelihood(tree)

    k = rm.n_categories
    p_inv = rm.p_invariant

    def neg_lnl(alpha: float) -> float:
        e = engine.with_rate_model(RateModel.gamma(alpha, k, p_invariant=p_inv))
        return -e.loglikelihood(tree)

    res = optimize.minimize_scalar(
        neg_lnl, bounds=(lo, min(hi, MAX_ALPHA)), method="bounded",
        options={"xatol": xtol},
    )
    best_alpha = float(res.x)
    new_engine = engine.with_rate_model(
        RateModel.gamma(best_alpha, k, p_invariant=p_inv)
    )
    return new_engine, -float(res.fun)


def optimize_p_invariant(
    engine: LikelihoodEngine,
    tree: Tree,
    hi: float = 0.9,
    xtol: float = 1e-3,
) -> tuple[LikelihoodEngine, float]:
    """Optimise the +I proportion of invariant sites (GTR+I+Γ)."""

    def neg_lnl(p: float) -> float:
        e = engine.with_rate_model(engine.rate_model.with_p_invariant(p))
        return -e.loglikelihood(tree)

    res = optimize.minimize_scalar(
        neg_lnl, bounds=(0.0, hi), method="bounded", options={"xatol": xtol}
    )
    best_p = float(res.x)
    new_engine = engine.with_rate_model(
        engine.rate_model.with_p_invariant(best_p)
    )
    return new_engine, -float(res.fun)


def optimize_rates(
    engine: LikelihoodEngine,
    tree: Tree,
    xtol: float = 1e-3,
) -> tuple[LikelihoodEngine, float]:
    """Coordinate-wise Brent optimisation of the five free GTR rates."""
    model = engine.model
    rates = list(model.rates)
    best = engine.loglikelihood(tree)
    for i in range(5):  # GT (index 5) is fixed at 1
        def neg_lnl(r: float) -> float:
            trial = rates.copy()
            trial[i] = r
            e = engine.with_model(model.with_rates(trial))
            return -e.loglikelihood(tree)

        res = optimize.minimize_scalar(
            neg_lnl, bounds=(_RATE_LO, _RATE_HI), method="bounded",
            options={"xatol": xtol},
        )
        if -res.fun > best:
            rates[i] = float(res.x)
            best = -float(res.fun)
            model = model.with_rates(rates)
    return engine.with_model(model), best


def optimize_model(
    engine: LikelihoodEngine,
    tree: Tree,
    rounds: int = 2,
    optimize_gtr: bool = True,
    optimize_frequencies: bool = True,
    optimize_invariant: bool = False,
    tol: float = 0.01,
) -> tuple[LikelihoodEngine, float]:
    """Interleaved optimisation of frequencies, GTR rates and Γ shape.

    Returns ``(engine, lnl)`` with the improved model.  Branch lengths are
    *not* touched here; callers interleave with
    :func:`repro.likelihood.brlen.optimize_branch_lengths`.
    """
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    if optimize_frequencies:
        freqs = empirical_frequencies(engine)
        engine = engine.with_model(engine.model.with_freqs(freqs))
    best = engine.loglikelihood(tree)
    for _ in range(rounds):
        before = best
        if optimize_gtr:
            engine, best = optimize_rates(engine, tree)
        engine, best = optimize_alpha(engine, tree)
        if optimize_invariant:
            engine, best = optimize_p_invariant(engine, tree)
        if best - before < tol:
            break
    return engine, best
