"""The reference NumPy kernel backend.

This is the baseline the blocked backend (and any future compiled
backend) must match bit-for-bit: each shard is processed whole with the
einsum formulations inherited from the original monolithic engine.
"""

from __future__ import annotations

from repro.likelihood.kernels.base import KernelBackend


class ReferenceKernel(KernelBackend):
    """One span per shard; the inherited span primitives verbatim."""

    name = "reference"
