"""Pluggable likelihood kernel backends.

A backend implements every pattern-axis computation the engine issues
(see :class:`~repro.likelihood.kernels.base.KernelBackend`).  Three ship
by default: ``reference`` (the plain per-node NumPy math), ``blocked``
(cache-tiled spans), and ``batched`` (level-batched tensor contractions
with contribution memoisation — see
:class:`~repro.likelihood.kernels.batched.BatchedKernel`).  Backends are
registered by name and selected via ``LikelihoodEngine(kernel=...)`` or
the ``--kernel`` CLI flag:

>>> from repro.likelihood.kernels import register_kernel, get_kernel
>>> class MyKernel(ReferenceKernel):
...     name = "mine"
>>> register_kernel(MyKernel)
>>> get_kernel("mine") is MyKernel
True

A new backend must keep results bit-identical to the reference (the
property tests enforce this) and must not charge the
:class:`~repro.likelihood.kernels.base.OpCounter` itself — charging
happens once per logical kernel call in the base class, which is what
keeps serial, threaded, and cached op totals comparable.
"""

from __future__ import annotations

from repro.likelihood.kernels.base import KernelBackend, OpCounter, Partial
from repro.likelihood.kernels.batched import BatchedKernel
from repro.likelihood.kernels.blocked import BlockedKernel
from repro.likelihood.kernels.reference import ReferenceKernel

_REGISTRY: dict[str, type[KernelBackend]] = {}


def register_kernel(cls: type[KernelBackend]) -> type[KernelBackend]:
    """Register a backend class under ``cls.name`` (usable as a decorator)."""
    if not cls.name:
        raise ValueError("kernel backend must define a non-empty name")
    _REGISTRY[cls.name] = cls
    return cls


def get_kernel(name: str) -> type[KernelBackend]:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown kernel backend {name!r}; available: {available_kernels()}"
        ) from None


def available_kernels() -> list[str]:
    return sorted(_REGISTRY)


register_kernel(ReferenceKernel)
register_kernel(BlockedKernel)
register_kernel(BatchedKernel)

__all__ = [
    "KernelBackend",
    "OpCounter",
    "Partial",
    "ReferenceKernel",
    "BlockedKernel",
    "BatchedKernel",
    "register_kernel",
    "get_kernel",
    "available_kernels",
]
