"""Cache-blocked kernel backend.

Subdivides every pattern shard into fixed-size blocks before running the
span primitives, so each einsum's working set (CLV block + transition
matrices + output block) stays L1/L2-resident instead of streaming the
whole shard through cache once per operand — the standard loop-tiling
treatment of RAxML's likelihood loops.

Bit-identity with the reference backend is structural: the primitives are
inherited unchanged and every per-pattern value depends only on that
pattern's operands, so slicing the axis more finely cannot change any
result bits.  The backends differ only in traversal order and therefore
in cache behaviour, which is exactly what the microbenchmark measures.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.likelihood.kernels.base import KernelBackend

#: Default patterns per block: 256 patterns x 4 categories x 4 states x
#: 8 bytes = 32 KiB per CLV operand, sized to fit two operands plus the
#: output block in a typical 128-256 KiB L2 slice.
DEFAULT_BLOCK = 256


class BlockedKernel(KernelBackend):
    """Shards subdivided into ``block_size``-pattern tiles."""

    name = "blocked"

    block_size = DEFAULT_BLOCK

    def _spans(self) -> Iterator[tuple[slice, np.ndarray | None]]:
        p2c = self.rate_model.pattern_to_cat
        step = self.block_size
        for sl in self.shards:
            for lo in range(sl.start, sl.stop, step):
                blk = slice(lo, min(lo + step, sl.stop))
                yield blk, (p2c[blk] if self.is_cat else None)
