"""Cache-blocked kernel backend.

Subdivides pattern shards into blocks before running the span
primitives, so each einsum's working set (CLV block + transition
matrices + output block) stays cache-resident instead of streaming the
whole shard through cache once per operand — the standard loop-tiling
treatment of RAxML's likelihood loops.

Profiling the span loop showed the original fixed 256-pattern tiling to
be a net loss at every realistic shard size: NumPy dispatches the
propagation einsums to batched BLAS products whose per-call setup
(contraction-path lookup, operand checks) costs as much as computing a
few hundred patterns, so cutting a shard into dozens of tiles multiplied
that overhead without any cache win to offset it.  The heuristic is now
break-even aware: shards below :data:`BLOCK_BREAK_EVEN` patterns run
whole (identical to the reference backend, and no slower), and larger
shards are tiled with a block size grown so at most :data:`MAX_BLOCKS`
tiles are cut — bounding the per-call overhead at a fraction of the
per-tile work regardless of shard size.

Bit-identity with the reference backend is structural: the primitives
are inherited unchanged and every per-pattern value depends only on that
pattern's operands, so slicing the axis more finely cannot change any
result bits.  The backends differ only in traversal order and therefore
in cache behaviour, which is exactly what the microbenchmark measures —
it asserts that no registered backend regresses against the reference.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.likelihood.kernels.base import KernelBackend

#: Minimum patterns per block: 256 patterns x 4 categories x 4 states x
#: 8 bytes = 32 KiB per CLV operand, sized to fit two operands plus the
#: output block in a typical 128-256 KiB L2 slice.
DEFAULT_BLOCK = 256

#: Shards below this many patterns run whole: their working set already
#: fits the last-level cache, so tiling buys nothing and each extra
#: kernel call costs real dispatch overhead (the measured break-even on
#: the microbench hardware is far above any per-thread shard the paper's
#: datasets produce — 19,436 patterns at most).
BLOCK_BREAK_EVEN = 1 << 16

#: Upper bound on tiles per shard above the break-even, keeping the
#: per-call dispatch overhead a bounded fraction of per-tile work.
MAX_BLOCKS = 8


class BlockedKernel(KernelBackend):
    """Break-even-aware tiling of pattern shards."""

    name = "blocked"

    block_size = DEFAULT_BLOCK
    min_blocked_patterns = BLOCK_BREAK_EVEN
    max_blocks = MAX_BLOCKS

    def _spans(self) -> Iterator[tuple[slice, np.ndarray | None]]:
        p2c = self.rate_model.pattern_to_cat
        for sl in self.shards:
            n = sl.stop - sl.start
            if n < self.min_blocked_patterns:
                # Below blocking break-even: identical to the reference.
                yield sl, (p2c[sl] if self.is_cat else None)
                continue
            step = max(self.block_size, -(-n // self.max_blocks))
            for lo in range(sl.start, sl.stop, step):
                blk = slice(lo, min(lo + step, sl.stop))
                yield blk, (p2c[blk] if self.is_cat else None)
