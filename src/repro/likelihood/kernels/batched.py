"""Level-batched tensor kernel backend.

Where the reference backend answers one ``propagate`` call per child
edge, this backend executes whole *traversal levels*
(:meth:`repro.likelihood.plan.TraversalPlan.levels`): every child
contribution a level needs is requested in one
:meth:`~BatchedKernel.level_contribs` call, which

* serves repeated subtrees from a **contribution LRU** keyed by
  ``(subtree signature, branch-length bits)`` — across the repeated
  up-partial sweeps of an SPR round most child edges are unchanged, so
  their propagated contributions are literally the same float64 arrays
  and are reused instead of recomputed;
* stacks the remaining propagations of a level into a single
  ``(nodes, patterns, rates, states)`` einsum when the stacked operands
  stay cache-resident (small pattern counts, where per-call dispatch
  overhead dominates);
* switches to a **fused block pipeline** at large pattern counts
  (:meth:`~BatchedKernel.level_partials`): each node's child
  propagations, product, and rescale run block-by-block so every
  intermediate stays L2-resident instead of streaming full-pattern
  temporaries through memory three times — the likelihood loops are
  bandwidth-bound there, and this roughly halves the traffic;
* memoises transition matrices and propagated tip tables by the exact
  float64 bit pattern of the branch length.

Bit-identity with the reference backend is preserved the same way the
thread sharding argument works: every reused array was produced by the
reference arithmetic for identical operands, the stacked contraction and
the block-wise ``matmul`` both dispatch to the same per-matrix BLAS
products as the per-node einsum (property-tested), blocking the pattern
axis cannot change any bits because every per-pattern value depends only
on that pattern's operands, and the fused product/rescale paths perform
the same operations in the same order with preallocated outputs.  Op accounting
is *charge-neutral*: a contribution served from the LRU still charges a
CLV update — reuse is a wall-clock optimisation, not less logical work —
so :class:`~repro.likelihood.kernels.base.OpCounter` snapshots are
exactly equal to the reference backend's on any call sequence.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.likelihood.gtr import GTRModel
from repro.likelihood.kernels.base import KernelBackend, OpCounter, Partial
from repro.likelihood.rates import RateModel

#: Smallest rescale divisor (mirrors the engine's underflow guard).
_TINY = 1e-300

#: One level spec: ``(subtree signature, branch length, payload)`` where
#: the payload is a leaf's pattern-mask row (1-D) or a child CLV.
LevelSpec = tuple[int, float, np.ndarray]


def _bits(t: float) -> int:
    """The exact float64 bit pattern of a branch length — the same key
    the traversal planner hashes, so cache granularity matches plans."""
    return int(np.float64(t).view(np.uint64))


class BatchedKernel(KernelBackend):
    """Level-batched backend with contribution/P-matrix memoisation."""

    name = "batched"
    supports_levels = True

    #: LRU capacity for transition matrices and tip tables (per branch
    #: length); entries are a few hundred bytes each.
    pmat_entries = 512
    #: Byte budget for the contribution LRU.  Entries are full-pattern
    #: CLVs (``m·k·4`` float64), so the capacity adapts to the pattern
    #: count; the floor keeps small test alignments from thrashing.
    contrib_budget_bytes = 1 << 30
    #: Stack a level's propagations into one tensor contraction only
    #: while operands + output fit in cache; beyond this the per-node
    #: BLAS batches win and the stack copy is pure overhead.
    stack_budget_bytes = 1 << 22
    #: Pattern-block length of the fused per-node pipeline: the
    #: propagated child blocks plus the accumulator (3 · B·k·4 doubles ≈
    #: 1.5 MiB at B=4096, k=4) stay cache-resident across the whole
    #: propagate→product→rescale chain.  Profiled best at 4096 on the
    #: 19.4k-pattern up-sweep (~10% over 2048 — fewer ufunc dispatches
    #: per sweep; 8192+ starts spilling the accumulator out of L2).
    fuse_block = 4096
    #: Run the fused pipeline only above this many patterns (gamma
    #: mode); smaller alignments fit in cache anyway and the stacked
    #: level contraction amortises dispatch overhead better.
    fuse_min_patterns = 4096

    def __init__(
        self,
        model: GTRModel,
        rate_model: RateModel,
        shards: list[slice],
        ops: OpCounter,
        n_patterns: int,
    ) -> None:
        super().__init__(model, rate_model, shards, ops, n_patterns)
        self._pmat_lru: OrderedDict[int, np.ndarray] = OrderedDict()
        self._tip_lru: OrderedDict[int, np.ndarray] = OrderedDict()
        self._tip_cats_lru: OrderedDict[int, np.ndarray] = OrderedDict()
        self._contrib_lru: OrderedDict[tuple[int, int], np.ndarray] = OrderedDict()
        entry = n_patterns * (4 if self.is_cat else self.n_categories * 4) * 8
        self.contrib_entries = max(16, self.contrib_budget_bytes // max(entry, 1))
        self._ins_memo: tuple | None = None
        self._buffers: dict[tuple, np.ndarray] = {}

    # -- memoised per-branch tables -------------------------------------------

    def pmatrices(self, t: float) -> np.ndarray:
        """P(t·r_c) for all categories, memoised by the bits of ``t``."""
        key = _bits(t)
        pm = self._pmat_lru.get(key)
        if pm is None:
            pm = self.model.transition_matrices(t, self.rate_model.rates)
            pm.setflags(write=False)
            self._pmat_lru[key] = pm
            if len(self._pmat_lru) > self.pmat_entries:
                self._pmat_lru.popitem(last=False)
        else:
            self._pmat_lru.move_to_end(key)
        return pm

    def _tip_table(self, t: float) -> np.ndarray:
        """The propagated CLV of each of the 16 IUPAC masks for ``t``.

        Stored ``(16, k, 4)`` in gamma mode so the per-pattern gather
        ``table[masks]`` is one contiguous fancy index — the same values
        (hence the same bits) as the reference's transpose-and-copy
        gather.  CAT mode keeps the reference ``(k, 16, 4)`` layout.
        """
        key = _bits(t)
        table = self._tip_lru.get(key)
        if table is None:
            raw = np.einsum(
                "kab,sb->ksa", self.pmatrices(t), self.tip_rows, optimize=True
            )
            table = raw if self.is_cat else np.ascontiguousarray(
                raw.transpose(1, 0, 2)
            )
            table.setflags(write=False)
            self._tip_lru[key] = table
            if len(self._tip_lru) > self.pmat_entries:
                self._tip_lru.popitem(last=False)
        else:
            self._tip_lru.move_to_end(key)
        return table

    def _tip_table_cats(self, t: float) -> np.ndarray:
        """The gamma tip table in category-major ``(k, 16, 4)`` layout,
        so the fused pipeline can gather each category's rows into a
        contiguous block with :func:`np.take` (a strided gather view as
        a multiply operand costs ~6x a contiguous one)."""
        key = _bits(t)
        table = self._tip_cats_lru.get(key)
        if table is None:
            table = np.ascontiguousarray(
                self._tip_table(t).transpose(1, 0, 2)
            )
            table.setflags(write=False)
            self._tip_cats_lru[key] = table
            if len(self._tip_cats_lru) > self.pmat_entries:
                self._tip_cats_lru.popitem(last=False)
        else:
            self._tip_cats_lru.move_to_end(key)
        return table

    # -- scratch management ---------------------------------------------------

    def _buffer(self, shape: tuple[int, ...], tag: str = "") -> np.ndarray:
        """A reusable scratch array; never escapes a public call.

        ``tag`` distinguishes buffers that must coexist within one call
        despite sharing a shape (e.g. the fused pipeline's per-child
        propagation blocks)."""
        key = (tag, *shape)
        buf = self._buffers.get(key)
        if buf is None:
            buf = np.empty(shape)
            self._buffers[key] = buf
        return buf

    def _remember(self, key: tuple[int, int], contrib: np.ndarray) -> np.ndarray:
        contrib.setflags(write=False)
        self._contrib_lru[key] = contrib
        if len(self._contrib_lru) > self.contrib_entries:
            self._contrib_lru.popitem(last=False)
        return contrib

    # -- level execution ------------------------------------------------------

    def level_contribs(self, specs: list[LevelSpec]) -> list[np.ndarray]:
        """Propagated child contributions for one traversal level.

        Each spec is one child edge: the child's subtree signature, the
        branch length, and either the leaf's pattern masks or the
        child's down CLV.  Repeats are served from the contribution LRU;
        the rest run batched (see the module docstring).  Charges one
        CLV update per spec *regardless of cache hits* — accounted work
        must match what the reference backend would do.
        """
        out: list[np.ndarray | None] = [None] * len(specs)
        tips: list[int] = []
        inner: list[int] = []
        for i, (sig, t, payload) in enumerate(specs):
            hit = self._contrib_lru.get((sig, _bits(t)))
            if hit is not None:
                self._contrib_lru.move_to_end((sig, _bits(t)))
                out[i] = hit
            elif payload.ndim == 1:
                tips.append(i)
            else:
                inner.append(i)
        for i in tips:
            sig, t, masks = specs[i]
            out[i] = self._remember((sig, _bits(t)), self._tip_contrib(t, masks))
        if inner:
            self._inner_contribs(specs, inner, out)
        self.ops.charge_clv(self.n_patterns, self.n_categories, n=len(specs))
        return out

    def _tip_contrib(self, t: float, masks: np.ndarray) -> np.ndarray:
        table = self._tip_table(t)
        out = self._clv_out()
        for sl, p2c in self._spans():
            out[sl] = table[p2c, masks[sl]] if self.is_cat else table[masks[sl]]
        return out

    def _inner_contribs(
        self, specs: list[LevelSpec], idxs: list[int], out: list
    ) -> None:
        m, k = self.n_patterns, self.n_categories
        q = len(idxs)
        stacked = 2 * q * m * k * 4 * 8
        if self.is_cat or q < 2 or stacked > self.stack_budget_bytes:
            for i in idxs:
                sig, t, clv = specs[i]
                contrib = self._clv_out()
                for sl, p2c in self._spans():
                    contrib[sl] = self._propagate_span(
                        self.pmatrices(t), clv[sl], p2c
                    )
                out[i] = self._remember((sig, _bits(t)), contrib)
            return
        # One (nodes, patterns, rates, states) contraction per shard.
        # The batched einsum dispatches to the same per-matrix BLAS
        # products as the per-node form, so the result bits are equal
        # (property-tested in the parity suite).
        pstack = np.stack([self.pmatrices(specs[i][1]) for i in idxs])
        cstack = np.stack([specs[i][2] for i in idxs])
        res = np.empty((q, m, k, 4))
        for sl, _ in self._spans():
            res[:, sl] = np.einsum(
                "qkab,qmkb->qmka", pstack, cstack[:, sl], optimize=True
            )
        for j, i in enumerate(idxs):
            sig, t, _ = specs[i]
            out[i] = self._remember((sig, _bits(t)), res[j])

    def level_partials(
        self, nodes: list[tuple[list[LevelSpec], list[np.ndarray]]]
    ) -> list[Partial]:
        """Down partials for every pending op of one traversal level.

        Each entry is ``(child edge specs, inner-child log-scalers)`` for
        one inner node.  Two regimes, chosen by pattern count:

        * small alignments (or CAT mode) route through
          :meth:`level_contribs` — the stacked level contraction — and
          :meth:`combine`, exactly as before;
        * large gamma alignments run the fused block pipeline
          (:meth:`_fused_partial`): per 512-pattern block, propagate
          each child (``matmul`` on the category-major view — the same
          BLAS products the reference einsum dispatches to), multiply,
          rescale, and write out, so no full-pattern temporary is ever
          materialised.  Contribution-LRU hits are folded in as ready
          arrays; fresh propagations are not memoised here, since
          materialising them would re-spend the memory traffic the
          fusion exists to avoid.

        Charges one CLV update per child edge either way — identical
        totals to the reference backend's per-child ``propagate`` calls.
        """
        if self.is_cat or self.n_patterns < self.fuse_min_patterns:
            flat = [s for specs, _ in nodes for s in specs]
            contribs = self.level_contribs(flat)
            out: list[Partial] = []
            pos = 0
            for specs, inner_ls in nodes:
                cs = contribs[pos:pos + len(specs)]
                pos += len(specs)
                out.append(self.combine(cs, inner_ls))
            return out
        parts = [self._fused_partial(specs, ls) for specs, ls in nodes]
        self.ops.charge_clv(
            self.n_patterns, self.n_categories,
            n=sum(len(specs) for specs, _ in nodes),
        )
        return parts

    def _fused_partial(
        self, specs: list[LevelSpec], inner_logscales: list[np.ndarray]
    ) -> Partial:
        """One node's down partial via the fused block pipeline (gamma).

        Bit-identity: ``matmul`` on the ``(k, n, 4)`` transposed views
        issues the same per-category BLAS products as the reference
        einsum; the product multiplies in child order per element; the
        per-pattern max is exact under any reduction order; divide and
        log are the same ufuncs on the same values.  Blocking the
        pattern axis is invisible to all of them.
        """
        m, k = self.n_patterns, self.n_categories
        B = self.fuse_block
        inputs: list[tuple[str, np.ndarray, np.ndarray | None]] = []
        for sig, t, payload in specs:
            key = (sig, _bits(t))
            hit = self._contrib_lru.get(key)
            if hit is not None:
                self._contrib_lru.move_to_end(key)
                inputs.append(("ready", hit, None))
            elif payload.ndim == 1:
                inputs.append(("tip", self._tip_table_cats(t), payload))
            else:
                pmt = np.ascontiguousarray(self.pmatrices(t).transpose(0, 2, 1))
                inputs.append(("edge", pmt, payload))
        clv = np.empty((m, k, 4))
        logmx = np.empty(m)
        s4 = self._buffer((B, 4), "fuse")
        s2 = self._buffer((B, 2), "fuse")
        mxb = self._buffer((B,), "fuse")
        for sl, _ in self._spans():
            for lo in range(sl.start, sl.stop, B):
                hi = min(lo + B, sl.stop)
                n = hi - lo
                blks = self._input_blocks(inputs, lo, hi)
                acc = self._buffer((k, B, 4), "fuse-acc")[:, :n]
                if len(blks) == 1:
                    np.copyto(acc, blks[0])
                else:
                    np.multiply(blks[0], blks[1], out=acc)
                    for extra in blks[2:]:
                        np.multiply(acc, extra, out=acc)
                mx = mxb[:n]
                np.fmax.reduce(acc, axis=0, out=s4[:n])
                np.fmax(s4[:n, :2], s4[:n, 2:], out=s2[:n])
                np.fmax(s2[:n, 0], s2[:n, 1], out=mx)
                np.maximum(mx, _TINY, out=mx)
                # The divide reads the L2-resident accumulator through a
                # transposed view and writes the cold output contiguously
                # (pattern-major): same quotients, and each output cache
                # line is touched exactly once instead of once per
                # category.
                np.divide(
                    acc.transpose(1, 0, 2), mx[:, None, None], out=clv[lo:hi]
                )
                np.log(mx, out=logmx[lo:hi])
        if inner_logscales:
            logscale = inner_logscales[0].copy()
            for extra in inner_logscales[1:]:
                logscale += extra
            logscale += logmx
        else:
            logscale = logmx
        return Partial(clv, logscale)

    def _input_blocks(
        self,
        inputs: list[tuple[str, np.ndarray, np.ndarray | None]],
        lo: int,
        hi: int,
    ) -> list[np.ndarray]:
        """One pattern block of every fused-pipeline input, in child
        order: memoised contributions as transposed views, tip gathers
        and edge propagations into contiguous ``(k, n, 4)`` scratch (a
        strided view as a multiply operand costs several times a
        contiguous block; ``matmul`` on the transposed view issues the
        reference einsum's per-category BLAS products)."""
        k = self.n_categories
        B = self.fuse_block
        n = hi - lo
        blks: list[np.ndarray] = []
        for i, (kind, table, payload) in enumerate(inputs):
            if kind == "ready":
                blks.append(table[lo:hi].transpose(1, 0, 2))
            elif kind == "tip":
                buf = self._buffer((k, B, 4), f"fuse-edge{i}")[:, :n]
                idx = payload[lo:hi]
                for j in range(k):
                    np.take(table[j], idx, axis=0, out=buf[j])
                blks.append(buf)
            else:
                buf = self._buffer((k, B, 4), f"fuse-edge{i}")[:, :n]
                np.matmul(payload[lo:hi].transpose(1, 0, 2), table, out=buf)
                blks.append(buf)
        return blks

    def up_level_partials(
        self,
        nodes: list[
            tuple[
                tuple[float, np.ndarray, np.ndarray] | None,
                list[LevelSpec],
                list[np.ndarray | None],
            ]
        ],
    ) -> list[list[Partial]]:
        """Up partials for every node of one preorder level.

        Each entry describes one internal node: the parent-side partial
        to transport across the node's own edge (``(t, clv, logscale)``,
        or ``None`` at the root), the node's child edge specs, and the
        children's down log-scalers (``None`` for leaves), all in child
        order.  Returns one :class:`Partial` per child per node — the
        rest-of-tree partial at the node, seen from that child.

        Small alignments (and CAT mode) replay the engine's former
        sequence exactly: transported partials via :meth:`propagate`,
        one :meth:`level_contribs` batch for the level, then
        :meth:`combine` per child.  Large gamma alignments run
        :meth:`_fused_up_node` instead: per pattern block, the node
        transports the parent-side partial and every child's down CLV
        once, then forms *all* children's products and rescales from
        those same resident blocks — the transported block is read from
        cache for every child instead of streaming a full-pattern
        ``moved`` temporary per node, and no contribution temporaries
        are materialised at all.  Charges one CLV update per child edge
        plus one per transported partial — identical totals to the
        reference sweep.
        """
        if self.is_cat or self.n_patterns < self.fuse_min_patterns:
            return self._up_level_stacked(nodes)
        out = [
            self._fused_up_node(above, specs, inner_ls)
            for above, specs, inner_ls in nodes
        ]
        n = sum(len(specs) for _, specs, _ in nodes)
        n += sum(1 for above, _, _ in nodes if above is not None)
        self.ops.charge_clv(self.n_patterns, self.n_categories, n=n)
        return out

    def _up_level_stacked(self, nodes) -> list[list[Partial]]:
        aboves: list[tuple[np.ndarray, np.ndarray] | None] = []
        for above, _, _ in nodes:
            if above is None:
                aboves.append(None)
            else:
                t, clv, ls = above
                aboves.append((self.propagate(self.pmatrices(t), clv), ls))
        flat = [s for _, specs, _ in nodes for s in specs]
        contribs = self.level_contribs(flat)
        out: list[list[Partial]] = []
        pos = 0
        for (above, specs, inner_ls), moved in zip(nodes, aboves):
            cs = contribs[pos:pos + len(specs)]
            pos += len(specs)
            node_out = []
            for i in range(len(specs)):
                parts = [cs[j] for j in range(len(specs)) if j != i]
                lss = [
                    inner_ls[j]
                    for j in range(len(specs))
                    if j != i and inner_ls[j] is not None
                ]
                if moved is not None:
                    parts.append(moved[0])
                    lss.append(moved[1])
                node_out.append(self.combine(parts, lss))
            out.append(node_out)
        return out

    def _fused_up_node(
        self,
        above: tuple[float, np.ndarray, np.ndarray] | None,
        specs: list[LevelSpec],
        inner_ls: list[np.ndarray | None],
    ) -> list[Partial]:
        """All of one node's child up-partials in one fused block sweep.

        The bit-identity argument is :meth:`_fused_partial`'s — the
        transported partial's blocked ``matmul`` issues the reference
        einsum's per-category BLAS products, each child's product
        multiplies siblings in child order with the transported partial
        last, and max/divide/log are order-exact — applied per child
        from the same resident blocks.
        """
        m, k = self.n_patterns, self.n_categories
        B = self.fuse_block
        inputs: list[tuple[str, np.ndarray, np.ndarray | None]] = []
        for sig, t, payload in specs:
            key = (sig, _bits(t))
            hit = self._contrib_lru.get(key)
            if hit is not None:
                self._contrib_lru.move_to_end(key)
                inputs.append(("ready", hit, None))
            elif payload.ndim == 1:
                inputs.append(("tip", self._tip_table_cats(t), payload))
            else:
                pmt = np.ascontiguousarray(self.pmatrices(t).transpose(0, 2, 1))
                inputs.append(("edge", pmt, payload))
        if above is not None:
            t_up, aclv, als = above
            apmt = np.ascontiguousarray(self.pmatrices(t_up).transpose(0, 2, 1))
        nc = len(specs)
        clvs = [np.empty((m, k, 4)) for _ in range(nc)]
        logmxs = [np.empty(m) for _ in range(nc)]
        s4 = self._buffer((B, 4), "fuse")
        s2 = self._buffer((B, 2), "fuse")
        mxb = self._buffer((B,), "fuse")
        for sl, _ in self._spans():
            for lo in range(sl.start, sl.stop, B):
                hi = min(lo + B, sl.stop)
                n = hi - lo
                blks = self._input_blocks(inputs, lo, hi)
                if above is not None:
                    mv = self._buffer((k, B, 4), "fuse-mv")[:, :n]
                    np.matmul(aclv[lo:hi].transpose(1, 0, 2), apmt, out=mv)
                acc = self._buffer((k, B, 4), "fuse-acc")[:, :n]
                mx = mxb[:n]
                for i in range(nc):
                    parts = [blks[j] for j in range(nc) if j != i]
                    if above is not None:
                        parts.append(mv)
                    if len(parts) == 1:
                        np.copyto(acc, parts[0])
                    else:
                        np.multiply(parts[0], parts[1], out=acc)
                        for extra in parts[2:]:
                            np.multiply(acc, extra, out=acc)
                    np.fmax.reduce(acc, axis=0, out=s4[:n])
                    np.fmax(s4[:n, :2], s4[:n, 2:], out=s2[:n])
                    np.fmax(s2[:n, 0], s2[:n, 1], out=mx)
                    np.maximum(mx, _TINY, out=mx)
                    np.divide(
                        acc.transpose(1, 0, 2),
                        mx[:, None, None],
                        out=clvs[i][lo:hi],
                    )
                    np.log(mx, out=logmxs[i][lo:hi])
        out: list[Partial] = []
        for i in range(nc):
            lss = [
                inner_ls[j]
                for j in range(nc)
                if j != i and inner_ls[j] is not None
            ]
            if above is not None:
                lss.append(als)
            if lss:
                logscale = lss[0].copy()
                for extra in lss[1:]:
                    logscale += extra
                logscale += logmxs[i]
            else:
                logscale = logmxs[i]
            out.append(Partial(clvs[i], logscale))
        return out

    def combine(
        self, contribs: list[np.ndarray], logscales: list[np.ndarray]
    ) -> Partial:
        """Product of child contributions, rescaled into a fresh partial.

        Replicates the engine's reference arithmetic bit-for-bit: the
        product multiplies in list order (into scratch, since cached
        contributions are read-only), the per-pattern max is exact under
        any reduction order, and the divide/log/add steps are the same
        ufuncs in the same order.  ``logscales`` carries the inner-child
        (and up-pass parent) log-scalers in reference order; tip
        children contribute exact zeros and are omitted.

        Above :attr:`fuse_min_patterns` the product and rescale run
        block-by-block (same elementwise operations, same order, so the
        same bits) to keep the accumulator cache-resident instead of
        streaming three full-pattern temporaries through memory.
        """
        m = contribs[0].shape[0]
        if m >= self.fuse_min_patterns and contribs[0].ndim == 3:
            clv, mx = self._product_rescale_blocked(contribs)
        else:
            acc = contribs[0]
            if len(contribs) > 1:
                buf = self._buffer(acc.shape)
                np.multiply(contribs[0], contribs[1], out=buf)
                for extra in contribs[2:]:
                    np.multiply(buf, extra, out=buf)
                acc = buf
            mx = self._row_max(acc.reshape(m, -1))
            np.maximum(mx, _TINY, out=mx)
            clv = np.empty_like(acc)
            np.divide(acc, mx.reshape((m,) + (1,) * (acc.ndim - 1)), out=clv)
        if logscales:
            logscale = logscales[0].copy()
            for extra in logscales[1:]:
                logscale += extra
            np.log(mx, out=mx)
            logscale += mx
        else:
            logscale = np.log(mx)
        return Partial(clv, logscale)

    def _product_rescale_blocked(
        self, contribs: list[np.ndarray]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Blocked product + rescale over materialised contributions.

        Same per-element multiply order, max, and divide as the in-core
        path — blocking the pattern axis cannot change any bits — but
        each block's intermediates stay in L2.  Returns ``(clv, mx)``
        with the per-pattern divisors *not yet logged* (the caller
        shares the logscale arithmetic between both paths).
        """
        m, k = contribs[0].shape[0], contribs[0].shape[1]
        B = self.fuse_block
        clv = np.empty_like(contribs[0])
        mxs = np.empty(m)
        for sl, _ in self._spans():
            for lo in range(sl.start, sl.stop, B):
                hi = min(lo + B, sl.stop)
                n = hi - lo
                acc = self._buffer((B, k, 4), "fuse-prod")[:n]
                if len(contribs) == 1:
                    np.copyto(acc, contribs[0][lo:hi])
                else:
                    np.multiply(contribs[0][lo:hi], contribs[1][lo:hi], out=acc)
                    for extra in contribs[2:]:
                        np.multiply(acc, extra[lo:hi], out=acc)
                flat = acc.reshape(n, -1)
                w = flat.shape[1]
                cur = flat
                while w > 1 and w % 2 == 0:
                    half = w // 2
                    buf = self._buffer((B, half), "fuse-fold")[:n]
                    np.fmax(cur[:, :half], cur[:, half:w], out=buf)
                    cur, w = buf, half
                mx = mxs[lo:hi]
                if w > 1:
                    np.fmax.reduce(cur[:, :w], axis=1, out=mx)
                else:
                    mx[:] = cur[:, 0]
                np.maximum(mx, _TINY, out=mx)
                np.divide(acc, mx[:, None, None], out=clv[lo:hi])
        return clv, mxs

    def _row_max(self, flat: np.ndarray) -> np.ndarray:
        """Per-row max of a 2-D view by halving folds (exact, and ~40%
        faster than ``ufunc.reduce`` along the short axis)."""
        cur = flat
        w = flat.shape[1]
        while w > 1 and w % 2 == 0:
            half = w // 2
            buf = self._buffer((flat.shape[0], half))
            np.fmax(cur[:, :half], cur[:, half:], out=buf)
            cur, w = buf, half
        if w > 1:
            return np.fmax.reduce(cur, axis=1)
        return cur[:, 0]

    # -- lazy-SPR insertion ---------------------------------------------------

    def insertion_site(
        self,
        dclv: np.ndarray,
        uclv: np.ndarray,
        sclv: np.ndarray,
        pmats_half: np.ndarray,
        pmats_sub: np.ndarray,
    ) -> np.ndarray:
        """Reference insertion scoring with one memo: the pruned subtree's
        transport ``P(t_sub)·sclv`` is identical for every candidate edge
        of one SPR step, so it is computed once per ``(sclv, pmats_sub)``
        pair and reused while the engine scans candidates.  Charges are
        unchanged (two CLV updates plus one edge evaluation per call)."""
        c3 = self._insertion_transport(sclv, pmats_sub)
        out = np.empty(self.n_patterns)
        for sl, p2c in self._spans():
            c1 = self._propagate_span(pmats_half, dclv[sl], p2c)
            c2 = self._propagate_span(pmats_half, uclv[sl], p2c)
            np.multiply(c1, c2, out=c1)
            np.multiply(c1, c3[sl], out=c1)
            out[sl] = self._root_site_span(c1)
        self.ops.charge_clv(self.n_patterns, self.n_categories, n=2)
        self.ops.charge_edge(self.n_patterns, self.n_categories)
        return out

    def _insertion_transport(
        self, sclv: np.ndarray, pmats_sub: np.ndarray
    ) -> np.ndarray:
        # Identity is judged by data pointer + shape; the memo holds
        # strong references to both operands, so neither address can be
        # recycled by a different array while the memo is alive (the
        # engine re-broadcasts the same subtree CLV per candidate, which
        # changes the view object but not the underlying buffer).
        key = (
            sclv.__array_interface__["data"][0],
            sclv.shape,
            pmats_sub.__array_interface__["data"][0],
        )
        memo = self._ins_memo
        if memo is not None and memo[0] == key:
            return memo[2]
        c3 = self._clv_out()
        for sl, p2c in self._spans():
            c3[sl] = self._propagate_span(pmats_sub, sclv[sl], p2c)
        self._ins_memo = (key, (sclv, pmats_sub), c3)
        return c3

    # -- Newton machinery -----------------------------------------------------

    def sumtable_with_derivatives(
        self, uclv: np.ndarray, dclv: np.ndarray, t: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Fused sumtable build + the first Newton evaluation at ``t``.

        The reference flow builds the coefficient table, returns to the
        engine, and re-reads the whole table for the derivative sweep at
        the starting branch length; fusing evaluates each span while its
        coefficients are cache-hot.  Returns
        ``(coef, exps, site, d1, d2)`` — the same arrays the separate
        :meth:`sumtable` and :meth:`derivatives` calls produce, charged
        as one sumtable plus one derivative evaluation.
        """
        m, k = self.n_patterns, self.n_categories
        site, d1, d2 = np.empty(m), np.empty(m), np.empty(m)
        if self.is_cat:
            coef = np.empty((m, 4))
            exps = np.empty((m, 4))
            for sl, p2c in self._spans():
                coef[sl], exps[sl] = self._sumtable_span(uclv[sl], dclv[sl], p2c)
                e = np.exp(exps[sl] * t)
                site[sl], d1[sl], d2[sl] = self._derivatives_span(
                    coef[sl], e, exps[sl]
                )
        else:
            coef = np.empty((m, k, 4))
            exps = np.outer(self.rate_model.rates, self.model._spectral[0])
            e_gamma = np.exp(exps * t)
            for sl, p2c in self._spans():
                coef[sl], _ = self._sumtable_span(uclv[sl], dclv[sl], p2c)
                site[sl], d1[sl], d2[sl] = self._derivatives_span(
                    coef[sl], e_gamma, exps
                )
        self.ops.charge_sumtable(m, self.n_categories)
        self.ops.charge_deriv(m, self.n_categories)
        return coef, exps, site, d1, d2

    def _derivatives_span(
        self, coef: np.ndarray, e: np.ndarray, exps: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Reference derivative math with the shared ``term·exps`` factor
        squared in place: ``(term·exps)·exps`` is the same left-to-right
        product the reference evaluates, minus two temporaries."""
        if self.is_cat:
            term = coef * e
            site = term.sum(axis=1)
            np.multiply(term, exps, out=term)
            d1 = term.sum(axis=1)
            np.multiply(term, exps, out=term)
            d2 = term.sum(axis=1)
        else:
            term = coef * e[None, :, :]
            site = term.sum(axis=(1, 2))
            np.multiply(term, exps[None], out=term)
            d1 = term.sum(axis=(1, 2))
            np.multiply(term, exps[None], out=term)
            d2 = term.sum(axis=(1, 2))
        return site, d1, d2
