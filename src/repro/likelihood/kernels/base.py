"""The kernel-backend interface of the likelihood core.

A :class:`KernelBackend` owns every pattern-axis computation the engine
issues: CLV propagation (tip-specialised and generic), per-edge site
likelihoods, lazy-SPR insertion scores, the Newton sumtable, and the
derivative evaluations.  The engine decides *what* to compute (traversal
plans, reductions, rescaling); backends decide *how* each pattern slice
is computed.

Sharding.  A backend is constructed with a list of pattern *shards* (the
slices the virtual thread pool assigns to its workers).  Every public
kernel runs once per shard — genuinely exercising RAxML's master/worker
decomposition — and writes its slice of a shared full-pattern output
array.  Because every per-pattern value is computed by the same
arithmetic regardless of how the axis is sliced, serial (one shard) and
threaded (many shards) execution produce **bit-identical** arrays; the
engine's reductions then run once over the full pattern axis, so final
log-likelihoods are bit-identical by construction too.  Empty shards are
dropped at construction: a surplus worker (``n_threads > n_patterns``)
never triggers a zero-length kernel call.

Accounting.  Kernels, not the engine, charge the shared
:class:`OpCounter` — exactly once per *logical* invocation with the full
pattern count, so op totals are identical for serial, threaded, and
(cold-)cached runs.  Multi-operand ``einsum`` contractions are avoided in
favour of fixed two-operand steps: ``optimize=True`` picks contraction
paths by operand shape, which would make results depend on shard sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.likelihood.gtr import GTRModel
from repro.likelihood.rates import RateModel
from repro.seq.encoding import state_likelihood_rows


@dataclass
class OpCounter:
    """Counts likelihood-kernel work in *pattern operations*.

    One pattern-op is the computation of one pattern's CLV entry set at one
    node (times the number of rate categories).  The counter feeds both the
    virtual thread pool (fine-grained timing) and cross-checks of the
    analytic cost model.

    ``clv_updates`` counts CLV propagations, ``edge_evals`` across-edge
    likelihood evaluations, ``sumtables`` Newton coefficient-table builds,
    and ``deriv_evals`` (lnL, d1, d2) evaluations on a sumtable.  All four
    feed ``pattern_ops``.

    ``n`` batches a charge: a kernel that executes a whole traversal
    level as one tensor contraction charges ``n`` logical operations in
    one call, so op totals stay *exactly* equal to the per-node reference
    — batching (like sharding) is an execution detail, not less work.
    """

    pattern_ops: int = 0
    clv_updates: int = 0
    edge_evals: int = 0
    sumtables: int = 0
    deriv_evals: int = 0

    def charge_clv(self, n_patterns: int, n_cats: int, n: int = 1) -> None:
        self.pattern_ops += n * n_patterns * n_cats
        self.clv_updates += n

    def charge_edge(self, n_patterns: int, n_cats: int, n: int = 1) -> None:
        self.pattern_ops += n * n_patterns * n_cats
        self.edge_evals += n

    def charge_sumtable(self, n_patterns: int, n_cats: int, n: int = 1) -> None:
        self.pattern_ops += n * n_patterns * n_cats
        self.sumtables += n

    def charge_deriv(self, n_patterns: int, n_cats: int, n: int = 1) -> None:
        self.pattern_ops += n * n_patterns * n_cats
        self.deriv_evals += n

    def snapshot(self) -> dict[str, int]:
        return {
            "pattern_ops": self.pattern_ops,
            "clv_updates": self.clv_updates,
            "edge_evals": self.edge_evals,
            "sumtables": self.sumtables,
            "deriv_evals": self.deriv_evals,
        }


@dataclass
class Partial:
    """A CLV plus its per-pattern log-scaler."""

    clv: np.ndarray  # gamma: (m, k, 4) (tips: (m, 4)); cat: (m, 4)
    logscale: np.ndarray  # (m,)


class KernelBackend:
    """Base class: shard iteration, op charging, and the reference math.

    Subclasses customise execution by overriding :meth:`_spans` (how each
    shard is further subdivided, e.g. cache blocking) or the ``_*_span``
    primitives.  Registering a subclass makes it selectable by name via
    the engine's ``kernel=`` parameter (see
    :func:`repro.likelihood.kernels.register_kernel`).
    """

    #: Registry name; subclasses must override.
    name = ""
    #: Whether the engine's signature-keyed CLV cache (``clv_cache=True``)
    #: is honoured when this backend computes partials.  Backends that
    #: bypass the engine's partial bookkeeping set this False so the CLI
    #: can reject a ``--clv-cache`` request that would silently do nothing.
    uses_clv_cache = True
    #: Level-batched execution contract.  A backend that sets this True
    #: must additionally provide ``pmatrices(t)`` (memoised transition
    #: matrices), ``level_partials(nodes)`` (down partials for a whole
    #: traversal level, charging one CLV update per child edge),
    #: ``level_contribs(specs)`` (propagate one traversal level's child
    #: contributions in a batch, charging one CLV update per spec),
    #: ``combine(contribs, logscales)`` (product + rescale into a
    #: :class:`Partial`), and ``up_level_partials(nodes)`` (one preorder
    #: level of up partials — per node: transport the parent-side
    #: partial across the node's edge, then one combined partial per
    #: child — charging one CLV update per child edge plus one per
    #: transported partial).  The engine then dispatches
    #: ``compute_down_partials``/``compute_up_partials`` level-wise
    #: instead of op-by-op; results must stay bit-identical.
    supports_levels = False

    def __init__(
        self,
        model: GTRModel,
        rate_model: RateModel,
        shards: list[slice],
        ops: OpCounter,
        n_patterns: int,
    ) -> None:
        self.model = model
        self.rate_model = rate_model
        self.ops = ops
        self.n_patterns = n_patterns
        self.n_categories = rate_model.n_categories
        self.is_cat = rate_model.kind == "cat"
        #: Degenerate-chunk guard: surplus workers own empty slices; they
        #: are dropped here so no kernel ever runs on zero patterns.
        self.shards = [s for s in shards if s.stop > s.start]
        self.tip_rows = state_likelihood_rows()

    # -- shard/block iteration ------------------------------------------------

    def _spans(self) -> Iterator[tuple[slice, np.ndarray | None]]:
        """Yield ``(pattern_slice, pattern_to_cat_slice)`` work spans.

        The reference backend processes each shard whole; blocked backends
        subdivide shards further.  CAT slices are taken lazily so the
        full-axis assignment array is the single source of truth.
        """
        p2c = self.rate_model.pattern_to_cat
        for sl in self.shards:
            yield sl, (p2c[sl] if self.is_cat else None)

    # -- output allocation ----------------------------------------------------

    def _clv_out(self) -> np.ndarray:
        m, k = self.n_patterns, self.n_categories
        shape = (m, 4) if self.is_cat else (m, k, 4)
        return np.empty(shape)

    # -- span primitives (the reference math) --------------------------------

    def _propagate_span(
        self, pmats: np.ndarray, clv: np.ndarray, p2c: np.ndarray | None
    ) -> np.ndarray:
        """Apply per-category transition matrices to one span of a CLV."""
        if self.is_cat:
            return np.einsum("pab,pb->pa", pmats[p2c], clv, optimize=True)
        if clv.ndim == 2:  # tip: broadcast over categories
            return np.einsum("kab,mb->mka", pmats, clv, optimize=True)
        return np.einsum("kab,mkb->mka", pmats, clv, optimize=True)

    def _tip_gather_span(
        self, table: np.ndarray, masks: np.ndarray, p2c: np.ndarray | None
    ) -> np.ndarray:
        """Gather one span of propagated tip CLVs from the 16-mask table."""
        if self.is_cat:
            return table[p2c, masks]
        return np.ascontiguousarray(table[:, masks, :].transpose(1, 0, 2))

    def _root_site_span(self, clv: np.ndarray) -> np.ndarray:
        pi = self.model.pi
        if self.is_cat:
            return clv @ pi
        return np.einsum("mka,a->m", clv, pi) / self.n_categories

    def _edge_site_span(
        self,
        uclv: np.ndarray,
        pmats: np.ndarray,
        dclv: np.ndarray,
        p2c: np.ndarray | None,
    ) -> np.ndarray:
        moved = self._propagate_span(pmats, dclv, p2c)
        pi = self.model.pi
        if self.is_cat:
            return np.einsum("pa,pa->p", uclv * pi, moved, optimize=True)
        site = np.einsum("mka,mka->m", uclv * pi, moved, optimize=True)
        return site / self.n_categories

    def _sumtable_span(
        self, uclv: np.ndarray, dclv: np.ndarray, p2c: np.ndarray | None
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """One span of RAxML's sumtable; returns ``(coef, exps_or_None)``
        (the exponent table is pattern-dependent only in CAT mode)."""
        lam, u, u_inv, _ = self.model._spectral
        pi = self.model.pi
        rates = self.rate_model.rates
        if self.is_cat:
            x = (uclv * pi[None, :]) @ u  # (m, 4)
            y = dclv @ u_inv.T  # (m, 4)
            return x * y, np.outer(rates, lam)[p2c]
        x = np.einsum("mka,aj->mkj", uclv * pi, u, optimize=True)
        y = np.einsum("mkb,jb->mkj", dclv, u_inv, optimize=True)
        return x * y / self.n_categories, None

    def _derivatives_span(
        self, coef: np.ndarray, e: np.ndarray, exps: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-pattern (site, d1, d2) for one span of the sumtable."""
        if self.is_cat:
            term = coef * e  # (m, 4)
            site = term.sum(axis=1)
            d1 = (term * exps).sum(axis=1)
            d2 = (term * exps * exps).sum(axis=1)
        else:
            term = coef * e[None, :, :]  # (m, k, 4)
            site = term.sum(axis=(1, 2))
            d1 = (term * exps[None]).sum(axis=(1, 2))
            d2 = (term * exps[None] * exps[None]).sum(axis=(1, 2))
        return site, d1, d2

    # -- public kernels (full-pattern arrays; charge once per invocation) ----

    def propagate(self, pmats: np.ndarray, clv: np.ndarray) -> np.ndarray:
        """Parent-side contribution of a child CLV across its edge."""
        out = self._clv_out()
        for sl, p2c in self._spans():
            out[sl] = self._propagate_span(pmats, clv[sl], p2c)
        self.ops.charge_clv(self.n_patterns, self.n_categories)
        return out

    def propagate_tip(self, pmats: np.ndarray, masks: np.ndarray) -> np.ndarray:
        """Tip-specialised propagation (RAxML's tip-case kernels).

        A tip CLV takes one of only 16 values (the IUPAC masks), so the
        matrix product is precomputed per mask — ``P @ rows[mask]`` for all
        16 masks and every category — and the per-pattern result is a pure
        gather.  O(16·k) arithmetic instead of O(m·k).
        """
        # (k, 16, 4): for each category, the propagated CLV of each mask.
        table = np.einsum("kab,sb->ksa", pmats, self.tip_rows, optimize=True)
        out = self._clv_out()
        for sl, p2c in self._spans():
            out[sl] = self._tip_gather_span(table, masks[sl], p2c)
        self.ops.charge_clv(self.n_patterns, self.n_categories)
        return out

    def root_site(self, clv: np.ndarray) -> np.ndarray:
        """Per-pattern site likelihoods of a root CLV (uncharged: the
        engine charges the enclosing reduction, as RAxML's evaluate job)."""
        out = np.empty(self.n_patterns)
        for sl, _ in self._spans():
            out[sl] = self._root_site_span(clv[sl])
        return out

    def edge_site(
        self, uclv: np.ndarray, pmats: np.ndarray, dclv: np.ndarray
    ) -> np.ndarray:
        """Per-pattern site likelihoods across one edge."""
        out = np.empty(self.n_patterns)
        for sl, p2c in self._spans():
            out[sl] = self._edge_site_span(uclv[sl], pmats, dclv[sl], p2c)
        self.ops.charge_edge(self.n_patterns, self.n_categories)
        return out

    def insertion_site(
        self,
        dclv: np.ndarray,
        uclv: np.ndarray,
        sclv: np.ndarray,
        pmats_half: np.ndarray,
        pmats_sub: np.ndarray,
    ) -> np.ndarray:
        """Lazy-SPR per-pattern site likelihoods: both edge halves and the
        pruned subtree propagated to the virtual insertion node.

        Charged as two CLV updates plus one edge evaluation (the subtree
        transport rides inside the edge job), matching RAxML's lazy-SPR
        kernel structure.
        """
        out = np.empty(self.n_patterns)
        for sl, p2c in self._spans():
            c1 = self._propagate_span(pmats_half, dclv[sl], p2c)
            c2 = self._propagate_span(pmats_half, uclv[sl], p2c)
            c3 = self._propagate_span(pmats_sub, sclv[sl], p2c)
            out[sl] = self._root_site_span(c1 * c2 * c3)
        self.ops.charge_clv(self.n_patterns, self.n_categories)
        self.ops.charge_clv(self.n_patterns, self.n_categories)
        self.ops.charge_edge(self.n_patterns, self.n_categories)
        return out

    def sumtable(
        self, uclv: np.ndarray, dclv: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Eigenbasis coefficient table for one edge (RAxML's sumtable).

        Returns ``(coef, exps)``; see
        :meth:`repro.likelihood.engine.LikelihoodEngine.edge_coefficients`.
        """
        lam = self.model._spectral[0]
        rates = self.rate_model.rates
        if self.is_cat:
            coef = np.empty((self.n_patterns, 4))
            exps = np.empty((self.n_patterns, 4))
            for sl, p2c in self._spans():
                coef[sl], exps[sl] = self._sumtable_span(uclv[sl], dclv[sl], p2c)
        else:
            coef = np.empty((self.n_patterns, self.n_categories, 4))
            for sl, p2c in self._spans():
                coef[sl], _ = self._sumtable_span(uclv[sl], dclv[sl], p2c)
            exps = np.outer(rates, lam)  # (k, 4)
        self.ops.charge_sumtable(self.n_patterns, self.n_categories)
        return coef, exps

    def derivatives(
        self, coef: np.ndarray, exps: np.ndarray, t: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-pattern (site, dsite/dt, d²site/dt²) of the edge function."""
        m = self.n_patterns
        site, d1, d2 = np.empty(m), np.empty(m), np.empty(m)
        e_gamma = None if self.is_cat else np.exp(exps * t)
        for sl, _ in self._spans():
            x = exps[sl] if self.is_cat else exps
            e = np.exp(x * t) if self.is_cat else e_gamma
            site[sl], d1[sl], d2[sl] = self._derivatives_span(coef[sl], e, x)
        self.ops.charge_deriv(self.n_patterns, self.n_categories)
        return site, d1, d2
