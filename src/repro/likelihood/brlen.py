"""Branch-length optimisation (RAxML's "makenewz" scheme).

Each edge is optimised by safeguarded Newton–Raphson on the per-edge
eigen-coefficient table (:meth:`LikelihoodEngine.edge_coefficients`), so one
Newton step costs O(patterns · categories · 4) with no matrix exponentials.
A *smoothing pass* walks all edges once; several passes (RAxML uses up to
32 "smoothings") converge the whole tree.
"""

from __future__ import annotations

from repro.likelihood.engine import LikelihoodEngine
from repro.tree.topology import MAX_BRANCH_LENGTH, MIN_BRANCH_LENGTH, Node, Tree


def newton_branch_length(
    engine: LikelihoodEngine,
    coef,
    exps,
    logscale,
    t0: float,
    max_iter: int = 30,
    tol: float = 1e-6,
    first_eval: tuple[float, float, float] | None = None,
) -> tuple[float, float]:
    """Maximise the single-edge likelihood; returns ``(t_opt, lnl_opt)``.

    Safeguards: steps are clamped into ``[MIN, MAX]``; if a Newton step
    does not increase the likelihood it is halved (backtracking); if the
    curvature is non-negative the step falls back to a scaled gradient
    direction.

    ``first_eval`` optionally supplies the ``(lnl, g, h)`` evaluation at
    the (clamped) starting length — callers using the engine's fused
    sumtable-plus-derivatives path obtain it together with the
    coefficient table and skip the separate initial evaluation here.
    """
    lo, hi = MIN_BRANCH_LENGTH, MAX_BRANCH_LENGTH
    t = min(max(t0, lo), hi)
    if first_eval is None:
        lnl, g, h = engine.edge_lnl_and_derivatives(coef, exps, logscale, t)
    else:
        lnl, g, h = first_eval
    for _ in range(max_iter):
        if h < 0:
            step = -g / h
        else:
            # Non-concave point: move along the gradient with a bounded step.
            step = 0.1 if g > 0 else -0.1
        # Clamp the raw step so we never jump across the whole domain.
        step = min(max(step, -0.5 * (hi - lo)), 0.5 * (hi - lo))
        improved = False
        for _ in range(20):  # backtracking halving
            t_new = min(max(t + step, lo), hi)
            lnl_new, g_new, h_new = engine.edge_lnl_and_derivatives(
                coef, exps, logscale, t_new
            )
            if lnl_new >= lnl - 1e-12:
                improved = True
                break
            step *= 0.5
            if abs(step) < tol * 1e-3:
                break
        if not improved:
            break
        converged = abs(t_new - t) < tol
        t, lnl, g, h = t_new, lnl_new, g_new, h_new
        if converged:
            break
    return t, lnl


def optimize_edge(
    engine: LikelihoodEngine,
    tree: Tree,
    edge_child: Node,
    down=None,
    up=None,
) -> float:
    """Optimise a single branch length in place; returns the new length.

    ``down``/``up`` partial maps may be supplied to avoid recomputation
    (they must be current for the tree's other branch lengths).
    """
    if edge_child.parent is None:
        raise ValueError("the root has no incident edge to optimise")
    if down is None:
        down = engine.compute_down_partials(tree)
    if up is None:
        up = engine.compute_up_partials(tree, down)
    t0 = min(max(edge_child.length, MIN_BRANCH_LENGTH), MAX_BRANCH_LENGTH)
    coef, exps, logscale, first = engine.edge_coefficients_and_derivatives(
        engine.partial_for(down, edge_child), engine.partial_for(up, edge_child), t0
    )
    t_opt, _ = newton_branch_length(
        engine, coef, exps, logscale, t0, first_eval=first
    )
    edge_child.length = t_opt
    return t_opt


def optimize_branch_lengths(
    engine: LikelihoodEngine,
    tree: Tree,
    passes: int = 4,
    tol: float = 1e-3,
) -> float:
    """Smooth all branch lengths; returns the final log-likelihood.

    Each pass recomputes partials once and then optimises every edge
    against them (Jacobi-style staleness within a pass, like RAxML's
    smoothing iterations).  If a pass fails to improve the tree it is
    rolled back and smoothing stops, so the result is never worse than the
    input.
    """
    if passes < 1:
        raise ValueError(f"passes must be >= 1, got {passes}")
    best_lnl = engine.loglikelihood(tree)
    for _ in range(passes):
        snapshot = {id(n): n.length for n in tree.postorder() if n.parent is not None}
        down = engine.compute_down_partials(tree)
        up = engine.compute_up_partials(tree, down)
        for edge_child in tree.edges():
            t0 = min(max(edge_child.length, MIN_BRANCH_LENGTH), MAX_BRANCH_LENGTH)
            coef, exps, logscale, first = engine.edge_coefficients_and_derivatives(
                engine.partial_for(down, edge_child),
                engine.partial_for(up, edge_child),
                t0,
            )
            t_opt, _ = newton_branch_length(
                engine, coef, exps, logscale, t0, first_eval=first
            )
            edge_child.length = t_opt
        lnl = engine.loglikelihood(tree)
        if lnl < best_lnl - 1e-9:
            # Stale-partials pass overshot: roll back and stop.
            for n in tree.postorder():
                if n.parent is not None:
                    n.length = snapshot[id(n)]
            return best_lnl
        if lnl - best_lnl < tol:
            return lnl
        best_lnl = lnl
    return best_lnl
