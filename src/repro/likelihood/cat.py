"""Per-site rate categories: the CAT approximation (GTRCAT).

RAxML's CAT model (Stamatakis 2006) replaces the Γ mixture by an
*assignment* of each pattern to one of ``c`` rate categories: per-pattern
rates are estimated by maximising each pattern's own likelihood over a rate
grid given the current tree, then clustered into categories.  Evaluation is
roughly ``k×`` cheaper than GAMMA with ``k`` categories because each
pattern is computed under a single rate.

The paper's benchmark runs use ``-m GTRCAT``: CAT during bootstrap/fast/slow
searches and a final GAMMA-based evaluation of the thorough search.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.likelihood.engine import LikelihoodEngine, RateModel
from repro.tree.topology import Tree

#: RAxML's default number of CAT rate categories.
DEFAULT_CATEGORIES = 25

#: The log-spaced rate grid scanned for per-pattern rate estimation.
_RATE_GRID = np.exp(np.linspace(np.log(1.0 / 32.0), np.log(8.0), 21))


@dataclass(frozen=True)
class CATRates:
    """Result of CAT rate estimation.

    ``pattern_rates`` are the per-pattern ML rates on the grid;
    ``category_rates``/``pattern_to_cat`` are the clustered categories that
    the engine actually evaluates.
    """

    pattern_rates: np.ndarray
    category_rates: np.ndarray
    pattern_to_cat: np.ndarray

    def rate_model(self) -> RateModel:
        return RateModel.cat(self.category_rates, self.pattern_to_cat)


def per_pattern_rates(engine: LikelihoodEngine, tree: Tree) -> np.ndarray:
    """ML rate for every pattern over the fixed grid, given ``tree``.

    Evaluates the per-pattern site log-likelihoods once per grid rate (a
    single-category engine with all branch lengths scaled by the rate) and
    picks the best rate per pattern.
    """
    single = engine.with_rate_model(RateModel.single())
    best_rate = np.full(engine.n_patterns, 1.0)
    best_lnl = np.full(engine.n_patterns, -np.inf)
    for rate in _RATE_GRID:
        scaled = tree.copy()
        scaled.map_branch_lengths(lambda t: t * rate)
        site = single.site_loglikelihoods(scaled)
        better = site > best_lnl
        best_lnl[better] = site[better]
        best_rate[better] = rate
    return best_rate


def cluster_rates(
    pattern_rates: np.ndarray,
    weights: np.ndarray,
    n_categories: int = DEFAULT_CATEGORIES,
) -> tuple[np.ndarray, np.ndarray]:
    """Cluster per-pattern rates into categories (weighted quantile bins).

    Returns ``(category_rates, pattern_to_cat)``.  Each category's rate is
    the weighted mean of its member patterns' rates; empty bins are
    dropped.  Finally rates are normalised to a weighted mean of 1 so
    branch lengths keep their expected-substitutions interpretation.
    """
    if n_categories < 1:
        raise ValueError(f"n_categories must be >= 1, got {n_categories}")
    m = pattern_rates.shape[0]
    if weights.shape != (m,):
        raise ValueError("weights must match pattern_rates in length")
    order = np.argsort(pattern_rates, kind="stable")
    cum_w = np.cumsum(weights[order])
    total = cum_w[-1] if cum_w.size else 0.0
    if total <= 0:
        raise ValueError("total pattern weight must be positive")
    # Weighted quantile bin edges.
    bin_of_sorted = np.minimum(
        (cum_w - weights[order] * 0.5) / total * n_categories, n_categories - 1
    ).astype(np.intp)
    pattern_to_bin = np.empty(m, dtype=np.intp)
    pattern_to_bin[order] = bin_of_sorted

    cat_rates = []
    remap = {}
    for b in range(n_categories):
        members = pattern_to_bin == b
        wsum = float(weights[members].sum())
        if wsum <= 0:
            continue
        remap[b] = len(cat_rates)
        cat_rates.append(float((pattern_rates[members] * weights[members]).sum() / wsum))
    # Bins whose members all have zero weight were dropped; point those
    # patterns at the nearest surviving bin (their likelihood contribution
    # is zero anyway, but every pattern needs a valid category).
    surviving = sorted(remap)
    if not surviving:
        raise ValueError("no category received positive weight")

    def nearest(b: int) -> int:
        return remap[min(surviving, key=lambda s: abs(s - b))]

    pattern_to_cat = np.array(
        [remap[b] if b in remap else nearest(b) for b in pattern_to_bin],
        dtype=np.intp,
    )
    rates = np.asarray(cat_rates)
    # Normalise the weighted mean rate to 1.
    mean = float((rates[pattern_to_cat] * weights).sum() / total)
    rates = rates / mean
    return rates, pattern_to_cat


def estimate_cat_rates(
    engine: LikelihoodEngine,
    tree: Tree,
    n_categories: int = DEFAULT_CATEGORIES,
) -> CATRates:
    """Estimate per-pattern rates on ``tree`` and cluster into categories."""
    pr = per_pattern_rates(engine, tree)
    rates, p2c = cluster_rates(pr, engine.weights, n_categories)
    return CATRates(pr, rates, p2c)
