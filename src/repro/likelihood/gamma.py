"""Discrete-Γ rate heterogeneity (Yang 1994), as in GTRGAMMA.

Site rates are modelled as a Gamma(α, α) distribution (mean 1) discretised
into ``k`` equal-probability categories.  Category rates are the *means* of
the distribution over each quantile interval, computed with the incomplete
gamma function — the same scheme RAxML uses (k = 4 by default).
"""

from __future__ import annotations

import numpy as np
from scipy import special, stats

#: RAxML clamps alpha into a sane range during optimisation.
MIN_ALPHA = 0.02
MAX_ALPHA = 100.0


def discrete_gamma_rates(alpha: float, n_categories: int = 4) -> np.ndarray:
    """Mean rates of ``n_categories`` equal-probability Γ(α, α) categories.

    The returned rates are non-negative, increasing, and average exactly 1,
    so expected branch lengths are unchanged by rate heterogeneity.

    >>> r = discrete_gamma_rates(0.5, 4)
    >>> bool(abs(r.mean() - 1.0) < 1e-12)
    True
    """
    if not (MIN_ALPHA <= alpha <= MAX_ALPHA):
        raise ValueError(
            f"alpha must be in [{MIN_ALPHA}, {MAX_ALPHA}], got {alpha}"
        )
    if n_categories < 1:
        raise ValueError(f"need at least one category, got {n_categories}")
    if n_categories == 1:
        return np.ones(1)

    k = n_categories
    # Quantile boundaries of Gamma(alpha, scale=1/alpha).
    probs = np.arange(1, k) / k
    cut = stats.gamma.ppf(probs, a=alpha, scale=1.0 / alpha)
    bounds = np.concatenate(([0.0], cut, [np.inf]))
    # Mean of the distribution over [a, b], via the incomplete gamma
    # identity: E[X; X in (a,b)] = (P(alpha+1, b*alpha) - P(alpha+1, a*alpha)) / alpha
    # for Gamma(alpha, scale=1/alpha), where P is the regularised lower
    # incomplete gamma.  Dividing by the interval probability 1/k and the
    # overall mean 1 yields the category rate.
    upper = np.where(np.isinf(bounds[1:]), 1.0, special.gammainc(alpha + 1.0, bounds[1:] * alpha))
    lower = special.gammainc(alpha + 1.0, bounds[:-1] * alpha)
    rates = (upper - lower) * k
    # Guard against roundoff: renormalise to mean exactly 1.
    rates = np.maximum(rates, 1e-12)
    rates /= rates.mean()
    return rates
