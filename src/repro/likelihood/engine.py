"""Felsenstein-pruning likelihood engine, vectorized over patterns.

The engine is the execution layer of a three-layer likelihood core that
mirrors the structure of RAxML's:

* the **traversal planner** (:mod:`repro.likelihood.plan`) diffs tree
  state against a CLV cache and emits an ordered list of CLV operations
  — the analogue of RAxML's traversal descriptor;
* a **kernel backend** (:mod:`repro.likelihood.kernels`) executes every
  pattern-axis computation over the engine's shard list and charges the
  :class:`OpCounter`; backends are pluggable (``reference``/``blocked``);
* this module walks plans, multiplies child contributions, rescales,
  and reduces per-pattern results to weighted log-likelihoods.

Threaded execution is not a separate class: passing a
:class:`~repro.threads.pool.VirtualThreadPool` shards the pattern axis
into one slice per worker and charges one parallel region of simulated
time per kernel sweep.  Because kernels write per-shard slices of the
same full-pattern arrays and all reductions run once over the full axis,
serial and threaded results are **bit-identical by construction**, for
any thread count and either kernel backend.

Other structural features retained from the original engine:

* two rate-heterogeneity modes: ``gamma`` (a mixture — every pattern is
  evaluated under every category, GTRGAMMA) and ``cat`` (each pattern is
  assigned to exactly one rate category, GTRCAT);
* per-pattern log-scalers avoid underflow on large trees;
* "down" partials (postorder, subtree below each node) and "up" partials
  (preorder, rest-of-tree seen from above) support O(1)-per-edge
  likelihood evaluation for branch optimisation and lazy SPR scoring.
"""

from __future__ import annotations

import numpy as np

from repro.likelihood.gtr import GTRModel
from repro.likelihood.kernels import get_kernel
from repro.likelihood.kernels.base import OpCounter, Partial
from repro.likelihood.plan import (
    CLVCache,
    plan_traversal,
    subtree_postorder,
    subtree_signatures,
)
from repro.likelihood.rates import RateModel, subset_rate_model
from repro.obs.recorder import current as _obs_current
from repro.seq.encoding import state_likelihood_rows
from repro.seq.patterns import PatternAlignment
from repro.tree.topology import Node, Tree

#: Smallest value a scaler may take (guards log(0) for impossible patterns).
_TINY = 1e-300

#: Backwards-compatible name: partials predate the kernel split.
_Partial = Partial

__all__ = [
    "LikelihoodEngine",
    "OpCounter",
    "RateModel",
    "subset_rate_model",
]


class LikelihoodEngine:
    """Phylogenetic likelihood computations for one pattern alignment.

    Parameters
    ----------
    pal:
        The pattern-compressed alignment.
    model:
        The GTR substitution model.
    rate_model:
        Gamma mixture or CAT assignment (see :class:`RateModel`).
    weights:
        Optional override of the pattern weights (bootstrap replicates pass
        resampled weights here); defaults to ``pal.weights``.
    ops:
        Optional shared :class:`OpCounter`.
    kernel:
        Kernel backend name (see :func:`repro.likelihood.kernels.get_kernel`).
    clv_cache:
        ``True`` (or a :class:`~repro.likelihood.plan.CLVCache` instance) to
        reuse down partials across evaluations via subtree signatures.  Off
        by default: caching changes how much kernel work a traversal costs,
        which callers measuring op counts must opt into.
    pool:
        Optional :class:`~repro.threads.pool.VirtualThreadPool`.  When set,
        kernels run once per worker's pattern slice and each kernel sweep
        charges one region of simulated parallel time.
    """

    def __init__(
        self,
        pal: PatternAlignment,
        model: GTRModel,
        rate_model: RateModel | None = None,
        weights: np.ndarray | None = None,
        ops: OpCounter | None = None,
        kernel: str = "reference",
        clv_cache: bool | CLVCache = False,
        pool=None,
    ) -> None:
        self.pal = pal
        self.model = model
        self.rate_model = rate_model if rate_model is not None else RateModel.gamma()
        if self.rate_model.kind == "cat":
            p2c = self.rate_model.pattern_to_cat
            if p2c.shape != (pal.n_patterns,):
                raise ValueError(
                    "pattern_to_cat length must equal the number of patterns"
                )
        w = pal.weights if weights is None else np.asarray(weights, dtype=np.float64)
        if w.shape != (pal.n_patterns,):
            raise ValueError("weights length must equal the number of patterns")
        if np.any(w < 0):
            raise ValueError("weights must be non-negative")
        self.weights = np.asarray(w, dtype=np.float64)
        self.ops = ops if ops is not None else OpCounter()
        self.pool = pool
        self.kernel_name = kernel
        if pool is None:
            self._chunk_sizes = [pal.n_patterns]
            shards = [slice(0, pal.n_patterns)]
        else:
            from repro.threads.partition import contiguous_chunks

            shards = contiguous_chunks(pal.n_patterns, pool.n_threads)
            self._chunk_sizes = [c.stop - c.start for c in shards]
        self.kernel = get_kernel(kernel)(
            model, self.rate_model, shards, self.ops, pal.n_patterns
        )
        if isinstance(clv_cache, CLVCache):
            self.clv_cache: CLVCache | None = clv_cache
        else:
            self.clv_cache = CLVCache() if clv_cache else None
        self._tip_rows = state_likelihood_rows()
        # Level-batched backends reuse tip partials across traversals (a
        # tip's down partial depends only on its alignment row); the
        # shared zero log-scaler is what the reference path also produces.
        self._tip_parts: dict[int, Partial] = {}
        self._zero_logscale = np.zeros(pal.n_patterns)
        self._zero_logscale.setflags(write=False)
        # "+I" support: the invariant-site likelihood of each pattern is
        # sum_s pi_s over the states every taxon is compatible with —
        # non-zero only for constant-compatible columns, tree-independent.
        if self.rate_model.p_invariant > 0.0:
            const_mask = np.bitwise_and.reduce(pal.patterns, axis=0)
            self._inv_lik = self._tip_rows[const_mask] @ self.model.pi
        else:
            self._inv_lik = None

    # -- basic shapes -------------------------------------------------------

    @property
    def n_patterns(self) -> int:
        return self.pal.n_patterns

    @property
    def n_categories(self) -> int:
        return self.rate_model.n_categories

    @property
    def is_cat(self) -> bool:
        return self.rate_model.kind == "cat"

    def with_model(self, model: GTRModel) -> "LikelihoodEngine":
        """New model parameters invalidate every CLV: fresh cache."""
        return LikelihoodEngine(
            self.pal, model, self.rate_model, self.weights, self.ops,
            kernel=self.kernel_name, clv_cache=self.clv_cache is not None,
            pool=self.pool,
        )

    def with_rate_model(self, rate_model: RateModel) -> "LikelihoodEngine":
        return LikelihoodEngine(
            self.pal, self.model, rate_model, self.weights, self.ops,
            kernel=self.kernel_name, clv_cache=self.clv_cache is not None,
            pool=self.pool,
        )

    def with_weights(self, weights: np.ndarray) -> "LikelihoodEngine":
        """CLVs are weight-independent, so the cache is shared."""
        return LikelihoodEngine(
            self.pal, self.model, self.rate_model, weights, self.ops,
            kernel=self.kernel_name,
            clv_cache=self.clv_cache if self.clv_cache is not None else False,
            pool=self.pool,
        )

    # -- region accounting ---------------------------------------------------

    def _charge_regions(self, n_regions: int) -> None:
        """Charge simulated parallel-region time (threaded mode only)."""
        if self.pool is not None:
            for _ in range(n_regions):
                self.pool.charge_region(self._chunk_sizes, self.n_categories)

    # -- CLV primitives ----------------------------------------------------

    def tip_clv(self, leaf_index: int, patterns: slice | None = None) -> np.ndarray:
        """The (unscaled) tip CLV for one taxon: (m, 4) 0/1 indicators."""
        masks = self.pal.patterns[leaf_index]
        if patterns is not None:
            masks = masks[patterns]
        return self._tip_rows[masks]

    def _pmatrices(self, t: float) -> np.ndarray:
        """P(t·r_c) for all categories; shape (k, 4, 4).

        Backends that memoise transition matrices (the level-batched
        kernel keys them by the exact bits of ``t``) serve them here, so
        every engine entry point shares the memo.
        """
        memo = getattr(self.kernel, "pmatrices", None)
        if memo is not None:
            return memo(t)
        return self.model.transition_matrices(t, self.rate_model.rates)

    def _propagate_tip(self, pmats: np.ndarray, masks: np.ndarray) -> np.ndarray:
        """Uncharged single-span tip propagation (kept for direct kernel
        tests; plan execution goes through the kernel backend)."""
        table = np.einsum("kab,sb->ksa", pmats, self._tip_rows, optimize=True)
        p2c = None
        if self.is_cat:
            p2c = self.rate_model.pattern_to_cat[: masks.shape[0]]
        return self.kernel._tip_gather_span(table, masks, p2c)

    def _propagate(self, pmats: np.ndarray, clv: np.ndarray) -> np.ndarray:
        """Uncharged single-span propagation (see :meth:`_propagate_tip`).

        ``clv`` may be a tip CLV of shape (m, 4) (category-independent) or
        an internal CLV of shape (m, k, 4) [gamma] / (m, 4) [cat].
        """
        p2c = None
        if self.is_cat:
            p2c = self.rate_model.pattern_to_cat[: clv.shape[0]]
        return self.kernel._propagate_span(pmats, clv, p2c)

    def _as_full(self, clv: np.ndarray) -> np.ndarray:
        """Expand a tip CLV (m, 4) to the engine's full CLV shape.

        In gamma mode internal CLVs are (m, k, 4); a tip's CLV is
        category-independent and is broadcast.  In cat mode both shapes are
        already (m, 4).
        """
        if not self.is_cat and clv.ndim == 2:
            m = clv.shape[0]
            return np.broadcast_to(clv[:, None, :], (m, self.n_categories, 4))
        return clv

    def _rescale(
        self, clv: np.ndarray, logscale: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Divide each pattern's CLV by its max entry, accumulating logs."""
        axes = tuple(range(1, clv.ndim))
        mx = np.maximum(clv.max(axis=axes), _TINY)
        shape = (clv.shape[0],) + (1,) * (clv.ndim - 1)
        clv = clv / mx.reshape(shape)
        return clv, logscale + np.log(mx)

    # -- down partials (postorder, plan-driven) -------------------------------

    def _inner_partial(self, node: Node, down: dict[int, Partial]) -> Partial:
        """Combine child contributions into one inner-node down partial."""
        m = self.n_patterns
        acc = None
        logscale = np.zeros(m)
        for child in node.children:
            pmats = self._pmatrices(child.length)
            if child.is_leaf:
                # Tip-specialised kernel: gather from a 16-entry table.
                contrib = self.kernel.propagate_tip(
                    pmats, self.pal.patterns[child.leaf_index]
                )
            else:
                part = down[id(child)]
                contrib = self.kernel.propagate(pmats, part.clv)
                logscale = logscale + part.logscale
            acc = contrib if acc is None else acc * contrib
        acc, logscale = self._rescale(acc, logscale)
        return Partial(acc, logscale)

    def compute_down_partials(
        self, tree: Tree, subtree: Node | None = None
    ) -> dict[int, Partial]:
        """CLV of the subtree below every node, keyed by ``id(node)``.

        Plans the traversal first: with the CLV cache enabled, inner nodes
        whose subtree signature is cached are fetched instead of recomputed
        — after a local move only the root path costs kernel work.

        ``subtree`` restricts the computation to the nodes under (and
        including) one node — used by lazy SPR, where the pruned subtree's
        partial is independent of the rest of the tree.
        """
        plan = plan_traversal(tree, self.clv_cache, subtree)
        rec = _obs_current()
        if rec is not None:
            rec.count("clv.plan_traversals")
            rec.count("clv.plan_tips", plan.n_tip)
            rec.count("clv.cache_hits", plan.n_cached)
            rec.count("clv.cache_misses", plan.n_inner)
        if self.kernel.supports_levels:
            down, executed = self._execute_plan_leveled(plan)
        else:
            down, executed = self._execute_plan(plan)
        # One simulated region per executed inner-node CLV update (at least
        # one: even an all-cached traversal synchronises the workers once).
        if rec is not None:
            rec.count("clv.inner_executed", executed)
        self._charge_regions(max(executed, 1))
        return down

    def _execute_plan(self, plan) -> tuple[dict[int, Partial], int]:
        """Reference op-by-op plan execution (postorder)."""
        down: dict[int, Partial] = {}
        m = self.n_patterns
        executed = 0
        for op in plan.ops:
            node = op.node
            if op.kind == "tip":
                down[id(node)] = Partial(self.tip_clv(node.leaf_index), np.zeros(m))
                continue
            part: Partial | None = None
            if op.kind == "cached":
                part = self.clv_cache.get(op.signature, planned=True)
            if part is None:  # "inner", or a hit evicted since planning
                part = self._inner_partial(node, down)
                executed += 1
                if self.clv_cache is not None:
                    self.clv_cache.put(op.signature, part)
            down[id(node)] = part
        return down, executed

    def _tip_partial(self, leaf_index: int) -> Partial:
        part = self._tip_parts.get(leaf_index)
        if part is None:
            clv = self.tip_clv(leaf_index)
            clv.setflags(write=False)
            part = Partial(clv, self._zero_logscale)
            self._tip_parts[leaf_index] = part
        return part

    def _leaf_spec(self, sigs: dict[int, int], child: Node):
        return (sigs[id(child)], child.length, self.pal.patterns[child.leaf_index])

    def _execute_plan_leveled(self, plan) -> tuple[dict[int, Partial], int]:
        """Level-wise plan execution for ``supports_levels`` backends.

        Each dependency level resolves cache hits first, then hands every
        remaining op — its child edge specs plus inner-child log-scalers
        — to the kernel in one ``level_partials`` batch (the kernel picks
        the stacked-contraction or fused-block regime).  Cache semantics
        match the reference executor: planned hits are re-fetched (and
        recomputed if evicted since planning) and every computed partial
        is put back.
        """
        kern = self.kernel
        cache = self.clv_cache
        sigs = plan.signatures
        down: dict[int, Partial] = {}
        executed = 0
        for level in plan.levels():
            pending = []
            for op in level:
                if op.kind == "tip":
                    down[id(op.node)] = self._tip_partial(op.node.leaf_index)
                    continue
                if op.kind == "cached":
                    part = cache.get(op.signature, planned=True)
                    if part is not None:
                        down[id(op.node)] = part
                        continue
                pending.append(op)
            if not pending:
                continue
            node_specs = []
            for op in pending:
                specs = [
                    self._leaf_spec(sigs, child) if child.is_leaf
                    else (sigs[id(child)], child.length, down[id(child)].clv)
                    for child in op.node.children
                ]
                inner_ls = [
                    down[id(c)].logscale
                    for c in op.node.children
                    if not c.is_leaf
                ]
                node_specs.append((specs, inner_ls))
            for op, part in zip(pending, kern.level_partials(node_specs)):
                executed += 1
                if cache is not None:
                    cache.put(op.signature, part)
                down[id(op.node)] = part
        return down, executed

    @staticmethod
    def _subtree_postorder(node: Node):
        return subtree_postorder(node)

    # -- up partials (preorder) ------------------------------------------------

    def compute_up_partials(
        self, tree: Tree, down: dict[int, Partial]
    ) -> dict[int, Partial]:
        """For each non-root node ``v``: the partial *at v's parent* of the
        entire tree minus ``v``'s subtree, keyed by ``id(v)``.

        Together with ``down[v]`` this evaluates the likelihood of the edge
        above ``v`` in O(1) kernel calls (RAxML's "makenewz" setting).
        """
        if self.kernel.supports_levels:
            up = self._up_partials_leveled(tree, down)
            self._charge_regions(
                sum(len(n.children) for n in tree.postorder() if not n.is_leaf)
            )
            return up
        m = self.n_patterns
        up: dict[int, Partial] = {}
        for node in tree.preorder():
            if node.is_leaf:
                continue
            if node is tree.root:
                above: Partial | None = None
            else:
                above_raw = up[id(node)]
                # Transport the parent-side partial across this node's edge.
                moved = self.kernel.propagate(
                    self._pmatrices(node.length), above_raw.clv
                )
                above = Partial(moved, above_raw.logscale)
            # Sibling contributions at this node, for each child.
            contribs = []
            for child in node.children:
                pmats = self._pmatrices(child.length)
                if child.is_leaf:
                    contrib = self.kernel.propagate_tip(
                        pmats, self.pal.patterns[child.leaf_index]
                    )
                    logscale_c = np.zeros(m)
                else:
                    part = down[id(child)]
                    contrib = self.kernel.propagate(pmats, part.clv)
                    logscale_c = part.logscale
                contribs.append(Partial(contrib, logscale_c))
            for i, child in enumerate(node.children):
                acc = None
                logscale = np.zeros(m)
                for j, sib in enumerate(contribs):
                    if i == j:
                        continue
                    acc = sib.clv if acc is None else acc * sib.clv
                    logscale = logscale + sib.logscale
                if above is not None:
                    acc = acc * above.clv if acc is not None else above.clv
                    logscale = logscale + above.logscale
                acc, logscale = self._rescale(acc, logscale)
                up[id(child)] = Partial(acc, logscale)
        self._charge_regions(
            sum(len(n.children) for n in tree.postorder() if not n.is_leaf)
        )
        return up

    def _up_partials_leveled(
        self, tree: Tree, down: dict[int, Partial]
    ) -> dict[int, Partial]:
        """Level-wise up-partial sweep for ``supports_levels`` backends.

        Internal nodes are grouped by depth (parents strictly before
        children, so each node's own up partial exists when its level
        runs) and each level is handed to the kernel in one
        ``up_level_partials`` batch: every node's parent-side partial
        (for the kernel to transport across the node's own edge), its
        child edge specs, and the children's down log-scalers, all in
        child order.  The kernel picks the stacked-contribution or
        fused-block regime; products and rescales follow the reference
        order exactly — siblings in child order, the transported
        parent-side partial last.
        """
        kern = self.kernel
        sigs = subtree_signatures(tree.postorder())
        up: dict[int, Partial] = {}
        levels: list[list[Node]] = []
        frontier = [tree.root]
        while frontier:
            levels.append(frontier)
            frontier = [
                ch for node in frontier for ch in node.children if not ch.is_leaf
            ]
        for level in levels:
            node_specs = []
            for node in level:
                if node is tree.root:
                    above = None
                else:
                    raw = up[id(node)]
                    above = (node.length, raw.clv, raw.logscale)
                specs = [
                    self._leaf_spec(sigs, child) if child.is_leaf
                    else (sigs[id(child)], child.length, down[id(child)].clv)
                    for child in node.children
                ]
                inner_ls = [
                    None if child.is_leaf else down[id(child)].logscale
                    for child in node.children
                ]
                node_specs.append((above, specs, inner_ls))
            for node, parts in zip(level, kern.up_level_partials(node_specs)):
                for child, part in zip(node.children, parts):
                    up[id(child)] = part
        return up

    # -- likelihood ---------------------------------------------------------------

    def _site_logl(self, site: np.ndarray, logscale: np.ndarray) -> np.ndarray:
        """Per-pattern log-likelihood from scaled variable-part site
        likelihoods, mixing in the +I invariant component when present."""
        p = self.rate_model.p_invariant
        if p == 0.0:
            return np.log(np.maximum(site, _TINY)) + logscale
        var = np.log(np.maximum((1.0 - p) * site, _TINY)) + logscale
        with np.errstate(divide="ignore"):
            inv = np.log(p * np.maximum(self._inv_lik, 0.0))
        return np.logaddexp(var, inv)

    def _combine_root(self, root_partial: Partial) -> np.ndarray:
        """Per-pattern log-likelihood from the root CLV."""
        site = self.kernel.root_site(self._as_full(root_partial.clv))
        return self._site_logl(site, root_partial.logscale)

    def site_loglikelihoods(self, tree: Tree) -> np.ndarray:
        """Per-pattern log-likelihoods (unweighted)."""
        down = self.compute_down_partials(tree)
        self._charge_regions(1)  # the evaluate/reduction sweep
        return self._combine_root(down[id(tree.root)])

    def loglikelihood(self, tree: Tree) -> float:
        """The weighted log-likelihood of ``tree`` under this engine.

        The per-pattern vector is reduced once over the full pattern axis
        regardless of sharding, so the value is bit-identical for serial
        and threaded execution.
        """
        return float(self.weights @ self.site_loglikelihoods(tree))

    def edge_loglikelihood(
        self,
        edge_child: Node,
        t: float,
        down_v: Partial,
        up_v: Partial,
    ) -> float:
        """Likelihood evaluated across one edge with partials on both sides.

        ``down_v`` is the subtree partial at ``edge_child``; ``up_v`` is the
        rest-of-tree partial at its parent (see
        :meth:`compute_up_partials`).
        """
        site = self.kernel.edge_site(
            self._as_full(up_v.clv), self._pmatrices(t), self._as_full(down_v.clv)
        )
        self._charge_regions(1)
        logl = self._site_logl(site, down_v.logscale + up_v.logscale)
        return float(self.weights @ logl)

    def partial_for(self, partials: dict[int, Partial], node: Node) -> Partial:
        """Partial lookup in a map returned by the compute methods (kept as
        a method so historical call sites survive; the threaded engine once
        returned chunked lists needing a real indirection here)."""
        return partials[id(node)]

    def insertion_loglikelihood(
        self,
        down_v: Partial,
        up_v: Partial,
        down_s: Partial,
        t_edge: float,
        t_sub: float,
    ) -> float:
        """Lazy-SPR score: likelihood of inserting a pruned subtree.

        The subtree with subtree partial ``down_s`` is attached by a branch
        of length ``t_sub`` to a new node placed at the midpoint of the
        edge carrying partials ``down_v`` (below) and ``up_v`` (above,
        length ``t_edge``).  No branch lengths are optimised — this is
        RAxML's lazy SPR evaluation used to rank candidate insertions.
        """
        half = max(t_edge * 0.5, 1e-9)
        site = self.kernel.insertion_site(
            self._as_full(down_v.clv),
            self._as_full(up_v.clv),
            self._as_full(down_s.clv),
            self._pmatrices(half),
            self._pmatrices(t_sub),
        )
        self._charge_regions(1)
        logl = self._site_logl(
            site, down_v.logscale + up_v.logscale + down_s.logscale
        )
        return float(self.weights @ logl)

    # -- sumtable (eigen-coefficient) machinery for Newton steps ---------------

    def edge_coefficients(self, down_v: Partial, up_v: Partial):
        """Eigenbasis coefficient table for the edge likelihood function.

        Returns ``(coef, exps, logscale)`` such that the per-pattern site
        likelihood across the edge at branch length ``t`` is

        ``site_p(t) = sum_{k,j} coef[p,k,j] * exp(exps[k,j] * t)``  (gamma)
        ``site_p(t) = sum_j coef[p,j] * exp(exps[p,j] * t)``        (cat)

        This is RAxML's "sumtable": Newton iterations on ``t`` then cost
        O(m·k·4) per step with no further matrix exponentials.
        """
        coef, exps = self.kernel.sumtable(
            self._as_full(up_v.clv), self._as_full(down_v.clv)
        )
        self._charge_regions(1)
        logscale = down_v.logscale + up_v.logscale
        return coef, exps, logscale

    def edge_coefficients_and_derivatives(self, down_v: Partial, up_v: Partial, t: float):
        """Sumtable build plus the Newton evaluation at ``t`` in one call.

        Returns ``(coef, exps, logscale, (lnl, g, h))``.  Backends that
        provide a fused ``sumtable_with_derivatives`` evaluate each
        coefficient span while it is cache-hot; others fall back to the
        separate :meth:`edge_coefficients` + :meth:`edge_lnl_and_derivatives`
        calls.  Results, op charges, and region charges are identical
        either way.
        """
        fused = getattr(self.kernel, "sumtable_with_derivatives", None)
        if fused is None:
            coef, exps, logscale = self.edge_coefficients(down_v, up_v)
            first = self.edge_lnl_and_derivatives(coef, exps, logscale, t)
            return coef, exps, logscale, first
        coef, exps, site, d1, d2 = fused(
            self._as_full(up_v.clv), self._as_full(down_v.clv), t
        )
        self._charge_regions(2)  # the sumtable sweep + the derivative sweep
        logscale = down_v.logscale + up_v.logscale
        return coef, exps, logscale, self._finish_derivatives(site, d1, d2, logscale)

    def edge_lnl_and_derivatives(self, coef, exps, logscale, t: float):
        """(lnL, dlnL/dt, d²lnL/dt²) of the edge function at ``t``."""
        site, d1, d2 = self.kernel.derivatives(coef, exps, t)
        self._charge_regions(1)
        return self._finish_derivatives(site, d1, d2, logscale)

    def _finish_derivatives(self, site, d1, d2, logscale):
        """Reduce per-pattern (site, d1, d2) to (lnL, dlnL/dt, d²lnL/dt²)."""
        site = np.maximum(site, _TINY)
        p = self.rate_model.p_invariant
        if p > 0.0:
            # +I mixing: the invariant term is a constant offset, so the
            # derivatives divide by the mixed likelihood in scaled space.
            lnl = float(self.weights @ self._site_logl(site, logscale))
            adj = (p / (1.0 - p)) * self._inv_lik * np.exp(
                np.clip(-logscale, None, 700.0)
            )
            denom = site + adj
        else:
            lnl = float(self.weights @ (np.log(site) + logscale))
            denom = site
        g = float(self.weights @ (d1 / denom))
        h = float(self.weights @ ((d2 * denom - d1 * d1) / (denom * denom)))
        return lnl, g, h
