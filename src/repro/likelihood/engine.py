"""Felsenstein-pruning likelihood engine, vectorized over patterns.

The engine mirrors the structure of RAxML's likelihood core:

* conditional likelihood vectors (CLVs) are arrays over the *pattern* axis
  — the axis RAxML's fine-grained Pthreads parallelization slices;
* two rate-heterogeneity modes: ``gamma`` (a mixture — every pattern is
  evaluated under every category, GTRGAMMA) and ``cat`` (each pattern is
  assigned to exactly one rate category, GTRCAT);
* per-pattern log-scalers avoid underflow on large trees;
* "down" partials (postorder, subtree below each node) and "up" partials
  (preorder, rest-of-tree seen from above) support O(1)-per-edge
  likelihood evaluation for branch optimisation and lazy SPR scoring;
* an :class:`OpCounter` tallies pattern-operations so the performance model
  and the virtual thread pool can charge simulated time for real work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.likelihood.gamma import discrete_gamma_rates
from repro.likelihood.gtr import GTRModel
from repro.seq.encoding import state_likelihood_rows
from repro.seq.patterns import PatternAlignment
from repro.tree.topology import Node, Tree

#: Smallest value a scaler may take (guards log(0) for impossible patterns).
_TINY = 1e-300


@dataclass
class OpCounter:
    """Counts likelihood-kernel work in *pattern operations*.

    One pattern-op is the computation of one pattern's CLV entry set at one
    node (times the number of rate categories).  The counter feeds both the
    virtual thread pool (fine-grained timing) and cross-checks of the
    analytic cost model.
    """

    pattern_ops: int = 0
    clv_updates: int = 0
    edge_evals: int = 0

    def charge_clv(self, n_patterns: int, n_cats: int) -> None:
        self.pattern_ops += n_patterns * n_cats
        self.clv_updates += 1

    def charge_edge(self, n_patterns: int, n_cats: int) -> None:
        self.pattern_ops += n_patterns * n_cats
        self.edge_evals += 1

    def snapshot(self) -> dict[str, int]:
        return {
            "pattern_ops": self.pattern_ops,
            "clv_updates": self.clv_updates,
            "edge_evals": self.edge_evals,
        }


@dataclass(frozen=True)
class RateModel:
    """Rate-heterogeneity specification.

    ``kind == "gamma"``: ``rates`` holds the k category rates (mean 1) and
    every pattern is a uniform mixture over them; ``alpha`` records the
    shape parameter that produced them.

    ``kind == "cat"``: ``rates`` holds the category rates and
    ``pattern_to_cat`` assigns each pattern to exactly one category.

    ``p_invariant`` adds the "+I" component (GTR+I+Γ): a proportion of
    sites that never change.  Per-pattern likelihood becomes
    ``(1 - p)·L_variable + p·L_invariant`` where the invariant component
    is non-zero only for constant-compatible patterns.
    """

    kind: str
    rates: np.ndarray
    alpha: float | None = None
    pattern_to_cat: np.ndarray | None = None
    p_invariant: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("gamma", "cat"):
            raise ValueError(f"unknown rate model kind {self.kind!r}")
        if not (0.0 <= self.p_invariant < 1.0):
            raise ValueError("p_invariant must be in [0, 1)")
        rates = np.asarray(self.rates, dtype=np.float64)
        if rates.ndim != 1 or rates.size < 1:
            raise ValueError("rates must be a non-empty 1-D array")
        if np.any(rates < 0):
            raise ValueError("category rates must be non-negative")
        rates.setflags(write=False)
        object.__setattr__(self, "rates", rates)
        if self.kind == "cat":
            if self.pattern_to_cat is None:
                raise ValueError("cat rate model requires pattern_to_cat")
            p2c = np.asarray(self.pattern_to_cat, dtype=np.intp)
            if p2c.size and (p2c.min() < 0 or p2c.max() >= rates.size):
                raise ValueError("pattern_to_cat refers to a missing category")
            p2c.setflags(write=False)
            object.__setattr__(self, "pattern_to_cat", p2c)
        elif self.pattern_to_cat is not None:
            raise ValueError("gamma rate model must not set pattern_to_cat")

    @classmethod
    def gamma(
        cls, alpha: float = 1.0, n_categories: int = 4, p_invariant: float = 0.0
    ) -> "RateModel":
        return cls(
            "gamma",
            discrete_gamma_rates(alpha, n_categories),
            alpha=alpha,
            p_invariant=p_invariant,
        )

    @classmethod
    def single(cls) -> "RateModel":
        """No rate heterogeneity (one category, rate 1)."""
        return cls("gamma", np.ones(1), alpha=None)

    @classmethod
    def cat(cls, rates, pattern_to_cat, p_invariant: float = 0.0) -> "RateModel":
        return cls(
            "cat",
            np.asarray(rates, float),
            pattern_to_cat=np.asarray(pattern_to_cat),
            p_invariant=p_invariant,
        )

    def with_p_invariant(self, p_invariant: float) -> "RateModel":
        """The same rate model with a different +I proportion."""
        return RateModel(
            self.kind, self.rates, alpha=self.alpha,
            pattern_to_cat=self.pattern_to_cat, p_invariant=p_invariant,
        )

    @property
    def n_categories(self) -> int:
        return int(self.rates.size)


@dataclass
class _Partial:
    """A CLV plus its per-pattern log-scaler."""

    clv: np.ndarray  # gamma: (m, k, 4); cat: (m, 4)
    logscale: np.ndarray  # (m,)


def subset_rate_model(rate_model: RateModel, idx: np.ndarray) -> RateModel:
    """Restrict a rate model to a subset of patterns.

    Gamma mixtures are pattern-independent; CAT assignments are sliced.
    """
    if rate_model.kind == "cat":
        return RateModel.cat(
            rate_model.rates,
            rate_model.pattern_to_cat[idx],
            p_invariant=rate_model.p_invariant,
        )
    return rate_model


class LikelihoodEngine:
    """Phylogenetic likelihood computations for one pattern alignment.

    Parameters
    ----------
    pal:
        The pattern-compressed alignment.
    model:
        The GTR substitution model.
    rate_model:
        Gamma mixture or CAT assignment (see :class:`RateModel`).
    weights:
        Optional override of the pattern weights (bootstrap replicates pass
        resampled weights here); defaults to ``pal.weights``.
    ops:
        Optional shared :class:`OpCounter`.
    """

    def __init__(
        self,
        pal: PatternAlignment,
        model: GTRModel,
        rate_model: RateModel | None = None,
        weights: np.ndarray | None = None,
        ops: OpCounter | None = None,
    ) -> None:
        self.pal = pal
        self.model = model
        self.rate_model = rate_model if rate_model is not None else RateModel.gamma()
        if self.rate_model.kind == "cat":
            p2c = self.rate_model.pattern_to_cat
            if p2c.shape != (pal.n_patterns,):
                raise ValueError(
                    "pattern_to_cat length must equal the number of patterns"
                )
        w = pal.weights if weights is None else np.asarray(weights, dtype=np.float64)
        if w.shape != (pal.n_patterns,):
            raise ValueError("weights length must equal the number of patterns")
        if np.any(w < 0):
            raise ValueError("weights must be non-negative")
        self.weights = np.asarray(w, dtype=np.float64)
        self.ops = ops if ops is not None else OpCounter()
        self._tip_rows = state_likelihood_rows()
        # "+I" support: the invariant-site likelihood of each pattern is
        # sum_s pi_s over the states every taxon is compatible with —
        # non-zero only for constant-compatible columns, tree-independent.
        if self.rate_model.p_invariant > 0.0:
            const_mask = np.bitwise_and.reduce(pal.patterns, axis=0)
            self._inv_lik = self._tip_rows[const_mask] @ self.model.pi
        else:
            self._inv_lik = None

    # -- basic shapes -------------------------------------------------------

    @property
    def n_patterns(self) -> int:
        return self.pal.n_patterns

    @property
    def n_categories(self) -> int:
        return self.rate_model.n_categories

    @property
    def is_cat(self) -> bool:
        return self.rate_model.kind == "cat"

    def with_model(self, model: GTRModel) -> "LikelihoodEngine":
        return LikelihoodEngine(self.pal, model, self.rate_model, self.weights, self.ops)

    def with_rate_model(self, rate_model: RateModel) -> "LikelihoodEngine":
        return LikelihoodEngine(self.pal, self.model, rate_model, self.weights, self.ops)

    def with_weights(self, weights: np.ndarray) -> "LikelihoodEngine":
        return LikelihoodEngine(self.pal, self.model, self.rate_model, weights, self.ops)

    # -- CLV primitives ----------------------------------------------------

    def tip_clv(self, leaf_index: int, patterns: slice | None = None) -> np.ndarray:
        """The (unscaled) tip CLV for one taxon: (m, 4) 0/1 indicators."""
        masks = self.pal.patterns[leaf_index]
        if patterns is not None:
            masks = masks[patterns]
        return self._tip_rows[masks]

    def _pmatrices(self, t: float) -> np.ndarray:
        """P(t·r_c) for all categories; shape (k, 4, 4)."""
        return self.model.transition_matrices(t, self.rate_model.rates)

    def _propagate_tip(self, pmats: np.ndarray, masks: np.ndarray) -> np.ndarray:
        """Tip-specialised propagation (RAxML's tip-case kernels).

        A tip CLV takes one of only 16 values (the IUPAC masks), so the
        matrix product is precomputed per mask — ``P @ rows[mask]`` for all
        16 masks and every category — and the per-pattern result is a pure
        gather.  O(16·k) arithmetic instead of O(m·k).
        """
        # (k, 16, 4): for each category, the propagated CLV of each mask.
        table = np.einsum("kab,sb->ksa", pmats, self._tip_rows, optimize=True)
        if self.is_cat:
            return table[self.rate_model.pattern_to_cat[: masks.shape[0]], masks]
        # gamma: (k, m, 4) -> (m, k, 4)
        return np.ascontiguousarray(table[:, masks, :].transpose(1, 0, 2))

    def _propagate(self, pmats: np.ndarray, clv: np.ndarray) -> np.ndarray:
        """Apply per-category transition matrices to a child CLV.

        ``clv`` may be a tip CLV of shape (m, 4) (category-independent) or
        an internal CLV of shape (m, k, 4) [gamma] / (m, 4) [cat].
        Returns the parent-side contribution with the engine's CLV shape.
        """
        if self.is_cat:
            p_per_pattern = pmats[self.rate_model.pattern_to_cat[: clv.shape[0]]]
            return np.einsum("pab,pb->pa", p_per_pattern, clv, optimize=True)
        if clv.ndim == 2:  # tip: broadcast over categories
            return np.einsum("kab,mb->mka", pmats, clv, optimize=True)
        return np.einsum("kab,mkb->mka", pmats, clv, optimize=True)

    def _as_full(self, clv: np.ndarray) -> np.ndarray:
        """Expand a tip CLV (m, 4) to the engine's full CLV shape.

        In gamma mode internal CLVs are (m, k, 4); a tip's CLV is
        category-independent and is broadcast.  In cat mode both shapes are
        already (m, 4).
        """
        if not self.is_cat and clv.ndim == 2:
            m = clv.shape[0]
            return np.broadcast_to(clv[:, None, :], (m, self.n_categories, 4))
        return clv

    def _rescale(self, clv: np.ndarray, logscale: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Divide each pattern's CLV by its max entry, accumulating logs."""
        axes = tuple(range(1, clv.ndim))
        mx = np.maximum(clv.max(axis=axes), _TINY)
        shape = (clv.shape[0],) + (1,) * (clv.ndim - 1)
        clv = clv / mx.reshape(shape)
        return clv, logscale + np.log(mx)

    # -- down partials (postorder) --------------------------------------------

    def compute_down_partials(
        self, tree: Tree, subtree: Node | None = None
    ) -> dict[int, _Partial]:
        """CLV of the subtree below every node, keyed by ``id(node)``.

        ``subtree`` restricts the computation to the nodes under (and
        including) one node — used by lazy SPR, where the pruned subtree's
        partial is independent of the rest of the tree.
        """
        down: dict[int, _Partial] = {}
        m = self.n_patterns
        nodes = tree.postorder() if subtree is None else self._subtree_postorder(subtree)
        for node in nodes:
            if node.is_leaf:
                clv = self.tip_clv(node.leaf_index)
                if not self.is_cat:
                    # Tips are category-independent; store (m, 4) and let
                    # _propagate broadcast. Keep explicit for uniformity.
                    pass
                down[id(node)] = _Partial(clv, np.zeros(m))
            else:
                acc = None
                logscale = np.zeros(m)
                for child in node.children:
                    pmats = self._pmatrices(child.length)
                    if child.is_leaf:
                        # Tip-specialised kernel: gather from a 16-entry table.
                        masks = self.pal.patterns[child.leaf_index]
                        contrib = self._propagate_tip(pmats, masks)
                    else:
                        part = down[id(child)]
                        contrib = self._propagate(pmats, part.clv)
                        logscale += part.logscale
                    self.ops.charge_clv(m, self.n_categories)
                    acc = contrib if acc is None else acc * contrib
                acc, logscale = self._rescale(acc, logscale)
                down[id(node)] = _Partial(acc, logscale)
        return down

    @staticmethod
    def _subtree_postorder(node: Node):
        stack = [(node, False)]
        while stack:
            n, expanded = stack.pop()
            if expanded or n.is_leaf:
                yield n
            else:
                stack.append((n, True))
                for ch in reversed(n.children):
                    stack.append((ch, False))

    # -- up partials (preorder) ------------------------------------------------

    def compute_up_partials(
        self, tree: Tree, down: dict[int, _Partial]
    ) -> dict[int, _Partial]:
        """For each non-root node ``v``: the partial *at v's parent* of the
        entire tree minus ``v``'s subtree, keyed by ``id(v)``.

        Together with ``down[v]`` this evaluates the likelihood of the edge
        above ``v`` in O(1) kernel calls (RAxML's "makenewz" setting).
        """
        m = self.n_patterns
        up: dict[int, _Partial] = {}
        for node in tree.preorder():
            if node.is_leaf:
                continue
            if node is tree.root:
                above: _Partial | None = None
            else:
                above_raw = up[id(node)]
                # Transport the parent-side partial across this node's edge.
                moved = self._propagate(self._pmatrices(node.length), above_raw.clv)
                self.ops.charge_clv(m, self.n_categories)
                above = _Partial(moved, above_raw.logscale)
            # Sibling contributions at this node, for each child.
            contribs = []
            for child in node.children:
                pmats = self._pmatrices(child.length)
                if child.is_leaf:
                    contrib = self._propagate_tip(
                        pmats, self.pal.patterns[child.leaf_index]
                    )
                    logscale_c = np.zeros(m)
                else:
                    part = down[id(child)]
                    contrib = self._propagate(pmats, part.clv)
                    logscale_c = part.logscale
                self.ops.charge_clv(m, self.n_categories)
                contribs.append(_Partial(contrib, logscale_c))
            for i, child in enumerate(node.children):
                acc = None
                logscale = np.zeros(m)
                for j, sib in enumerate(contribs):
                    if i == j:
                        continue
                    acc = sib.clv if acc is None else acc * sib.clv
                    logscale = logscale + sib.logscale
                if above is not None:
                    acc = acc * above.clv if acc is not None else above.clv
                    logscale = logscale + above.logscale
                acc, logscale = self._rescale(acc, logscale)
                up[id(child)] = _Partial(acc, logscale)
        return up

    # -- likelihood ---------------------------------------------------------------

    def _site_logl(self, site: np.ndarray, logscale: np.ndarray) -> np.ndarray:
        """Per-pattern log-likelihood from scaled variable-part site
        likelihoods, mixing in the +I invariant component when present."""
        p = self.rate_model.p_invariant
        if p == 0.0:
            return np.log(np.maximum(site, _TINY)) + logscale
        var = np.log(np.maximum((1.0 - p) * site, _TINY)) + logscale
        with np.errstate(divide="ignore"):
            inv = np.log(p * np.maximum(self._inv_lik, 0.0))
        return np.logaddexp(var, inv)

    def _combine_root(self, root_partial: _Partial) -> np.ndarray:
        """Per-pattern log-likelihood from the root CLV."""
        pi = self.model.pi
        if self.is_cat:
            site = root_partial.clv @ pi
        else:
            k = self.n_categories
            site = np.einsum("mka,a->m", root_partial.clv, pi) / k
        return self._site_logl(site, root_partial.logscale)

    def site_loglikelihoods(self, tree: Tree) -> np.ndarray:
        """Per-pattern log-likelihoods (unweighted)."""
        down = self.compute_down_partials(tree)
        return self._combine_root(down[id(tree.root)])

    def loglikelihood(self, tree: Tree) -> float:
        """The weighted log-likelihood of ``tree`` under this engine."""
        return float(self.weights @ self.site_loglikelihoods(tree))

    def edge_loglikelihood(
        self,
        edge_child: Node,
        t: float,
        down_v: _Partial,
        up_v: _Partial,
    ) -> float:
        """Likelihood evaluated across one edge with partials on both sides.

        ``down_v`` is the subtree partial at ``edge_child``; ``up_v`` is the
        rest-of-tree partial at its parent (see
        :meth:`compute_up_partials`).
        """
        pmats = self._pmatrices(t)
        pi = self.model.pi
        self.ops.charge_edge(self.n_patterns, self.n_categories)
        dclv = self._as_full(down_v.clv)
        uclv = self._as_full(up_v.clv)
        if self.is_cat:
            p_per = pmats[self.rate_model.pattern_to_cat]
            site = np.einsum(
                "a,pa,pab,pb->p", pi, uclv, p_per, dclv, optimize=True
            )
        else:
            site = (
                np.einsum(
                    "a,mka,kab,mkb->m", pi, uclv, pmats, dclv, optimize=True
                )
                / self.n_categories
            )
        logl = self._site_logl(site, down_v.logscale + up_v.logscale)
        return float(self.weights @ logl)

    def partial_for(self, partials: dict[int, "_Partial"], node: Node) -> "_Partial":
        """Uniform partial lookup (shared API with the threaded engine, so
        search code is agnostic to whether patterns are chunked)."""
        return partials[id(node)]

    def insertion_loglikelihood(
        self,
        down_v: _Partial,
        up_v: _Partial,
        down_s: _Partial,
        t_edge: float,
        t_sub: float,
    ) -> float:
        """Lazy-SPR score: likelihood of inserting a pruned subtree.

        The subtree with subtree partial ``down_s`` is attached by a branch
        of length ``t_sub`` to a new node placed at the midpoint of the
        edge carrying partials ``down_v`` (below) and ``up_v`` (above,
        length ``t_edge``).  No branch lengths are optimised — this is
        RAxML's lazy SPR evaluation used to rank candidate insertions.
        """
        half = max(t_edge * 0.5, 1e-9)
        c1 = self._propagate(self._pmatrices(half), down_v.clv)
        c2 = self._propagate(self._pmatrices(half), up_v.clv)
        c3 = self._propagate(self._pmatrices(t_sub), down_s.clv)
        self.ops.charge_clv(self.n_patterns, self.n_categories)
        self.ops.charge_clv(self.n_patterns, self.n_categories)
        self.ops.charge_edge(self.n_patterns, self.n_categories)
        pi = self.model.pi
        prod = c1 * c2 * c3
        if self.is_cat:
            site = prod @ pi
        else:
            site = np.einsum("mka,a->m", prod, pi) / self.n_categories
        logl = self._site_logl(
            site, down_v.logscale + up_v.logscale + down_s.logscale
        )
        return float(self.weights @ logl)

    # -- sumtable (eigen-coefficient) machinery for Newton steps ---------------

    def edge_coefficients(self, down_v: _Partial, up_v: _Partial):
        """Eigenbasis coefficient table for the edge likelihood function.

        Returns ``(coef, exps, logscale)`` such that the per-pattern site
        likelihood across the edge at branch length ``t`` is

        ``site_p(t) = sum_{k,j} coef[p,k,j] * exp(exps[k,j] * t)``  (gamma)
        ``site_p(t) = sum_j coef[p,j] * exp(exps[p,j] * t)``        (cat)

        This is RAxML's "sumtable": Newton iterations on ``t`` then cost
        O(m·k·4) per step with no further matrix exponentials.
        """
        lam, u, u_inv, _ = self.model._spectral
        pi = self.model.pi
        rates = self.rate_model.rates
        dclv = self._as_full(down_v.clv)
        uclv = self._as_full(up_v.clv)
        if self.is_cat:
            x = (uclv * pi[None, :]) @ u  # (m, 4)
            y = dclv @ u_inv.T  # (m, 4)
            coef = x * y
            exps = np.outer(rates, lam)[self.rate_model.pattern_to_cat]  # (m, 4)
        else:
            x = np.einsum("mka,a,aj->mkj", uclv, pi, u, optimize=True)
            y = np.einsum("mkb,jb->mkj", dclv, u_inv, optimize=True)
            coef = x * y / self.n_categories
            exps = np.outer(rates, lam)  # (k, 4)
        logscale = down_v.logscale + up_v.logscale
        return coef, exps, logscale

    def edge_lnl_and_derivatives(self, coef, exps, logscale, t: float):
        """(lnL, dlnL/dt, d²lnL/dt²) of the edge function at ``t``."""
        e = np.exp(exps * t)
        if self.is_cat:
            term = coef * e  # (m, 4)
            site = term.sum(axis=1)
            d1 = (term * exps).sum(axis=1)
            d2 = (term * exps * exps).sum(axis=1)
        else:
            term = coef * e[None, :, :]  # (m, k, 4)
            site = term.sum(axis=(1, 2))
            d1 = (term * exps[None]).sum(axis=(1, 2))
            d2 = (term * exps[None] * exps[None]).sum(axis=(1, 2))
        site = np.maximum(site, _TINY)
        p = self.rate_model.p_invariant
        if p > 0.0:
            # +I mixing: the invariant term is a constant offset, so the
            # derivatives divide by the mixed likelihood in scaled space.
            lnl = float(self.weights @ self._site_logl(site, logscale))
            adj = (p / (1.0 - p)) * self._inv_lik * np.exp(
                np.clip(-logscale, None, 700.0)
            )
            denom = site + adj
        else:
            lnl = float(self.weights @ (np.log(site) + logscale))
            denom = site
        g = float(self.weights @ (d1 / denom))
        h = float(self.weights @ ((d2 * denom - d1 * d1) / (denom * denom)))
        return lnl, g, h
