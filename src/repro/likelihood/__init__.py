"""Likelihood substrate: GTR models, rate heterogeneity, pruning kernels.

This package is the Python equivalent of RAxML's likelihood core:

* :mod:`repro.likelihood.gtr` — the general time-reversible substitution
  model with its spectral decomposition and P(t) matrices;
* :mod:`repro.likelihood.gamma` — discrete-Γ rate heterogeneity (GTRGAMMA);
* :mod:`repro.likelihood.cat` — per-site rate categories (GTRCAT);
* :mod:`repro.likelihood.plan` — traversal planning: subtree signatures,
  CLV caching, and minimal recompute descriptors (RAxML's traversal
  descriptors);
* :mod:`repro.likelihood.kernels` — pluggable pattern-axis kernel
  backends (``reference``, ``blocked``) charging the shared op counter;
* :mod:`repro.likelihood.engine` — Felsenstein-pruning conditional
  likelihood vectors, vectorized over alignment patterns (the axis RAxML's
  Pthreads parallelization slices); one engine serves serial and
  thread-sharded execution;
* :mod:`repro.likelihood.brlen` — Newton–Raphson branch-length optimisation
  via per-edge eigen-coefficient tables (RAxML's "makenewz" scheme);
* :mod:`repro.likelihood.model_opt` — Brent-style optimisation of model
  parameters (Γ shape, GTR exchangeabilities);
* :mod:`repro.likelihood.parsimony` — vectorized Fitch parsimony, used for
  stepwise-addition starting trees.
"""

from repro.likelihood.gtr import GTRModel
from repro.likelihood.gamma import discrete_gamma_rates
from repro.likelihood.cat import CATRates, estimate_cat_rates
from repro.likelihood.engine import LikelihoodEngine, RateModel, OpCounter
from repro.likelihood.plan import CLVCache, TraversalPlan, plan_traversal
from repro.likelihood.kernels import available_kernels, get_kernel, register_kernel
from repro.likelihood.brlen import optimize_branch_lengths, optimize_edge
from repro.likelihood.model_opt import optimize_model, optimize_alpha, optimize_rates
from repro.likelihood.parsimony import fitch_score, ParsimonyEngine

__all__ = [
    "GTRModel",
    "discrete_gamma_rates",
    "CATRates",
    "estimate_cat_rates",
    "LikelihoodEngine",
    "RateModel",
    "OpCounter",
    "CLVCache",
    "TraversalPlan",
    "plan_traversal",
    "available_kernels",
    "get_kernel",
    "register_kernel",
    "optimize_branch_lengths",
    "optimize_edge",
    "optimize_model",
    "optimize_alpha",
    "optimize_rates",
    "fitch_score",
    "ParsimonyEngine",
]
