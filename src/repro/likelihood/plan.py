"""Traversal planning: which CLVs must be recomputed, in which order.

RAxML separates *what* to recompute from *how*: a traversal descriptor
lists the CLV operations a likelihood evaluation needs, and the worker
threads execute each operation over their pattern slice.  This module is
that first half.  :func:`plan_traversal` walks a tree in postorder and
emits a :class:`TraversalPlan` — an ordered list of :class:`CLVOp`
entries (tip gather, inner propagation, or cache fetch) ending at the
virtual root.

Dirty-node tracking is structural rather than imperative.  Every node
gets a 64-bit *subtree signature* hashed from its leaf set, topology,
and the branch lengths below it (child order included, since CLV
products are floating-point order-sensitive).  A topology move or branch
change alters the signatures of exactly the nodes on the path from the
edit to the root — everything else keeps its signature and can be served
from a :class:`CLVCache` keyed by signature.  Because signatures are
content hashes, caching survives ``tree.copy()`` (the search code clones
trees constantly) and is immune to node-identity reuse.

The planner never prunes the walk below a cached node: the plan covers
*every* node so the executed partial map is complete — search code looks
up arbitrary nodes' partials — but ops below a cache hit are themselves
(almost always) cache hits and cost no kernel work.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.likelihood.kernels.base import Partial
from repro.tree.topology import Node, Tree

_MASK = (1 << 64) - 1
_LEAF_TAG = 0xA5A5_5A5A_0F0F_F0F0
_INNER_TAG = 0x3C3C_C3C3_6996_9669


def _splitmix64(x: int) -> int:
    """Finalizer of the splitmix64 generator; a strong 64-bit mixer."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK
    return x ^ (x >> 31)


def _mix(h: int, v: int) -> int:
    return _splitmix64(h ^ _splitmix64(v & _MASK))


def _length_bits(t: float) -> int:
    """Branch lengths enter the hash by their exact float64 bit pattern —
    two lengths that differ in the last ulp produce different CLVs."""
    return int(np.float64(t).view(np.uint64))


def subtree_postorder(node: Node) -> Iterator[Node]:
    """Postorder over the subtree rooted at ``node`` (iterative)."""
    stack = [(node, False)]
    while stack:
        n, expanded = stack.pop()
        if expanded or n.is_leaf:
            yield n
        else:
            stack.append((n, True))
            for ch in reversed(n.children):
                stack.append((ch, False))


def subtree_signatures(nodes: Iterator[Node]) -> dict[int, int]:
    """Signature of every node in a postorder sequence, keyed by ``id``.

    A leaf's signature depends only on its taxon; an inner node's folds in
    each child's signature and the bit pattern of the branch leading to
    that child, in child order.  A node's own parent branch is *not*
    included — the down partial below a node does not depend on it.
    """
    sigs: dict[int, int] = {}
    for node in nodes:
        if node.is_leaf:
            sigs[id(node)] = _mix(_LEAF_TAG, node.leaf_index)
        else:
            s = _INNER_TAG
            for ch in node.children:
                s = _mix(s, sigs[id(ch)])
                s = _mix(s, _length_bits(ch.length))
            sigs[id(node)] = s
    return sigs


@dataclass(frozen=True)
class CLVOp:
    """One traversal-descriptor entry.

    ``kind`` is ``"tip"`` (gather a leaf CLV), ``"inner"`` (propagate and
    combine child CLVs — the only kind that costs kernel work), or
    ``"cached"`` (the planner found the node's signature in the cache).
    """

    node: Node
    signature: int
    kind: str


@dataclass
class TraversalPlan:
    """An ordered CLV recipe for one (sub)tree evaluation."""

    ops: list[CLVOp]
    root: Node
    signatures: dict[int, int] = field(repr=False)
    n_tip: int = 0
    n_inner: int = 0
    n_cached: int = 0
    _levels: list[list[CLVOp]] | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def n_internal(self) -> int:
        """Internal nodes covered, computed or cached."""
        return self.n_inner + self.n_cached

    def levels(self) -> list[list[CLVOp]]:
        """Dependency levels of the plan: a topological schedule by depth.

        Level ``d`` holds every op whose children all sit in levels
        ``< d`` — level 0 is exactly the tip ops, and an op's children
        always appear in strictly earlier levels, so each level can be
        executed as one batch (the level-batched kernel stacks a level's
        propagations into a single ``(nodes, patterns, rates, states)``
        contraction).  ``cached`` ops keep their structural depth: an
        executor that must recompute one (evicted since planning) still
        finds its children ready.  No level is ever empty — a node at
        depth ``d`` has a child at depth ``d - 1``, and the plan covers
        every node of its (sub)tree — including the single-op plan of a
        lone leaf, which yields ``[[tip]]``.
        """
        if self._levels is None:
            depth: dict[int, int] = {}
            levels: list[list[CLVOp]] = []
            for op in self.ops:
                node = op.node
                if node.is_leaf:
                    d = 0
                else:
                    d = 1 + max(depth[id(ch)] for ch in node.children)
                depth[id(node)] = d
                while len(levels) <= d:
                    levels.append([])
                levels[d].append(op)
            self._levels = levels
        return self._levels


class CLVCache:
    """LRU cache of down partials keyed by subtree signature.

    Invalidation is implicit: an edit changes the signatures on the path
    to the root, so stale entries are simply never looked up again and
    age out of the LRU.  ``max_entries`` bounds memory (each entry holds
    one CLV + log-scaler for the full pattern axis); ``max_entries=0``
    disables the cache — every probe misses and puts are dropped — so a
    zero budget degrades to from-scratch traversals instead of erroring.
    """

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 0:
            raise ValueError("max_entries must be non-negative")
        self.max_entries = max_entries
        self._store: OrderedDict[int, Partial] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._store)

    def probe(self, signature: int) -> bool:
        """Planner-side membership test; counts the hit/miss."""
        if signature in self._store:
            self.hits += 1
            return True
        self.misses += 1
        return False

    def get(self, signature: int, planned: bool = False) -> Partial | None:
        """Executor-side fetch (refreshes LRU order).

        May return ``None`` even after a successful probe: entries planned
        as hits can be evicted by inserts earlier in the same execution.
        The executor falls back to recomputing; it passes ``planned=True``
        so that the already-counted probe hit is reclassified as a miss —
        ``stats()`` then reflects what the execution actually got, and
        ``hits + misses`` stays equal to the number of planner probes.
        """
        part = self._store.get(signature)
        if part is not None:
            self._store.move_to_end(signature)
        elif planned:
            self.hits -= 1
            self.misses += 1
        return part

    def put(self, signature: int, partial: Partial) -> None:
        if self.max_entries == 0:
            return
        self._store[signature] = partial
        self._store.move_to_end(signature)
        while len(self._store) > self.max_entries:
            self._store.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._store.clear()

    def stats(self) -> dict[str, int]:
        return {
            "entries": len(self._store),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


def plan_traversal(
    tree: Tree,
    cache: CLVCache | None = None,
    subtree: Node | None = None,
) -> TraversalPlan:
    """Diff tree state against the cache and emit the minimal CLV recipe.

    Without a cache every inner node becomes an ``"inner"`` op — the
    from-scratch traversal.  With a cache, inner nodes whose subtree
    signature is cached become ``"cached"`` ops; after a local move
    (SPR/NNI/branch change) only the root path misses, so the executed
    kernel work shrinks from O(n) CLV updates to O(depth).
    """
    root = tree.root if subtree is None else subtree
    nodes = tree.postorder() if subtree is None else subtree_postorder(subtree)
    order = list(nodes)
    sigs = subtree_signatures(iter(order))
    ops: list[CLVOp] = []
    n_tip = n_inner = n_cached = 0
    for node in order:
        sig = sigs[id(node)]
        if node.is_leaf:
            ops.append(CLVOp(node, sig, "tip"))
            n_tip += 1
        elif cache is not None and cache.probe(sig):
            ops.append(CLVOp(node, sig, "cached"))
            n_cached += 1
        else:
            ops.append(CLVOp(node, sig, "inner"))
            n_inner += 1
    return TraversalPlan(
        ops=ops,
        root=root,
        signatures=sigs,
        n_tip=n_tip,
        n_inner=n_inner,
        n_cached=n_cached,
    )
