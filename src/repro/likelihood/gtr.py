"""The general time-reversible (GTR) nucleotide substitution model.

RAxML's default and the model used throughout the paper's benchmarks
(``-m GTRCAT``, with final evaluation under GTRGAMMA).  The model is
parameterised by six exchangeability rates (AC, AG, AT, CG, CT, GT; GT is
conventionally fixed to 1) and four stationary base frequencies.

The rate matrix is diagonalised once per parameter change through the
similarity transform ``B = diag(sqrt(pi)) Q diag(1/sqrt(pi))``, which is
symmetric for reversible models, so transition matrices for any branch
length come from a single cheap ``U exp(Λ t) U⁻¹`` product.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.validation import check_probability_vector

#: Exchangeability parameter order used everywhere.
RATE_ORDER = ("AC", "AG", "AT", "CG", "CT", "GT")

# (row, col) index pairs of the upper triangle in RATE_ORDER order.
_PAIRS = ((0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3))


@dataclass(frozen=True)
class GTRModel:
    """An immutable GTR model instance with cached spectral decomposition.

    Parameters
    ----------
    rates:
        Six exchangeabilities in :data:`RATE_ORDER` order.  They are
        normalised so that GT == 1 (RAxML's convention).
    freqs:
        Stationary base frequencies (A, C, G, T), summing to one.
    """

    rates: tuple[float, ...]
    freqs: tuple[float, ...]
    _spectral: tuple = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        rates = np.asarray(self.rates, dtype=np.float64)
        if rates.shape != (6,):
            raise ValueError(f"rates must have 6 entries, got shape {rates.shape}")
        if np.any(rates <= 0):
            raise ValueError("all exchangeability rates must be positive")
        rates = rates / rates[5]  # normalise GT to 1
        freqs = check_probability_vector("freqs", self.freqs)
        if np.any(freqs <= 0):
            raise ValueError("all base frequencies must be strictly positive")
        object.__setattr__(self, "rates", tuple(float(r) for r in rates))
        object.__setattr__(self, "freqs", tuple(float(f) for f in freqs))
        object.__setattr__(self, "_spectral", self._decompose())

    @classmethod
    def jc69(cls) -> "GTRModel":
        """Jukes–Cantor: all rates and frequencies equal (a GTR special case)."""
        return cls(rates=(1.0,) * 6, freqs=(0.25,) * 4)

    @classmethod
    def default(cls) -> "GTRModel":
        """RAxML's starting point: equal rates, empirical-ish frequencies."""
        return cls.jc69()

    # -- spectral machinery ------------------------------------------------

    def _build_q(self) -> np.ndarray:
        """The normalised instantaneous rate matrix Q (rows sum to zero)."""
        pi = np.asarray(self.freqs)
        q = np.zeros((4, 4))
        for rate, (i, j) in zip(self.rates, _PAIRS):
            q[i, j] = rate * pi[j]
            q[j, i] = rate * pi[i]
        np.fill_diagonal(q, -q.sum(axis=1))
        # Normalise so the expected substitution rate at stationarity is 1
        # (branch lengths are then in expected substitutions per site).
        mean_rate = -float(np.dot(pi, np.diag(q)))
        return q / mean_rate

    def _decompose(self):
        pi = np.asarray(self.freqs)
        q = self._build_q()
        sq = np.sqrt(pi)
        b = (q * sq[:, None]) / sq[None, :]
        b = 0.5 * (b + b.T)  # enforce exact symmetry before eigh
        eigvals, v = np.linalg.eigh(b)
        u = v / sq[:, None]  # U = diag(1/sqrt(pi)) V
        u_inv = v.T * sq[None, :]  # U^-1 = V^T diag(sqrt(pi))
        return eigvals, u, u_inv, q

    @property
    def q_matrix(self) -> np.ndarray:
        """The normalised rate matrix (copy)."""
        return self._spectral[3].copy()

    @property
    def eigenvalues(self) -> np.ndarray:
        return self._spectral[0].copy()

    @property
    def pi(self) -> np.ndarray:
        return np.asarray(self.freqs)

    def transition_matrices(self, t, rates=1.0) -> np.ndarray:
        """P(t * r) for scalar branch length ``t`` and one or more rate
        multipliers ``rates``.

        Returns an array of shape ``(k, 4, 4)`` where ``k = len(rates)``
        (``rates`` may be a scalar, giving ``k == 1``).  Rows sum to one.
        """
        if t < 0:
            raise ValueError(f"branch length must be non-negative, got {t}")
        lam, u, u_inv, _ = self._spectral
        r = np.atleast_1d(np.asarray(rates, dtype=np.float64))
        if np.any(r < 0):
            raise ValueError("rate multipliers must be non-negative")
        # exp(lam * t * r): shape (k, 4)
        e = np.exp(np.outer(r * t, lam))
        p = np.einsum("ij,kj,jl->kil", u, e, u_inv, optimize=True)
        # Clamp tiny negative values from roundoff.
        np.maximum(p, 0.0, out=p)
        return p

    def transition_matrix_derivatives(self, t: float, rates=1.0) -> np.ndarray:
        """dP/dt at ``t`` for each rate multiplier; shape ``(k, 4, 4)``."""
        if t < 0:
            raise ValueError(f"branch length must be non-negative, got {t}")
        lam, u, u_inv, _ = self._spectral
        r = np.atleast_1d(np.asarray(rates, dtype=np.float64))
        e = np.exp(np.outer(r * t, lam)) * (r[:, None] * lam[None, :])
        return np.einsum("ij,kj,jl->kil", u, e, u_inv, optimize=True)

    def with_rates(self, rates) -> "GTRModel":
        return GTRModel(tuple(rates), self.freqs)

    def with_freqs(self, freqs) -> "GTRModel":
        return GTRModel(self.rates, tuple(freqs))
