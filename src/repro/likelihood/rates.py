"""Rate-heterogeneity models (Γ mixtures and per-pattern CAT assignments).

Split out of :mod:`repro.likelihood.engine` so the kernel backends, the
traversal planner, and the engine can all depend on rate-model shapes
without importing each other.  The public names are re-exported from
``repro.likelihood.engine`` for backwards compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.likelihood.gamma import discrete_gamma_rates


@dataclass(frozen=True)
class RateModel:
    """Rate-heterogeneity specification.

    ``kind == "gamma"``: ``rates`` holds the k category rates (mean 1) and
    every pattern is a uniform mixture over them; ``alpha`` records the
    shape parameter that produced them.

    ``kind == "cat"``: ``rates`` holds the category rates and
    ``pattern_to_cat`` assigns each pattern to exactly one category.

    ``p_invariant`` adds the "+I" component (GTR+I+Γ): a proportion of
    sites that never change.  Per-pattern likelihood becomes
    ``(1 - p)·L_variable + p·L_invariant`` where the invariant component
    is non-zero only for constant-compatible patterns.
    """

    kind: str
    rates: np.ndarray
    alpha: float | None = None
    pattern_to_cat: np.ndarray | None = None
    p_invariant: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("gamma", "cat"):
            raise ValueError(f"unknown rate model kind {self.kind!r}")
        if not (0.0 <= self.p_invariant < 1.0):
            raise ValueError("p_invariant must be in [0, 1)")
        rates = np.asarray(self.rates, dtype=np.float64)
        if rates.ndim != 1 or rates.size < 1:
            raise ValueError("rates must be a non-empty 1-D array")
        if np.any(rates < 0):
            raise ValueError("category rates must be non-negative")
        rates.setflags(write=False)
        object.__setattr__(self, "rates", rates)
        if self.kind == "cat":
            if self.pattern_to_cat is None:
                raise ValueError("cat rate model requires pattern_to_cat")
            p2c = np.asarray(self.pattern_to_cat, dtype=np.intp)
            if p2c.size and (p2c.min() < 0 or p2c.max() >= rates.size):
                raise ValueError("pattern_to_cat refers to a missing category")
            p2c.setflags(write=False)
            object.__setattr__(self, "pattern_to_cat", p2c)
        elif self.pattern_to_cat is not None:
            raise ValueError("gamma rate model must not set pattern_to_cat")

    @classmethod
    def gamma(
        cls, alpha: float = 1.0, n_categories: int = 4, p_invariant: float = 0.0
    ) -> "RateModel":
        return cls(
            "gamma",
            discrete_gamma_rates(alpha, n_categories),
            alpha=alpha,
            p_invariant=p_invariant,
        )

    @classmethod
    def single(cls) -> "RateModel":
        """No rate heterogeneity (one category, rate 1)."""
        return cls("gamma", np.ones(1), alpha=None)

    @classmethod
    def cat(cls, rates, pattern_to_cat, p_invariant: float = 0.0) -> "RateModel":
        return cls(
            "cat",
            np.asarray(rates, float),
            pattern_to_cat=np.asarray(pattern_to_cat),
            p_invariant=p_invariant,
        )

    def with_p_invariant(self, p_invariant: float) -> "RateModel":
        """The same rate model with a different +I proportion."""
        return RateModel(
            self.kind, self.rates, alpha=self.alpha,
            pattern_to_cat=self.pattern_to_cat, p_invariant=p_invariant,
        )

    @property
    def n_categories(self) -> int:
        return int(self.rates.size)


def subset_rate_model(rate_model: RateModel, idx) -> RateModel:
    """Restrict a rate model to a subset of patterns.

    ``idx`` may be an index array or a slice; empty subsets are legal (a
    worker beyond the pattern count owns zero patterns — the degenerate
    chunk a surplus thread gets).  Gamma mixtures are pattern-independent;
    CAT assignments are sliced.
    """
    if rate_model.kind == "cat":
        return RateModel.cat(
            rate_model.rates,
            rate_model.pattern_to_cat[idx],
            p_invariant=rate_model.p_invariant,
        )
    return rate_model
