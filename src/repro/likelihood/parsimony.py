"""Fitch parsimony, vectorized over patterns.

Parsimony serves two roles, exactly as in RAxML: scoring candidate
topologies cheaply, and building *randomised stepwise-addition starting
trees* for the ML searches.  State sets are the same 4-bit masks as the
alignment encoding, so the Fitch intersection/union operations are plain
bitwise AND/OR over ``uint8`` arrays.
"""

from __future__ import annotations

import numpy as np

from repro.seq.patterns import PatternAlignment
from repro.tree.topology import Node, Tree


def _fitch_combine(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """One Fitch combine step: returns ``(state_sets, changed_mask)``."""
    inter = a & b
    empty = inter == 0
    out = np.where(empty, a | b, inter)
    return out, empty


class ParsimonyEngine:
    """Fitch parsimony scores and stepwise-addition support for one
    pattern alignment (optionally with overridden weights for bootstrap
    replicates)."""

    def __init__(self, pal: PatternAlignment, weights: np.ndarray | None = None) -> None:
        self.pal = pal
        w = pal.weights if weights is None else np.asarray(weights)
        if w.shape != (pal.n_patterns,):
            raise ValueError("weights length must equal the number of patterns")
        if np.any(w < 0):
            raise ValueError("weights must be non-negative")
        self.weights = w.astype(np.float64)

    # -- plain scoring ---------------------------------------------------

    def down_sets(self, tree: Tree) -> tuple[dict[int, np.ndarray], float]:
        """Postorder Fitch state sets and the total weighted score."""
        sets: dict[int, np.ndarray] = {}
        score = 0.0
        for node in tree.postorder():
            if node.is_leaf:
                sets[id(node)] = self.pal.patterns[node.leaf_index]
            else:
                acc = None
                for child in node.children:
                    s = sets[id(child)]
                    if acc is None:
                        acc = s
                    else:
                        acc, changed = _fitch_combine(acc, s)
                        score += float(self.weights @ changed)
                sets[id(node)] = acc
        return sets, score

    def score(self, tree: Tree) -> float:
        """The weighted Fitch parsimony score of ``tree``."""
        return self.down_sets(tree)[1]

    def up_sets(
        self, tree: Tree, down: dict[int, np.ndarray]
    ) -> dict[int, np.ndarray]:
        """For each non-root node: the Fitch state set of the rest of the
        tree, seen from above (preorder complement of ``down``).

        These are approximate in the usual Fitch-preorder sense but are
        exactly what stepwise-addition insertion scoring needs.
        """
        up: dict[int, np.ndarray] = {}
        for node in tree.preorder():
            if node.is_leaf:
                continue
            above = up.get(id(node))
            contribs = [down[id(c)] for c in node.children]
            for i, child in enumerate(node.children):
                acc = None
                for j, s in enumerate(contribs):
                    if i == j:
                        continue
                    if acc is None:
                        acc = s
                    else:
                        acc, _ = _fitch_combine(acc, s)
                if above is not None:
                    if acc is None:
                        acc = above
                    else:
                        acc, _ = _fitch_combine(acc, above)
                up[id(child)] = acc
        return up

    # -- stepwise addition --------------------------------------------------

    def insertion_costs(
        self,
        tree: Tree,
        leaf_index: int,
        down: dict[int, np.ndarray] | None = None,
        up: dict[int, np.ndarray] | None = None,
    ) -> list[tuple[Node, float]]:
        """Approximate extra parsimony cost of inserting a taxon on each edge.

        Inserting leaf ``s`` on an edge with state sets ``D`` (below) and
        ``U`` (above) replaces the edge's Fitch combine with two combines
        through the new joint node.  Per pattern::

            a      = [s ∩ D == ∅]              (combine s with the below set)
            J      = s ∩ D   if nonempty else s ∪ D
            b      = [J ∩ U == ∅]              (combine the joint with above)
            before = [D ∩ U == ∅]              (cost the edge already paid)
            delta  = a + b - before

        This two-sided delta discriminates insertion points that the
        simpler "s misses both sides" test cannot (e.g. a taxon identical
        to an existing one scores 0 only near its twin).
        """
        if down is None or up is None:
            down_sets, _ = self.down_sets(tree)
            up_sets = self.up_sets(tree, down_sets)
        else:
            down_sets, up_sets = down, up
        s = self.pal.patterns[leaf_index]
        out: list[tuple[Node, float]] = []
        for edge_child in tree.edges():
            d = down_sets[id(edge_child)]
            u = up_sets[id(edge_child)]
            inter = s & d
            a = inter == 0
            joint = np.where(a, s | d, inter)
            b = (joint & u) == 0
            before = (d & u) == 0
            delta = a.astype(np.float64) + b.astype(np.float64) - before.astype(np.float64)
            out.append((edge_child, float(self.weights @ delta)))
        return out


def fitch_score(pal: PatternAlignment, tree: Tree, weights=None) -> float:
    """Convenience wrapper: weighted Fitch score of ``tree`` on ``pal``."""
    return ParsimonyEngine(pal, weights).score(tree)
