"""A RAxML-flavoured command line for the hybrid comprehensive analysis.

Mirrors the invocation the paper benchmarks (Section 5): ::

    repro-raxml -s data.phy -n run1 -m GTRCAT -N 100 -p 12345 -x 12345 \\
                -f a -np 10 -T 8 --machine dash

Outputs the best ML tree (with bootstrap support values) as Newick, plus a
run report with per-stage virtual times, speedup-relevant counts, and the
final likelihood.  ``--simulate`` generates a data set on the fly for
experimentation without input files.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.datasets.generator import SimulationParams, simulate_alignment
from repro.hybrid.driver import HybridConfig, run_hybrid_analysis
from repro.search.comprehensive import ComprehensiveConfig
from repro.search.searches import StageParams
from repro.seq.io_fasta import read_fasta
from repro.seq.io_phylip import read_phylip
from repro.seq.patterns import compress_alignment
from repro.tree.newick import write_newick


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-raxml",
        description="Hybrid MPI/Pthreads comprehensive phylogenetic analysis "
        "(reproduction of Pfeiffer & Stamatakis 2010).",
    )
    from repro import __version__

    parser.add_argument("--version", action="version",
                        version=f"repro-raxml {__version__} "
                                "(reproduction of RAxML 7.2.4 hybrid)")
    parser.add_argument("-s", dest="alignment", help="input alignment (PHYLIP or FASTA)")
    parser.add_argument("-n", dest="name", default="run", help="run name (output prefix)")
    parser.add_argument(
        "-m", dest="model", default="GTRCAT",
        choices=["GTRCAT", "GTRGAMMA", "GTRGAMMAI"],
        help="model: GTRCAT (CAT search stages), GTRGAMMA, or GTRGAMMAI "
             "(adds the +I invariant-sites parameter; used by -f e)",
    )
    parser.add_argument("-N", dest="bootstraps", type=int, default=100,
                        help="number of rapid bootstraps (default 100)")
    parser.add_argument("-p", dest="seed_p", type=int, default=12345,
                        help="random seed for searches")
    parser.add_argument("-x", dest="seed_x", type=int, default=12345,
                        help="random seed for rapid bootstrapping")
    parser.add_argument("-f", dest="algorithm", default="a", choices=["a", "d", "e"],
                        help="analysis: 'a' comprehensive, 'd' multiple ML "
                             "searches, 'e' evaluate a fixed topology (-t)")
    parser.add_argument("-t", dest="tree", help="input tree (Newick) for -f e")
    parser.add_argument("-b", dest="seed_b", type=int, default=None,
                        help="standard-bootstrap seed: run -N full bootstrap "
                             "searches instead of a comprehensive analysis")
    parser.add_argument("-T", dest="threads", type=int, default=1,
                        help="Pthreads per MPI process")
    parser.add_argument("-np", dest="processes", type=int, default=1,
                        help="number of (simulated) MPI processes")
    parser.add_argument("--machine", default="dash",
                        help="machine timing model: abe|dash|ranger|triton")
    parser.add_argument("--ranks-per-node", dest="ranks_per_node", type=int,
                        default=None, metavar="R",
                        help="pack R MPI ranks per node and price collectives "
                             "with the machine's two-tier (shared-memory vs "
                             "interconnect) topology model; results are "
                             "bit-identical to the default flat model — only "
                             "modelled communication time changes")
    parser.add_argument("--comm-channels", dest="comm_channels", type=int,
                        default=None, metavar="C",
                        help="per-rank virtual communication channels for "
                             "thread-lane reduction posts (default: lane "
                             "posts are free, the historical model)")
    from repro.likelihood.kernels import available_kernels

    parser.add_argument("--kernel", default="reference",
                        choices=available_kernels(),
                        help="likelihood kernel backend (default: reference)")
    parser.add_argument("--clv-cache", dest="clv_cache", action="store_true",
                        help="cache conditional likelihood vectors by subtree "
                             "signature so searches only recompute partials "
                             "invalidated by each move")
    parser.add_argument("--bootstopping", action="store_true",
                        help="enable the WC bootstopping test (extension)")
    from repro.runtime import available_schedules

    parser.add_argument("--schedule", default="static",
                        choices=list(available_schedules()),
                        help="execution backend: 'static' (the paper's "
                             "fixed Table 2 shares) or 'work-steal' (dynamic "
                             "deques with deterministic work stealing; "
                             "bit-identical results by construction)")
    parser.add_argument("--checkpoint-dir", dest="checkpoint_dir", default=None,
                        help="write per-rank, per-stage checkpoints to this "
                             "directory (atomic JSON; enables --resume)")
    parser.add_argument("--resume", action="store_true",
                        help="resume a killed run from --checkpoint-dir "
                             "(bit-identical to an uninterrupted run)")
    parser.add_argument("--quorum", type=float, default=0.0,
                        help="graceful-degradation threshold as a fraction of "
                             "-np: when fewer than ceil(QUORUM*np) ranks "
                             "survive, stop adopting dead ranks' work and "
                             "finish with partial results tagged in the run "
                             "report (0.0 disables; default 0.0)")
    parser.add_argument("--simulate", nargs=2, type=int, metavar=("TAXA", "SITES"),
                        help="simulate an alignment instead of reading one")
    parser.add_argument("--simulate-seed", type=int, default=4242,
                        help="seed for --simulate")
    parser.add_argument("--trace", dest="trace", metavar="OUT.json", default=None,
                        help="write a Chrome-trace-event timeline of the run "
                             "(open in https://ui.perfetto.dev): one process "
                             "per rank, one lane per virtual thread")
    parser.add_argument("--metrics-out", dest="metrics_out", metavar="M.json",
                        default=None,
                        help="write per-rank and aggregated metrics (counters/"
                             "gauges/histograms) plus the Fig. 3-4 stage "
                             "decomposition report as JSON")
    parser.add_argument("-w", dest="outdir", default=".", help="output directory")
    parser.add_argument("--quick", action="store_true",
                        help="reduced search effort (demo-friendly run times)")
    parser.add_argument("-J", dest="consensus", choices=["MR", "MRE"], default=None,
                        help="also write a majority-rule consensus of the "
                             "bootstrap trees (MRE: extended, threshold 0.5)")
    return parser


def validate_args(args) -> None:
    """Reject flag combinations that would otherwise be silently ignored
    or die deep inside the run with an unhelpful traceback."""
    if args.resume and not args.checkpoint_dir:
        raise SystemExit("--resume requires --checkpoint-dir")
    if args.algorithm == "e" and not args.tree:
        raise SystemExit("-f e requires an input tree via -t")
    if args.tree and args.algorithm != "e":
        raise SystemExit(
            "-t is only consumed by -f e (evaluate a fixed topology); "
            f"-f {args.algorithm} would silently ignore the input tree"
        )
    if args.clv_cache:
        from repro.likelihood.kernels import get_kernel

        if not get_kernel(args.kernel).uses_clv_cache:
            raise SystemExit(
                f"--clv-cache has no effect with --kernel {args.kernel}: "
                "that backend bypasses the engine's CLV bookkeeping"
            )
    if args.bootstopping and args.schedule != "static":
        raise SystemExit(
            "--bootstopping requires --schedule static: the replicate set "
            "grows round-synchronised across ranks"
        )
    if args.algorithm != "a" or args.seed_b is not None:
        # Only the comprehensive analysis consumes these; anything else
        # would run fine but silently drop the request.
        mode = "-b" if args.seed_b is not None else f"-f {args.algorithm}"
        ignored = [
            flag
            for flag, on in (
                ("--bootstopping", args.bootstopping),
                ("--checkpoint-dir", args.checkpoint_dir is not None),
                ("--resume", args.resume),
                ("--trace", args.trace is not None),
                ("--metrics-out", args.metrics_out is not None),
                ("-J", args.consensus is not None),
                ("--schedule", args.schedule != "static"),
                ("--ranks-per-node", args.ranks_per_node is not None),
                ("--comm-channels", args.comm_channels is not None),
            )
            if on
        ]
        if ignored:
            raise SystemExit(
                f"{', '.join(ignored)}: only the comprehensive analysis "
                f"(-f a) supports this; {mode} would silently ignore it"
            )


def load_alignment(args) -> "PatternAlignment":
    if args.simulate is not None:
        n_taxa, n_sites = args.simulate
        aln, _ = simulate_alignment(
            SimulationParams(n_taxa=n_taxa, n_sites=n_sites, seed=args.simulate_seed)
        )
        return compress_alignment(aln)
    if not args.alignment:
        raise SystemExit("either -s <alignment> or --simulate TAXA SITES is required")
    path = Path(args.alignment)
    if not path.exists():
        raise SystemExit(f"alignment file not found: {path}")
    text = path.read_text(encoding="ascii")
    if text.lstrip().startswith(">"):
        aln = read_fasta(path)
    else:
        aln = read_phylip(path)
    return compress_alignment(aln)


def _run_evaluate(args, pal) -> int:
    """-f e: score a fixed topology."""
    from repro.search.evaluate import evaluate_tree
    from repro.tree.newick import parse_newick

    tree_path = Path(args.tree)
    if not tree_path.exists():
        raise SystemExit(f"tree file not found: {tree_path}")
    tree = parse_newick(tree_path.read_text(encoding="ascii"), taxa=pal.taxa)
    result = evaluate_tree(
        pal, tree, plus_invariant=(args.model == "GTRGAMMAI"),
        kernel=args.kernel, clv_cache=args.clv_cache,
    )
    outdir = Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    out = outdir / f"RAxML_result.{args.name}.nwk"
    out.write_text(write_newick(result.tree) + "\n", encoding="ascii")
    extra = (
        f", p-invariant {result.p_invariant:.4f}"
        if args.model == "GTRGAMMAI"
        else ""
    )
    print(f"evaluated fixed topology: lnL {result.lnl:.4f} "
          f"(alpha {result.alpha:.4f}{extra})")
    print(f"optimised tree written to {out}")
    return 0


def _run_multisearch(args, pal, stage_params) -> int:
    """-f d (multiple ML searches) or -b (standard bootstrap)."""
    from repro.hybrid.analyses import (
        MultiSearchConfig,
        run_multiple_ml_searches,
        run_standard_bootstrap,
    )

    config = MultiSearchConfig(
        n_searches=args.bootstraps,
        seed_p=args.seed_p,
        seed_b=args.seed_b or args.seed_p,
        stage_params=stage_params,
    )
    kind = "standard bootstrap" if args.seed_b is not None else "multiple ML searches"
    print(f"{kind}: N={args.bootstraps}, p={args.processes} x T={args.threads} "
          f"on {args.machine}")
    if args.seed_b is not None:
        result = run_standard_bootstrap(
            pal, config, args.processes, args.threads, args.machine
        )
    else:
        result = run_multiple_ml_searches(
            pal, config, args.processes, args.threads, args.machine
        )
    outdir = Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    best = outdir / f"RAxML_bestTree.{args.name}.nwk"
    best.write_text(write_newick(result.best_tree) + "\n", encoding="ascii")
    print(f"{len(result.trees)} searches done "
          f"(per rank: {result.per_rank_counts}); best lnL {result.best_lnl:.4f}")
    print(f"virtual time: {result.total_seconds:.4f} s")
    print(f"best tree written to {best}")
    if result.support_table is not None:
        trees_path = outdir / f"RAxML_bootstrap.{args.name}.nwk"
        trees_path.write_text(
            "".join(write_newick(t) + "\n" for t in result.trees), encoding="ascii"
        )
        print(f"bootstrap trees written to {trees_path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    validate_args(args)
    pal = load_alignment(args)

    stage_params = (
        StageParams(slow_max_rounds=2, thorough_max_rounds=3)
        if args.quick
        else StageParams()
    )
    if args.algorithm == "e":
        return _run_evaluate(args, pal)
    if args.algorithm == "d" or args.seed_b is not None:
        return _run_multisearch(args, pal, stage_params)
    ccfg = ComprehensiveConfig(
        n_bootstraps=args.bootstraps,
        seed_p=args.seed_p,
        seed_x=args.seed_x,
        use_cat=(args.model == "GTRCAT"),
        stage_params=stage_params,
    )
    config = HybridConfig(
        n_processes=args.processes,
        n_threads=args.threads,
        comprehensive=ccfg,
        machine=args.machine,
        bootstopping=args.bootstopping,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        quorum=args.quorum,
        schedule=args.schedule,
        kernel=args.kernel,
        clv_cache=args.clv_cache,
        collect_trace=args.trace is not None,
        collect_metrics=args.metrics_out is not None,
        ranks_per_node=args.ranks_per_node,
        comm_channels=args.comm_channels,
    )

    print(f"repro-raxml: {pal.n_taxa} taxa, {pal.n_sites} sites, "
          f"{pal.n_patterns} patterns")
    print(f"  comprehensive analysis: N={args.bootstraps} bootstraps, "
          f"p={args.processes} processes x T={args.threads} threads "
          f"on {args.machine}")
    topo = config.topology()
    if topo is not None:
        print(f"  topology: {topo.n_nodes} nodes x {topo.ranks_per_node} "
              "ranks/node (hierarchical collectives)")
    result = run_hybrid_analysis(pal, config)

    outdir = Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    best_path = outdir / f"RAxML_bestTree.{args.name}.nwk"
    best_path.write_text(write_newick(result.best_tree) + "\n", encoding="ascii")
    if result.support_tree is not None:
        support_path = outdir / f"RAxML_bipartitions.{args.name}.nwk"
        support_path.write_text(
            write_newick(result.support_tree, support=True) + "\n", encoding="ascii"
        )
        print(f"  support tree written to {support_path}")
    print(f"  best tree written to {best_path}")
    if args.consensus and result.bootstrap_trees:
        from repro.bootstop.consensus import majority_consensus
        from repro.bootstop.table import BipartitionTable

        table = BipartitionTable(len(result.best_tree.taxa))
        table.add_trees(result.bootstrap_trees)
        cons = majority_consensus(
            table, result.best_tree.taxa, extended=(args.consensus == "MRE")
        )
        cons_path = outdir / f"RAxML_MajorityRuleConsensusTree.{args.name}.nwk"
        cons_path.write_text(
            write_newick(cons, lengths=False, support=True) + "\n", encoding="ascii"
        )
        print(f"  consensus tree written to {cons_path}")

    import json

    info_path = outdir / f"RAxML_info.{args.name}.json"
    info_path.write_text(
        json.dumps(result.to_report(), indent=2) + "\n", encoding="ascii"
    )
    print(f"  run report written to {info_path}")

    if args.trace is not None and result.trace is not None:
        from repro.obs.trace import write_chrome_trace

        trace_path = write_chrome_trace(args.trace, result.trace)
        print(f"  trace written to {trace_path} "
              "(open in https://ui.perfetto.dev)")
    if args.metrics_out is not None and result.metrics is not None:
        metrics_path = Path(args.metrics_out)
        metrics_path.parent.mkdir(parents=True, exist_ok=True)
        metrics_path.write_text(
            json.dumps(result.metrics, indent=2) + "\n", encoding="ascii"
        )
        print(f"  metrics written to {metrics_path}")
    if result.metrics is not None:
        from repro.obs.report import format_stage_report

        rows = result.metrics["report"]["stages"]
        print()
        print(format_stage_report(rows, title="Stage decomposition (Fig. 3-4)"))

    print(f"\nFinal GAMMA log-likelihood: {result.best_lnl:.4f} "
          f"(winner: rank {result.winner_rank} of {args.processes})")
    print(f"Bootstraps done: {result.n_bootstraps_done} "
          f"(requested {args.bootstraps})")
    if result.failed_ranks:
        adopters = {
            d: r.rank for r in result.ranks for d in r.recovered_for
        }
        recovered = ", ".join(
            f"rank {d} (replayed by rank {adopters[d]})" if d in adopters
            else f"rank {d}"
            for d in result.failed_ranks
        )
        print(f"Recovered from failures: {recovered}")
    if result.wc_trace:
        last_n, last_stat = result.wc_trace[-1]
        print(f"WC bootstopping: stopped at {last_n} replicates "
              f"(statistic {last_stat:.4f})")
    print("Virtual stage times (last process to finish):")
    for stage, seconds in result.stage_seconds.items():
        print(f"  {stage:10s} {seconds:12.4f} s")
    print(f"  {'total':10s} {result.total_seconds:12.4f} s")
    if topo is not None and result.ranks:
        comm = max(r.comm_seconds for r in result.ranks)
        intra = max(r.comm_intra_seconds for r in result.ranks)
        inter = max(r.comm_inter_seconds for r in result.ranks)
        print(f"Communication (worst rank): {comm:.6f} s "
              f"(intra-node {intra:.6f} s, inter-node {inter:.6f} s)")
    if result.sched is not None:
        attempts = result.sched.get("steal_attempts", 0)
        grants = result.sched.get("steal_grants", 0)
        print(f"Work stealing: {grants} steals granted "
              f"({attempts} attempts)")
        worst_tail: dict[str, float] = {}
        for tails in result.sched.get("idle_tail", {}).values():
            for stage, t in tails.items():
                worst_tail[stage] = max(worst_tail.get(stage, 0.0), float(t))
        for stage in result.stage_seconds:
            if stage in worst_tail:
                print(f"  idle tail {stage:10s} {worst_tail[stage]:12.4f} s "
                      "(worst rank)")
    if result.rng_fingerprint is not None:
        print(f"RNG stream fingerprint: {result.rng_fingerprint[:16]}… "
              "(schedule-mode independent)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
