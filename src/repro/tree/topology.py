"""Mutable unrooted binary tree topology with SPR/NNI support.

The subtree-pruning-and-regrafting (SPR) move is the workhorse of RAxML's
hill-climbing searches; :meth:`Tree.prune` and :meth:`Tree.regraft`
implement it with full invariant restoration (degree-two suppression,
root normalisation) so a search can apply and revert moves freely.
"""

from __future__ import annotations

from typing import Callable, Iterator

DEFAULT_BRANCH_LENGTH = 0.1
#: RAxML clamps branch lengths to avoid degenerate optimisation.
MIN_BRANCH_LENGTH = 1e-6
MAX_BRANCH_LENGTH = 30.0


class Node:
    """One node of a phylogeny.

    ``name``/``leaf_index`` are set for leaves only.  ``length`` is the
    length of the edge to the parent (meaningless on the root).
    """

    __slots__ = ("name", "leaf_index", "children", "parent", "length", "support")

    def __init__(
        self,
        name: str | None = None,
        leaf_index: int | None = None,
        length: float = DEFAULT_BRANCH_LENGTH,
    ) -> None:
        self.name = name
        self.leaf_index = leaf_index
        self.children: list[Node] = []
        self.parent: Node | None = None
        self.length = length
        self.support: float | None = None  # bootstrap support, if mapped

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def add_child(self, child: "Node") -> None:
        child.parent = self
        self.children.append(child)

    def detach_child(self, child: "Node") -> None:
        self.children.remove(child)
        child.parent = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = f"leaf {self.name!r}" if self.is_leaf else f"internal({len(self.children)})"
        return f"Node({kind}, length={self.length:.4g})"


class Tree:
    """An unrooted binary phylogeny over a fixed taxon set.

    Invariants (checked by :meth:`validate`):

    * the root has exactly three children (or ``n_taxa`` children when
      ``n_taxa == 3``, which is the same thing);
    * every other internal node has exactly two children;
    * leaves carry unique ``leaf_index`` values covering ``range(n_taxa)``;
    * all branch lengths are positive.
    """

    def __init__(self, root: Node, taxa: tuple[str, ...]) -> None:
        self.root = root
        self.taxa = tuple(taxa)

    # -- construction -----------------------------------------------------

    @classmethod
    def star(cls, taxa: tuple[str, ...], length: float = DEFAULT_BRANCH_LENGTH) -> "Tree":
        """The 3-taxon (or n-taxon star) tree over the first 3 taxa.

        Used as the seed for stepwise addition; only the first three taxa
        are attached.
        """
        if len(taxa) < 3:
            raise ValueError("need at least 3 taxa")
        root = Node()
        for i in range(3):
            root.add_child(Node(name=taxa[i], leaf_index=i, length=length))
        return cls(root, taxa)

    def copy(self) -> "Tree":
        """A deep structural copy (shares taxon tuple, copies all nodes)."""

        def rec(node: Node) -> Node:
            clone = Node(node.name, node.leaf_index, node.length)
            clone.support = node.support
            for ch in node.children:
                clone.add_child(rec(ch))
            return clone

        return Tree(rec(self.root), self.taxa)

    # -- traversal ----------------------------------------------------------

    def postorder(self) -> Iterator[Node]:
        """Children-before-parents traversal (iterative, recursion-free)."""
        stack: list[tuple[Node, bool]] = [(self.root, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded or node.is_leaf:
                yield node
            else:
                stack.append((node, True))
                for ch in reversed(node.children):
                    stack.append((ch, False))

    def preorder(self) -> Iterator[Node]:
        """Parents-before-children traversal."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def leaves(self) -> list[Node]:
        return [n for n in self.postorder() if n.is_leaf]

    def internal_nodes(self) -> list[Node]:
        return [n for n in self.postorder() if not n.is_leaf]

    def edges(self) -> list[Node]:
        """All edges, each identified by its child endpoint (non-root nodes)."""
        return [n for n in self.postorder() if n.parent is not None]

    def internal_edges(self) -> list[Node]:
        """Edges whose both endpoints are internal (non-trivial bipartitions)."""
        return [
            n
            for n in self.postorder()
            if n.parent is not None and not n.is_leaf
        ]

    @property
    def n_leaves(self) -> int:
        return sum(1 for _ in self.postorder() if _.is_leaf)

    def find_leaf(self, name: str) -> Node:
        for n in self.postorder():
            if n.is_leaf and n.name == name:
                return n
        raise KeyError(f"no leaf named {name!r}")

    def subtree_leaves(self, node: Node) -> list[Node]:
        """Leaves under ``node`` (inclusive if ``node`` is a leaf)."""
        out = []
        stack = [node]
        while stack:
            n = stack.pop()
            if n.is_leaf:
                out.append(n)
            else:
                stack.extend(n.children)
        return out

    # -- invariants ---------------------------------------------------------

    def validate(self) -> None:
        """Raise ``ValueError`` if any structural invariant is broken."""
        seen_indices: set[int] = set()
        n_leaves = 0
        for node in self.postorder():
            if node is self.root:
                if len(node.children) != 3:
                    raise ValueError(
                        f"root must have 3 children, has {len(node.children)}"
                    )
                if node.parent is not None:
                    raise ValueError("root must not have a parent")
                continue
            if node.parent is None:
                raise ValueError("non-root node with no parent")
            if node not in node.parent.children:
                raise ValueError("parent/child link inconsistency")
            if node.is_leaf:
                n_leaves += 1
                if node.leaf_index is None or node.name is None:
                    raise ValueError("leaf without name/index")
                if node.leaf_index in seen_indices:
                    raise ValueError(f"duplicate leaf index {node.leaf_index}")
                if not (0 <= node.leaf_index < len(self.taxa)):
                    raise ValueError(f"leaf index {node.leaf_index} out of range")
                if self.taxa[node.leaf_index] != node.name:
                    raise ValueError(
                        f"leaf {node.name!r} does not match taxa[{node.leaf_index}]"
                    )
                seen_indices.add(node.leaf_index)
            else:
                if len(node.children) != 2:
                    raise ValueError(
                        f"internal node must have 2 children, has {len(node.children)}"
                    )
            if not (node.length > 0):
                raise ValueError(f"non-positive branch length {node.length}")
        if n_leaves < 3:
            raise ValueError(f"tree has only {n_leaves} leaves")

    # -- topology edits -------------------------------------------------------

    def insert_leaf_on_edge(
        self,
        leaf: Node,
        edge_child: Node,
        split: float = 0.5,
        leaf_length: float = DEFAULT_BRANCH_LENGTH,
    ) -> Node:
        """Attach ``leaf`` in the middle of the edge above ``edge_child``.

        Returns the newly created internal node.  Used by stepwise addition.
        """
        if edge_child.parent is None:
            raise ValueError("cannot insert on the (nonexistent) root edge")
        if not (0.0 < split < 1.0):
            raise ValueError(f"split must be in (0, 1), got {split}")
        parent = edge_child.parent
        joint = Node(length=max(edge_child.length * split, MIN_BRANCH_LENGTH))
        # Keep child order stable for reproducibility.
        parent.children[parent.children.index(edge_child)] = joint
        joint.parent = parent
        edge_child.length = max(edge_child.length * (1.0 - split), MIN_BRANCH_LENGTH)
        joint.add_child(edge_child)
        leaf.length = leaf_length
        joint.add_child(leaf)
        return joint

    def prune(self, node: Node) -> tuple[Node, float]:
        """Detach the subtree rooted at ``node`` and restore invariants.

        Returns ``(node, original_edge_length)`` so the caller can undo the
        move.  The node's former parent (a degree-two node after removal)
        is spliced out; if the parent was the root the root is re-formed.
        """
        if node.parent is None:
            raise ValueError("cannot prune the root")
        remaining = self.n_leaves - len(self.subtree_leaves(node))
        if remaining < 3:
            raise ValueError("pruning would leave fewer than 3 leaves")
        original_length = node.length
        parent = node.parent
        parent.detach_child(node)

        if parent is self.root:
            # Root dropped from 3 to 2 children: promote an internal child
            # to become the new trifurcating root.
            c1, c2 = self.root.children
            internal = c1 if not c1.is_leaf else c2
            if internal.is_leaf:
                raise ValueError("degenerate tree: root with two leaf children")
            other = c2 if internal is c1 else c1
            self.root.detach_child(internal)
            self.root.detach_child(other)
            other.length = min(
                max(other.length + internal.length, MIN_BRANCH_LENGTH),
                MAX_BRANCH_LENGTH,
            )
            internal.add_child(other)
            internal.parent = None
            internal.length = DEFAULT_BRANCH_LENGTH  # unused on the root
            self.root = internal
        else:
            # Splice out the degree-two parent.
            (sibling,) = parent.children
            grand = parent.parent
            sibling.length = min(
                max(sibling.length + parent.length, MIN_BRANCH_LENGTH),
                MAX_BRANCH_LENGTH,
            )
            grand.children[grand.children.index(parent)] = sibling
            sibling.parent = grand
            parent.children = []
            parent.parent = None
        return node, original_length

    def regraft(
        self,
        node: Node,
        edge_child: Node,
        length: float | None = None,
        split: float = 0.5,
    ) -> Node:
        """Re-attach a pruned subtree onto the edge above ``edge_child``.

        Returns the new internal node created on the target edge.
        """
        if edge_child.parent is None:
            raise ValueError("cannot regraft onto the root itself")
        if node.parent is not None:
            raise ValueError("node to regraft must be detached (pruned) first")
        if length is None:
            length = node.length
        joint = self.insert_leaf_on_edge(
            node, edge_child, split=split, leaf_length=max(length, MIN_BRANCH_LENGTH)
        )
        return joint

    def spr(self, node: Node, target_edge_child: Node) -> None:
        """One subtree-prune-and-regraft move: prune ``node``, re-insert it
        on the edge above ``target_edge_child``."""
        in_subtree = set(map(id, self._nodes_under(node)))
        if id(target_edge_child) in in_subtree:
            raise ValueError("target edge lies inside the pruned subtree")
        pruned, length = self.prune(node)
        if target_edge_child.parent is None:
            if not target_edge_child.children:
                raise ValueError("target edge was removed by the prune")
            # The target became the root during root re-forming; choose one
            # of its children instead (same edge set).
            target_edge_child = target_edge_child.children[0]
        self.regraft(pruned, target_edge_child, length=length)

    def _nodes_under(self, node: Node) -> list[Node]:
        out = []
        stack = [node]
        while stack:
            n = stack.pop()
            out.append(n)
            stack.extend(n.children)
        return out

    def nni(self, edge_child: Node, variant: int) -> None:
        """A nearest-neighbour interchange across the internal edge above
        ``edge_child``.

        ``variant`` 0 or 1 selects which child of ``edge_child`` is swapped
        with one of its "uncles" (the siblings of ``edge_child``).
        """
        if edge_child.is_leaf or edge_child.parent is None:
            raise ValueError("NNI requires an internal, non-root edge child")
        if variant not in (0, 1):
            raise ValueError(f"variant must be 0 or 1, got {variant}")
        parent = edge_child.parent
        uncles = [c for c in parent.children if c is not edge_child]
        uncle = uncles[0]
        child = edge_child.children[variant]
        # Swap `child` and `uncle` between the two ends of the edge.
        pi = parent.children.index(uncle)
        ci = edge_child.children.index(child)
        parent.children[pi] = child
        child.parent = parent
        edge_child.children[ci] = uncle
        uncle.parent = edge_child

    def reroot_at(self, new_root: Node) -> None:
        """Move the trifurcation root to another internal node, in place.

        For reversible models the likelihood is invariant under this
        operation (Felsenstein's pulley principle); topologically it is a
        pure re-orientation — the same unrooted tree, different traversal
        root.  Branch lengths are preserved edge-for-edge.
        """
        if new_root.is_leaf:
            raise ValueError("the root must be an internal node")
        if new_root is self.root:
            return
        path: list[Node] = []
        n: Node | None = new_root
        while n is not None:
            path.append(n)
            n = n.parent
        if path[-1] is not self.root:
            raise ValueError("node does not belong to this tree")
        # Reverse parent/child links along the path, old root first.  The
        # edge length between path[i] and path[i-1] lives on path[i-1]
        # before the flip and moves to path[i] after it.
        for i in range(len(path) - 1, 0, -1):
            parent, child = path[i], path[i - 1]
            parent.children.remove(child)
            child.children.append(parent)
            parent.parent = child
            parent.length = child.length
        new_root.parent = None
        new_root.length = DEFAULT_BRANCH_LENGTH  # unused on the root
        self.root = new_root

    # -- misc -------------------------------------------------------------

    def total_branch_length(self) -> float:
        return sum(n.length for n in self.postorder() if n.parent is not None)

    def map_branch_lengths(self, fn: Callable[[float], float]) -> None:
        """Apply ``fn`` to every branch length in place (clamped positive)."""
        for n in self.postorder():
            if n.parent is not None:
                n.length = min(max(fn(n.length), MIN_BRANCH_LENGTH), MAX_BRANCH_LENGTH)

    def __repr__(self) -> str:
        return f"Tree(n_leaves={self.n_leaves}, taxa={len(self.taxa)})"
