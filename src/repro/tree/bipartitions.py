"""Bipartitions (splits) induced by tree edges.

Every edge of an unrooted tree splits the taxon set in two; the set of
*non-trivial* bipartitions (both sides >= 2 taxa) identifies the topology.
Bipartitions drive bootstrap-support mapping, the Robinson–Foulds distance
and the WC bootstopping test, and are exactly what the paper's Section 2
says a parallel bootstopping framework must hash ("bipartitions of trees
stored in a hash table").

A bipartition is canonicalised as the integer bitmask of the side *not*
containing taxon 0, so equal splits compare equal regardless of the edge
orientation that produced them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tree.topology import Node, Tree


@dataclass(frozen=True)
class Bipartition:
    """A canonical split of ``n_taxa`` taxa.

    ``mask`` has bit ``i`` set iff taxon ``i`` is on the side that does not
    contain taxon 0.
    """

    mask: int
    n_taxa: int

    def __post_init__(self) -> None:
        if self.n_taxa < 4:
            raise ValueError("non-trivial bipartitions need at least 4 taxa")
        full = (1 << self.n_taxa) - 1
        if not (0 < self.mask < full):
            raise ValueError("mask must be a proper non-empty subset")
        if self.mask & 1:
            raise ValueError("canonical mask must not contain taxon 0")

    @classmethod
    def from_leafset(cls, leaf_indices, n_taxa: int) -> "Bipartition":
        """Canonicalise an arbitrary side of a split given by leaf indices."""
        mask = 0
        for i in leaf_indices:
            if not (0 <= i < n_taxa):
                raise ValueError(f"leaf index {i} out of range")
            mask |= 1 << i
        if mask & 1:
            mask = ((1 << n_taxa) - 1) ^ mask
        return cls(mask, n_taxa)

    @property
    def side_size(self) -> int:
        """Number of taxa on the canonical (taxon-0-free) side."""
        return bin(self.mask).count("1")

    def is_trivial(self) -> bool:
        return self.side_size < 2 or self.side_size > self.n_taxa - 2

    def __repr__(self) -> str:
        members = [i for i in range(self.n_taxa) if self.mask >> i & 1]
        return f"Bipartition({members})"


def bipartition_of_edge(tree: Tree, edge_child: Node) -> Bipartition:
    """The split induced by the edge above ``edge_child``."""
    idx = [leaf.leaf_index for leaf in tree.subtree_leaves(edge_child)]
    return Bipartition.from_leafset(idx, len(tree.taxa))


def tree_bipartitions(
    tree: Tree,
    with_lengths: bool = False,
) -> dict[Bipartition, float] | set[Bipartition]:
    """All non-trivial bipartitions of ``tree``.

    Computed bottom-up in one postorder pass (O(n * n/wordsize) via Python
    big-int masks).  Returns a set, or a dict mapping each bipartition to
    its branch length when ``with_lengths`` is true.
    """
    n_taxa = len(tree.taxa)
    full = (1 << n_taxa) - 1
    masks: dict[int, int] = {}
    result: dict[Bipartition, float] = {}
    for node in tree.postorder():
        if node.is_leaf:
            masks[id(node)] = 1 << node.leaf_index
        else:
            m = 0
            for ch in node.children:
                m |= masks.pop(id(ch))
            masks[id(node)] = m
            if node.parent is not None:
                size = bin(m).count("1")
                if 2 <= size <= n_taxa - 2:
                    canon = (full ^ m) if (m & 1) else m
                    result[Bipartition(canon, n_taxa)] = node.length
    if with_lengths:
        return result
    return set(result)
