"""Random tree generation.

Two generators are provided:

* :func:`random_topology` — uniform-ish random binary topology built by
  sequential random addition, used for random starting trees (RAxML's
  multiple-ML-search analysis starts "from different initial trees").
* :func:`yule_tree` — a Yule (pure-birth) tree with exponential waiting
  times, used by :mod:`repro.datasets` to simulate alignments with
  realistic branch-length structure.
"""

from __future__ import annotations

from repro.tree.topology import MIN_BRANCH_LENGTH, Node, Tree
from repro.util.rng import RAxMLRandom


def random_topology(
    taxa: tuple[str, ...],
    rng: RAxMLRandom,
    branch_length: float = 0.1,
) -> Tree:
    """A random binary topology over ``taxa`` via sequential random addition.

    Taxa are inserted in a random order, each on a uniformly random edge of
    the growing tree.  All branch lengths are set to ``branch_length``.
    """
    if len(taxa) < 3:
        raise ValueError("need at least 3 taxa")
    order = rng.permutation(len(taxa))
    tree = Tree.star(tuple(taxa[i] for i in order[:3]), length=branch_length)
    # Re-map: Tree.star indexed the permuted tuple 0..2; fix to global indices.
    for leaf, global_idx in zip(tree.root.children, order[:3]):
        leaf.leaf_index = global_idx
        leaf.name = taxa[global_idx]
    tree.taxa = tuple(taxa)
    for global_idx in order[3:]:
        edges = tree.edges()
        target = edges[rng.next_int(len(edges))]
        leaf = Node(name=taxa[global_idx], leaf_index=global_idx)
        tree.insert_leaf_on_edge(leaf, target, leaf_length=branch_length)
    tree.validate()
    return tree


def yule_tree(
    taxa: tuple[str, ...],
    rng: RAxMLRandom,
    birth_rate: float = 1.0,
    scale: float = 0.3,
) -> Tree:
    """A Yule pure-birth tree with exponential branch lengths.

    Lineages split uniformly at random; waiting times between speciations
    are Exp(k * birth_rate) for k extant lineages.  The final tree is
    unrooted (trifurcating root) and branch lengths are multiplied by
    ``scale`` so that typical per-site substitution counts are moderate.
    """
    import math

    n = len(taxa)
    if n < 3:
        raise ValueError("need at least 3 taxa")
    if birth_rate <= 0 or scale <= 0:
        raise ValueError("birth_rate and scale must be positive")

    # Grow a rooted binary tree: each tip holds its pending branch length.
    root = Node()
    tips: list[Node] = []
    for _ in range(2):
        tip = Node(length=0.0)
        root.add_child(tip)
        tips.append(tip)
    while len(tips) < n:
        k = len(tips)
        u = max(rng.next_double(), 1e-300)
        dt = -math.log(u) / (birth_rate * k)
        for tip in tips:
            tip.length += dt
        # Split one random tip into two.
        victim = tips.pop(rng.next_int(len(tips)))
        for _ in range(2):
            child = Node(length=0.0)
            victim.add_child(child)
            tips.append(child)
    # One final waiting period so terminal branches are not zero.
    u = max(rng.next_double(), 1e-300)
    dt = -math.log(u) / (birth_rate * len(tips))
    for tip in tips:
        tip.length += dt

    # Label tips with a random taxon assignment.
    order = rng.permutation(n)
    for tip, idx in zip(tips, order):
        tip.name = taxa[idx]
        tip.leaf_index = idx

    # Scale lengths and clamp.
    def fix(node: Node) -> None:
        for ch in node.children:
            ch.length = max(ch.length * scale, MIN_BRANCH_LENGTH)
            fix(ch)

    fix(root)

    # Unroot: collapse the bifurcating root.
    c1, c2 = root.children
    internal = c1 if not c1.is_leaf else c2
    if internal.is_leaf:
        raise ValueError("degenerate Yule tree")  # pragma: no cover
    other = c2 if internal is c1 else c1
    root.children = []
    other.length = other.length + internal.length
    internal.add_child(other)
    internal.parent = None
    tree = Tree(internal, tuple(taxa))
    tree.validate()
    return tree
