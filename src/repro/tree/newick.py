"""Newick serialisation of trees.

The writer emits the conventional trifurcating-root form used by RAxML
result files; internal node labels, when present, carry bootstrap support
values (as integers, RAxML-style).
"""

from __future__ import annotations

from repro.tree.topology import DEFAULT_BRANCH_LENGTH, Node, Tree


class NewickError(ValueError):
    """Raised on malformed Newick input."""


def write_newick(
    tree: Tree,
    lengths: bool = True,
    support: bool = False,
    digits: int | None = 6,
) -> str:
    """Serialise ``tree`` to a Newick string (terminated with ``;``).

    ``digits=None`` writes branch lengths with ``repr`` (shortest string
    that round-trips the float exactly) — required by checkpoints, which
    must restore trees bit-identically.
    """

    def rec(node: Node) -> str:
        if node.is_leaf:
            label = node.name
        else:
            inner = ",".join(rec(c) for c in node.children)
            sup = ""
            if support and node.support is not None:
                sup = str(int(round(node.support * 100)))
            label = f"({inner}){sup}"
        if lengths and node.parent is not None:
            if digits is None:
                label += f":{float(node.length)!r}"
            else:
                label += f":{node.length:.{digits}f}"
        return label

    return rec(tree.root) + ";"


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def peek(self) -> str:
        if self.pos >= len(self.text):
            raise NewickError("unexpected end of Newick string")
        return self.text[self.pos]

    def take(self) -> str:
        ch = self.peek()
        self.pos += 1
        return ch

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def parse_label(self) -> str:
        self.skip_ws()
        start = self.pos
        while self.pos < len(self.text) and self.text[self.pos] not in "(),:;[]":
            self.pos += 1
        return self.text[start : self.pos].strip()

    def parse_length(self) -> float | None:
        self.skip_ws()
        if self.pos < len(self.text) and self.text[self.pos] == ":":
            self.pos += 1
            token = self.parse_label()
            try:
                return float(token)
            except ValueError:
                raise NewickError(f"bad branch length {token!r}") from None
        return None

    def parse_subtree(self) -> Node:
        self.skip_ws()
        node = Node()
        if self.peek() == "(":
            self.take()
            while True:
                node.add_child(self.parse_subtree())
                self.skip_ws()
                ch = self.take()
                if ch == ",":
                    continue
                if ch == ")":
                    break
                raise NewickError(f"expected ',' or ')' at position {self.pos - 1}")
            label = self.parse_label()
            if label:
                # Internal labels are interpreted as percent support values.
                try:
                    node.support = float(label) / 100.0
                except ValueError:
                    pass  # a plain name on an internal node: ignored
        else:
            name = self.parse_label()
            if not name:
                raise NewickError(f"empty leaf label at position {self.pos}")
            node.name = name
        length = self.parse_length()
        node.length = length if length is not None else DEFAULT_BRANCH_LENGTH
        return node


def parse_newick(text: str, taxa: tuple[str, ...] | None = None) -> Tree:
    """Parse a Newick string into a :class:`Tree`.

    If ``taxa`` is given, leaf indices are assigned from it (and unknown
    leaf names are an error); otherwise the taxon tuple is derived from the
    leaf names in order of appearance.

    A bifurcating root (rooted input) is automatically collapsed into the
    trifurcating unrooted form.
    """
    parser = _Parser(text)
    root = parser.parse_subtree()
    parser.skip_ws()
    if parser.pos >= len(parser.text) or parser.take() != ";":
        raise NewickError("Newick string must end with ';'")

    # Collapse a bifurcating root into the unrooted trifurcation.
    while len(root.children) == 2:
        c1, c2 = root.children
        internal = c1 if not c1.is_leaf else c2
        if internal.is_leaf:
            raise NewickError("tree has fewer than 3 leaves")
        other = c2 if internal is c1 else c1
        root.children = []
        other.length = other.length + internal.length
        internal.add_child(other)
        internal.parent = None
        root = internal
    if len(root.children) < 3:
        raise NewickError("root must have at least 2 children")

    # Assign leaf indices.
    names_in_order: list[str] = []
    stack = [root]
    leaves: list[Node] = []
    while stack:
        n = stack.pop()
        if n.is_leaf:
            leaves.append(n)
            names_in_order.append(n.name)  # type: ignore[arg-type]
        else:
            stack.extend(reversed(n.children))
    if taxa is None:
        taxa = tuple(names_in_order)
        if len(set(taxa)) != len(taxa):
            raise NewickError("duplicate leaf names")
    index = {name: i for i, name in enumerate(taxa)}
    for leaf in leaves:
        if leaf.name not in index:
            raise NewickError(f"leaf {leaf.name!r} not in the given taxon set")
        leaf.leaf_index = index[leaf.name]

    tree = Tree(root, taxa)
    return tree
