"""Tree substrate: unrooted binary phylogenies and operations on them.

Trees are stored in the conventional "rooted at a trifurcation" form: the
root is an internal node with three children and every other internal node
has exactly two children, which represents an unrooted, fully resolved
(binary) phylogeny.  Branch lengths live on child nodes (the edge to the
parent).
"""

from repro.tree.topology import Node, Tree
from repro.tree.newick import parse_newick, write_newick
from repro.tree.bipartitions import (
    Bipartition,
    tree_bipartitions,
    bipartition_of_edge,
)
from repro.tree.distances import robinson_foulds, branch_score_distance
from repro.tree.random_trees import random_topology, yule_tree

__all__ = [
    "Node",
    "Tree",
    "parse_newick",
    "write_newick",
    "Bipartition",
    "tree_bipartitions",
    "bipartition_of_edge",
    "robinson_foulds",
    "branch_score_distance",
    "random_topology",
    "yule_tree",
]
