"""Topological distances between trees on the same taxon set."""

from __future__ import annotations

import math

from repro.tree.bipartitions import tree_bipartitions
from repro.tree.topology import Tree


def _check_same_taxa(a: Tree, b: Tree) -> None:
    if a.taxa != b.taxa:
        raise ValueError("trees must share an identical taxon tuple")


def robinson_foulds(a: Tree, b: Tree, normalized: bool = False) -> float:
    """The Robinson–Foulds (symmetric-difference) distance.

    For binary trees on ``n`` taxa the maximum is ``2 * (n - 3)``; with
    ``normalized=True`` the distance is scaled into ``[0, 1]`` by that
    maximum.
    """
    _check_same_taxa(a, b)
    sa = tree_bipartitions(a)
    sb = tree_bipartitions(b)
    rf = len(sa ^ sb)
    if not normalized:
        return float(rf)
    denom = len(sa) + len(sb)
    return rf / denom if denom else 0.0


def branch_score_distance(a: Tree, b: Tree) -> float:
    """Kuhner–Felsenstein branch-score distance (L2 over split lengths)."""
    _check_same_taxa(a, b)
    la = tree_bipartitions(a, with_lengths=True)
    lb = tree_bipartitions(b, with_lengths=True)
    total = 0.0
    for split in set(la) | set(lb):
        total += (la.get(split, 0.0) - lb.get(split, 0.0)) ** 2
    return math.sqrt(total)
