"""Sequence substrate: alignments, pattern compression, bootstrap resampling.

RAxML's fine-grained parallelization is "over the number of patterns"
(paper Section 2), where a *pattern* is a distinct column of the multiple
sequence alignment (paper Section 3).  This subpackage owns everything about
alignments and their pattern-compressed representation.
"""

from repro.seq.encoding import (
    DNA_STATES,
    GAP_CODE,
    UNDETERMINED,
    encode_sequence,
    decode_sequence,
    state_likelihood_rows,
)
from repro.seq.alignment import Alignment
from repro.seq.patterns import PatternAlignment, compress_alignment
from repro.seq.bootstrap import bootstrap_weights, bootstrap_pattern_weights
from repro.seq.io_fasta import read_fasta, write_fasta, parse_fasta
from repro.seq.io_phylip import read_phylip, write_phylip, parse_phylip

__all__ = [
    "DNA_STATES",
    "GAP_CODE",
    "UNDETERMINED",
    "encode_sequence",
    "decode_sequence",
    "state_likelihood_rows",
    "Alignment",
    "PatternAlignment",
    "compress_alignment",
    "bootstrap_weights",
    "bootstrap_pattern_weights",
    "read_fasta",
    "write_fasta",
    "parse_fasta",
    "read_phylip",
    "write_phylip",
    "parse_phylip",
]
