"""Relaxed PHYLIP reading and writing (RAxML's native input format)."""

from __future__ import annotations

import os

from repro.seq.alignment import Alignment


def parse_phylip(text: str) -> Alignment:
    """Parse relaxed (whitespace-separated, sequential) PHYLIP text.

    The header line gives taxon and character counts; each subsequent
    non-empty line is ``name sequence`` with the sequence possibly split
    across continuation lines (interleaved format is also accepted).
    """
    lines = [ln for ln in text.splitlines() if ln.strip()]
    if not lines:
        raise ValueError("empty PHYLIP input")
    header = lines[0].split()
    if len(header) < 2:
        raise ValueError(f"bad PHYLIP header: {lines[0]!r}")
    try:
        n_taxa, n_chars = int(header[0]), int(header[1])
    except ValueError as exc:
        raise ValueError(f"bad PHYLIP header: {lines[0]!r}") from exc
    if n_taxa < 3 or n_chars < 1:
        raise ValueError(f"implausible PHYLIP header: {n_taxa} taxa, {n_chars} chars")

    body = lines[1:]
    if len(body) < n_taxa:
        raise ValueError(f"expected at least {n_taxa} sequence lines, got {len(body)}")

    names: list[str] = []
    seqs: list[list[str]] = []
    # First block: one line per taxon, "name seq...".
    for ln in body[:n_taxa]:
        parts = ln.split()
        if len(parts) < 2:
            raise ValueError(f"bad PHYLIP sequence line: {ln!r}")
        names.append(parts[0])
        seqs.append(["".join(parts[1:])])
    # Interleaved continuation blocks: bare sequence lines cycling over taxa.
    for i, ln in enumerate(body[n_taxa:]):
        seqs[i % n_taxa].append("".join(ln.split()))

    records = [(n, "".join(parts)) for n, parts in zip(names, seqs)]
    for name, seq in records:
        if len(seq) != n_chars:
            raise ValueError(
                f"taxon {name!r} has {len(seq)} characters, header says {n_chars}"
            )
    return Alignment.from_sequences(records)


def read_phylip(path: str | os.PathLike) -> Alignment:
    """Read a relaxed PHYLIP file into an :class:`Alignment`."""
    with open(path, "r", encoding="ascii") as fh:
        return parse_phylip(fh.read())


def write_phylip(alignment: Alignment, path: str | os.PathLike) -> None:
    """Write ``alignment`` in sequential relaxed PHYLIP format."""
    name_w = max(len(t) for t in alignment.taxa) + 2
    with open(path, "w", encoding="ascii") as fh:
        fh.write(f"{alignment.n_taxa} {alignment.n_sites}\n")
        for name, seq in alignment.records():
            fh.write(f"{name.ljust(name_w)}{seq}\n")
