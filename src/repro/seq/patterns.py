"""Pattern compression: collapsing identical alignment columns.

    "Because some character positions may be redundant, the number of
    distinct columns, called patterns, is a more descriptive parameter
    than the number of characters."  — paper, Section 3

RAxML compresses the alignment once at start-up into (pattern, weight)
pairs; every likelihood computation then runs over patterns and multiplies
each per-pattern log-likelihood by its weight.  The fine-grained Pthreads
parallelization slices exactly this pattern axis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.seq.alignment import Alignment


@dataclass(frozen=True)
class PatternAlignment:
    """A pattern-compressed alignment.

    Attributes
    ----------
    taxa:
        Taxon labels (same order as the source alignment).
    patterns:
        ``(n_taxa, n_patterns)`` array of distinct columns (state masks).
    weights:
        ``(n_patterns,)`` integer multiplicities; ``weights.sum()`` equals
        the number of sites of the source alignment.
    site_to_pattern:
        ``(n_sites,)`` map from original site index to pattern index, so a
        bootstrap replicate over *sites* can be converted to new pattern
        *weights* without touching the matrix.
    """

    taxa: tuple[str, ...]
    patterns: np.ndarray
    weights: np.ndarray
    site_to_pattern: np.ndarray

    def __post_init__(self) -> None:
        if not isinstance(self.taxa, tuple):
            object.__setattr__(self, "taxa", tuple(self.taxa))
        pats = np.asarray(self.patterns, dtype=np.uint8)
        w = np.asarray(self.weights, dtype=np.int64)
        s2p = np.asarray(self.site_to_pattern, dtype=np.intp)
        if pats.ndim != 2:
            raise ValueError("patterns must be 2-D")
        if w.shape != (pats.shape[1],):
            raise ValueError("weights length must equal the number of patterns")
        if np.any(w < 0):
            raise ValueError("weights must be non-negative")
        if s2p.size and (s2p.min() < 0 or s2p.max() >= pats.shape[1]):
            raise ValueError("site_to_pattern refers to a non-existent pattern")
        for arr, name in ((pats, "patterns"), (w, "weights"), (s2p, "site_to_pattern")):
            arr.setflags(write=False)
        object.__setattr__(self, "patterns", pats)
        object.__setattr__(self, "weights", w)
        object.__setattr__(self, "site_to_pattern", s2p)

    @property
    def n_taxa(self) -> int:
        return self.patterns.shape[0]

    @property
    def n_patterns(self) -> int:
        return self.patterns.shape[1]

    @property
    def n_sites(self) -> int:
        return int(self.site_to_pattern.shape[0])

    def with_weights(self, weights: np.ndarray) -> "PatternAlignment":
        """Same patterns, different weights (bootstrap replicates)."""
        return PatternAlignment(self.taxa, self.patterns, weights, self.site_to_pattern)

    def taxon_index(self, taxon: str) -> int:
        try:
            return self.taxa.index(taxon)
        except ValueError:
            raise KeyError(f"unknown taxon {taxon!r}") from None

    def expand(self) -> Alignment:
        """Reconstruct a full per-site alignment from the compression map."""
        return Alignment(self.taxa, self.patterns[:, self.site_to_pattern])

    def __repr__(self) -> str:
        return (
            f"PatternAlignment(n_taxa={self.n_taxa}, n_patterns={self.n_patterns}, "
            f"n_sites={self.n_sites})"
        )


def compress_alignment(alignment: Alignment) -> PatternAlignment:
    """Compress identical columns of ``alignment`` into weighted patterns.

    Patterns are ordered by first occurrence in the alignment, matching
    RAxML's site-compression behaviour (stable order keeps downstream
    results reproducible).
    """
    mat = alignment.matrix
    # View columns as void records so np.unique can dedupe them.
    cols = np.ascontiguousarray(mat.T)
    view = cols.view([("", cols.dtype)] * cols.shape[1]).ravel()
    _, first_idx, inverse, counts = np.unique(
        view, return_index=True, return_inverse=True, return_counts=True
    )
    # np.unique sorts lexicographically; reorder by first occurrence.
    order = np.argsort(first_idx, kind="stable")
    rank_of = np.empty_like(order)
    rank_of[order] = np.arange(order.size)
    site_to_pattern = rank_of[inverse]
    patterns = mat[:, first_idx[order]]
    weights = counts[order]
    return PatternAlignment(alignment.taxa, patterns, weights, site_to_pattern)
