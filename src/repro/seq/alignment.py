"""The multiple-sequence-alignment container.

An alignment is "a matrix of aligned molecular sequences" whose rows are
taxa and whose columns are character positions (paper Section 3).  The
matrix is stored as ``uint8`` 4-bit state masks (see
:mod:`repro.seq.encoding`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.seq.encoding import decode_sequence, encode_sequence


@dataclass(frozen=True)
class Alignment:
    """An immutable multiple sequence alignment.

    Parameters
    ----------
    taxa:
        Taxon labels, one per row; must be unique and non-empty.
    matrix:
        ``(n_taxa, n_sites)`` array of ``uint8`` IUPAC state masks.
    """

    taxa: tuple[str, ...]
    matrix: np.ndarray

    def __post_init__(self) -> None:
        if not isinstance(self.taxa, tuple):
            object.__setattr__(self, "taxa", tuple(self.taxa))
        mat = np.asarray(self.matrix, dtype=np.uint8)
        if mat.ndim != 2:
            raise ValueError(f"matrix must be 2-D, got shape {mat.shape}")
        if mat.shape[0] != len(self.taxa):
            raise ValueError(
                f"{len(self.taxa)} taxa but matrix has {mat.shape[0]} rows"
            )
        if mat.shape[0] < 3:
            raise ValueError("an alignment needs at least 3 taxa")
        if mat.shape[1] < 1:
            raise ValueError("an alignment needs at least 1 site")
        if len(set(self.taxa)) != len(self.taxa):
            raise ValueError("taxon labels must be unique")
        if any(not t for t in self.taxa):
            raise ValueError("taxon labels must be non-empty")
        if np.any(mat == 0) or np.any(mat > 15):
            raise ValueError("matrix entries must be valid 4-bit state masks (1..15)")
        mat.setflags(write=False)
        object.__setattr__(self, "matrix", mat)

    # -- constructors ---------------------------------------------------

    @classmethod
    def from_sequences(cls, records: list[tuple[str, str]]) -> "Alignment":
        """Build an alignment from ``(name, sequence)`` string pairs."""
        if not records:
            raise ValueError("no sequences given")
        names = [name for name, _ in records]
        lengths = {len(seq) for _, seq in records}
        if len(lengths) != 1:
            raise ValueError(f"sequences have differing lengths: {sorted(lengths)}")
        matrix = np.vstack([encode_sequence(seq) for _, seq in records])
        return cls(tuple(names), matrix)

    # -- basic queries ----------------------------------------------------

    @property
    def n_taxa(self) -> int:
        return self.matrix.shape[0]

    @property
    def n_sites(self) -> int:
        """Number of character positions (paper: "characters")."""
        return self.matrix.shape[1]

    def sequence(self, taxon: str) -> str:
        """The decoded sequence string for one taxon."""
        return decode_sequence(self.matrix[self.taxon_index(taxon)])

    def taxon_index(self, taxon: str) -> int:
        try:
            return self.taxa.index(taxon)
        except ValueError:
            raise KeyError(f"unknown taxon {taxon!r}") from None

    def records(self) -> list[tuple[str, str]]:
        """All ``(name, sequence)`` pairs, decoded."""
        return [(t, decode_sequence(row)) for t, row in zip(self.taxa, self.matrix)]

    # -- transformations ---------------------------------------------------

    def take_sites(self, indices: np.ndarray) -> "Alignment":
        """A new alignment containing only the given columns (in order)."""
        idx = np.asarray(indices, dtype=np.intp)
        if idx.size == 0:
            raise ValueError("cannot take zero sites")
        if np.any(idx < 0) or np.any(idx >= self.n_sites):
            raise IndexError("site index out of range")
        return Alignment(self.taxa, self.matrix[:, idx])

    def take_taxa(self, names: list[str]) -> "Alignment":
        """A new alignment restricted to the named taxa (in the given order)."""
        rows = [self.taxon_index(n) for n in names]
        return Alignment(tuple(names), self.matrix[rows, :])

    def __eq__(self, other) -> bool:
        if not isinstance(other, Alignment):
            return NotImplemented
        return self.taxa == other.taxa and np.array_equal(self.matrix, other.matrix)

    def __hash__(self) -> int:
        return hash((self.taxa, self.matrix.tobytes()))

    def __repr__(self) -> str:
        return f"Alignment(n_taxa={self.n_taxa}, n_sites={self.n_sites})"
