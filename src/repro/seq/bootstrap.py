"""Bootstrap resampling of alignment columns.

A bootstrap replicate re-samples the alignment's sites with replacement
(paper Section 1: "ML searches on data sets obtained by randomly
re-sampling the columns of the multiple sequence alignment").  Because the
alignment is pattern-compressed, a replicate is represented as a new
*weight vector* over the existing patterns — no column copying, exactly as
in RAxML's rapid-bootstrap implementation.
"""

from __future__ import annotations

import numpy as np

from repro.seq.patterns import PatternAlignment
from repro.util.rng import RAxMLRandom


def bootstrap_weights(n_sites: int, rng: RAxMLRandom) -> np.ndarray:
    """Per-site multiplicities of one bootstrap replicate over ``n_sites``.

    Each of the ``n_sites`` draws picks one original site uniformly at
    random; the returned counts sum to ``n_sites``.
    """
    if n_sites <= 0:
        raise ValueError(f"n_sites must be positive, got {n_sites}")
    return rng.multinomial_counts(n_sites, n_sites)


def bootstrap_pattern_weights(
    pal: PatternAlignment, rng: RAxMLRandom
) -> np.ndarray:
    """Pattern-level weights of one bootstrap replicate of ``pal``.

    Sites are drawn with replacement (respecting the original per-pattern
    multiplicities) and the draws are accumulated per pattern.  The result
    sums to the original number of sites; patterns that were not drawn get
    weight 0 and are simply skipped by the likelihood kernels.
    """
    n_sites = int(pal.weights.sum())
    counts = rng.weighted_multinomial_counts(n_sites, pal.weights.astype(np.float64))
    return counts
