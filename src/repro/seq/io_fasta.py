"""FASTA reading and writing."""

from __future__ import annotations

import os

from repro.seq.alignment import Alignment


def parse_fasta(text: str) -> Alignment:
    """Parse FASTA-formatted ``text`` into an :class:`Alignment`."""
    records: list[tuple[str, list[str]]] = []
    current: list[str] | None = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith(">"):
            name = line[1:].split()[0] if len(line) > 1 else ""
            if not name:
                raise ValueError(f"line {lineno}: empty sequence name")
            current = []
            records.append((name, current))
        else:
            if current is None:
                raise ValueError(f"line {lineno}: sequence data before any '>' header")
            current.append(line)
    if not records:
        raise ValueError("no FASTA records found")
    return Alignment.from_sequences([(n, "".join(parts)) for n, parts in records])


def read_fasta(path: str | os.PathLike) -> Alignment:
    """Read a FASTA file into an :class:`Alignment`."""
    with open(path, "r", encoding="ascii") as fh:
        return parse_fasta(fh.read())


def write_fasta(alignment: Alignment, path: str | os.PathLike, width: int = 70) -> None:
    """Write ``alignment`` as FASTA with lines wrapped at ``width`` chars."""
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    with open(path, "w", encoding="ascii") as fh:
        for name, seq in alignment.records():
            fh.write(f">{name}\n")
            for i in range(0, len(seq), width):
                fh.write(seq[i : i + width] + "\n")
