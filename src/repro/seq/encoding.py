"""DNA state encoding with IUPAC ambiguity codes.

Characters are encoded as 4-bit masks over the states ``A, C, G, T`` —
exactly the representation RAxML uses — so that an ambiguous character is
the OR of its compatible states and a gap/unknown is ``0b1111`` (compatible
with everything).  The tip conditional-likelihood row for a character is
then simply the mask expanded into a 0/1 vector of length four.
"""

from __future__ import annotations

import numpy as np

#: Order of the four nucleotide states everywhere in this package.
DNA_STATES = "ACGT"

_A, _C, _G, _T = 1, 2, 4, 8

#: IUPAC nucleotide codes -> 4-bit state masks (bit order A=1, C=2, G=4, T=8).
IUPAC_TO_MASK: dict[str, int] = {
    "A": _A,
    "C": _C,
    "G": _G,
    "T": _T,
    "U": _T,  # RNA uracil behaves as T
    "R": _A | _G,
    "Y": _C | _T,
    "S": _C | _G,
    "W": _A | _T,
    "K": _G | _T,
    "M": _A | _C,
    "B": _C | _G | _T,
    "D": _A | _G | _T,
    "H": _A | _C | _T,
    "V": _A | _C | _G,
    "N": _A | _C | _G | _T,
    "O": _A | _C | _G | _T,
    "X": _A | _C | _G | _T,
    "?": _A | _C | _G | _T,
    "-": _A | _C | _G | _T,
    ".": _A | _C | _G | _T,
}

#: Code meaning "completely undetermined" (gap, N, ?).
UNDETERMINED = _A | _C | _G | _T
#: Alias kept for readability at call sites dealing with gaps.
GAP_CODE = UNDETERMINED

_MASK_TO_CHAR = {
    _A: "A",
    _C: "C",
    _G: "G",
    _T: "T",
    _A | _G: "R",
    _C | _T: "Y",
    _C | _G: "S",
    _A | _T: "W",
    _G | _T: "K",
    _A | _C: "M",
    _C | _G | _T: "B",
    _A | _G | _T: "D",
    _A | _C | _T: "H",
    _A | _C | _G: "V",
    UNDETERMINED: "-",
}

# Build a 256-entry lookup table for fast vectorized encoding.
_ENCODE_LUT = np.zeros(256, dtype=np.uint8)
for ch, mask in IUPAC_TO_MASK.items():
    _ENCODE_LUT[ord(ch)] = mask
    _ENCODE_LUT[ord(ch.lower())] = mask


def encode_sequence(seq: str) -> np.ndarray:
    """Encode a DNA/RNA string into a ``uint8`` array of 4-bit state masks.

    Raises ``ValueError`` on characters outside the IUPAC alphabet.

    >>> encode_sequence("ACGT-N").tolist()
    [1, 2, 4, 8, 15, 15]
    """
    raw = np.frombuffer(seq.encode("ascii", errors="strict"), dtype=np.uint8)
    codes = _ENCODE_LUT[raw]
    if np.any(codes == 0):
        bad = sorted({chr(b) for b in raw[codes == 0]})
        raise ValueError(f"invalid DNA characters: {bad}")
    return codes


def decode_sequence(codes: np.ndarray) -> str:
    """Inverse of :func:`encode_sequence` (ambiguity masks -> IUPAC chars)."""
    try:
        return "".join(_MASK_TO_CHAR[int(c)] for c in codes)
    except KeyError as exc:  # pragma: no cover - defensive
        raise ValueError(f"invalid state mask {exc.args[0]!r}") from exc


# Tip likelihood rows: row[mask] is the 0/1 vector of compatible states.
_TIP_ROWS = np.zeros((16, 4), dtype=np.float64)
for mask in range(1, 16):
    for bit, col in ((_A, 0), (_C, 1), (_G, 2), (_T, 3)):
        if mask & bit:
            _TIP_ROWS[mask, col] = 1.0


def state_likelihood_rows() -> np.ndarray:
    """The ``(16, 4)`` table mapping a 4-bit mask to its tip CLV row.

    Row ``m`` has a 1.0 in every state compatible with mask ``m``.  Row 0 is
    all-zero and must never be indexed (encode rejects invalid characters).
    """
    return _TIP_ROWS.copy()
