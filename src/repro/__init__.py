"""repro — a reproduction of "Hybrid MPI/Pthreads Parallelization of the
RAxML Phylogenetics Code" (Pfeiffer & Stamatakis, 2010).

The package contains a from-scratch phylogenetic maximum-likelihood engine
(GTR+Γ / GTR+CAT, Felsenstein pruning, SPR hill climbing, the rapid-
bootstrap comprehensive analysis), a simulated MPI/Pthreads runtime with
virtual clocks, an analytic performance model of the paper's four
benchmark clusters, and the hybrid driver that combines them.

Quick start::

    from repro import test_dataset, HybridConfig, run_hybrid_analysis

    pal, true_tree = test_dataset(n_taxa=8, n_sites=200)
    result = run_hybrid_analysis(pal, HybridConfig(n_processes=2, n_threads=4))
    print(result.best_lnl, result.stage_seconds)

Subpackages
-----------
``repro.seq``        alignments, patterns, bootstrap resampling
``repro.tree``       unrooted binary trees, Newick, bipartitions
``repro.likelihood`` GTR models, pruning kernels, optimisers, parsimony
``repro.search``     starting trees, SPR searches, the comprehensive analysis
``repro.bootstop``   bipartition tables, consensus, the WC bootstopping test
``repro.mpi``        simulated MPI (SPMD, virtual clocks) + multiprocessing
``repro.threads``    virtual Pthreads over the pattern axis
``repro.perfmodel``  calibrated analytic model of the paper's clusters
``repro.hybrid``     the hybrid comprehensive-analysis driver
``repro.datasets``   benchmark registry (Table 3) and sequence simulation
"""

__version__ = "1.0.0"

from repro.datasets import (
    BENCHMARK_DATASETS,
    DatasetSpec,
    simulate_alignment,
    simulate_dataset,
    test_dataset,
)
from repro.hybrid import (
    HybridConfig,
    HybridResult,
    MultiSearchConfig,
    MultiSearchResult,
    WorkSchedule,
    make_schedule,
    run_hybrid_analysis,
    run_multiple_ml_searches,
    run_standard_bootstrap,
)
from repro.likelihood import GTRModel, LikelihoodEngine, RateModel
from repro.perfmodel import (
    MACHINES,
    analysis_time,
    finegrain_speedup,
    machine_by_name,
    profile_for,
    serial_time,
)
from repro.search import (
    ComprehensiveConfig,
    ComprehensiveResult,
    StageParams,
    evaluate_tree,
    run_comprehensive,
)
from repro.seq import Alignment, PatternAlignment, compress_alignment
from repro.tree import Tree, parse_newick, robinson_foulds, write_newick

__all__ = [
    "__version__",
    "BENCHMARK_DATASETS",
    "DatasetSpec",
    "simulate_alignment",
    "simulate_dataset",
    "test_dataset",
    "HybridConfig",
    "HybridResult",
    "MultiSearchConfig",
    "MultiSearchResult",
    "WorkSchedule",
    "make_schedule",
    "run_hybrid_analysis",
    "run_multiple_ml_searches",
    "run_standard_bootstrap",
    "evaluate_tree",
    "GTRModel",
    "LikelihoodEngine",
    "RateModel",
    "MACHINES",
    "analysis_time",
    "finegrain_speedup",
    "machine_by_name",
    "profile_for",
    "serial_time",
    "ComprehensiveConfig",
    "ComprehensiveResult",
    "StageParams",
    "run_comprehensive",
    "Alignment",
    "PatternAlignment",
    "compress_alignment",
    "Tree",
    "parse_newick",
    "robinson_foulds",
    "write_newick",
]
