"""Chrome-trace-event / Perfetto export and validation.

:func:`chrome_trace` turns the recorder's exported events into a JSON
document in the Trace Event Format (the ``traceEvents`` array form) that
loads directly in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``:

* each simulated MPI rank becomes one *process* (``pid`` = rank), named
  via ``process_name`` metadata;
* track 0 becomes the ``rank main`` thread, tracks ``1..T`` the
  ``vthread t`` lanes, named via ``thread_name`` metadata;
* spans are complete (``"ph": "X"``) events, instants are ``"ph": "i"``
  with thread scope; timestamps are virtual seconds scaled to
  microseconds (the format's unit).

:func:`validate_chrome_trace` is the schema check used by the tests and
the CI smoke step — it verifies the structural contract Perfetto relies
on rather than trusting that a file merely parses.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Mapping

#: Microseconds per virtual second (trace-event timestamps are in us).
_US = 1e6

#: Event phases the exporter emits (and the validator accepts).
_PHASES = {"X", "i", "M"}

#: Metadata record names understood by Perfetto/chrome://tracing.
_META_NAMES = {
    "process_name", "process_sort_index", "thread_name", "thread_sort_index",
}


def _meta(name: str, pid: int, tid: int, args: dict) -> dict:
    return {"ph": "M", "name": name, "pid": pid, "tid": tid, "args": args}


def chrome_trace(
    events: Iterable[Mapping],
    n_threads: int = 1,
    meta: Mapping | None = None,
) -> dict:
    """Build a Trace-Event-Format document from exported recorder events.

    ``events`` are the dicts produced by
    :meth:`repro.obs.recorder.Recorder.export_events` (any number of
    ranks concatenated).  ``n_threads`` declares the virtual-thread lane
    count so every rank gets identical tracks even if a lane stayed
    idle.  ``meta`` lands in the document's ``otherData``.
    """
    events = list(events)
    ranks = sorted({int(e["rank"]) for e in events})
    trace_events: list[dict] = []
    for rank in ranks:
        trace_events.append(_meta("process_name", rank, 0, {"name": f"rank {rank}"}))
        trace_events.append(_meta("process_sort_index", rank, 0, {"sort_index": rank}))
        for track in range(n_threads + 1):
            name = "rank main" if track == 0 else f"vthread {track}"
            trace_events.append(_meta("thread_name", rank, track, {"name": name}))
            trace_events.append(
                _meta("thread_sort_index", rank, track, {"sort_index": track})
            )
    for e in events:
        common = {
            "name": str(e["name"]),
            "cat": str(e.get("cat", "default")),
            "pid": int(e["rank"]),
            "tid": int(e["track"]),
            "args": e.get("args") or {},
        }
        if e["type"] == "span":
            trace_events.append({
                **common,
                "ph": "X",
                "ts": float(e["t0"]) * _US,
                "dur": max(0.0, (float(e["t1"]) - float(e["t0"])) * _US),
            })
        elif e["type"] == "instant":
            trace_events.append({
                **common, "ph": "i", "s": "t", "ts": float(e["t"]) * _US,
            })
        else:
            raise ValueError(f"unknown recorder event type {e['type']!r}")
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": dict(meta or {}),
    }


def write_chrome_trace(path: str | Path, doc: Mapping) -> Path:
    """Serialise a trace document (validated first) to ``path``."""
    validate_chrome_trace(doc)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc), encoding="ascii")
    return path


class TraceValidationError(ValueError):
    """A document violates the Chrome trace-event structural contract."""


def _fail(index: int, message: str) -> None:
    raise TraceValidationError(f"traceEvents[{index}]: {message}")


def validate_chrome_trace(doc: Mapping) -> dict:
    """Validate a trace document; returns summary stats on success.

    Checks the invariants Perfetto depends on: a ``traceEvents`` list;
    every event a dict with a known ``ph``; complete events with numeric
    non-negative ``ts``/``dur`` and integer ``pid``/``tid``; metadata
    events with known names and an ``args`` dict.
    """
    if not isinstance(doc, Mapping):
        raise TraceValidationError("trace document must be a JSON object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise TraceValidationError("'traceEvents' must be a list")
    counts = {"X": 0, "i": 0, "M": 0}
    tracks: set[tuple[int, int]] = set()
    for i, e in enumerate(events):
        if not isinstance(e, Mapping):
            _fail(i, "event must be an object")
        ph = e.get("ph")
        if ph not in _PHASES:
            _fail(i, f"unknown phase {ph!r} (expected one of {sorted(_PHASES)})")
        if not isinstance(e.get("name"), str) or not e["name"]:
            _fail(i, "missing or empty 'name'")
        if not isinstance(e.get("pid"), int) or not isinstance(e.get("tid"), int):
            _fail(i, "'pid' and 'tid' must be integers")
        if ph == "M":
            if e["name"] not in _META_NAMES:
                _fail(i, f"unknown metadata record {e['name']!r}")
            if not isinstance(e.get("args"), Mapping):
                _fail(i, "metadata event needs an 'args' object")
        else:
            ts = e.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                _fail(i, "'ts' must be a non-negative number")
            if ph == "X":
                dur = e.get("dur")
                if not isinstance(dur, (int, float)) or dur < 0:
                    _fail(i, "'dur' must be a non-negative number")
            if ph == "i" and e.get("s") not in (None, "t", "p", "g"):
                _fail(i, f"instant scope {e.get('s')!r} invalid")
            tracks.add((e["pid"], e["tid"]))
        counts[ph] += 1
    return {
        "events": len(events),
        "spans": counts["X"],
        "instants": counts["i"],
        "metadata": counts["M"],
        "processes": len({pid for pid, _ in tracks}),
        "tracks": len(tracks),
    }


def validate_trace_file(path: str | Path) -> dict:
    """Parse and validate a trace JSON file; returns summary stats."""
    with open(path, encoding="ascii") as fh:
        try:
            doc = json.load(fh)
        except json.JSONDecodeError as exc:
            raise TraceValidationError(f"{path}: not valid JSON: {exc}") from exc
    return validate_chrome_trace(doc)
