"""The metrics registry: counters, gauges, and histograms → JSON.

Every simulated rank owns one :class:`MetricsRegistry` (inside its
:class:`~repro.obs.recorder.Recorder`).  Counters accumulate event
totals (kernel invocations, CLV-cache hits, collective calls/bytes),
gauges record point-in-time values (final op counts, stage seconds),
and histograms bucket distributions (collective payload sizes, region
durations) without storing every observation.

Registries serialise to plain-JSON dictionaries and aggregate across
ranks with :func:`aggregate`: counters and histogram contents sum,
gauges keep per-rank extrema (a gauge is a *state*, so the only honest
cross-rank summaries are its min/max).
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence


class Histogram:
    """A power-of-two bucketed histogram of non-negative observations.

    Buckets are keyed by ``ceil(log2(value))`` so the memory footprint is
    O(dynamic range), not O(observations); exact ``count``/``sum``/
    ``min``/``max`` ride along so means stay precise.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        #: bucket exponent -> observation count; an observation v lands in
        #: the smallest e with v <= 2**e (zero gets its own bucket "0").
        self.buckets: dict[str, int] = {}

    def observe(self, value: float) -> None:
        v = float(value)
        if v < 0 or math.isnan(v):
            raise ValueError(f"histogram observations must be >= 0, got {value}")
        self.count += 1
        self.total += v
        self.min = min(self.min, v)
        self.max = max(self.max, v)
        key = "0" if v == 0.0 else f"2^{math.ceil(math.log2(v))}"
        self.buckets[key] = self.buckets.get(key, 0) + 1

    def to_dict(self) -> dict:
        if self.count == 0:
            return {"count": 0, "sum": 0.0, "min": None, "max": None,
                    "mean": None, "buckets": {}}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.total / self.count,
            "buckets": dict(sorted(self.buckets.items())),
        }


class MetricsRegistry:
    """Named counters, gauges, and histograms for one rank."""

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}

    # -- recording ---------------------------------------------------------

    def inc(self, name: str, value: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + value

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                k: h.to_dict() for k, h in sorted(self.histograms.items())
            },
        }


def aggregate(docs: Sequence[Mapping]) -> dict:
    """Cross-rank aggregation of serialised registries.

    Counters and histogram counts/sums add up; histogram min/max and the
    per-gauge extrema take the elementwise min/max across ranks.
    """
    counters: dict[str, float] = {}
    gauge_min: dict[str, float] = {}
    gauge_max: dict[str, float] = {}
    hists: dict[str, dict] = {}
    for doc in docs:
        for name, v in doc.get("counters", {}).items():
            counters[name] = counters.get(name, 0.0) + v
        for name, v in doc.get("gauges", {}).items():
            gauge_min[name] = min(gauge_min.get(name, v), v)
            gauge_max[name] = max(gauge_max.get(name, v), v)
        for name, h in doc.get("histograms", {}).items():
            if h.get("count", 0) == 0:
                continue
            acc = hists.setdefault(
                name,
                {"count": 0, "sum": 0.0, "min": math.inf, "max": -math.inf,
                 "buckets": {}},
            )
            acc["count"] += h["count"]
            acc["sum"] += h["sum"]
            acc["min"] = min(acc["min"], h["min"])
            acc["max"] = max(acc["max"], h["max"])
            for key, n in h.get("buckets", {}).items():
                acc["buckets"][key] = acc["buckets"].get(key, 0) + n
    for acc in hists.values():
        acc["mean"] = acc["sum"] / acc["count"]
        acc["buckets"] = dict(sorted(acc["buckets"].items()))
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": {
            name: {"min": gauge_min[name], "max": gauge_max[name]}
            for name in sorted(gauge_min)
        },
        "histograms": dict(sorted(hists.items())),
    }
