"""Structured span/event recording on the simulated runtime's clocks.

One :class:`Recorder` belongs to one simulated MPI rank and timestamps
everything with the rank's :class:`~repro.util.timing.VirtualClock` — the
same clock the performance model advances — so a recorded timeline *is*
the paper's per-rank wall-clock decomposition.

Track-id convention (see ``docs/ARCHITECTURE.md`` §8): every event
carries ``(rank, track)``.  Track 0 is the rank's main line (stages,
search moves, collectives, recovery); tracks ``1..T`` are the rank's
virtual Pthreads, fed by the thread pool's region accounting.  The
Chrome-trace exporter maps rank → process and track → thread, so a whole
run renders as per-rank timelines with per-thread lanes.

Instrumented call sites obtain the active recorder with
:func:`current` — a thread-local, which matches the runtime exactly
because every simulated rank runs on its own Python thread (and its
virtual threads are simulated *inside* that thread).  With no recorder
installed, :func:`current` returns ``None`` and every instrumentation
point reduces to one attribute lookup and a falsy check; tracing off is
therefore free to within noise (the <5% microbench budget).

Kernel-region events are *coalesced*: consecutive regions that abut in
virtual time merge into one batch per track, flushed when a gap appears
(communication advanced the clock), when a main-track span closes, or at
a batch-size cap.  This keeps traces of real searches (millions of
regions) bounded while preserving per-thread utilisation.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass

from repro.obs.metrics import MetricsRegistry
from repro.util.timing import VirtualClock

#: Track id of a rank's main timeline (stages, collectives, moves).
MAIN_TRACK = 0

#: Default cap on retained events per recorder; overflow increments
#: ``dropped`` instead of growing without bound.
MAX_EVENTS = 250_000

#: Kernel regions merged into one batch before a forced flush.
REGION_BATCH_LIMIT = 50_000


@dataclass(frozen=True)
class SpanEvent:
    """A named interval on one (rank, track) timeline."""

    name: str
    cat: str
    rank: int
    track: int
    t0: float
    t1: float
    args: dict | None = None

    def to_dict(self) -> dict:
        return {
            "type": "span", "name": self.name, "cat": self.cat,
            "rank": self.rank, "track": self.track,
            "t0": self.t0, "t1": self.t1, "args": self.args,
        }


@dataclass(frozen=True)
class InstantEvent:
    """A point event (retry, rank failure, resume marker)."""

    name: str
    cat: str
    rank: int
    track: int
    t: float
    args: dict | None = None

    def to_dict(self) -> dict:
        return {
            "type": "instant", "name": self.name, "cat": self.cat,
            "rank": self.rank, "track": self.track,
            "t": self.t, "args": self.args,
        }


class _RegionBatch:
    """Pending run of abutting kernel regions, one lane per thread."""

    __slots__ = ("t0", "t1", "busy", "count")

    def __init__(self, t0: float, t1: float, busy: list[float], count: int) -> None:
        self.t0 = t0
        self.t1 = t1
        self.busy = busy
        self.count = count


class Recorder:
    """Span/instant recorder plus metrics registry for one rank.

    Parameters
    ----------
    rank:
        The owning (physical) MPI rank; stamped on every event.
    clock:
        The rank's virtual clock (timestamps source).  A private clock is
        created when omitted (useful in unit tests).
    n_threads:
        Virtual threads of this rank — declares tracks ``1..n_threads``
        for the exporter even if no region ever runs on one of them.
    record_events:
        ``False`` collects metrics only (``--metrics-out`` without
        ``--trace``); span/instant calls become no-ops.
    max_events:
        Retained-event cap; overflow counts into :attr:`dropped`.
    """

    def __init__(
        self,
        rank: int = 0,
        clock: VirtualClock | None = None,
        n_threads: int = 1,
        record_events: bool = True,
        max_events: int = MAX_EVENTS,
        region_batch_limit: int = REGION_BATCH_LIMIT,
    ) -> None:
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        self.rank = rank
        self.clock = clock if clock is not None else VirtualClock()
        self.n_threads = n_threads
        self.record_events = record_events
        self.max_events = max_events
        self.region_batch_limit = region_batch_limit
        self.events: list[SpanEvent | InstantEvent] = []
        self.dropped = 0
        self.metrics = MetricsRegistry()
        self._batch: _RegionBatch | None = None

    @property
    def now(self) -> float:
        return self.clock.now

    # -- event recording ---------------------------------------------------

    def _append(self, event: SpanEvent | InstantEvent) -> None:
        if len(self.events) < self.max_events:
            self.events.append(event)
        else:
            self.dropped += 1

    def span(
        self,
        name: str,
        cat: str,
        t0: float,
        t1: float | None = None,
        track: int = MAIN_TRACK,
        args: dict | None = None,
    ) -> None:
        """Record a closed interval ``[t0, t1]`` (``t1`` defaults to now)."""
        if not self.record_events:
            return
        if track == MAIN_TRACK:
            # Thread lanes segment at main-track span boundaries so the
            # per-thread batches nest inside stages and search moves.
            self.flush_regions()
        end = self.clock.now if t1 is None else t1
        self._append(SpanEvent(name, cat, self.rank, track, t0, end, args))

    def instant(
        self,
        name: str,
        cat: str,
        t: float | None = None,
        track: int = MAIN_TRACK,
        args: dict | None = None,
    ) -> None:
        if not self.record_events:
            return
        when = self.clock.now if t is None else t
        self._append(InstantEvent(name, cat, self.rank, track, when, args))

    @contextmanager
    def measure(self, name: str, cat: str, args: dict | None = None):
        """Context manager: a span from entry ``now`` to exit ``now``."""
        t0 = self.clock.now
        try:
            yield self
        finally:
            self.span(name, cat, t0, args=args)

    # -- metrics passthrough ----------------------------------------------

    def count(self, name: str, value: float = 1.0) -> None:
        self.metrics.inc(name, value)

    def gauge(self, name: str, value: float) -> None:
        self.metrics.set_gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        self.metrics.observe(name, value)

    # -- kernel-region coalescing ------------------------------------------

    def thread_regions(
        self, t0: float, t1: float, busy: list[float], count: int = 1
    ) -> None:
        """Record ``count`` parallel regions spanning ``[t0, t1]`` whose
        per-thread busy seconds are ``busy`` (one entry per thread).

        Abutting calls merge (kernel regions are back-to-back in virtual
        time unless communication intervened), so long compute stretches
        cost one span per thread, not one per region.
        """
        if not self.record_events:
            return
        batch = self._batch
        if (
            batch is not None
            and batch.t1 == t0
            and len(batch.busy) == len(busy)
            and batch.count + count <= self.region_batch_limit
        ):
            batch.t1 = t1
            batch.count += count
            for i, b in enumerate(busy):
                batch.busy[i] += b
        else:
            self.flush_regions()
            self._batch = _RegionBatch(t0, t1, list(busy), count)

    def flush_regions(self) -> None:
        """Emit the pending region batch as one span per thread track."""
        batch = self._batch
        if batch is None:
            return
        self._batch = None
        window = batch.t1 - batch.t0
        for i, b in enumerate(batch.busy):
            self._append(SpanEvent(
                f"regions x{batch.count}",
                "kernel",
                self.rank,
                i + 1,
                batch.t0,
                batch.t1,
                {
                    "regions": batch.count,
                    "busy_s": b,
                    "util": (b / window) if window > 0 else 1.0,
                },
            ))

    # -- export ------------------------------------------------------------

    def export_events(self) -> list[dict]:
        """All recorded events as JSON-ready dicts, in start-time order."""
        self.flush_regions()
        def start(e):  # noqa: E306 - tiny local key helper
            return (e.t0 if isinstance(e, SpanEvent) else e.t, e.track)
        return [e.to_dict() for e in sorted(self.events, key=start)]


# -- the active recorder (one per rank thread) -----------------------------

_tls = threading.local()


def current() -> Recorder | None:
    """The recorder active on this (rank) thread, or ``None``."""
    return getattr(_tls, "recorder", None)


def set_current(recorder: Recorder | None) -> None:
    _tls.recorder = recorder


@contextmanager
def recording(recorder: Recorder | None):
    """Install ``recorder`` as this thread's active recorder."""
    previous = current()
    set_current(recorder)
    try:
        yield recorder
    finally:
        set_current(previous)
