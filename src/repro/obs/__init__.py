"""``repro.obs`` — observability for the simulated hybrid runtime.

A structured span/event recorder on virtual clocks
(:mod:`repro.obs.recorder`), a metrics registry
(:mod:`repro.obs.metrics`), a Chrome-trace-event/Perfetto exporter with
schema validation (:mod:`repro.obs.trace`), and paper-style stage
reports (:mod:`repro.obs.report`).

The instrumentation contract: call sites fetch the thread-local active
recorder with :func:`current`; ``None`` means tracing is off and the
call site must do nothing else.  The runtime layer installs one
recorder per rank (:func:`repro.runtime.backends.run_rank`; see
``docs/ARCHITECTURE.md`` §8) and its :class:`~repro.runtime.middleware.ObsMiddleware`
emits the stage-boundary spans.
"""

from repro.obs.metrics import Histogram, MetricsRegistry, aggregate
from repro.obs.recorder import (
    MAIN_TRACK,
    InstantEvent,
    Recorder,
    SpanEvent,
    current,
    recording,
    set_current,
)
from repro.obs.report import (
    ALL_STAGES,
    PAPER_STAGES,
    fig34_decomposition,
    format_stage_report,
    run_report,
    stage_decomposition,
)
from repro.obs.trace import (
    TraceValidationError,
    chrome_trace,
    validate_chrome_trace,
    validate_trace_file,
    write_chrome_trace,
)

__all__ = [
    "MAIN_TRACK",
    "ALL_STAGES",
    "PAPER_STAGES",
    "Histogram",
    "InstantEvent",
    "MetricsRegistry",
    "Recorder",
    "SpanEvent",
    "TraceValidationError",
    "aggregate",
    "chrome_trace",
    "current",
    "fig34_decomposition",
    "format_stage_report",
    "recording",
    "run_report",
    "set_current",
    "stage_decomposition",
    "validate_chrome_trace",
    "validate_trace_file",
    "write_chrome_trace",
]
