"""Paper-style run reports: stage decomposition, imbalance, efficiency.

Figures 3–4 of the paper decompose total run time into the four
comprehensive-analysis stages — bootstraps, fast, slow, thorough — where
each stage's time is "that of the last process to finish".  This module
reproduces those buckets from per-rank stage seconds and adds the two
quantities hybrid-runtime tuning actually needs per stage:

* **load imbalance** ``max / mean`` (1.0 = perfectly balanced; the
  paper's Section 5.1 attributes efficiency loss to exactly this), and
* **parallel efficiency** ``mean / max`` — the fraction of the stage's
  critical path the average rank was busy.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.util.tables import format_table

#: The Fig. 3–4 buckets, in pipeline order.
PAPER_STAGES = ("bootstrap", "fast", "slow", "thorough")

#: Every stage the driver accounts, in execution order.
ALL_STAGES = ("setup",) + PAPER_STAGES + ("finalize", "recovery")


def fig34_decomposition(
    per_rank: Sequence[Mapping[str, float]],
    stages: Sequence[str] = PAPER_STAGES,
) -> dict[str, float]:
    """Stage → seconds of the last process to finish (the Fig. 3–4 bars)."""
    if not per_rank:
        raise ValueError("need at least one rank's stage seconds")
    return {
        s: max(float(r.get(s, 0.0)) for r in per_rank) for s in stages
    }


def stage_decomposition(
    per_rank: Sequence[Mapping[str, float]],
    stages: Sequence[str] = ALL_STAGES,
) -> list[dict]:
    """Per-stage cross-rank statistics (one row per stage with any time).

    Each row holds ``stage``, ``max``/``mean``/``min`` seconds,
    ``imbalance`` (max/mean) and ``efficiency`` (mean/max).  Stages no
    rank spent time in are omitted.
    """
    if not per_rank:
        raise ValueError("need at least one rank's stage seconds")
    rows: list[dict] = []
    for stage in stages:
        values = [float(r.get(stage, 0.0)) for r in per_rank]
        mx = max(values)
        if mx <= 0.0:
            continue
        mean = sum(values) / len(values)
        rows.append({
            "stage": stage,
            "max": mx,
            "mean": mean,
            "min": min(values),
            "imbalance": (mx / mean) if mean > 0 else float("inf"),
            "efficiency": mean / mx,
        })
    return rows


def format_stage_report(rows: Sequence[Mapping], title: str | None = None) -> str:
    """Render :func:`stage_decomposition` rows as an aligned table."""
    return format_table(
        ["stage", "max s", "mean s", "min s", "imbalance", "efficiency"],
        [
            [r["stage"], r["max"], r["mean"], r["min"], r["imbalance"],
             r["efficiency"]]
            for r in rows
        ],
        formats=[None, ".4f", ".4f", ".4f", ".3f", ".3f"],
        title=title,
    )


def run_report(
    per_rank: Sequence[Mapping[str, float]],
    comm_seconds: Sequence[float] | None = None,
    comm_intra_seconds: Sequence[float] | None = None,
    comm_inter_seconds: Sequence[float] | None = None,
    comm_channel_seconds: Sequence[Mapping | None] | None = None,
    n_processes: int | None = None,
    n_threads: int | None = None,
    sched: Mapping | None = None,
    recovery: Sequence[Mapping[str, float]] | None = None,
) -> dict:
    """The complete JSON report block written by ``--metrics-out``.

    Contains the Fig. 3–4 buckets, the per-stage statistics table, total
    time (slowest rank, summed over stages), and — when ``comm_seconds``
    is given — the communication share of total time per rank.  For
    work-steal runs, ``sched`` (the driver's scheduling document: steal
    attempts/grants, per-stage queue stats, per-rank idle tails) is
    embedded verbatim under ``"sched"`` so the Fig. 3–4 stage report
    carries the idle-tail deltas dynamic scheduling achieved.

    Under the topology-aware communication model the per-rank
    intra-node/inter-node shares (and, with virtual channels enabled,
    each rank's per-channel traffic) arrive through
    ``comm_intra_seconds``/``comm_inter_seconds``/``comm_channel_seconds``
    and are emitted as a ``"comm_split"`` block.  The block is omitted
    whenever every value is zero/None — flat-model reports stay
    byte-for-byte what they always were.

    ``recovery`` is each rank's replay time bucketed by the pipeline
    stage whose boundary triggered it; when any rank recovered, the
    report carries a ``"recovery_overhead"`` block so the Fig. 3–4
    decomposition can show what resilience cost per stage.
    """
    rows = stage_decomposition(per_rank)
    totals = [sum(float(v) for v in r.values()) for r in per_rank]
    doc: dict = {
        "layout": {"n_processes": n_processes, "n_threads": n_threads},
        "fig34_stage_seconds": fig34_decomposition(per_rank),
        "stages": rows,
        "total_seconds": max(totals) if totals else 0.0,
        "total_imbalance": (
            max(totals) * len(totals) / sum(totals)
            if totals and sum(totals) > 0 else 1.0
        ),
    }
    if comm_seconds is not None:
        doc["comm_seconds"] = list(comm_seconds)
        doc["comm_fraction"] = [
            (c / t) if t > 0 else 0.0 for c, t in zip(comm_seconds, totals)
        ]
    split_live = any(comm_intra_seconds or ()) or any(comm_inter_seconds or ())
    channels_live = any(c for c in (comm_channel_seconds or ()))
    if split_live or channels_live:
        split: dict = {
            "intra_seconds": [float(v) for v in (comm_intra_seconds or ())],
            "inter_seconds": [float(v) for v in (comm_inter_seconds or ())],
            "intra_max": max(comm_intra_seconds or (0.0,)),
            "inter_max": max(comm_inter_seconds or (0.0,)),
        }
        if channels_live:
            split["channels"] = [
                dict(c) if c is not None else None
                for c in comm_channel_seconds
            ]
        doc["comm_split"] = split
    if sched is not None:
        doc["sched"] = dict(sched)
    if recovery is not None and any(recovery):
        stages = sorted(
            {s for r in recovery for s in r},
            key=lambda s: ALL_STAGES.index(s) if s in ALL_STAGES else len(ALL_STAGES),
        )
        doc["recovery_overhead"] = {
            "per_stage": {
                s: max(float(r.get(s, 0.0)) for r in recovery) for s in stages
            },
            "per_rank": [dict(r) for r in recovery],
            "total_seconds": sum(
                float(v) for r in recovery for v in r.values()
            ),
        }
    return doc
