"""The composable runtime layer behind the hybrid driver.

Three layers (see ``docs/ARCHITECTURE.md`` §11):

* :mod:`repro.runtime.pipeline` — the *one* declarative definition of
  the comprehensive analysis as :class:`Stage` objects in a
  :class:`StagePipeline`;
* :mod:`repro.runtime.backends` — pluggable :class:`ExecutionBackend`
  implementations (static Table 2 partition, work stealing) selected by
  ``HybridConfig.schedule``;
* :mod:`repro.runtime.middleware` — checkpoint/resume, fault injection,
  recovery and obs instrumentation as ordered :class:`RunMiddleware`
  hooks around stage and task boundaries.

The :class:`~repro.runtime.context.RankContext` ties them together: one
logical rank's seed streams, virtual thread pool and accounting, shared
by live execution and dead-rank replay.
"""

from repro.runtime.context import RankContext
from repro.runtime.pipeline import Stage, StagePipeline, comprehensive_pipeline
from repro.runtime.middleware import (
    CheckpointMiddleware,
    FaultMiddleware,
    ObsMiddleware,
    RecoveryMiddleware,
    RunMiddleware,
)
from repro.runtime.backends import (
    BACKENDS,
    ExecutionBackend,
    StaticBackend,
    WorkStealBackend,
    available_schedules,
    backend_for,
    register_backend,
    run_rank,
)

__all__ = [
    "RankContext",
    "Stage",
    "StagePipeline",
    "comprehensive_pipeline",
    "RunMiddleware",
    "FaultMiddleware",
    "ObsMiddleware",
    "CheckpointMiddleware",
    "RecoveryMiddleware",
    "ExecutionBackend",
    "StaticBackend",
    "WorkStealBackend",
    "BACKENDS",
    "available_schedules",
    "backend_for",
    "register_backend",
    "run_rank",
]
